//! Community detection: Markov clustering vs peer-pressure clustering vs
//! connected components on a planted-partition graph, with agreement
//! statistics — exercising the clustering algorithms of §V side by side.
//!
//! Run with: `cargo run --release --example community_detection`

use lagraph_suite::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Planted-partition graph: `k` blocks of `size` vertices, dense inside
/// (probability `p_in`), sparse across (`p_out`).
fn planted_partition(
    k: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> graphblas::Result<(Graph, Vec<usize>)> {
    let n = k * size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let truth: Vec<usize> = (0..n).map(|v| v / size).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if truth[i] == truth[j] { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                edges.push((i, j));
            }
        }
    }
    Ok((Graph::from_edges(n, &edges, GraphKind::Undirected)?, truth))
}

/// Fraction of vertex pairs on which two labelings agree (same/different
/// cluster) — the Rand index.
fn rand_index(a: &[u64], b: &[usize]) -> f64 {
    let n = a.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

fn labels_of(v: &Vector<u64>, n: usize) -> Vec<u64> {
    let mut out = vec![0u64; n];
    for (i, c) in v.iter() {
        out[i] = c;
    }
    out
}

fn main() -> graphblas::Result<()> {
    let (g, truth) = planted_partition(4, 24, 0.45, 0.02, 11)?;
    let n = g.nvertices();
    println!("planted partition: {} vertices in 4 blocks, {} edges", n, g.nedges() / 2);

    let mcl = markov_cluster(&g, &MclOptions::default())?;
    let mcl_labels = labels_of(&mcl, n);
    println!("markov clustering:   rand index {:.3}", rand_index(&mcl_labels, &truth));

    let pp = peer_pressure(&g, 20)?;
    let pp_labels = labels_of(&pp, n);
    println!("peer pressure:       rand index {:.3}", rand_index(&pp_labels, &truth));

    // Connected components as the (weak) baseline: everything is one
    // component here, so its Rand index is the chance level.
    let cc = connected_components(&g)?;
    let cc_labels = labels_of(&cc, n);
    println!("connected components: rand index {:.3} (baseline)", rand_index(&cc_labels, &truth));

    // The real clusterings should beat the baseline comfortably.
    let mcl_ri = rand_index(&mcl_labels, &truth);
    let cc_ri = rand_index(&cc_labels, &truth);
    assert!(mcl_ri > cc_ri, "MCL ({mcl_ri:.3}) should beat components ({cc_ri:.3})");
    println!("ok: clustering recovers the planted structure");
    Ok(())
}
