//! Social-network analytics scenario: centrality, community structure,
//! and cohesion on a synthetic social graph — the data-science pipeline
//! the paper's introduction motivates (graphs flowing through a sequence
//! of analyses).
//!
//! Run with: `cargo run --release --example social_network`

use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    // Synthetic "social" graph: scale-free, heavy-tailed degrees.
    let adj = rmat(&RmatParams { scale: 9, edge_factor: 10, seed: 7, ..Default::default() })?;
    let n = adj.nrows();
    let mut weights = Matrix::<f64>::new(n, n)?;
    apply_matrix(&mut weights, None, NOACC, unaryop::One, &adj, &Descriptor::default())?;
    let g = Graph::new(weights, GraphKind::Undirected)?;
    println!("social graph: {} users, {} ties", g.nvertices(), g.nedges() / 2);

    // Influencers: PageRank + betweenness (sampled sources).
    let (ranks, _) = pagerank(&g, &PageRankOptions::default())?;
    let mut top: Vec<(Index, f64)> = ranks.iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("top-5 by pagerank:");
    for (v, r) in top.iter().take(5) {
        println!("  user {v:4}  rank {r:.5}");
    }
    let sample: Vec<Index> = (0..32).map(|k| (k * 17) % n).collect();
    let bc = betweenness_centrality(&g, &sample)?;
    let (broker, score) = lagraph::utils::argmax(&bc).expect("nonempty");
    println!("top broker (sampled betweenness): user {broker} ({score:.1})");

    // Community structure: peer-pressure clustering, and a local cluster
    // around the top influencer.
    let communities = peer_pressure(&g, 16)?;
    let mut labels: Vec<u64> = communities.iter().map(|(_, c)| c).collect();
    labels.sort_unstable();
    labels.dedup();
    println!("peer-pressure communities: {}", labels.len());

    let seed = top[0].0;
    let (members, phi) = local_cluster(&g, seed, &LocalClusterOptions::default())?;
    println!("local cluster around user {seed}: {} members, conductance {phi:.4}", members.len());

    // Cohesion: triangles and the strongest truss.
    let triangles = triangle_count(&g, TriCountMethod::Sandia)?;
    let truss = max_truss(&g)?;
    println!("cohesion: {triangles} triangles; densest subgroup is a {truss}-truss");

    // Independent "panel" selection: no two panelists know each other.
    let panel = maximal_independent_set(&g, 2024)?;
    assert!(verify_mis(&g, &panel)?);
    println!("independent panel: {} users", panel.nvals());
    Ok(())
}
