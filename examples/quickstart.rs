//! Quickstart: build a graph, run the Fig. 2 BFS, shortest paths,
//! PageRank, triangle counting, and connected components — the core menu
//! of the LAGraph collection — on a small scale-free graph.
//!
//! Run with: `cargo run --release --example quickstart`

use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    // A scale-free RMAT graph, the Graph500 workload shape.
    let adj = rmat(&RmatParams { scale: 10, edge_factor: 8, ..Default::default() })?;
    let n = adj.nrows();
    let mut weights = Matrix::<f64>::new(n, n)?;
    apply_matrix(&mut weights, None, NOACC, unaryop::One, &adj, &Descriptor::default())?;
    let g = Graph::new(weights, GraphKind::Undirected)?;
    println!("graph: {} vertices, {} edges", g.nvertices(), g.nedges() / 2);

    // Level BFS from vertex 0 (the paper's Fig. 2 algorithm).
    let levels = bfs_level(&g, 0)?;
    let reached = levels.nvals();
    let depth = levels.iter().map(|(_, d)| d).max().unwrap_or(0);
    println!("bfs: reached {reached} vertices, {depth} levels");

    // Parent BFS gives the tree.
    let parents = bfs_parent(&g, 0)?;
    println!("bfs tree: {} parent pointers", parents.nvals());

    // Single-source shortest paths (unit weights here).
    let dist = sssp_bellman_ford(&g, 0)?;
    let far = dist.iter().map(|(_, d)| d).fold(0.0f64, f64::max);
    println!("sssp: eccentricity of vertex 0 = {far}");

    // PageRank.
    let (ranks, iters) = pagerank(&g, &PageRankOptions::default())?;
    let (top, score) = lagraph::utils::argmax(&ranks).expect("nonempty");
    println!("pagerank: converged in {iters} iterations; top vertex {top} ({score:.5})");

    // Triangle counting, three ways — they must agree.
    let t1 = triangle_count(&g, TriCountMethod::Burkhardt)?;
    let t2 = triangle_count(&g, TriCountMethod::Cohen)?;
    let t3 = triangle_count(&g, TriCountMethod::Sandia)?;
    assert_eq!(t1, t2);
    assert_eq!(t2, t3);
    println!("triangles: {t1}");

    // Connected components.
    let ncomp = component_count(&g)?;
    println!("components: {ncomp}");
    Ok(())
}
