//! Trace a direction-optimized BFS and export the run as Chrome
//! trace-event JSON.
//!
//! Demonstrates the runtime observability layer: tracing is switched on
//! programmatically (no recompile, no feature flag), the BFS runs as
//! usual, and the recorded spans show each frontier wave's size, the
//! push/pull kernel the heuristic chose for it, and where the time went.
//!
//! Run with: `cargo run --release --example trace_bfs [out.json]`
//!
//! Then load `out.json` (default `trace_bfs.json`) in `chrome://tracing`
//! or <https://ui.perfetto.dev>. Set `GRAPHBLAS_TRACE=burble` to narrate
//! every event to stderr as it happens instead.

use lagraph_suite::graphblas::trace;
use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    // A scale-free RMAT graph with dual (row + column) storage, so both
    // the push and pull mxv kernels are available to the direction
    // heuristic.
    let mut adj = rmat(&RmatParams { scale: 12, edge_factor: 8, ..Default::default() })?;
    adj.set_dual_storage(true);
    adj.wait();
    let n = adj.nrows();
    println!("graph: {n} vertices, {} edges", adj.nvals());

    // Record every span from here on. Honor an environment choice
    // (GRAPHBLAS_TRACE=burble) if one was made; otherwise record quietly.
    if !trace::enabled() {
        trace::enable();
    }
    trace::clear();

    let levels = bfs_level_matrix(&adj, 0, Direction::Auto)?;

    trace::disable();
    let mut events = trace::drain();
    events.sort_by_key(|e| e.t0_ns);
    println!(
        "bfs: reached {} vertices in {} levels; traced {} events ({} dropped)",
        levels.nvals(),
        levels.iter().map(|(_, d)| d).max().unwrap_or(0),
        events.len(),
        trace::dropped(),
    );

    // Each frontier wave: its nnz and the direction the heuristic took.
    println!("\nmxv spans (one per BFS wave):");
    for e in events.iter().filter(|e| e.name == "mxv") {
        println!("  {}", trace::burble_line(e));
    }

    // Aggregate per-op profile of the whole run.
    println!("\n{}", trace::Profile::from_events(&events).report());

    // Chrome trace-event export.
    let path = std::env::args().nth(1).unwrap_or_else(|| "trace_bfs.json".to_string());
    trace::write_chrome_trace(&path, &events).expect("write chrome trace");
    println!("chrome trace written to {path}");
    Ok(())
}
