//! Pathfinding scenario: shortest paths on a weighted grid "road map" —
//! Bellman-Ford vs delta-stepping vs A* with a Manhattan heuristic, the
//! A* entry being one of the algorithms §V lists as not yet done on a
//! GraphBLAS (implemented here as an extension).
//!
//! Run with: `cargo run --release --example pathfinding`

use std::time::Instant;

use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    // A 64×64 street grid with mildly varied travel times.
    let (rows, cols) = (64usize, 64usize);
    let base = grid2d(rows, cols)?;
    // Perturb weights deterministically so routes are interesting.
    let mut roads = Matrix::<f64>::new(base.nrows(), base.ncols())?;
    apply_matrix_indexed(
        &mut roads,
        None,
        NOACC,
        |i: Index, j: Index, w: f64| w + (((i * 31 + j * 17) % 7) as f64) * 0.25,
        &base,
        &Descriptor::default(),
    )?;
    // Make travel times symmetric (undirected roads).
    let rt = transpose_new(&roads)?;
    let mut sym = Matrix::<f64>::new(roads.nrows(), roads.ncols())?;
    ewise_add_matrix(&mut sym, None, NOACC, binaryop::Min, &roads, &rt, &Descriptor::default())?;
    let g = Graph::new(sym, GraphKind::Undirected)?;
    println!("road grid: {} intersections, {} road segments", g.nvertices(), g.nedges() / 2);

    let source = 0;
    let target = rows * cols - 1;

    let t0 = Instant::now();
    let bf = sssp_bellman_ford(&g, source)?;
    let bf_time = t0.elapsed();
    let bf_d = bf.get(target).expect("grid is connected");

    let t0 = Instant::now();
    let ds = sssp_delta_stepping(&g, source, 2.0)?;
    let ds_time = t0.elapsed();
    let ds_d = ds.get(target).expect("grid is connected");

    let manhattan = move |v: Index| {
        let (vr, vc) = (v / cols, v % cols);
        let (tr, tc) = (target / cols, target % cols);
        (vr.abs_diff(tr) + vc.abs_diff(tc)) as f64 // admissible: min weight 1
    };
    let t0 = Instant::now();
    let (path, astar_d) = astar(&g, source, target, manhattan)?.expect("connected");
    let astar_time = t0.elapsed();

    println!("corner-to-corner travel time:");
    println!("  bellman-ford   {bf_d:8.2}  in {bf_time:?}");
    println!("  delta-stepping {ds_d:8.2}  in {ds_time:?}");
    println!("  a*             {astar_d:8.2}  in {astar_time:?}  ({} hops)", path.len() - 1);
    assert_eq!(bf_d, ds_d);
    assert_eq!(bf_d, astar_d);

    // All-pairs on a small sub-map: the 8×8 upper-left corner.
    let sub: Vec<Index> = (0..8).flat_map(|r| (0..8).map(move |c| r * cols + c)).collect();
    let mut corner = Matrix::<f64>::new(64, 64)?;
    extract_matrix(
        &mut corner,
        None,
        NOACC,
        g.a(),
        &IndexSel::List(sub.clone()),
        &IndexSel::List(sub),
        &Descriptor::default(),
    )?;
    let sub_g = Graph::new(corner, GraphKind::Undirected)?;
    let d = apsp(&sub_g)?;
    let diameter = d.iter().map(|(_, _, x)| x).fold(0.0f64, f64::max);
    println!("sub-map all-pairs: weighted diameter {diameter:.2}");
    Ok(())
}
