//! Serve a live graph under churn and scrape its own Prometheus
//! endpoint.
//!
//! Demonstrates the whole live-metrics loop in one process:
//!
//! 1. metrics on + a `/metrics` endpoint bound to an ephemeral port
//!    (production sets `GRAPHBLAS_METRICS_ADDR=host:port` instead);
//! 2. a [`GraphService`] draining a stream of edge updates into epochs
//!    while BFS/PageRank queries run against its snapshots — which feeds
//!    queue-depth/epoch-lag/resident-bytes gauges and per-algorithm
//!    latency histograms without any extra instrumentation;
//! 3. an HTTP `GET /metrics` against our own listener, printing the
//!    service and algorithm series a scraper would collect.
//!
//! Run with: `cargo run --release --example metrics_service`

use lagraph_suite::graphblas::metrics;
use lagraph_suite::lagraph::service::{GraphService, ServiceConfig};
use lagraph_suite::prelude::*;
use std::io::{Read as _, Write as _};

fn main() -> graphblas::Result<()> {
    metrics::set_enabled(true);
    let addr = metrics::serve("127.0.0.1:0").expect("bind metrics endpoint");
    println!("metrics endpoint: http://{addr}/metrics (and /healthz)");

    // A small random graph to serve.
    let n = 1 << 10;
    let adj = erdos_renyi_weighted(n, 8 * n, 1.0, 42)?;
    let g = Graph::new(adj, GraphKind::Directed)?;
    println!("serving: {n} vertices, {} edges", g.nedges());
    let service = GraphService::new(g, ServiceConfig::default()).expect("start service");

    // Churn: stream updates and run queries across several epochs.
    let mut state = 0xC0FFEEu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    for round in 0..5 {
        for _ in 0..2_000 {
            let (i, j) = (rng() % n, rng() % n);
            if rng() % 8 == 0 {
                service.delete_edge(i, j).expect("delete");
            } else {
                service.insert_edge(i, j, 1.0).expect("insert");
            }
        }
        let snap = service.flush().expect("flush");
        let levels = bfs_level(snap.graph(), rng() % n)?;
        let (_, iters) = pagerank(snap.graph(), &PageRankOptions::default())?;
        println!(
            "round {round}: epoch {} ({} edges, bfs reached {}, pagerank {iters} iters)",
            snap.epoch(),
            snap.nedges(),
            levels.nvals(),
        );
    }

    // Scrape ourselves, exactly as Prometheus would.
    let health = http_get(&addr.to_string(), "/healthz");
    assert_eq!(health.trim(), "ok", "readiness probe failed");
    let page = http_get(&addr.to_string(), "/metrics");
    assert!(page.contains("lagraph_service_epoch_lag_seconds"), "missing epoch lag");
    assert!(page.contains("lagraph_service_queue_depth{shard=\"0\"}"), "missing queue depth");
    assert!(page.contains("lagraph_service_resident_bytes"), "missing resident bytes");
    assert!(page.contains("graphblas_span_seconds_p99"), "missing per-algorithm p99");

    println!("\nscraped {} bytes; service + algorithm series:", page.len());
    for line in page.lines() {
        if line.starts_with("lagraph_service_")
            || (line.starts_with("graphblas_span_seconds_p99") && line.contains("algo"))
        {
            println!("  {line}");
        }
    }
    Ok(())
}

/// A minimal HTTP/1.1 GET, returning the response body.
fn http_get(addr: &str, path: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed response");
    assert!(head.starts_with("HTTP/1.1 200"), "unexpected status: {head}");
    body.to_string()
}
