//! Measure the `.lagc` compressed container against the in-memory CSR
//! footprint for a seeded RMAT graph — the storage-trajectory number CI
//! prints and archives per commit (DESIGN.md §13).
//!
//! Writes the container to the path given as the first argument (default
//! `lagc_size.lagc`), prints CSR resident bytes, compressed resident
//! bytes, and the on-disk size, then reloads the file (with checksum
//! verification) and asserts the round trip preserved the edge count and
//! stayed in the compressed form.
//!
//! Run with: `cargo run --release --example lagc_size -- out.lagc`

use lagraph_suite::lagraph::gen::{rmat_weighted, RmatConfig};
use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    let path = std::env::args().nth(1).unwrap_or_else(|| "lagc_size.lagc".into());
    let path = std::path::PathBuf::from(path);

    let cfg = RmatConfig { scale: 12, edge_factor: 8, ..RmatConfig::default() };
    let a = rmat_weighted(&cfg, 255)?;
    let nedges = a.nvals();
    let csr_bytes = a.memory_usage().total();

    let ioe = |e: std::io::Error| graphblas::Error::invalid(format!("{}: {e}", path.display()));
    a.write_lagc(&path).map_err(ioe)?;
    let disk = std::fs::metadata(&path).map_err(ioe)?.len();

    let back: Matrix<f64> = Matrix::read_lagc(&path, true).map_err(ioe)?;
    assert!(back.is_compressed(), "lagc load must publish the compressed form");
    assert_eq!(back.nvals(), nedges, "round trip changed the edge count");
    let compressed_bytes = back.memory_usage().total();

    println!("rmat scale {} (|E| = {nedges})", cfg.scale);
    println!(
        "  csr resident        {csr_bytes:>10} bytes  ({:.2} bytes/edge)",
        csr_bytes as f64 / nedges as f64
    );
    println!(
        "  compressed resident {compressed_bytes:>10} bytes  ({:.2} bytes/edge)",
        compressed_bytes as f64 / nedges as f64
    );
    println!(
        "  .lagc on disk       {disk:>10} bytes  ({:.2} bytes/edge) -> {}",
        disk as f64 / nedges as f64,
        path.display()
    );
    println!(
        "  ratio: compressed/csr = {:.2}x resident, {:.2}x on disk",
        compressed_bytes as f64 / csr_bytes as f64,
        disk as f64 / csr_bytes as f64
    );
    Ok(())
}
