//! Sparse deep neural network inference — the GraphChallenge SDNN
//! workload the paper's §V lists among the machine-learning algorithms a
//! GraphBLAS library should host: `Y ← ReLU(Y W + b)` across a stack of
//! sparse layers, entirely in sparse matrix algebra.
//!
//! Run with: `cargo run --release --example sparse_dnn`

use std::time::Instant;

use lagraph::dnn::synthetic_layers;
use lagraph_suite::prelude::*;

fn main() -> graphblas::Result<()> {
    let nneurons = 1024;
    let nlayers = 24;
    let nsamples = 256;

    // A RadiX-Net-like synthetic layer stack with a negative bias so weak
    // activations die out layer by layer.
    let layers = synthetic_layers(nneurons, nlayers, -0.05);
    let total_weights: usize = layers.iter().map(|l| l.weights.nvals()).sum();
    println!("network: {nlayers} layers × {nneurons} neurons, {total_weights} weights");

    // Sparse input batch: each sample activates a few neurons.
    let mut y0_tuples = Vec::new();
    for s in 0..nsamples {
        for k in 0..8 {
            y0_tuples.push((s, (s * 37 + k * 131) % nneurons, 1.0));
        }
    }
    let y0 = Matrix::from_tuples(nsamples, nneurons, y0_tuples, |a, _| a)?;
    println!("input batch: {} samples, {} activations", nsamples, y0.nvals());

    let t0 = Instant::now();
    let y = dnn_inference(&y0, &layers)?;
    let elapsed = t0.elapsed();
    let cats = dnn_categorize(&y)?;
    println!(
        "inference: {:?}; final activations {} ({}% dense), {} samples categorized positive",
        elapsed,
        y.nvals(),
        100 * y.nvals() / (nsamples * nneurons),
        cats.nvals()
    );

    // Sanity: activations are within [0, YMAX].
    for (_, _, x) in y.iter() {
        assert!((0.0..=lagraph::dnn::YMAX).contains(&x));
    }
    println!("all activations within [0, {}]", lagraph::dnn::YMAX);
    Ok(())
}
