//! # lagraph-suite — the LAGraph reproduction, end to end
//!
//! Umbrella crate re-exporting the three layers of the system described
//! in the paper's Fig. 1:
//!
//! * [`graphblas`] — the sparse-linear-algebra substrate (the GraphBLAS);
//! * [`lagraph`] — the collection of graph algorithms built on top of it;
//! * [`lagraph_io`] — I/O and graph-generation support utilities.
//!
//! ```
//! use lagraph_suite::prelude::*;
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected)
//!     .expect("valid graph");
//! let levels = bfs_level(&g, 0).expect("bfs");
//! assert_eq!(levels.get(3), Some(4));
//! ```

pub use graphblas;
pub use lagraph;
pub use lagraph_io;

/// One-stop imports for applications.
pub mod prelude {
    pub use graphblas::prelude::*;
    pub use lagraph::algorithms::*;
    pub use lagraph::graph::{Graph, GraphKind};
    pub use lagraph_io::*;
}
