//! Offline stand-in for the `rand` crate, covering the subset of the 0.8
//! API this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over half-open ranges.
//!
//! The generator is splitmix64 — statistically fine for graph generators
//! and tests, deterministic for a given seed, and dependency-free. It is
//! NOT the real `StdRng` stream, so seeds produce different (but equally
//! valid) graphs than upstream `rand` would.

use std::ops::Range;

/// Seedable pseudo-random generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution sampling for `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform sampling for `Rng::gen_range`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The user-facing generator trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let width = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Modulo bias is acceptable for this stand-in.
                range.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + f64::sample_standard(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + f32::sample_standard(rng) * (range.end - range.start)
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
            let w = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&w));
        }
    }
}
