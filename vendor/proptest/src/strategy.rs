//! Strategies: value generators parameterized by a deterministic RNG.
//! No shrinking — a failing case reports its inputs via `prop_assert!`
//! messages and the deterministic seed makes it reproducible.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(pub Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

/// `any::<T>()` (see [`crate::arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

/// Scalars that can be drawn uniformly from a half-open range.
pub trait RangeSample: Sized + PartialOrd {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self;
}

macro_rules! range_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
                let width = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                range.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
range_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl RangeSample for f64 {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
        range.start + rng.unit_f64() * (range.end - range.start)
    }
}

impl RangeSample for f32 {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
        range.start + rng.unit_f64() as f32 * (range.end - range.start)
    }
}

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "strategy range must be nonempty");
        T::sample(rng, self)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
