//! Test-runner support types: the deterministic RNG, the per-block
//! configuration, and the error type `prop_assert!` raises.

use std::fmt;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed test case (raised by `prop_assert!`, reported by `proptest!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
