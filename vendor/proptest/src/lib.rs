//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` with `pat in strategy` bindings and an optional
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range and tuple strategies,
//! `prop_map`, `proptest::collection::vec`, and `proptest::option::of`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs), there is no shrinking, and
//! `proptest-regressions` files are not replayed — regressions of interest
//! are promoted to named unit tests instead.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2000.0 - 1000.0
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<T>` from a strategy for `T`
    /// (roughly 25% `None`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a over a test name: the per-test base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The test-case driver macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        $crate::seed_of(concat!(module_path!(), "::", stringify!($name)))
                            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking
/// directly) so the driver can report which case failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
