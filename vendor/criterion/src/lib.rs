//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface our benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize` — with a simple
//! median-of-N wall-clock measurement instead of criterion's statistical
//! machinery. Good enough to keep `cargo bench` runnable and the numbers
//! comparable run-to-run on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Batch sizing hint for `iter_batched` (ignored by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs and times one benchmark's iterations.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                t0.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _c: self }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(None, self.sample_size, id.into(), f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(Some(&self.name), self.sample_size, id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(Some(&self.name), self.sample_size, id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: Option<&str>, samples: usize, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, median: Duration::ZERO };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    println!("{full:<56} median {}", fmt_dur(b.median));
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
