//! Offline stand-in for the `parking_lot` crate, implementing the subset of
//! its API this workspace uses on top of `std::sync`. The semantic
//! difference that matters here is that `parking_lot` locks do not poison:
//! we recover the guard from a poisoned std lock to preserve that behavior.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
