//! Integration tests for the sharded serving layer.
//!
//! The load-bearing property is *shard transparency*: because every
//! edge is routed to exactly one shard by a pure function of its
//! canonical key, replaying one update log across S ∈ {1, 2, 4} shards
//! (under any partitioner) must produce **bit-identical** published
//! matrices — and therefore bit-identical query results — with the
//! single-shard service as the oracle. On top of that sit the admission
//! guarantees: a k-wide batched multi-source BFS answers exactly like k
//! individual traversals, cached results never cross epochs, and a
//! failed shard drainer turns into errors, not hangs.

use std::sync::Arc;

use lagraph::service::{
    EdgeHash, GraphService, Grid2D, Partitioner, Query, ServiceConfig, ServiceError, Update,
};
use lagraph::{bfs_level, Graph, GraphKind, PageRankOptions};

const N: usize = 96;

/// Deterministic seed graph spanning all row/column blocks.
fn seed(kind: GraphKind) -> Graph {
    let edges: Vec<(usize, usize)> =
        (0..N).map(|i| (i, (i + 1) % N)).chain((0..N / 3).map(|i| (i, (i * 7 + 3) % N))).collect();
    Graph::from_edges(N, &edges, kind).expect("seed graph")
}

/// Tiny deterministic PRNG (xorshift64*) so every service replays the
/// *same* churn script.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A churn script: rounds of mixed inserts/deletes (self loops, repeated
/// edges, weight overwrites included), flushed between rounds.
fn churn_script(rounds: usize, per_round: usize) -> Vec<Vec<Update>> {
    let mut rng = Rng(0x9E37_79B9);
    (0..rounds)
        .map(|_| {
            (0..per_round)
                .map(|_| {
                    let i = (rng.next() % N as u64) as usize;
                    let j = (rng.next() % N as u64) as usize;
                    if rng.next().is_multiple_of(4) {
                        Update::Delete(i, j)
                    } else {
                        Update::Insert(i, j, (rng.next() % 1000) as f64 / 8.0)
                    }
                })
                .collect()
        })
        .collect()
}

/// The final published matrix as exact-bit tuples plus a BFS answer
/// through admission.
type ChurnResult = (Vec<(usize, usize, u64)>, Vec<(usize, i32)>);

/// Replay the script through a service and return what it published.
fn run_churn(
    kind: GraphKind,
    shards: usize,
    partitioner: Option<Arc<dyn Partitioner>>,
) -> ChurnResult {
    let s = GraphService::new(
        seed(kind),
        ServiceConfig { shards, partitioner, ..ServiceConfig::default() },
    )
    .expect("service");
    for round in churn_script(4, 200) {
        for u in &round {
            s.submit(*u).expect("submit");
        }
        s.flush().expect("flush");
    }
    let snap = s.flush().expect("final flush");
    let tuples = snap
        .graph()
        .a()
        .extract_tuples()
        .into_iter()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect();
    let levels =
        s.query(Query::bfs_level(0)).expect("query").levels().expect("bfs result").extract_tuples();
    (tuples, levels)
}

#[test]
fn shard_counts_are_bit_identical_to_single_shard_oracle() {
    for kind in [GraphKind::Directed, GraphKind::Undirected] {
        let oracle = run_churn(kind, 1, None);
        for shards in [2usize, 4] {
            let got = run_churn(kind, shards, None);
            assert_eq!(
                got.0, oracle.0,
                "{kind:?} S={shards} row-block: published matrix diverged from S=1 oracle"
            );
            assert_eq!(got.1, oracle.1, "{kind:?} S={shards}: BFS answer diverged");
        }
        // Partitioner choice is a routing policy, not a semantics knob.
        let grid: Option<Arc<dyn Partitioner>> = Some(Arc::new(Grid2D::new(N, 2, 2)));
        let got = run_churn(kind, 4, grid);
        assert_eq!(got.0, oracle.0, "{kind:?} Grid2D 2x2 diverged from S=1 oracle");
        let hashed: Option<Arc<dyn Partitioner>> = Some(Arc::new(EdgeHash::new(3)));
        let got = run_churn(kind, 3, hashed);
        assert_eq!(got.0, oracle.0, "{kind:?} EdgeHash(3) diverged from S=1 oracle");
    }
}

#[test]
fn batched_multi_source_bfs_matches_individual_queries() {
    let s = GraphService::new(
        seed(GraphKind::Undirected),
        ServiceConfig { shards: 4, ..ServiceConfig::default() },
    )
    .expect("service");
    // Duplicates included: they must share one traversal and one answer.
    let sources = [0usize, 5, 17, 5, 63, 95, 31, 0];
    let queries: Vec<Query> = sources.iter().map(|&k| Query::bfs_level(k)).collect();
    let batched = s.query_many(&queries).expect("batched queries");
    assert_eq!(batched.len(), sources.len());
    let snap = s.snapshot();
    for (&src, result) in sources.iter().zip(&batched) {
        let single = bfs_level(snap.graph(), src).expect("single-source oracle");
        assert_eq!(
            result.levels().expect("bfs result").extract_tuples(),
            single.extract_tuples(),
            "batched BFS from {src} diverged from the single-source run"
        );
    }
    let st = s.admission_stats();
    assert!(st.batches >= 1, "query_many must execute as a batch");
    assert!(
        st.batched_queries >= 6,
        "six unique sources should have been answered by a width ≥ 2 batch, got {st:?}"
    );
}

#[test]
fn concurrent_bfs_queries_are_correct_under_batching() {
    let s = GraphService::new(
        seed(GraphKind::Undirected),
        ServiceConfig { shards: 2, ..ServiceConfig::default() },
    )
    .expect("service");
    let oracle_snap = s.snapshot();
    let sources: Vec<usize> = (0..8).map(|k| k * 11 % N).collect();
    let results: Vec<(usize, Vec<(usize, i32)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter()
            .map(|&src| {
                let s = &s;
                scope.spawn(move || {
                    let r = s.query(Query::bfs_level(src)).expect("concurrent query");
                    (src, r.levels().expect("bfs result").extract_tuples())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query thread")).collect()
    });
    for (src, got) in results {
        let single = bfs_level(oracle_snap.graph(), src).expect("oracle");
        assert_eq!(got, single.extract_tuples(), "concurrent query from {src} diverged");
    }
    assert_eq!(s.admission_stats().queries, sources.len() as u64);
}

#[test]
fn cached_results_never_cross_epochs() {
    // Path 0-1-2-3: vertex 3 sits at BFS depth 4 from vertex 0.
    let g =
        Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("path graph");
    let s = GraphService::new(g, ServiceConfig::default()).expect("service");

    let r1 = s.query(Query::bfs_level(0)).expect("first query");
    assert_eq!(r1.levels().expect("levels").get(3), Some(4));
    let r2 = s.query(Query::bfs_level(0)).expect("repeat query");
    assert_eq!(r2.levels().expect("levels").get(3), Some(4));
    let st = s.admission_stats();
    assert_eq!((st.cache_hits, st.cache_misses), (1, 1), "repeat within epoch must be a hit");

    // Shortcut edge changes the answer; the epoch turn must invalidate.
    s.insert_edge(0, 3, 1.0).expect("insert");
    let snap = s.flush().expect("flush");
    assert!(snap.epoch() >= 1);
    let r3 = s.query(Query::bfs_level(0)).expect("post-epoch query");
    assert_eq!(
        r3.levels().expect("levels").get(3),
        Some(2),
        "stale cached result served across an epoch boundary"
    );
    let st = s.admission_stats();
    assert_eq!(st.cache_hits, 1, "post-epoch query must not hit the old epoch's cache");
    assert_eq!(st.cache_misses, 2);
}

#[test]
fn non_bfs_queries_cache_and_answer() {
    let s = GraphService::new(
        seed(GraphKind::Undirected),
        ServiceConfig { shards: 2, ..ServiceConfig::default() },
    )
    .expect("service");
    let opts = PageRankOptions::default();
    let r1 = s.query(Query::pagerank(&opts)).expect("pagerank");
    let (ranks, iters) = r1.ranks().expect("ranks result");
    assert!(iters >= 1);
    assert!((ranks.extract_tuples().iter().map(|&(_, v)| v).sum::<f64>() - 1.0).abs() < 1e-6);
    let r2 = s.query(Query::pagerank(&opts)).expect("pagerank repeat");
    assert!(r2.ranks().is_some());
    let tri = s.query(Query::triangle_count()).expect("triangles");
    assert!(tri.count().is_some());
    let st = s.admission_stats();
    assert!(st.cache_hits >= 1, "identical pagerank options must share a cache entry");
}

#[test]
fn drainer_failure_errors_instead_of_hanging() {
    let s = GraphService::new(
        seed(GraphKind::Directed),
        ServiceConfig { shards: 4, fail_epoch: Some(1), ..ServiceConfig::default() },
    )
    .expect("service");
    let pre = s.snapshot();
    s.insert_edge(1, 2, 1.0).expect("accepted before failure");
    match s.flush() {
        Err(ServiceError::DrainerFailed { shard, message }) => {
            assert_eq!(shard, 0);
            assert!(message.contains("injected"), "panic message lost: {message}");
        }
        other => panic!("flush must report the drainer failure, got {other:?}"),
    }
    assert!(matches!(s.insert_edge(3, 4, 1.0), Err(ServiceError::DrainerFailed { .. })));
    assert!(matches!(s.query(Query::bfs_level(0)), Err(ServiceError::DrainerFailed { .. })));
    assert!(matches!(
        s.query_many(&[Query::bfs_level(0)]),
        Err(ServiceError::DrainerFailed { .. })
    ));
    // The last good snapshot keeps serving raw reads for draining.
    let snap = s.snapshot();
    assert_eq!(snap.epoch(), pre.epoch());
    bfs_level(snap.graph(), 0).expect("raw reads still work");
}
