//! Integration tests for the service layer's SLO instrumentation: a
//! churning `GraphService` must surface queue depth, update/backpressure
//! counters, epoch progress, and resident-bytes gauges through
//! `graphblas::metrics`, and algorithm queries against its snapshots must
//! feed the per-algorithm latency histograms.
//!
//! The registry is process-wide and these series are shared by every
//! service, so the tests live in their own binary, serialize on
//! `GLOBALS`, and assert on snapshot deltas.

use graphblas::metrics;
use lagraph::service::{BackpressurePolicy, GraphService, Query, ServiceConfig, ViewsConfig};
use lagraph::{bfs_level, Graph, GraphKind};
use std::sync::Mutex;

static GLOBALS: Mutex<()> = Mutex::new(());

fn ring(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges, GraphKind::Directed).expect("ring graph")
}

/// `metrics::snapshot()` as a map, for delta assertions.
fn snap() -> std::collections::BTreeMap<String, f64> {
    metrics::snapshot().into_iter().collect()
}

fn delta(
    after: &std::collections::BTreeMap<String, f64>,
    before: &std::collections::BTreeMap<String, f64>,
    key: &str,
) -> f64 {
    after.get(key).copied().unwrap_or(0.0) - before.get(key).copied().unwrap_or(0.0)
}

#[test]
fn churning_service_populates_slo_series() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let prev = metrics::enabled();
    metrics::set_enabled(true);

    let before = snap();
    let n = 256;
    let s = GraphService::new(
        ring(n),
        ServiceConfig { shards: 4, queue_capacity: 4096, ..ServiceConfig::default() },
    )
    .expect("service");

    let mut submitted = 0u64;
    let mut last = None;
    for round in 0..3 {
        for k in 0..500usize {
            let (i, j) = ((k * 7 + round) % n, (k * 13 + 1) % n);
            if k % 9 == 0 {
                s.delete_edge(i, j).expect("delete");
            } else {
                s.insert_edge(i, j, 1.0).expect("insert");
            }
            submitted += 1;
        }
        last = Some(s.flush().expect("flush"));
    }
    let snapshot = last.expect("flushed at least once");
    bfs_level(snapshot.graph(), 0).expect("bfs");

    let after = snap();
    assert_eq!(
        delta(&after, &before, "lagraph_service_updates_total{result=\"submitted\"}"),
        submitted as f64,
        "every accepted submission must be counted"
    );
    assert_eq!(
        delta(&after, &before, "lagraph_service_updates_total{result=\"processed\"}"),
        submitted as f64,
        "after flush, every update must be processed"
    );
    assert!(
        after.get("lagraph_service_epoch").copied().unwrap_or(0.0) >= snapshot.epoch() as f64,
        "epoch gauge lags the published snapshot"
    );
    assert!(
        delta(&after, &before, "lagraph_service_epochs_total") >= 3.0,
        "three flushes must publish at least three epochs"
    );
    assert!(
        after.get("lagraph_service_resident_bytes{object=\"master\"}").copied().unwrap_or(0.0)
            > 0.0,
        "master resident bytes missing"
    );
    assert!(
        after.get("lagraph_service_resident_bytes{object=\"snapshot\"}").copied().unwrap_or(0.0)
            > 0.0,
        "snapshot resident bytes missing"
    );
    assert!(
        delta(&after, &before, "graphblas_span_seconds_count{cat=\"algo\",span=\"bfs.level\"}")
            >= 1.0,
        "algorithm query did not feed the latency histogram"
    );

    // The rendered page must carry the gauges the dashboards key on.
    let page = metrics::render();
    for family in [
        "lagraph_service_queue_depth{shard=\"0\"}",
        "lagraph_service_epoch_lag_seconds",
        "lagraph_service_batch_updates_count",
        "graphblas_span_seconds_p99",
    ] {
        assert!(page.contains(family), "render() lacks {family}");
    }

    // Dropping the service must retire its snapshot resident-bytes
    // callback (Weak upgrade fails → no sample), not report stale bytes.
    drop(snapshot);
    drop(s);
    assert!(
        !snap().contains_key("lagraph_service_resident_bytes{object=\"snapshot\"}"),
        "dropped service still reports snapshot bytes"
    );

    metrics::set_enabled(prev);
}

/// A minimal Prometheus text-format lint (mirror of the exposition lint
/// in the graphblas metrics tests): legal metric names, one TYPE line
/// per family, no duplicate series.
fn lint_exposition(page: &str) -> Result<(), String> {
    let name_ok = |name: &str| {
        !name.is_empty()
            && name.chars().enumerate().all(|(k, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (k > 0 && c.is_ascii_digit())
            })
    };
    let mut types = std::collections::HashSet::new();
    let mut series = std::collections::HashSet::new();
    for line in page.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let fam = rest.split_whitespace().next().unwrap_or("");
            if !name_ok(fam) {
                return Err(format!("bad family name in TYPE line: {line}"));
            }
            if !types.insert(fam.to_string()) {
                return Err(format!("duplicate TYPE line for {fam}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let key = line.rsplit_once(' ').map(|(k, _)| k).unwrap_or(line);
        let name = key.split('{').next().unwrap_or(key);
        if !name_ok(name) {
            return Err(format!("bad metric name: {line}"));
        }
        if !series.insert(key.to_string()) {
            return Err(format!("duplicate series: {key}"));
        }
    }
    Ok(())
}

#[test]
fn sharded_serving_series_render_clean() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let prev = metrics::enabled();
    metrics::set_enabled(true);

    let before = snap();
    let n = 128;
    let s = GraphService::new(
        ring(n),
        ServiceConfig { shards: 2, queue_capacity: 4096, ..ServiceConfig::default() },
    )
    .expect("service");
    // Rows on both halves, so both shard drainers replay updates under
    // the default row-block partitioner.
    for k in 0..64usize {
        s.insert_edge(k, (k + 3) % n, 1.0).expect("low rows");
        s.insert_edge(n - 1 - k, k, 1.0).expect("high rows");
    }
    s.flush().expect("flush");
    // Admission traffic: a miss, a hit, and a width-4 batch.
    s.query(Query::bfs_level(0)).expect("miss");
    s.query(Query::bfs_level(0)).expect("hit");
    let batch: Vec<Query> = (1..5).map(Query::bfs_level).collect();
    s.query_many(&batch).expect("batched queries");

    let after = snap();
    for shard in ["0", "1"] {
        let key = format!("lagraph_service_shard_processed_total{{shard=\"{shard}\"}}");
        assert!(
            delta(&after, &before, &key) > 0.0,
            "shard {shard} drainer processed nothing — per-shard series missing"
        );
    }
    assert!(
        delta(&after, &before, "lagraph_service_query_cache_total{result=\"hit\"}") >= 1.0,
        "cache hit not counted"
    );
    assert!(
        delta(&after, &before, "lagraph_service_query_cache_total{result=\"miss\"}") >= 5.0,
        "cache misses not counted"
    );
    assert!(
        delta(&after, &before, "lagraph_service_queries_total{algo=\"bfs_level\"}") >= 6.0,
        "per-algorithm query counter missing"
    );

    // The rendered page must carry the new sharded/admission series and
    // stay clean under the exposition lint.
    let page = metrics::render();
    for family in [
        "lagraph_service_shard_processed_total{shard=\"0\"}",
        "lagraph_service_shard_processed_total{shard=\"1\"}",
        "lagraph_service_queue_depth{shard=\"1\"}",
        "lagraph_service_batch_width_count",
        "lagraph_service_query_seconds_count",
        "lagraph_service_query_cache_total{result=\"hit\"}",
    ] {
        assert!(page.contains(family), "render() lacks {family}");
    }
    lint_exposition(&page).expect("sharded series break Prometheus exposition");

    drop(s);
    metrics::set_enabled(prev);
}

#[test]
fn view_repair_series_render_clean() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let prev = metrics::enabled();
    metrics::set_enabled(true);

    let before = snap();
    let n = 64;
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = Graph::from_edges(n, &edges, GraphKind::Undirected).expect("undirected ring");
    let s = GraphService::new(
        g,
        ServiceConfig {
            shards: 2,
            views: Some(ViewsConfig::default()),
            ..ServiceConfig::default()
        },
    )
    .expect("service with views");
    // Insert-only churn within the default staleness budget: every view
    // repairs in place, and the served queries hit the view table.
    for k in 0..24usize {
        s.insert_edge(k, (k + 5) % n, 1.0).expect("insert");
    }
    s.flush().expect("flush");
    s.query(Query::connected_components()).expect("cc");
    s.query(Query::degrees()).expect("degrees");
    s.query(Query::triangle_count()).expect("tricount");

    let after = snap();
    for view in ["cc", "degree", "tricount", "kcore", "pagerank"] {
        let key = format!("lagraph_service_view_refresh_total{{mode=\"repair\",view=\"{view}\"}}");
        assert!(
            delta(&after, &before, &key) >= 1.0,
            "insert-only epoch did not repair view {view} — {key} missing"
        );
        let rebuilt =
            format!("lagraph_service_view_refresh_total{{mode=\"rebuild\",view=\"{view}\"}}");
        assert_eq!(delta(&after, &before, &rebuilt), 0.0, "insert-only epoch rebuilt view {view}");
    }
    for view in ["cc", "degree", "tricount"] {
        let key = format!("lagraph_service_view_served_total{{view=\"{view}\"}}");
        assert!(delta(&after, &before, &key) >= 1.0, "view {view} served nothing — {key}");
    }
    assert!(
        delta(&after, &before, "lagraph_service_view_repair_seconds_count{view=\"cc\"}") >= 1.0,
        "repair latency histogram missing samples"
    );

    // The repair histograms publish percentile companions and the whole
    // family must render clean under the exposition lint.
    let page = metrics::render();
    for family in [
        "lagraph_service_view_refresh_total{mode=\"repair\",view=\"cc\"}",
        "lagraph_service_view_served_total{view=\"cc\"}",
        "lagraph_service_view_repair_seconds_count{view=\"cc\"}",
        "lagraph_service_view_repair_seconds_p50{view=\"cc\"}",
        "lagraph_service_view_repair_seconds_p95{view=\"cc\"}",
        "lagraph_service_view_repair_seconds_p99{view=\"cc\"}",
    ] {
        assert!(page.contains(family), "render() lacks {family}");
    }
    lint_exposition(&page).expect("view series break Prometheus exposition");

    drop(s);
    metrics::set_enabled(prev);
}

#[test]
fn reject_backpressure_is_counted_by_policy() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let prev = metrics::enabled();
    metrics::set_enabled(true);

    let before = snap();
    let s = GraphService::new(
        ring(64),
        ServiceConfig {
            shards: 1,
            queue_capacity: 8,
            policy: BackpressurePolicy::Reject,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let mut rejected = 0u64;
    for k in 0..512usize {
        if s.insert_edge(k % 64, (k + 1) % 64, 1.0).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "tiny queue never rejected — backpressure path untested");
    let after = snap();
    assert_eq!(
        delta(&after, &before, "lagraph_service_updates_total{result=\"rejected\"}"),
        rejected as f64
    );
    assert_eq!(
        delta(&after, &before, "lagraph_service_backpressure_total{policy=\"reject\"}"),
        rejected as f64
    );
    drop(s);
    metrics::set_enabled(prev);
}
