//! Integration tests for `lagraph::service`: snapshot isolation, epoch
//! consistency under churn, backpressure behaviour, and end-state
//! determinism against a directly-constructed oracle.

use lagraph::service::{BackpressurePolicy, GraphService, ServiceConfig, ServiceError, Update};
use lagraph::{
    bfs_level, pagerank, triangle_count, Graph, GraphKind, PageRankOptions, TriCountMethod,
};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

fn ring(n: usize, kind: GraphKind) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges, kind).expect("ring graph")
}

#[test]
fn snapshot_epoch_stays_consistent_during_assembly() {
    // Readers grabbing snapshots while the drainer churns through epochs
    // must always see (epoch tag, graph epoch, edge count) agree — a torn
    // publish would break one of these invariants.
    let s = Arc::new(
        GraphService::new(
            ring(128, GraphKind::Directed),
            ServiceConfig { shards: 4, queue_capacity: 64, ..ServiceConfig::default() },
        )
        .expect("service"),
    );
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for r in 0..3 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last_epoch = 0;
                while !stop.load(SeqCst) {
                    let snap = s.snapshot();
                    assert_eq!(
                        snap.epoch(),
                        snap.graph().epoch(),
                        "snapshot tag disagrees with the graph it wraps"
                    );
                    assert_eq!(
                        snap.nedges(),
                        snap.graph().a().nvals(),
                        "published edge count disagrees with the matrix"
                    );
                    assert!(snap.epoch() >= last_epoch, "epochs went backwards");
                    last_epoch = snap.epoch();
                    // Run a real query against every few snapshots so the
                    // cached-property paths race with publication too.
                    if r == 0 {
                        let levels = bfs_level(snap.graph(), 0).expect("bfs under churn");
                        assert!(levels.get(0).is_some());
                    }
                }
            });
        }
        let s2 = Arc::clone(&s);
        let stop2 = Arc::clone(&stop);
        scope.spawn(move || {
            for k in 0..2_000u64 {
                let (i, j) = ((k * 7 % 128) as usize, (k * 13 % 128) as usize);
                if k % 4 == 3 {
                    let _ = s2.delete_edge(i, j);
                } else {
                    s2.insert_edge(i, j, 1.0).expect("insert");
                }
                if k % 256 == 255 {
                    s2.flush().expect("flush");
                }
            }
            s2.flush().expect("final flush");
            stop2.store(true, SeqCst);
        });
    });

    assert!(s.snapshot().epoch() >= 1, "churn never published an epoch");
}

#[test]
fn flushed_state_matches_direct_construction() {
    // Stream a scripted update set through the service, then compare the
    // final adjacency matrix bit-for-bit with a graph built directly from
    // the surviving edges.
    let n = 64;
    let s = GraphService::new(
        Graph::from_edges(n, &[], GraphKind::Directed).expect("empty"),
        ServiceConfig::default(),
    )
    .expect("service");

    let mut survivors: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for k in 0..1_500usize {
        let (i, j) = (k * 31 % n, k * 17 % n);
        if k % 6 == 5 {
            s.submit(Update::Delete(i, j)).expect("delete");
            survivors.remove(&(i, j));
        } else {
            let w = k as f64;
            s.submit(Update::Insert(i, j, w)).expect("insert");
            survivors.insert((i, j), w);
        }
    }
    let snap = s.flush().expect("flush");

    let oracle = {
        let mut m = graphblas::Matrix::<f64>::new(n, n).expect("oracle");
        for (&(i, j), &w) in &survivors {
            m.set_element(i, j, w).expect("set");
        }
        m.wait();
        m
    };
    assert_eq!(snap.graph().a().extract_tuples(), oracle.extract_tuples());
    assert_eq!(snap.nedges(), survivors.len());
}

#[test]
fn block_policy_applies_every_update_under_pressure() {
    // Tiny queues + many writers: Block must convert overload into writer
    // latency without dropping anything.
    let n = 32;
    let s = Arc::new(
        GraphService::new(
            Graph::from_edges(n, &[], GraphKind::Directed).expect("empty"),
            ServiceConfig {
                shards: 2,
                queue_capacity: 8,
                policy: BackpressurePolicy::Block,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );
    let writers = 8;
    let per_writer = 500;
    std::thread::scope(|scope| {
        for t in 0..writers {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for k in 0..per_writer {
                    // Disjoint coordinates per writer: row stripe by thread.
                    let (i, j) = (t, (t * per_writer + k) % n);
                    s.insert_edge(i, j, (k + 1) as f64).expect("blocked insert");
                }
            });
        }
    });
    let snap = s.flush().expect("flush");
    let stats = s.stats();
    assert_eq!(stats.submitted, (writers * per_writer) as u64);
    assert_eq!(stats.processed, stats.submitted, "updates lost under backpressure");
    assert_eq!(stats.queue_depth, 0);
    // Each writer covered all 32 columns of its row many times over.
    assert_eq!(snap.graph().a().nvals(), writers * n);
}

#[test]
fn reject_policy_surfaces_backpressure_not_panics() {
    let s = GraphService::new(
        ring(16, GraphKind::Directed),
        ServiceConfig {
            shards: 1,
            queue_capacity: 2,
            policy: BackpressurePolicy::Reject,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let mut accepted = 0u64;
    for k in 0..10_000u64 {
        match s.insert_edge((k % 16) as usize, ((k + 3) % 16) as usize, 1.0) {
            Ok(()) => accepted += 1,
            Err(ServiceError::Backpressure { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(accepted > 0, "nothing was accepted");
    let snap = s.flush().expect("flush");
    let st = s.stats();
    assert_eq!(st.processed, accepted);
    assert_eq!(st.rejected, 10_000 - accepted);
    assert!(snap.graph().a().nvals() >= 16);
}

#[test]
fn algorithm_suite_runs_on_churning_undirected_graph() {
    // PageRank + triangle count + BFS all run against snapshots while the
    // writer keeps mutating; every query sees a complete, assembled graph.
    let n = 96;
    let s = Arc::new(
        GraphService::new(ring(n, GraphKind::Undirected), ServiceConfig::default())
            .expect("service"),
    );
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let sw = Arc::clone(&s);
        let stop_w = Arc::clone(&stop);
        scope.spawn(move || {
            for k in 0..1_200u64 {
                let (i, j) = ((k * 5 % n as u64) as usize, (k * 11 % n as u64) as usize);
                if i != j {
                    sw.insert_edge(i, j, 1.0).expect("insert");
                }
                if k % 100 == 99 {
                    sw.flush().expect("flush");
                }
            }
            stop_w.store(true, SeqCst);
        });
        for _ in 0..2 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(SeqCst) {
                    let snap = s.snapshot();
                    let g = snap.graph();
                    // Undirected invariant: the adjacency matrix a snapshot
                    // serves is symmetric — no half-mirrored edges, ever.
                    let a = g.a();
                    for (i, j, v) in a.extract_tuples() {
                        assert_eq!(a.get(j, i), Some(v), "asymmetric snapshot at ({i},{j})");
                    }
                    let (pr, _) = pagerank(g, &PageRankOptions::default()).expect("pagerank");
                    assert!(pr.get(0).is_some());
                    let tri = triangle_count(g, TriCountMethod::Sandia).expect("tricount");
                    let _ = tri;
                    let lv = bfs_level(g, 0).expect("bfs");
                    assert!(lv.get(0).is_some());
                }
            });
        }
    });
}

#[test]
fn shutdown_publishes_final_epoch_and_refuses_new_work() {
    let mut s =
        GraphService::new(ring(8, GraphKind::Directed), ServiceConfig::default()).expect("service");
    s.insert_edge(0, 5, 2.0).expect("insert");
    let last = s.shutdown();
    assert_eq!(last.graph().a().get(0, 5), Some(2.0), "shutdown dropped queued work");
    assert!(matches!(s.insert_edge(1, 2, 1.0), Err(ServiceError::ShutDown)));
    assert!(matches!(s.flush(), Err(ServiceError::ShutDown)));
}
