//! Determinism and distribution tests for the seeded workload
//! generators (`lagraph::gen`).
//!
//! The headline guarantee under test: the generated matrix is a pure
//! function of `(workload, scale, edge_factor, seed)` — **independent of
//! the thread count**. The tests force the parallel path on small inputs
//! by lowering the pool's work threshold, then generate each workload
//! under 1 thread and under 8 and assert the extracted tuple lists are
//! bit-identical.

use lagraph::gen::{
    erdos_renyi, erdos_renyi_weighted, rmat, rmat_weighted, uniform_degree,
    uniform_degree_undirected, RmatConfig, Workload,
};

/// Run `f` with the pool forced into parallel mode (threshold 1) at the
/// given thread override, restoring both globals afterwards. The globals
/// are process-wide, so everything funnels through one mutex.
fn with_threads<R>(nthreads: usize, f: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    graphblas::parallel::set_par_threshold(1);
    graphblas::parallel::set_threads(nthreads);
    let r = f();
    graphblas::parallel::set_threads(0);
    graphblas::parallel::set_par_threshold(0);
    r
}

/// Assert `gen()` produces bit-identical tuples on 1 thread and on 8.
fn assert_thread_independent<T: PartialEq + std::fmt::Debug + Copy>(
    label: &str,
    gen: impl Fn() -> Vec<(usize, usize, T)>,
) {
    let seq = with_threads(1, &gen);
    let par = with_threads(8, &gen);
    assert!(!seq.is_empty(), "{label}: generator produced an empty graph");
    assert_eq!(seq, par, "{label}: tuples differ between 1 and 8 threads");
}

#[test]
fn rmat_is_thread_count_independent() {
    let cfg = RmatConfig { scale: 8, edge_factor: 8, seed: 7, ..Default::default() };
    assert_thread_independent("rmat", || rmat(&cfg).expect("rmat").extract_tuples());
}

#[test]
fn rmat_weighted_is_thread_count_independent() {
    let cfg = RmatConfig { scale: 8, edge_factor: 8, seed: 7, ..Default::default() };
    // f64 equality is exact here: identical draws produce identical bits.
    assert_thread_independent("rmat_weighted", || {
        rmat_weighted(&cfg, 255)
            .expect("rmat_weighted")
            .extract_tuples()
            .into_iter()
            .map(|(i, j, w)| (i, j, w.to_bits()))
            .collect()
    });
}

#[test]
fn erdos_renyi_is_thread_count_independent() {
    assert_thread_independent("erdos_renyi", || {
        erdos_renyi(256, 2048, 11).expect("er").extract_tuples()
    });
    assert_thread_independent("erdos_renyi_weighted", || {
        erdos_renyi_weighted(256, 2048, 100, 11)
            .expect("er weighted")
            .extract_tuples()
            .into_iter()
            .map(|(i, j, w)| (i, j, w.to_bits()))
            .collect()
    });
}

#[test]
fn uniform_degree_is_thread_count_independent() {
    assert_thread_independent("uniform_degree", || {
        uniform_degree(300, 9, 3).expect("uniform").extract_tuples()
    });
    assert_thread_independent("uniform_degree_undirected", || {
        uniform_degree_undirected(300, 9, 3).expect("uniform undirected").extract_tuples()
    });
}

#[test]
fn workloads_are_thread_count_independent() {
    for w in [Workload::Rmat, Workload::ErdosRenyi, Workload::UniformDegree] {
        assert_thread_independent(w.name(), || {
            w.weighted(8, 8, 42, 64)
                .expect("workload")
                .extract_tuples()
                .into_iter()
                .map(|(i, j, x)| (i, j, x.to_bits()))
                .collect()
        });
    }
}

/// RMAT with Graph500 parameters must be skewed: the hub degree far
/// exceeds the average, unlike the flat uniform-degree control.
#[test]
fn rmat_degree_distribution_is_skewed() {
    let cfg = RmatConfig { scale: 10, edge_factor: 16, seed: 42, ..Default::default() };
    let a = rmat(&cfg).expect("rmat");
    let n = a.nrows();
    let mut deg = vec![0usize; n];
    for (i, _, _) in a.iter() {
        deg[i] += 1;
    }
    let max = *deg.iter().max().expect("nonempty");
    let avg = a.nvals() as f64 / n as f64;
    assert!(max as f64 > 4.0 * avg, "rmat should be skewed: max degree {max} vs average {avg:.1}");
    // The control case stays flat: mirrored d-regular degrees land in a
    // narrow band around 2d rather than growing hubs.
    let u = uniform_degree_undirected(n, 16, 42).expect("uniform");
    let mut udeg = vec![0usize; n];
    for (i, _, _) in u.iter() {
        udeg[i] += 1;
    }
    let umax = *udeg.iter().max().expect("nonempty");
    let uavg = u.nvals() as f64 / n as f64;
    assert!(
        (umax as f64) < 2.0 * uavg,
        "uniform-degree control should be flat: max {umax} vs average {uavg:.1}"
    );
}

/// Changing the seed changes the graph (the streams actually consume it).
#[test]
fn different_seeds_differ() {
    let a = rmat(&RmatConfig { scale: 8, edge_factor: 8, seed: 1, ..Default::default() })
        .expect("rmat a")
        .extract_tuples();
    let b = rmat(&RmatConfig { scale: 8, edge_factor: 8, seed: 2, ..Default::default() })
        .expect("rmat b")
        .extract_tuples();
    assert_ne!(a, b);
}
