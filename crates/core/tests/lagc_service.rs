//! Service reload from the `.lagc` compressed container.
//!
//! The acceptance bar for the mmap-backed storage form: a service
//! replica that starts from a `.lagc` file must publish a queryable
//! snapshot *without* a full assembly pass — the load is O(1) in the
//! edge count, and queries decode rows on the fly. This lives in its
//! own integration-test binary because it turns on the global trace
//! ring to prove the absence of `assemble.matrix` spans; sharing a
//! binary with other tests would let their assemblies pollute the ring.

use graphblas::{trace, Matrix};
use lagraph::service::{GraphService, ServiceConfig};
use lagraph::{Graph, GraphKind};

#[test]
fn lagc_reload_publishes_snapshot_without_assembly() {
    let dir = std::env::temp_dir().join(format!("lagc_svc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("graph.lagc");

    // A small deterministic directed graph, written out compressed.
    let n = 64usize;
    let tuples: Vec<(usize, usize, f64)> =
        (0..600).map(|k| ((k * 31) % n, (k * 17 + 3) % n, 1.0)).collect();
    let m = Matrix::from_tuples(n, n, tuples, |_, b| b).expect("build");
    let nedges = m.nvals();
    m.write_lagc(&path).expect("write lagc");

    trace::enable();
    trace::clear();

    // Reload: mmap-backed, straight into the compressed storage form.
    let g = Graph::from_lagc(&path, GraphKind::Directed).expect("reload");
    assert!(g.a().is_compressed(), "lagc reload must publish the compressed form");
    assert_eq!(g.nedges(), nedges);

    // Serve it and run a real query against the published snapshot.
    let mut svc = GraphService::new(g, ServiceConfig::default()).expect("service");
    let snap = svc.snapshot();
    assert_eq!(snap.nedges(), nedges);
    let deg = snap.graph().out_degree().expect("degree query");
    let total: i64 = (0..n).filter_map(|i| deg.get(i)).sum();
    assert_eq!(total as usize, nedges);

    let events = trace::drain();
    trace::disable();
    svc.shutdown();
    std::fs::remove_file(&path).ok();

    let assemblies: Vec<_> = events.iter().filter(|e| e.name == "assemble.matrix").collect();
    assert!(
        assemblies.is_empty(),
        "lagc reload must not assemble (found {} assemble.matrix spans)",
        assemblies.len()
    );
}
