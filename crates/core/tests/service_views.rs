//! Differential tests for the materialized analytic views.
//!
//! The honesty property: after *every* epoch of a long churn script, a
//! view must answer exactly what a from-scratch run of its algorithm on
//! the published snapshot would — bit-for-bit for the discrete views
//! (components, degrees, triangle count, core numbers), within the
//! convergence tolerance for warm-restarted PageRank (and bit-for-bit
//! for PageRank too when `staleness = 0` forces cold rebuilds). The
//! scripts replay three workload mixes (insert-only, delete-heavy,
//! mixed) of 800 updates each across S ∈ {1, 2, 4} shards, so the
//! repair rules are exercised against both the sharded delta
//! concatenation and the single-shard baseline.

use std::collections::BTreeSet;

use lagraph::service::{
    GraphService, Query, ServiceConfig, ServiceError, Update, ViewKind, ViewsConfig,
};
use lagraph::{
    connected_components, core_numbers, pagerank, triangle_count, Graph, GraphKind,
    PageRankOptions, TriCountMethod,
};

const N: usize = 64;
const ROUNDS: usize = 8;
const PER_ROUND: usize = 100;

/// Deterministic seed graph: a ring plus chords, no self-loops.
fn seed_graph() -> Graph {
    let edges: Vec<(usize, usize)> = (0..N)
        .map(|i| (i, (i + 1) % N))
        .chain((0..N / 4).map(|i| (i, (i * 5 + 2) % N)).filter(|&(i, j)| i != j))
        .collect();
    Graph::from_edges(N, &edges, GraphKind::Undirected).expect("seed graph")
}

/// Tiny deterministic PRNG (xorshift64*).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Clone, Copy)]
enum Mix {
    InsertOnly,
    DeleteHeavy,
    Mixed,
}

/// Generate a churn script for one workload mix. Deletes are drawn from
/// a tracked mirror of the live edge set so they mostly hit real edges
/// (exercising splits), with no self-loops anywhere. The script is a
/// pure function of the mix, so every shard count replays the same one.
fn script(mix: Mix) -> Vec<Vec<Update>> {
    let mut rng = Rng(0xA5A5_1234_5678_9ABC);
    let mut present: BTreeSet<(usize, usize)> = BTreeSet::new();
    for i in 0..N {
        let j = (i + 1) % N;
        present.insert((i.min(j), i.max(j)));
    }
    for i in 0..N / 4 {
        let j = (i * 5 + 2) % N;
        if i != j {
            present.insert((i.min(j), i.max(j)));
        }
    }
    let delete_cut = match mix {
        Mix::InsertOnly => 0,
        Mix::DeleteHeavy => 10,
        Mix::Mixed => 4,
    };
    (0..ROUNDS)
        .map(|_| {
            (0..PER_ROUND)
                .map(|_| {
                    if (rng.next() % 16) < delete_cut && !present.is_empty() {
                        let idx = (rng.next() as usize) % present.len();
                        let &(i, j) = present.iter().nth(idx).expect("indexed edge");
                        present.remove(&(i, j));
                        Update::Delete(i, j)
                    } else {
                        let i = (rng.next() as usize) % N;
                        let mut j = (rng.next() as usize) % N;
                        if i == j {
                            j = (j + 1) % N;
                        }
                        present.insert((i.min(j), i.max(j)));
                        Update::Insert(i, j, (rng.next() % 1000) as f64 / 8.0)
                    }
                })
                .collect()
        })
        .collect()
}

/// Compare every view against its from-scratch oracle at the service's
/// current epoch. `bitwise_pagerank` is set for `staleness = 0` runs,
/// where the view is rebuilt cold and must match the oracle exactly.
fn check_epoch(s: &GraphService, label: &str, bitwise_pagerank: bool) {
    let snap = s.snapshot();
    let g = snap.graph();
    let epoch = snap.epoch();

    let cc = s.query(Query::connected_components()).expect("cc query");
    let cc_oracle = connected_components(g).expect("cc oracle");
    assert_eq!(
        cc.components().expect("components result").extract_tuples(),
        cc_oracle.extract_tuples(),
        "{label} epoch {epoch}: connected-components view diverged from oracle"
    );

    let deg = s.query(Query::degrees()).expect("degree query");
    let deg_oracle = g.out_degree().expect("degree oracle");
    assert_eq!(
        deg.degrees().expect("degrees result").extract_tuples(),
        deg_oracle.extract_tuples(),
        "{label} epoch {epoch}: degree view diverged from oracle"
    );

    let tri = s.query(Query::triangle_count()).expect("tricount query");
    let tri_oracle = triangle_count(g, TriCountMethod::Sandia).expect("tricount oracle");
    assert_eq!(
        tri.count().expect("count result"),
        tri_oracle,
        "{label} epoch {epoch}: triangle-count view diverged from oracle"
    );

    let cores = s.query(Query::core_numbers()).expect("kcore query");
    let cores_oracle = core_numbers(g).expect("kcore oracle");
    assert_eq!(
        cores.cores().expect("cores result").extract_tuples(),
        cores_oracle.extract_tuples(),
        "{label} epoch {epoch}: core-numbers view diverged from oracle"
    );

    let opts = PageRankOptions::default();
    let pr = s.query(Query::pagerank(&opts)).expect("pagerank query");
    let (ranks, _) = pr.ranks().expect("ranks result");
    let (pr_oracle, _) = pagerank(g, &opts).expect("pagerank oracle");
    if bitwise_pagerank {
        let got: Vec<(usize, u64)> =
            ranks.extract_tuples().into_iter().map(|(i, v)| (i, v.to_bits())).collect();
        let want: Vec<(usize, u64)> =
            pr_oracle.extract_tuples().into_iter().map(|(i, v)| (i, v.to_bits())).collect();
        assert_eq!(got, want, "{label} epoch {epoch}: cold-rebuilt pagerank must be bit-identical");
    } else {
        for v in 0..N {
            let a = ranks.get(v).unwrap_or(0.0);
            let b = pr_oracle.get(v).unwrap_or(0.0);
            assert!(
                (a - b).abs() < 1e-6,
                "{label} epoch {epoch}: pagerank view diverged at vertex {v}: {a} vs {b}"
            );
        }
    }
}

fn view_service(shards: usize, staleness: usize) -> GraphService {
    GraphService::new(
        seed_graph(),
        ServiceConfig {
            shards,
            views: Some(ViewsConfig { staleness, ..ViewsConfig::default() }),
            ..ServiceConfig::default()
        },
    )
    .expect("service with views")
}

/// Replay one script, checking every epoch differentially; returns the
/// service for stats assertions.
fn run_differential(mix: Mix, shards: usize, staleness: usize, label: &str) -> GraphService {
    let s = view_service(shards, staleness);
    check_epoch(&s, label, staleness == 0); // registration itself, at epoch 0
    for round in script(mix) {
        for u in &round {
            s.submit(*u).expect("submit");
        }
        s.flush().expect("flush");
        check_epoch(&s, label, staleness == 0);
    }
    // Every check above must have been answered by the view, not the
    // fallback kernel: 5 view-servable queries per checked epoch.
    let st = s.admission_stats();
    assert_eq!(
        st.view_hits,
        5 * (ROUNDS as u64 + 1),
        "{label}: some queries fell through to the kernel instead of the view"
    );
    s
}

fn stat_of(s: &GraphService, view: ViewKind) -> (u64, u64) {
    let st = s.view_stats().into_iter().find(|v| v.view == view).expect("registered view");
    (st.repairs, st.rebuilds)
}

#[test]
fn insert_only_views_track_oracle_and_repair() {
    for shards in [1usize, 2, 4] {
        let label = format!("insert-only S={shards}");
        let s = run_differential(Mix::InsertOnly, shards, 4096, &label);
        // Insert-only churn within budget: every epoch repairs, nothing
        // rebuilds — for every view including core numbers.
        for k in ViewKind::ALL {
            let (repairs, rebuilds) = stat_of(&s, k);
            assert!(repairs >= ROUNDS as u64, "{label}: {k:?} repaired only {repairs} epochs");
            assert_eq!(rebuilds, 0, "{label}: {k:?} fell back to rebuild on insert-only churn");
        }
    }
}

#[test]
fn delete_heavy_views_track_oracle() {
    for shards in [1usize, 2, 4] {
        let label = format!("delete-heavy S={shards}");
        let s = run_differential(Mix::DeleteHeavy, shards, 4096, &label);
        // Deletes have no local core-number rule, so that one view
        // rebuilds; everything else still repairs in place.
        for k in [ViewKind::ConnectedComponents, ViewKind::DegreeCounts, ViewKind::TriangleCount] {
            let (repairs, rebuilds) = stat_of(&s, k);
            assert!(repairs >= ROUNDS as u64, "{label}: {k:?} repaired only {repairs} epochs");
            assert_eq!(rebuilds, 0, "{label}: {k:?} rebuilt under delete-heavy churn");
        }
        let (_, kcore_rebuilds) = stat_of(&s, ViewKind::CoreNumbers);
        assert!(kcore_rebuilds >= 1, "{label}: deletes must force core-number rebuilds");
    }
}

#[test]
fn mixed_views_track_oracle() {
    for shards in [1usize, 2, 4] {
        let label = format!("mixed S={shards}");
        run_differential(Mix::Mixed, shards, 4096, &label);
    }
}

#[test]
fn zero_staleness_budget_rebuilds_bit_for_bit() {
    // staleness = 0: every epoch exceeds the repair budget, so every
    // view (PageRank included) is recomputed cold — the fully
    // bit-for-bit reproducible mode.
    let s = run_differential(Mix::Mixed, 2, 0, "staleness=0 S=2");
    for k in ViewKind::ALL {
        let (repairs, rebuilds) = stat_of(&s, k);
        assert_eq!(repairs, 0, "staleness=0: {k:?} must never repair");
        assert!(rebuilds >= ROUNDS as u64, "staleness=0: {k:?} rebuilt only {rebuilds} epochs");
    }
}

#[test]
fn views_registered_mid_stream_catch_up() {
    // No views at construction; register after churn has advanced the
    // epoch, then keep churning — the views must still track the oracle.
    let s =
        GraphService::new(seed_graph(), ServiceConfig { shards: 2, ..ServiceConfig::default() })
            .expect("service");
    let rounds = script(Mix::Mixed);
    for round in &rounds[..2] {
        for u in round {
            s.submit(*u).expect("submit");
        }
        s.flush().expect("flush");
    }
    for k in ViewKind::ALL {
        s.register_view(k).expect("register mid-stream");
    }
    for round in &rounds[2..4] {
        for u in round {
            s.submit(*u).expect("submit");
        }
        s.flush().expect("flush");
        check_epoch(&s, "mid-stream registration", false);
    }
}

#[test]
fn undirected_only_views_error_on_directed_graphs() {
    let g = Graph::from_edges(16, &[(0, 1), (1, 2)], GraphKind::Directed).expect("graph");
    let s = GraphService::new(g, ServiceConfig::default()).expect("service");
    for k in [ViewKind::ConnectedComponents, ViewKind::TriangleCount, ViewKind::CoreNumbers] {
        assert!(
            matches!(s.register_view(k), Err(ServiceError::Graph(_))),
            "{k:?} must be rejected on a directed graph"
        );
    }
    s.register_view(ViewKind::PageRank).expect("pagerank is direction-agnostic");
    s.register_view(ViewKind::DegreeCounts).expect("out-degree is direction-agnostic");
    s.insert_edge(3, 4, 1.0).expect("insert");
    s.flush().expect("flush");
    let deg = s.query(Query::degrees()).expect("degree query");
    assert_eq!(
        deg.degrees().expect("degrees").extract_tuples(),
        s.snapshot().graph().out_degree().expect("oracle").extract_tuples(),
        "directed degree view diverged"
    );
    assert!(s.admission_stats().view_hits >= 1);
}

#[test]
fn views_keep_serving_last_good_epoch_after_drainer_failure() {
    let s = GraphService::new(
        seed_graph(),
        ServiceConfig {
            shards: 2,
            views: Some(ViewsConfig::default()),
            fail_epoch: Some(1),
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let pre = s.snapshot();
    let cc_before = s
        .query(Query::connected_components())
        .expect("cc at epoch 0")
        .components()
        .expect("components")
        .extract_tuples();
    s.insert_edge(1, 3, 1.0).expect("accepted before the failure");
    assert!(
        matches!(s.flush(), Err(ServiceError::DrainerFailed { .. })),
        "flush must surface the injected drainer failure"
    );
    // The snapshot froze at the last good epoch — and so did the views:
    // view-served queries keep answering (like raw snapshot reads),
    // while everything else still errors instead of hanging.
    assert_eq!(s.snapshot().epoch(), pre.epoch());
    let cc_after = s
        .query(Query::connected_components())
        .expect("view keeps serving after failure")
        .components()
        .expect("components")
        .extract_tuples();
    assert_eq!(cc_after, cc_before, "view answer changed after a failed epoch");
    assert_eq!(
        cc_after,
        connected_components(pre.graph()).expect("oracle").extract_tuples(),
        "view diverged from the last good snapshot"
    );
    assert!(matches!(s.query(Query::bfs_level(0)), Err(ServiceError::DrainerFailed { .. })));
}
