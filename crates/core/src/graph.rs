//! The LAGraph `Graph` object: an adjacency matrix plus cached derived
//! properties (transpose, structure, degrees), so algorithms don't
//! recompute them — the design the LAGraph project adopted so a graph can
//! flow through a processing pipeline (§IV of the paper).

use graphblas::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// Whether the adjacency matrix is to be interpreted as directed (an edge
/// `(i, j)` is the arc `i → j`) or undirected (the matrix is symmetric by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Adjacency of a directed graph.
    Directed,
    /// Adjacency of an undirected graph; `A` must be structurally
    /// symmetric (checked by [`Graph::check`]).
    Undirected,
}

#[derive(Default)]
struct Cached {
    at: Option<Arc<Matrix<f64>>>,
    structure: Option<Arc<Matrix<bool>>>,
    out_degree: Option<Arc<Vector<i64>>>,
    in_degree: Option<Arc<Vector<i64>>>,
    nself_edges: Option<usize>,
}

/// A graph: adjacency matrix, kind, and lazily cached properties.
///
/// # Cached properties
///
/// The transpose, Boolean structure, degree vectors, and self-edge count
/// are computed on first use and memoized behind a lock, so a graph can
/// flow through a pipeline of algorithms without recomputing them:
///
/// ```
/// use lagraph::{Graph, GraphKind};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Directed)?;
/// let at = g.at()?;                       // computes Aᵀ, caches it
/// assert!(std::sync::Arc::ptr_eq(&at, &g.at()?)); // second call: cache hit
/// assert_eq!(g.out_degree()?.get(0), Some(1));
/// assert_eq!(g.in_degree()?.get(0), None); // vertex 0 has no in-edges
/// # Ok::<(), graphblas::Error>(())
/// ```
///
/// The getters are fallible: a cache miss runs real GraphBLAS operations
/// (transpose, reduce), and any error propagates to the caller instead of
/// panicking while the cache lock is held.
pub struct Graph {
    /// The adjacency matrix; `A(i, j)` is the weight of edge `i → j`.
    a: Matrix<f64>,
    kind: GraphKind,
    cache: Mutex<Cached>,
    /// Monotone modification tag: bumped whenever the adjacency (and so
    /// every cached property) changes. The service layer stamps each
    /// published snapshot with its epoch.
    epoch: u64,
}

impl Graph {
    /// Wrap an adjacency matrix. The matrix must be square.
    pub fn new(a: Matrix<f64>, kind: GraphKind) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(Error::dim(format!(
                "adjacency matrix must be square, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        Ok(Graph { a, kind, cache: Mutex::new(Cached::default()), epoch: 0 })
    }

    /// Build an unweighted graph from an edge list (weights set to 1).
    /// For [`GraphKind::Undirected`], each edge is mirrored.
    pub fn from_edges(n: Index, edges: &[(Index, Index)], kind: GraphKind) -> Result<Self> {
        let mut tuples = Vec::with_capacity(edges.len() * 2);
        for &(i, j) in edges {
            tuples.push((i, j, 1.0));
            if kind == GraphKind::Undirected && i != j {
                tuples.push((j, i, 1.0));
            }
        }
        let a = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        Graph::new(a, kind)
    }

    /// Build a weighted graph from an edge list.
    pub fn from_weighted_edges(
        n: Index,
        edges: &[(Index, Index, f64)],
        kind: GraphKind,
    ) -> Result<Self> {
        let mut tuples = Vec::with_capacity(edges.len() * 2);
        for &(i, j, w) in edges {
            tuples.push((i, j, w));
            if kind == GraphKind::Undirected && i != j {
                tuples.push((j, i, w));
            }
        }
        let a = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        Graph::new(a, kind)
    }

    /// Load an adjacency matrix from a `.lagc` compressed container
    /// (see `lagraph_io::binary`): the heavy sections are memory-mapped,
    /// so the graph is queryable in O(1) without a parse or an assembly
    /// pass, and it stays in the compressed storage form.
    pub fn from_lagc(path: &std::path::Path, kind: GraphKind) -> Result<Self> {
        let a = Matrix::read_lagc(path, false)
            .map_err(|e| Error::invalid(format!("lagc load: {e}")))?;
        Graph::new(a, kind)
    }

    /// Opt the adjacency matrix into (or out of) compressed storage.
    /// Cached properties are untouched — they re-encode on their own
    /// next rebuild if the process-wide policy asks for it.
    pub fn set_compressed(&mut self, enabled: bool) {
        self.a.set_compressed(enabled);
    }

    /// The adjacency matrix.
    pub fn a(&self) -> &Matrix<f64> {
        &self.a
    }

    /// The graph kind.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> Index {
        self.a.nrows()
    }

    /// Number of stored edges (each undirected edge counts twice).
    pub fn nedges(&self) -> usize {
        self.a.nvals()
    }

    /// Resident heap bytes of the graph: the adjacency matrix plus every
    /// cached property currently materialized (transpose, structure,
    /// degrees). Polling it does not populate any cache, so it is safe
    /// to call from a metrics gauge on the serving path.
    pub fn resident_bytes(&self) -> usize {
        let mut total = self.a.memory_usage().total();
        let c = self.cache.lock();
        if let Some(at) = &c.at {
            total += at.memory_usage().total();
        }
        if let Some(st) = &c.structure {
            total += st.memory_usage().total();
        }
        if let Some(d) = &c.out_degree {
            total += d.memory_usage().total();
        }
        if let Some(d) = &c.in_degree {
            total += d.memory_usage().total();
        }
        total
    }

    /// The cached transpose `Aᵀ` (the matrix itself for undirected
    /// graphs would be equal; we still materialize it so algorithms can
    /// rely on row access to in-edges). Errors from the underlying
    /// transpose propagate instead of panicking under the cache lock.
    pub fn at(&self) -> Result<Arc<Matrix<f64>>> {
        let mut c = self.cache.lock();
        if let Some(at) = &c.at {
            return Ok(at.clone());
        }
        let at = Arc::new(transpose_new(&self.a)?);
        c.at = Some(at.clone());
        Ok(at)
    }

    /// The cached Boolean structure of `A`, with dual (push/pull) storage
    /// enabled so traversals can choose direction freely.
    pub fn structure(&self) -> Result<Arc<Matrix<bool>>> {
        let mut c = self.cache.lock();
        if let Some(st) = &c.structure {
            return Ok(st.clone());
        }
        let mut st = self.a.pattern();
        st.set_dual_storage(true);
        // A compressed adjacency serves a compressed structure: derived
        // matrices don't inherit the storage opt-in on their own, and the
        // structural kernels (tricount, BFS frontiers) are exactly where
        // the compressed form earns its footprint.
        if self.a.is_compressed() {
            st.set_compressed(true);
        }
        let st = Arc::new(st);
        c.structure = Some(st.clone());
        Ok(st)
    }

    /// Degrees along one axis: count entries per row (out) or per column
    /// (in) of the pattern.
    fn degree(&self, transpose: bool) -> Result<Arc<Vector<i64>>> {
        let ones = self.a.pattern();
        let mut d = Vector::<i64>::new(self.nvertices())?;
        let mut counts = Matrix::<i64>::new(self.nvertices(), self.nvertices())?;
        apply_matrix(&mut counts, None, NOACC, unaryop::One, &ones, &Descriptor::default())?;
        let desc = if transpose { Descriptor::new().transpose_a() } else { Descriptor::default() };
        reduce_matrix(&mut d, None, NOACC, &binaryop::Plus, &counts, &desc)?;
        Ok(Arc::new(d))
    }

    /// Cached out-degrees (row degrees) as an `i64` vector; vertices with
    /// no out-edges have no entry.
    pub fn out_degree(&self) -> Result<Arc<Vector<i64>>> {
        let mut c = self.cache.lock();
        if let Some(d) = &c.out_degree {
            return Ok(d.clone());
        }
        let d = self.degree(false)?;
        c.out_degree = Some(d.clone());
        Ok(d)
    }

    /// Cached in-degrees (column degrees).
    pub fn in_degree(&self) -> Result<Arc<Vector<i64>>> {
        let mut c = self.cache.lock();
        if let Some(d) = &c.in_degree {
            return Ok(d.clone());
        }
        let d = self.degree(true)?;
        c.in_degree = Some(d.clone());
        Ok(d)
    }

    /// Number of self-loops, cached.
    pub fn nself_edges(&self) -> Result<usize> {
        let mut c = self.cache.lock();
        if let Some(n) = c.nself_edges {
            return Ok(n);
        }
        let mut d = Matrix::<f64>::new(self.nvertices(), self.nvertices())?;
        select_matrix(&mut d, None, NOACC, unaryop::Diag, &self.a, &Descriptor::default())?;
        let n = d.nvals();
        c.nself_edges = Some(n);
        Ok(n)
    }

    /// Remove self-loops, invalidating caches.
    pub fn delete_self_edges(&mut self) -> Result<()> {
        let mut cleaned = Matrix::<f64>::new(self.nvertices(), self.nvertices())?;
        select_matrix(
            &mut cleaned,
            None,
            NOACC,
            unaryop::Offdiag,
            &self.a,
            &Descriptor::default(),
        )?;
        self.a = cleaned;
        self.invalidate_caches();
        Ok(())
    }

    /// Drop every cached property and bump the [`Graph::epoch`]. Called
    /// after any mutation of the adjacency; public so owners that mutate
    /// the matrix through its interior-mutability entry points (or replace
    /// it wholesale) can keep the caches coherent.
    pub fn invalidate_caches(&mut self) {
        *self.cache.get_mut() = Cached::default();
        self.epoch += 1;
    }

    /// The graph's modification epoch: 0 at construction, bumped by every
    /// cache invalidation. Two reads of the same `Graph` value with equal
    /// epochs observed the same adjacency and the same cached properties.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamp the epoch explicitly (the service layer tags each published
    /// snapshot with the epoch of the update batch that produced it).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Structural checks: squareness always; symmetry for undirected
    /// graphs (pattern and values must match the transpose).
    pub fn check(&self) -> Result<()> {
        if self.kind == GraphKind::Undirected {
            let at = transpose_new(&self.a)?;
            if at.extract_tuples() != self.a.extract_tuples() {
                return Err(Error::invalid("undirected graph adjacency must be symmetric"));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nvertices", &self.nvertices())
            .field("nedges", &self.nedges())
            .field("kind", &self.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], GraphKind::Undirected).expect("graph")
    }

    #[test]
    fn undirected_edges_are_mirrored() {
        let g = triangle();
        assert_eq!(g.nvertices(), 3);
        assert_eq!(g.nedges(), 6);
        g.check().expect("symmetric");
    }

    #[test]
    fn directed_edges_are_not() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Directed).expect("graph");
        assert_eq!(g.nedges(), 1);
        assert!(g.a().get(1, 0).is_none());
    }

    #[test]
    fn degrees() {
        let g =
            Graph::from_edges(4, &[(0, 1), (0, 2), (3, 0)], GraphKind::Directed).expect("graph");
        let out = g.out_degree().expect("out degrees");
        assert_eq!(out.get(0), Some(2));
        assert_eq!(out.get(3), Some(1));
        assert_eq!(out.get(1), None);
        let inn = g.in_degree().expect("in degrees");
        assert_eq!(inn.get(0), Some(1));
        assert_eq!(inn.get(1), Some(1));
        assert_eq!(inn.get(3), None);
    }

    #[test]
    fn transpose_cache_reflects_reverse_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], GraphKind::Directed).expect("graph");
        let at = g.at().expect("transpose");
        assert_eq!(at.get(1, 0), Some(1.0));
        assert_eq!(at.get(2, 1), Some(1.0));
        // Cached: same Arc returned.
        assert!(Arc::ptr_eq(&at, &g.at().expect("transpose")));
    }

    #[test]
    fn structure_has_dual_storage() {
        let g = triangle();
        let s = g.structure().expect("structure");
        assert!(s.dual_storage());
        assert_eq!(s.nvals(), 6);
    }

    #[test]
    fn self_edges_counted_and_removed() {
        let mut g =
            Graph::from_edges(3, &[(0, 0), (0, 1), (2, 2)], GraphKind::Directed).expect("graph");
        assert_eq!(g.nself_edges().expect("loops"), 2);
        g.delete_self_edges().expect("clean");
        assert_eq!(g.nself_edges().expect("loops"), 0);
        assert_eq!(g.nedges(), 1);
    }

    #[test]
    fn weighted_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.5)], GraphKind::Undirected)
            .expect("graph");
        assert_eq!(g.a().get(0, 1), Some(2.5));
        assert_eq!(g.a().get(1, 0), Some(2.5));
    }

    #[test]
    fn rejects_rectangular() {
        let m = Matrix::<f64>::new(2, 3).expect("m");
        assert!(Graph::new(m, GraphKind::Directed).is_err());
    }

    #[test]
    fn asymmetric_undirected_fails_check() {
        let a = Matrix::from_tuples(2, 2, vec![(0, 1, 1.0)], |_, b| b).expect("a");
        let g = Graph::new(a, GraphKind::Undirected).expect("construct");
        assert!(g.check().is_err());
    }
}
