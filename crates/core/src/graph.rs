//! The LAGraph `Graph` object: an adjacency matrix plus cached derived
//! properties (transpose, structure, degrees), so algorithms don't
//! recompute them — the design the LAGraph project adopted so a graph can
//! flow through a processing pipeline (§IV of the paper).

use graphblas::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// Whether the adjacency matrix is to be interpreted as directed (an edge
/// `(i, j)` is the arc `i → j`) or undirected (the matrix is symmetric by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Adjacency of a directed graph.
    Directed,
    /// Adjacency of an undirected graph; `A` must be structurally
    /// symmetric (checked by [`Graph::check`]).
    Undirected,
}

#[derive(Default)]
struct Cached {
    at: Option<Arc<Matrix<f64>>>,
    structure: Option<Arc<Matrix<bool>>>,
    out_degree: Option<Arc<Vector<i64>>>,
    in_degree: Option<Arc<Vector<i64>>>,
    nself_edges: Option<usize>,
}

/// A graph: adjacency matrix, kind, and lazily cached properties.
pub struct Graph {
    /// The adjacency matrix; `A(i, j)` is the weight of edge `i → j`.
    a: Matrix<f64>,
    kind: GraphKind,
    cache: Mutex<Cached>,
}

impl Graph {
    /// Wrap an adjacency matrix. The matrix must be square.
    pub fn new(a: Matrix<f64>, kind: GraphKind) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(Error::dim(format!(
                "adjacency matrix must be square, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        Ok(Graph { a, kind, cache: Mutex::new(Cached::default()) })
    }

    /// Build an unweighted graph from an edge list (weights set to 1).
    /// For [`GraphKind::Undirected`], each edge is mirrored.
    pub fn from_edges(n: Index, edges: &[(Index, Index)], kind: GraphKind) -> Result<Self> {
        let mut tuples = Vec::with_capacity(edges.len() * 2);
        for &(i, j) in edges {
            tuples.push((i, j, 1.0));
            if kind == GraphKind::Undirected && i != j {
                tuples.push((j, i, 1.0));
            }
        }
        let a = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        Graph::new(a, kind)
    }

    /// Build a weighted graph from an edge list.
    pub fn from_weighted_edges(
        n: Index,
        edges: &[(Index, Index, f64)],
        kind: GraphKind,
    ) -> Result<Self> {
        let mut tuples = Vec::with_capacity(edges.len() * 2);
        for &(i, j, w) in edges {
            tuples.push((i, j, w));
            if kind == GraphKind::Undirected && i != j {
                tuples.push((j, i, w));
            }
        }
        let a = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        Graph::new(a, kind)
    }

    /// The adjacency matrix.
    pub fn a(&self) -> &Matrix<f64> {
        &self.a
    }

    /// The graph kind.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> Index {
        self.a.nrows()
    }

    /// Number of stored edges (each undirected edge counts twice).
    pub fn nedges(&self) -> usize {
        self.a.nvals()
    }

    /// The cached transpose `Aᵀ` (the matrix itself for undirected
    /// graphs would be equal; we still materialize it so algorithms can
    /// rely on row access to in-edges).
    pub fn at(&self) -> Arc<Matrix<f64>> {
        let mut c = self.cache.lock();
        c.at.get_or_insert_with(|| Arc::new(transpose_new(&self.a).expect("square transpose")))
            .clone()
    }

    /// The cached Boolean structure of `A`, with dual (push/pull) storage
    /// enabled so traversals can choose direction freely.
    pub fn structure(&self) -> Arc<Matrix<bool>> {
        let mut c = self.cache.lock();
        c.structure
            .get_or_insert_with(|| {
                let mut s = self.a.pattern();
                s.set_dual_storage(true);
                Arc::new(s)
            })
            .clone()
    }

    /// Cached out-degrees (row degrees) as an `i64` vector; vertices with
    /// no out-edges have no entry.
    pub fn out_degree(&self) -> Arc<Vector<i64>> {
        let mut c = self.cache.lock();
        c.out_degree
            .get_or_insert_with(|| {
                let ones = self.a.pattern();
                let mut d = Vector::<i64>::new(self.nvertices()).expect("n >= 1");
                let mut counts =
                    Matrix::<i64>::new(self.nvertices(), self.nvertices()).expect("dims");
                apply_matrix(&mut counts, None, NOACC, unaryop::One, &ones, &Descriptor::default())
                    .expect("pattern count");
                reduce_matrix(
                    &mut d,
                    None,
                    NOACC,
                    &binaryop::Plus,
                    &counts,
                    &Descriptor::default(),
                )
                .expect("row reduce");
                Arc::new(d)
            })
            .clone()
    }

    /// Cached in-degrees (column degrees).
    pub fn in_degree(&self) -> Arc<Vector<i64>> {
        let mut c = self.cache.lock();
        c.in_degree
            .get_or_insert_with(|| {
                let ones = self.a.pattern();
                let mut d = Vector::<i64>::new(self.nvertices()).expect("n >= 1");
                let mut counts =
                    Matrix::<i64>::new(self.nvertices(), self.nvertices()).expect("dims");
                apply_matrix(&mut counts, None, NOACC, unaryop::One, &ones, &Descriptor::default())
                    .expect("pattern count");
                reduce_matrix(
                    &mut d,
                    None,
                    NOACC,
                    &binaryop::Plus,
                    &counts,
                    &Descriptor::new().transpose_a(),
                )
                .expect("col reduce");
                Arc::new(d)
            })
            .clone()
    }

    /// Number of self-loops, cached.
    pub fn nself_edges(&self) -> usize {
        let mut c = self.cache.lock();
        *c.nself_edges.get_or_insert_with(|| {
            let mut d = Matrix::<f64>::new(self.nvertices(), self.nvertices()).expect("dims");
            select_matrix(&mut d, None, NOACC, unaryop::Diag, &self.a, &Descriptor::default())
                .expect("diag select");
            d.nvals()
        })
    }

    /// Remove self-loops, invalidating caches.
    pub fn delete_self_edges(&mut self) -> Result<()> {
        let mut cleaned = Matrix::<f64>::new(self.nvertices(), self.nvertices())?;
        select_matrix(
            &mut cleaned,
            None,
            NOACC,
            unaryop::Offdiag,
            &self.a,
            &Descriptor::default(),
        )?;
        self.a = cleaned;
        self.cache = Mutex::new(Cached::default());
        Ok(())
    }

    /// Structural checks: squareness always; symmetry for undirected
    /// graphs (pattern and values must match the transpose).
    pub fn check(&self) -> Result<()> {
        if self.kind == GraphKind::Undirected {
            let at = transpose_new(&self.a)?;
            if at.extract_tuples() != self.a.extract_tuples() {
                return Err(Error::invalid("undirected graph adjacency must be symmetric"));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nvertices", &self.nvertices())
            .field("nedges", &self.nedges())
            .field("kind", &self.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], GraphKind::Undirected).expect("graph")
    }

    #[test]
    fn undirected_edges_are_mirrored() {
        let g = triangle();
        assert_eq!(g.nvertices(), 3);
        assert_eq!(g.nedges(), 6);
        g.check().expect("symmetric");
    }

    #[test]
    fn directed_edges_are_not() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Directed).expect("graph");
        assert_eq!(g.nedges(), 1);
        assert!(g.a().get(1, 0).is_none());
    }

    #[test]
    fn degrees() {
        let g =
            Graph::from_edges(4, &[(0, 1), (0, 2), (3, 0)], GraphKind::Directed).expect("graph");
        let out = g.out_degree();
        assert_eq!(out.get(0), Some(2));
        assert_eq!(out.get(3), Some(1));
        assert_eq!(out.get(1), None);
        let inn = g.in_degree();
        assert_eq!(inn.get(0), Some(1));
        assert_eq!(inn.get(1), Some(1));
        assert_eq!(inn.get(3), None);
    }

    #[test]
    fn transpose_cache_reflects_reverse_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], GraphKind::Directed).expect("graph");
        let at = g.at();
        assert_eq!(at.get(1, 0), Some(1.0));
        assert_eq!(at.get(2, 1), Some(1.0));
        // Cached: same Arc returned.
        assert!(Arc::ptr_eq(&at, &g.at()));
    }

    #[test]
    fn structure_has_dual_storage() {
        let g = triangle();
        let s = g.structure();
        assert!(s.dual_storage());
        assert_eq!(s.nvals(), 6);
    }

    #[test]
    fn self_edges_counted_and_removed() {
        let mut g =
            Graph::from_edges(3, &[(0, 0), (0, 1), (2, 2)], GraphKind::Directed).expect("graph");
        assert_eq!(g.nself_edges(), 2);
        g.delete_self_edges().expect("clean");
        assert_eq!(g.nself_edges(), 0);
        assert_eq!(g.nedges(), 1);
    }

    #[test]
    fn weighted_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.5)], GraphKind::Undirected)
            .expect("graph");
        assert_eq!(g.a().get(0, 1), Some(2.5));
        assert_eq!(g.a().get(1, 0), Some(2.5));
    }

    #[test]
    fn rejects_rectangular() {
        let m = Matrix::<f64>::new(2, 3).expect("m");
        assert!(Graph::new(m, GraphKind::Directed).is_err());
    }

    #[test]
    fn asymmetric_undirected_fails_check() {
        let a = Matrix::from_tuples(2, 2, vec![(0, 1, 1.0)], |_, b| b).expect("a");
        let g = Graph::new(a, GraphKind::Undirected).expect("construct");
        assert!(g.check().is_err());
    }
}
