//! Materialized analytic views, incrementally repaired per epoch.
//!
//! A view is a precomputed whole-graph answer — connected components,
//! PageRank, out-degrees, the global triangle count, core numbers —
//! kept *current* against the served snapshot. Instead of recomputing
//! from scratch every epoch, the engine receives the epoch's edge-delta
//! batch from the epoch coordinator (`drainer.rs`), classifies it into
//! real structural changes (weight overwrites and redundant deletes
//! drop out), and applies each view's algebraic update rule:
//!
//! * **Connected components** — inserts are component merges
//!   (min-wins union-find over the old labels); a delete that might
//!   split a component triggers a *targeted* traversal of exactly the
//!   affected component ([`connected_components_delta`]) — never silent
//!   staleness.
//! * **PageRank** — warm-restart from the previous rank vector
//!   ([`pagerank_warm`]): the same iteration, a much closer starting
//!   point, so the residual is already near tolerance.
//! * **Degree counts** — an O(Δ) fold of the classified events.
//! * **Triangle count** — per-edge common-neighbor deltas over a patch
//!   overlay ([`triangle_count_delta`]), exact by telescoping.
//! * **Core numbers** — the traversal insertion rule
//!   ([`core_numbers_insert`]) for insert-only epochs; any delete falls
//!   back to a full peel (deletion has no comparably local rule).
//!
//! When an epoch's structural-change count exceeds the staleness budget
//! ([`ViewsConfig::staleness`], env `LAGRAPH_VIEWS_STALENESS`), repair
//! would cost more than recomputation and the engine rebuilds from the
//! published graph instead — counted separately, so operators can see
//! the repair/rebuild ratio in
//! `lagraph_service_view_refresh_total{view,mode}` and repair latency
//! in `lagraph_service_view_repair_seconds{view}`.
//!
//! Views are epoch-tagged and published as one atomic table *before*
//! the snapshot swap, so a [`flush`](super::GraphService::flush) that
//! returns epoch `e` implies the views are current at `e`. The
//! admission layer consults the view table first: a hit bypasses
//! batching, caching, and the query kernel entirely. A drainer failure
//! never corrupts a view — the engine only advances on successfully
//! barriered epochs, so after a failure the views keep answering at the
//! last good epoch, exactly like the snapshot.
//!
//! The differential suite (`tests/service_views.rs`) replays hundreds of
//! mixed insert/delete updates at S∈{1,2,4} shards and compares every
//! epoch's view against a from-scratch oracle — bit-for-bit for the
//! discrete views, within tolerance for warm-restarted PageRank (and
//! bit-for-bit for PageRank too when `staleness = 0` forces cold
//! rebuilds).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use graphblas::metrics;
use graphblas::trace;
use graphblas::{Error as GrbError, Index, Vector};
use parking_lot::RwLock;

use super::admission::{canon_bits, QueryKind, QueryResult};
use super::{env_parse, ServiceError, Update};
use crate::algorithms::{
    connected_components, connected_components_delta, core_numbers, core_numbers_insert, pagerank,
    pagerank_warm, triangle_count, triangle_count_delta, AdjacencyView, EdgeEvent, PageRankOptions,
    TriCountMethod,
};
use crate::graph::{Graph, GraphKind};

/// The analytic views the service can materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Connected-component labels (undirected graphs only).
    ConnectedComponents,
    /// PageRank scores at the engine's configured options.
    PageRank,
    /// Out-degree counts (equals degree on undirected graphs).
    DegreeCounts,
    /// The global triangle count (undirected graphs only).
    TriangleCount,
    /// k-core numbers (undirected graphs only).
    CoreNumbers,
}

impl ViewKind {
    /// Every view, in registration order.
    pub const ALL: [ViewKind; 5] = [
        ViewKind::ConnectedComponents,
        ViewKind::PageRank,
        ViewKind::DegreeCounts,
        ViewKind::TriangleCount,
        ViewKind::CoreNumbers,
    ];

    /// The short name used in `LAGRAPH_VIEWS` and the `view=` metric
    /// label.
    pub fn name(self) -> &'static str {
        match self {
            ViewKind::ConnectedComponents => "cc",
            ViewKind::PageRank => "pagerank",
            ViewKind::DegreeCounts => "degree",
            ViewKind::TriangleCount => "tricount",
            ViewKind::CoreNumbers => "kcore",
        }
    }

    /// Parse one `LAGRAPH_VIEWS` list entry.
    pub fn parse(s: &str) -> Option<ViewKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cc" => Some(ViewKind::ConnectedComponents),
            "pagerank" | "pr" => Some(ViewKind::PageRank),
            "degree" => Some(ViewKind::DegreeCounts),
            "tricount" => Some(ViewKind::TriangleCount),
            "kcore" => Some(ViewKind::CoreNumbers),
            _ => None,
        }
    }

    /// Whether the view is only defined on undirected graphs.
    pub fn needs_undirected(self) -> bool {
        matches!(
            self,
            ViewKind::ConnectedComponents | ViewKind::TriangleCount | ViewKind::CoreNumbers
        )
    }

    fn idx(self) -> usize {
        match self {
            ViewKind::ConnectedComponents => 0,
            ViewKind::PageRank => 1,
            ViewKind::DegreeCounts => 2,
            ViewKind::TriangleCount => 3,
            ViewKind::CoreNumbers => 4,
        }
    }
}

/// Configuration for the view engine, normally set through
/// [`super::ServiceConfig::views`] or the environment
/// ([`ViewsConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ViewsConfig {
    /// The views to register at service start. Views inapplicable to
    /// the graph's kind (the undirected-only ones on a directed graph)
    /// are skipped with a warning.
    pub views: Vec<ViewKind>,
    /// Staleness budget: the most structural changes one epoch may
    /// carry and still be *repaired* incrementally. A larger delta
    /// rebuilds every view from the published graph instead (counted as
    /// `mode="rebuild"`). `0` forces a rebuild every epoch — the
    /// bit-for-bit-reproducible mode.
    pub staleness: usize,
    /// Options for the PageRank view; a PageRank query is served from
    /// the view only when its canonicalized options match these.
    pub pagerank: PageRankOptions,
}

impl Default for ViewsConfig {
    fn default() -> Self {
        ViewsConfig {
            views: ViewKind::ALL.to_vec(),
            staleness: 4096,
            pagerank: PageRankOptions::default(),
        }
    }
}

impl ViewsConfig {
    /// Read `LAGRAPH_VIEWS` (unset/`0`/`off` → no views; `1`/`all` →
    /// every view; otherwise a comma-separated list of view names) and
    /// `LAGRAPH_VIEWS_STALENESS` (the repair budget). Unknown view
    /// names warn once and are skipped.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("LAGRAPH_VIEWS").ok()?;
        let t = raw.trim();
        if t.is_empty() || t == "0" || t.eq_ignore_ascii_case("off") {
            return None;
        }
        let views: Vec<ViewKind> = if t == "1" || t.eq_ignore_ascii_case("all") {
            ViewKind::ALL.to_vec()
        } else {
            let mut v = Vec::new();
            for part in t.split(',') {
                match ViewKind::parse(part) {
                    Some(k) if !v.contains(&k) => v.push(k),
                    Some(_) => {}
                    None => trace::warn_once(
                        "LAGRAPH_VIEWS",
                        &format!("ignoring unknown view {:?} in LAGRAPH_VIEWS", part.trim()),
                    ),
                }
            }
            v
        };
        if views.is_empty() {
            return None;
        }
        let mut c = ViewsConfig { views, ..ViewsConfig::default() };
        if let Some(s) = env_parse::<usize>("LAGRAPH_VIEWS_STALENESS") {
            c.staleness = s;
        }
        Some(c)
    }
}

/// Per-view counters from [`super::GraphService::view_stats`] —
/// per-service (unlike the process-global metrics), so tests can assert
/// the repair/rebuild split in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewStat {
    /// Which view.
    pub view: ViewKind,
    /// Epochs absorbed by incremental repair.
    pub repairs: u64,
    /// Epochs that fell back to a full recompute (staleness budget
    /// exceeded, un-captured delta, or a rule with no local repair —
    /// e.g. core numbers under deletes).
    pub rebuilds: u64,
    /// Queries answered from this view.
    pub served: u64,
}

/// The symmetric (for undirected graphs) adjacency overlay the engine
/// keeps alongside the views: O(e) to build once at registration, O(Δ)
/// to advance per epoch, O(1) membership tests for delta
/// classification, and the [`AdjacencyView`] the incremental algorithms
/// traverse.
struct Adjacency {
    mirror: bool,
    sets: Vec<HashSet<Index>>,
}

impl Adjacency {
    fn from_graph(g: &Graph) -> Result<Self, GrbError> {
        let s = g.structure()?;
        let mut sets = vec![HashSet::new(); g.nvertices()];
        for (i, j, _) in s.iter() {
            sets[i].insert(j);
        }
        Ok(Adjacency { mirror: g.kind() == GraphKind::Undirected, sets })
    }

    fn apply(&mut self, e: &EdgeEvent) {
        match *e {
            EdgeEvent::Insert(u, v) => {
                self.sets[u].insert(v);
                if self.mirror && u != v {
                    self.sets[v].insert(u);
                }
            }
            EdgeEvent::Delete(u, v) => {
                self.sets[u].remove(&v);
                if self.mirror && u != v {
                    self.sets[v].remove(&u);
                }
            }
        }
    }
}

impl AdjacencyView for Adjacency {
    fn nvertices(&self) -> Index {
        self.sets.len()
    }
    fn has_edge(&self, u: Index, v: Index) -> bool {
        self.sets[u].contains(&v)
    }
    fn degree(&self, u: Index) -> usize {
        self.sets[u].len()
    }
    fn for_each_neighbor(&self, u: Index, f: &mut dyn FnMut(Index)) {
        for &v in &self.sets[u] {
            f(v);
        }
    }
}

/// Classify a raw epoch batch into *structural* events against the
/// pre-epoch adjacency: an insert of a present edge is a reweight (no
/// event), a delete of an absent edge is a no-op. Later updates to the
/// same edge see the earlier ones through the override map, so a
/// within-batch insert-then-delete nets out to the right event pair.
fn classify(adj: &Adjacency, batch: &[Update]) -> Vec<EdgeEvent> {
    let mut over: HashMap<(Index, Index), bool> = HashMap::new();
    let mut events = Vec::new();
    for u in batch {
        let (i, j, insert) = match *u {
            Update::Insert(i, j, _) => (i, j, true),
            Update::Delete(i, j) => (i, j, false),
        };
        let present = over.get(&(i, j)).copied().unwrap_or_else(|| adj.has_edge(i, j));
        if insert != present {
            events.push(if insert { EdgeEvent::Insert(i, j) } else { EdgeEvent::Delete(i, j) });
            over.insert((i, j), insert);
        }
    }
    events
}

/// The atomically published answer table: readers clone `Arc`s, never
/// blocking behind an in-progress repair.
struct ViewTable {
    epoch: u64,
    cc: Option<Arc<Vector<u64>>>,
    degree: Option<Arc<Vector<i64>>>,
    tricount: Option<u64>,
    cores: Option<Arc<Vector<i64>>>,
    ranks: Option<(Arc<Vector<f64>>, usize)>,
}

impl ViewTable {
    fn empty(epoch: u64) -> Self {
        ViewTable { epoch, cc: None, degree: None, tricount: None, cores: None, ranks: None }
    }
}

/// Mutable engine state, guarded by one mutex (taken by the epoch
/// coordinator, registration, and stats — never by the serve path).
struct EngineState {
    epoch: u64,
    /// The graph of `epoch` — registration materializes from this, not
    /// the service snapshot, so a view is never ahead of or behind the
    /// engine's own adjacency overlay.
    latest: Arc<Graph>,
    adj: Option<Adjacency>,
    cc: Option<Vec<u64>>,
    degree: Option<Vec<i64>>,
    tricount: Option<u64>,
    cores: Option<Vec<i64>>,
    ranks: Option<(Arc<Vector<f64>>, usize)>,
}

impl EngineState {
    fn structural_registered(&self) -> bool {
        self.cc.is_some()
            || self.degree.is_some()
            || self.tricount.is_some()
            || self.cores.is_some()
    }

    fn any_registered(&self) -> bool {
        self.structural_registered() || self.ranks.is_some()
    }
}

/// One view's counters and metric handles.
struct KindSlot {
    repairs: AtomicU64,
    rebuilds: AtomicU64,
    served: AtomicU64,
    m_repair: metrics::Counter,
    m_rebuild: metrics::Counter,
    m_served: metrics::Counter,
    m_repair_seconds: metrics::Histogram,
}

fn kind_slot(kind: ViewKind) -> KindSlot {
    let name = kind.name();
    let refresh = |mode: &str| {
        metrics::counter_with(
            "lagraph_service_view_refresh_total",
            "Materialized-view refreshes by view and mode (incremental repair vs full rebuild).",
            &[("view", name), ("mode", mode)],
        )
    };
    KindSlot {
        repairs: AtomicU64::new(0),
        rebuilds: AtomicU64::new(0),
        served: AtomicU64::new(0),
        m_repair: refresh("repair"),
        m_rebuild: refresh("rebuild"),
        m_served: metrics::counter_with(
            "lagraph_service_view_served_total",
            "Queries answered directly from a materialized view.",
            &[("view", name)],
        ),
        m_repair_seconds: metrics::histogram_scaled(
            "lagraph_service_view_repair_seconds",
            "Incremental view-repair latency per epoch (seconds).",
            &[("view", name)],
            1e-9,
        ),
    }
}

/// The engine: owned by [`super::Shared`], advanced by the epoch
/// coordinator, consulted lock-free(ish) by the admission layer.
pub(crate) struct ViewEngine {
    kind: GraphKind,
    staleness: usize,
    pr_opts: PageRankOptions,
    /// Whether any view has ever been registered — the coordinator's
    /// cheap "should I capture the delta at all" check.
    active: AtomicBool,
    state: Mutex<EngineState>,
    published: RwLock<Arc<ViewTable>>,
    slots: [KindSlot; 5],
}

impl ViewEngine {
    pub(crate) fn new(kind: GraphKind, latest: Arc<Graph>, config: &ViewsConfig) -> Self {
        let epoch = latest.epoch();
        ViewEngine {
            kind,
            staleness: config.staleness,
            pr_opts: config.pagerank,
            active: AtomicBool::new(false),
            state: Mutex::new(EngineState {
                epoch,
                latest,
                adj: None,
                cc: None,
                degree: None,
                tricount: None,
                cores: None,
                ranks: None,
            }),
            published: RwLock::new(Arc::new(ViewTable::empty(epoch))),
            slots: ViewKind::ALL.map(kind_slot),
        }
    }

    /// Whether the coordinator should hand [`ViewEngine::on_epoch`] the
    /// epoch's update batch.
    pub(crate) fn wants_deltas(&self) -> bool {
        self.active.load(Relaxed)
    }

    /// Register (and materialize) one view at the engine's current
    /// epoch. Errors if the view is undefined for the graph's kind;
    /// re-registering is a no-op.
    pub(crate) fn register(&self, kind: ViewKind) -> Result<(), ServiceError> {
        if kind.needs_undirected() && self.kind != GraphKind::Undirected {
            return Err(ServiceError::Graph(GrbError::invalid(format!(
                "view {:?} is only defined on undirected graphs",
                kind.name()
            ))));
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let graph = st.latest.clone();
        if kind != ViewKind::PageRank && st.adj.is_none() {
            st.adj = Some(Adjacency::from_graph(&graph)?);
        }
        let n = graph.nvertices();
        match kind {
            ViewKind::ConnectedComponents if st.cc.is_none() => {
                st.cc = Some(dense_u64(&connected_components(&graph)?, n));
            }
            ViewKind::DegreeCounts if st.degree.is_none() => {
                st.degree = Some(dense_degree(&graph)?);
            }
            ViewKind::TriangleCount if st.tricount.is_none() => {
                st.tricount = Some(triangle_count(&graph, TriCountMethod::Sandia)?);
            }
            ViewKind::CoreNumbers if st.cores.is_none() => {
                st.cores = Some(dense_i64(&core_numbers(&graph)?, n));
            }
            ViewKind::PageRank if st.ranks.is_none() => {
                let (r, iters) = pagerank(&graph, &self.pr_opts)?;
                st.ranks = Some((Arc::new(r), iters));
            }
            _ => return Ok(()), // already registered
        }
        self.republish(&st);
        self.active.store(true, Relaxed);
        Ok(())
    }

    /// Advance every registered view to `epoch`. Called by the epoch
    /// coordinator after the shard barrier and *before* the snapshot
    /// swap — a failed epoch never reaches here, so views only ever
    /// reflect successfully published graphs. `delta` is the epoch's
    /// full update batch in replay order; `None` means it was not
    /// captured (a view registered mid-cut) and forces a rebuild.
    pub(crate) fn on_epoch(&self, graph: &Arc<Graph>, epoch: u64, delta: Option<&[Update]>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.any_registered() {
            st.epoch = epoch;
            st.latest = graph.clone();
            return;
        }
        let structural = st.structural_registered();
        let events: Option<Vec<EdgeEvent>> = match (structural, delta, st.adj.as_ref()) {
            (true, Some(batch), Some(adj)) => Some(classify(adj, batch)),
            _ => None,
        };
        // A batch of pure reweights / redundant ops changes nothing any
        // view (all structure-only) can observe: keep every answer.
        if events.as_ref().is_some_and(Vec::is_empty) {
            st.epoch = epoch;
            st.latest = graph.clone();
            self.republish(&st);
            return;
        }
        let over_budget = match (&events, delta) {
            (Some(ev), _) => ev.len() > self.staleness,
            (None, Some(batch)) => batch.len() > self.staleness,
            (None, None) => true,
        };
        if over_budget || (structural && events.is_none()) {
            // Repair would cost more than recomputing (or the delta was
            // not captured): advance the overlay, then rebuild every
            // registered view from the published graph.
            if structural {
                match (&events, st.adj.as_mut()) {
                    (Some(ev), Some(adj)) => {
                        for e in ev {
                            adj.apply(e);
                        }
                    }
                    _ => match Adjacency::from_graph(graph) {
                        Ok(a) => st.adj = Some(a),
                        Err(e) => {
                            trace::warn_once(
                                "service.views",
                                &format!(
                                    "dropping structural views, adjacency rebuild failed: {e}"
                                ),
                            );
                            st.adj = None;
                            st.cc = None;
                            st.degree = None;
                            st.tricount = None;
                            st.cores = None;
                        }
                    },
                }
            }
            self.rebuild_registered(&mut st, graph);
        } else {
            self.repair_registered(&mut st, graph, &events.unwrap_or_default());
        }
        st.epoch = epoch;
        st.latest = graph.clone();
        self.republish(&st);
    }

    /// Incremental path: apply each view's update rule to the classified
    /// events. `events` is empty only when nothing structural is
    /// registered (PageRank-only), whose warm restart runs regardless.
    fn repair_registered(&self, st: &mut EngineState, graph: &Arc<Graph>, events: &[EdgeEvent]) {
        let n = graph.nvertices();
        let mut inserts: Vec<(Index, Index)> = Vec::new();
        let mut deletes: Vec<(Index, Index)> = Vec::new();
        for e in events {
            match *e {
                EdgeEvent::Insert(u, v) => inserts.push((u, v)),
                EdgeEvent::Delete(u, v) => deletes.push((u, v)),
            }
        }
        let EngineState { adj, cc, degree, tricount, cores, ranks, .. } = st;
        // Triangle count and core numbers read the *pre-epoch* adjacency
        // (they overlay the events internally); components read the
        // committed one. Each final value is order-independent, so the
        // sequencing here is about which graph each rule documents.
        if let Some(prev) = *tricount {
            let adj = adj.as_ref().expect("structural views keep an adjacency overlay");
            let t0 = Instant::now();
            *tricount = Some(triangle_count_delta(adj, prev, events));
            self.refreshed(ViewKind::TriangleCount, true, t0.elapsed());
        }
        let mut kcore_rebuild = false;
        if let Some(c) = cores.as_mut() {
            if deletes.is_empty() {
                let adj = adj.as_ref().expect("structural views keep an adjacency overlay");
                let t0 = Instant::now();
                core_numbers_insert(adj, c, &inserts);
                self.refreshed(ViewKind::CoreNumbers, true, t0.elapsed());
            } else {
                // Deletion has no local repair rule for core numbers;
                // recompute this one view (the others still repair).
                kcore_rebuild = true;
            }
        }
        if let Some(adj) = adj.as_mut() {
            for e in events {
                adj.apply(e);
            }
        }
        if let Some(prev) = cc.as_ref() {
            let adj = adj.as_ref().expect("structural views keep an adjacency overlay");
            let t0 = Instant::now();
            let next = connected_components_delta(adj, prev, &inserts, &deletes);
            *cc = Some(next);
            self.refreshed(ViewKind::ConnectedComponents, true, t0.elapsed());
        }
        if let Some(d) = degree.as_mut() {
            let t0 = Instant::now();
            let mirror = self.kind == GraphKind::Undirected;
            for e in events {
                match *e {
                    EdgeEvent::Insert(u, v) => {
                        d[u] += 1;
                        if mirror && u != v {
                            d[v] += 1;
                        }
                    }
                    EdgeEvent::Delete(u, v) => {
                        d[u] -= 1;
                        if mirror && u != v {
                            d[v] -= 1;
                        }
                    }
                }
            }
            self.refreshed(ViewKind::DegreeCounts, true, t0.elapsed());
        }
        if kcore_rebuild {
            let t0 = Instant::now();
            match core_numbers(graph) {
                Ok(c) => *cores = Some(dense_i64(&c, n)),
                Err(e) => {
                    trace::warn_once("service.views", &format!("core-number rebuild failed: {e}"));
                    *cores = None;
                }
            }
            self.refreshed(ViewKind::CoreNumbers, false, t0.elapsed());
        }
        if let Some((warm, _)) = ranks.clone() {
            let t0 = Instant::now();
            match pagerank_warm(graph, &self.pr_opts, &warm) {
                Ok((r, iters)) => {
                    *ranks = Some((Arc::new(r), iters));
                    self.refreshed(ViewKind::PageRank, true, t0.elapsed());
                }
                Err(_) => match pagerank(graph, &self.pr_opts) {
                    Ok((r, iters)) => {
                        *ranks = Some((Arc::new(r), iters));
                        self.refreshed(ViewKind::PageRank, false, t0.elapsed());
                    }
                    Err(e) => {
                        trace::warn_once("service.views", &format!("pagerank view failed: {e}"));
                        *ranks = None;
                    }
                },
            }
        }
    }

    /// Recompute every registered view from the published graph. A view
    /// whose recompute fails is dropped (served queries fall back to
    /// the normal execution path) rather than left stale.
    fn rebuild_registered(&self, st: &mut EngineState, graph: &Arc<Graph>) {
        let n = graph.nvertices();
        if st.cc.is_some() {
            let t0 = Instant::now();
            match connected_components(graph) {
                Ok(l) => st.cc = Some(dense_u64(&l, n)),
                Err(e) => {
                    trace::warn_once("service.views", &format!("cc view rebuild failed: {e}"));
                    st.cc = None;
                }
            }
            self.refreshed(ViewKind::ConnectedComponents, false, t0.elapsed());
        }
        if st.degree.is_some() {
            let t0 = Instant::now();
            match dense_degree(graph) {
                Ok(d) => st.degree = Some(d),
                Err(e) => {
                    trace::warn_once("service.views", &format!("degree view rebuild failed: {e}"));
                    st.degree = None;
                }
            }
            self.refreshed(ViewKind::DegreeCounts, false, t0.elapsed());
        }
        if st.tricount.is_some() {
            let t0 = Instant::now();
            match triangle_count(graph, TriCountMethod::Sandia) {
                Ok(t) => st.tricount = Some(t),
                Err(e) => {
                    trace::warn_once(
                        "service.views",
                        &format!("tricount view rebuild failed: {e}"),
                    );
                    st.tricount = None;
                }
            }
            self.refreshed(ViewKind::TriangleCount, false, t0.elapsed());
        }
        if st.cores.is_some() {
            let t0 = Instant::now();
            match core_numbers(graph) {
                Ok(c) => st.cores = Some(dense_i64(&c, n)),
                Err(e) => {
                    trace::warn_once("service.views", &format!("kcore view rebuild failed: {e}"));
                    st.cores = None;
                }
            }
            self.refreshed(ViewKind::CoreNumbers, false, t0.elapsed());
        }
        if st.ranks.is_some() {
            let t0 = Instant::now();
            match pagerank(graph, &self.pr_opts) {
                Ok((r, iters)) => st.ranks = Some((Arc::new(r), iters)),
                Err(e) => {
                    trace::warn_once(
                        "service.views",
                        &format!("pagerank view rebuild failed: {e}"),
                    );
                    st.ranks = None;
                }
            }
            self.refreshed(ViewKind::PageRank, false, t0.elapsed());
        }
    }

    fn refreshed(&self, kind: ViewKind, repair: bool, dt: Duration) {
        let s = &self.slots[kind.idx()];
        if repair {
            s.repairs.fetch_add(1, Relaxed);
            s.m_repair.inc();
            s.m_repair_seconds.observe(dt.as_nanos() as u64);
        } else {
            s.rebuilds.fetch_add(1, Relaxed);
            s.m_rebuild.inc();
        }
    }

    /// Swap in a fresh answer table for the engine's current state.
    fn republish(&self, st: &EngineState) {
        let n = st.latest.nvertices();
        let table = ViewTable {
            epoch: st.epoch,
            cc: st.cc.as_ref().and_then(|l| materialize_dense(n, l.iter().copied())),
            degree: st.degree.as_ref().and_then(|d| {
                // Sparse like `Graph::out_degree`: entries only where a
                // vertex has at least one arc.
                let tuples: Vec<(Index, i64)> =
                    d.iter().enumerate().filter(|(_, &x)| x != 0).map(|(i, &x)| (i, x)).collect();
                Vector::from_tuples(n, tuples, |_, b| b).ok().map(Arc::new)
            }),
            tricount: st.tricount,
            cores: st.cores.as_ref().and_then(|c| materialize_dense(n, c.iter().copied())),
            ranks: st.ranks.clone(),
        };
        *self.published.write() = Arc::new(table);
    }

    /// Answer a query from the published table, iff the table is at
    /// exactly the requested epoch. PageRank only matches when the
    /// query's canonicalized options equal the view's.
    pub(crate) fn serve(&self, epoch: u64, q: &QueryKind) -> Option<QueryResult> {
        if !self.active.load(Relaxed) {
            return None;
        }
        let t = self.published.read().clone();
        if t.epoch != epoch {
            return None;
        }
        let (kind, result) = match *q {
            QueryKind::ConnectedComponents => {
                (ViewKind::ConnectedComponents, t.cc.clone().map(QueryResult::Components))
            }
            QueryKind::Degrees => {
                (ViewKind::DegreeCounts, t.degree.clone().map(QueryResult::Degrees))
            }
            QueryKind::CoreNumbers => {
                (ViewKind::CoreNumbers, t.cores.clone().map(QueryResult::Cores))
            }
            QueryKind::TriangleCount => {
                (ViewKind::TriangleCount, t.tricount.map(QueryResult::Count))
            }
            QueryKind::PageRank { damping_bits, tolerance_bits, max_iters } => {
                let o = &self.pr_opts;
                let matches = damping_bits == canon_bits(o.damping)
                    && tolerance_bits == canon_bits(o.tolerance)
                    && max_iters == o.max_iters;
                let r = if matches {
                    t.ranks
                        .clone()
                        .map(|(ranks, iterations)| QueryResult::Ranks { ranks, iterations })
                } else {
                    None
                };
                (ViewKind::PageRank, r)
            }
            QueryKind::BfsLevel { .. } => return None,
        };
        if result.is_some() {
            let s = &self.slots[kind.idx()];
            s.served.fetch_add(1, Relaxed);
            s.m_served.inc();
        }
        result
    }

    /// Per-view counters for every registered view.
    pub(crate) fn stats(&self) -> Vec<ViewStat> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let registered = |k: ViewKind| match k {
            ViewKind::ConnectedComponents => st.cc.is_some(),
            ViewKind::PageRank => st.ranks.is_some(),
            ViewKind::DegreeCounts => st.degree.is_some(),
            ViewKind::TriangleCount => st.tricount.is_some(),
            ViewKind::CoreNumbers => st.cores.is_some(),
        };
        ViewKind::ALL
            .into_iter()
            .filter(|&k| registered(k))
            .map(|k| {
                let s = &self.slots[k.idx()];
                ViewStat {
                    view: k,
                    repairs: s.repairs.load(Relaxed),
                    rebuilds: s.rebuilds.load(Relaxed),
                    served: s.served.load(Relaxed),
                }
            })
            .collect()
    }

    /// The epoch of the published answer table (tests).
    #[cfg(test)]
    pub(crate) fn table_epoch(&self) -> u64 {
        self.published.read().epoch
    }
}

/// Materialize a dense working array as a fully populated vector.
fn materialize_dense<T: graphblas::Scalar>(
    n: Index,
    values: impl Iterator<Item = T>,
) -> Option<Arc<Vector<T>>> {
    let tuples: Vec<(Index, T)> = values.take(n).enumerate().collect();
    Vector::from_tuples(n, tuples, |_, b| b).ok().map(Arc::new)
}

fn dense_u64(v: &Vector<u64>, n: Index) -> Vec<u64> {
    let mut out = vec![0u64; n];
    for (i, x) in v.iter() {
        out[i] = x;
    }
    out
}

fn dense_i64(v: &Vector<i64>, n: Index) -> Vec<i64> {
    let mut out = vec![0i64; n];
    for (i, x) in v.iter() {
        out[i] = x;
    }
    out
}

fn dense_degree(g: &Graph) -> Result<Vec<i64>, GrbError> {
    let d = g.out_degree()?;
    let mut out = vec![0i64; g.nvertices()];
    for (i, x) in d.iter() {
        out[i] = x;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_of(n: usize, edges: &[(Index, Index)]) -> Adjacency {
        let mut sets = vec![HashSet::new(); n];
        for &(u, v) in edges {
            sets[u].insert(v);
            sets[v].insert(u);
        }
        Adjacency { mirror: true, sets }
    }

    #[test]
    fn view_names_round_trip() {
        for k in ViewKind::ALL {
            assert_eq!(ViewKind::parse(k.name()), Some(k));
        }
        assert_eq!(ViewKind::parse("no-such-view"), None);
    }

    #[test]
    fn classify_filters_reweights_and_redundant_deletes() {
        let adj = adj_of(4, &[(0, 1)]);
        let batch = [
            Update::Insert(0, 1, 9.0), // present: reweight, no event
            Update::Delete(2, 3),      // absent: no-op, no event
            Update::Insert(1, 2, 1.0), // absent: real insert
            Update::Delete(0, 1),      // present: real delete
        ];
        let ev = classify(&adj, &batch);
        assert_eq!(ev, vec![EdgeEvent::Insert(1, 2), EdgeEvent::Delete(0, 1)]);
    }

    #[test]
    fn classify_tracks_within_batch_overrides() {
        let adj = adj_of(4, &[]);
        let batch = [
            Update::Insert(0, 1, 1.0),
            Update::Insert(0, 1, 2.0), // second submit: reweight of the queued insert
            Update::Delete(0, 1),      // present (via override): real delete
            Update::Delete(0, 1),      // already gone: no event
        ];
        let ev = classify(&adj, &batch);
        assert_eq!(ev, vec![EdgeEvent::Insert(0, 1), EdgeEvent::Delete(0, 1)]);
    }

    #[test]
    fn engine_rejects_undirected_only_views_on_directed_graphs() {
        let g = Graph::from_edges(4, &[(0, 1)], GraphKind::Directed).expect("graph");
        let engine = ViewEngine::new(GraphKind::Directed, Arc::new(g), &ViewsConfig::default());
        for k in [ViewKind::ConnectedComponents, ViewKind::TriangleCount, ViewKind::CoreNumbers] {
            assert!(engine.register(k).is_err(), "{k:?} must be rejected on a directed graph");
        }
        engine.register(ViewKind::PageRank).expect("pagerank works on directed graphs");
        engine.register(ViewKind::DegreeCounts).expect("degree works on directed graphs");
    }

    #[test]
    fn registration_is_idempotent_and_serves_at_the_current_epoch() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], GraphKind::Undirected).expect("graph");
        let engine = ViewEngine::new(GraphKind::Undirected, Arc::new(g), &ViewsConfig::default());
        engine.register(ViewKind::TriangleCount).expect("register");
        engine.register(ViewKind::TriangleCount).expect("re-register");
        assert_eq!(engine.table_epoch(), 0);
        let r = engine.serve(0, &QueryKind::TriangleCount).expect("served");
        assert_eq!(r.count(), Some(0));
        // Wrong epoch: never served.
        assert!(engine.serve(1, &QueryKind::TriangleCount).is_none());
        // Unregistered view: not served.
        assert!(engine.serve(0, &QueryKind::ConnectedComponents).is_none());
    }

    #[test]
    fn views_config_default_covers_all_views() {
        let c = ViewsConfig::default();
        assert_eq!(c.views.len(), ViewKind::ALL.len());
        assert!(c.staleness > 0);
    }
}
