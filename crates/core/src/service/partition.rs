//! Graph partitioning for the sharded service: the [`Partitioner`]
//! trait maps every edge to the shard that owns it, and the two built-in
//! schemes realize the row-block and 2D/hypersparse partitionings that
//! "GraphBLAS Mathematical Opportunities: Parallel Hypersparse, Matrix
//! Based Graph Streaming" (Jananthan et al.) argues for.
//!
//! A partitioner is a *routing policy*, not a storage constraint: shard
//! `s` owns exactly the edges `shard_of` assigns to it, each shard
//! drainer replays only its own slice of the update log into its own
//! sub-matrix, and the published snapshot is the disjoint union of all
//! shard sub-matrices at one epoch. Because `shard_of` is a pure
//! function of the (canonicalized) edge key, every update to one edge
//! is serialized through one shard — per-edge last-write-wins order is
//! preserved at any shard count, which is what makes the S∈{1,2,4}
//! differential tests bit-identical.
//!
//! On undirected graphs the service canonicalizes each edge to
//! `(min, max)` *before* routing, and the owning shard replays both
//! arcs; a 2D partitioner therefore sees only canonical keys.

use graphblas::Index;

/// Maps edges to shards. Implementations must be pure functions of the
/// edge key (same key → same shard, always) and total over
/// `0..nvertices` so no update is unroutable.
///
/// # Examples
///
/// ```
/// use lagraph::service::{Partitioner, RowBlock, Grid2D};
///
/// // Row blocks: contiguous row ranges, one per shard.
/// let p = RowBlock::new(1000, 4);
/// assert_eq!(p.shards(), 4);
/// assert_eq!(p.shard_of(0, 999), 0);    // row 0 → first block
/// assert_eq!(p.shard_of(999, 0), 3);    // row 999 → last block
///
/// // 2D grid: shards tile the adjacency matrix, hypersparse-style.
/// let p = Grid2D::new(1000, 2, 2);
/// assert_eq!(p.shards(), 4);
/// assert_eq!(p.shard_of(0, 0), 0);      // top-left block
/// assert_eq!(p.shard_of(999, 999), 3);  // bottom-right block
/// ```
pub trait Partitioner: Send + Sync + std::fmt::Debug {
    /// Number of shards this partitioner routes across (≥ 1).
    fn shards(&self) -> usize;

    /// The shard owning edge `(row, col)`; must be `< self.shards()`.
    fn shard_of(&self, row: Index, col: Index) -> usize;

    /// Short scheme name for logs, traces, and metrics labels.
    fn name(&self) -> &'static str;
}

/// 1D row-block partitioning: shard `s` owns the contiguous row range
/// `[s·⌈n/S⌉, (s+1)·⌈n/S⌉)`. The default scheme — replay locality is
/// high (each shard assembles a contiguous CSR row band) and the
/// combine step unions non-overlapping row ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBlock {
    n: Index,
    shards: usize,
    rows_per_shard: Index,
}

impl RowBlock {
    /// Partition `n` rows into `shards` contiguous blocks (`shards`
    /// clamped to `1..=n`).
    pub fn new(n: Index, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        RowBlock { n, shards, rows_per_shard: n.div_ceil(shards).max(1) }
    }
}

impl Partitioner for RowBlock {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, row: Index, _col: Index) -> usize {
        debug_assert!(row < self.n);
        (row / self.rows_per_shard).min(self.shards - 1)
    }

    fn name(&self) -> &'static str {
        "row-block"
    }
}

/// 2D block-grid partitioning: the adjacency matrix is tiled into
/// `rows × cols` rectangular blocks, one shard each — the 2D /
/// hypersparse decomposition of Jananthan et al., which balances
/// heavy-hitter rows (a high-degree vertex's edges spread over a whole
/// block *row* instead of landing in one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2D {
    n: Index,
    rows: usize,
    cols: usize,
    rows_per_block: Index,
    cols_per_block: Index,
}

impl Grid2D {
    /// Tile an `n × n` adjacency into a `rows × cols` shard grid (each
    /// dimension clamped to `1..=n`).
    pub fn new(n: Index, rows: usize, cols: usize) -> Self {
        let rows = rows.clamp(1, n.max(1));
        let cols = cols.clamp(1, n.max(1));
        Grid2D {
            n,
            rows,
            cols,
            rows_per_block: n.div_ceil(rows).max(1),
            cols_per_block: n.div_ceil(cols).max(1),
        }
    }
}

impl Partitioner for Grid2D {
    fn shards(&self) -> usize {
        self.rows * self.cols
    }

    fn shard_of(&self, row: Index, col: Index) -> usize {
        debug_assert!(row < self.n && col < self.n);
        let br = (row / self.rows_per_block).min(self.rows - 1);
        let bc = (col / self.cols_per_block).min(self.cols - 1);
        br * self.cols + bc
    }

    fn name(&self) -> &'static str {
        "grid-2d"
    }
}

/// Fibonacci-hash edge partitioning — the PR-4 update-log sharding kept
/// as a [`Partitioner`] for workloads whose row distribution is too
/// skewed for blocks. Statistically balanced, but with no block
/// structure to exploit in the combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHash {
    shards: usize,
}

impl EdgeHash {
    /// Hash edges across `shards` (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        EdgeHash { shards: shards.max(1) }
    }
}

impl Partitioner for EdgeHash {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, row: Index, col: Index) -> usize {
        let h = row
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(col.wrapping_mul(0xD1B5_4A32_D192_ED03));
        h % self.shards
    }

    fn name(&self) -> &'static str {
        "edge-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all_shards(p: &dyn Partitioner, n: Index) {
        let mut seen = vec![false; p.shards()];
        for i in 0..n {
            for j in 0..n {
                let s = p.shard_of(i, j);
                assert!(s < p.shards(), "{} routed ({i},{j}) to {s}", p.name());
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{} left a shard empty over a full grid", p.name());
    }

    #[test]
    fn row_block_is_total_and_contiguous() {
        let p = RowBlock::new(10, 3);
        covers_all_shards(&p, 10);
        // Contiguity: shard index is monotone in the row.
        let mut last = 0;
        for i in 0..10 {
            let s = p.shard_of(i, 0);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn row_block_more_shards_than_rows_clamps() {
        let p = RowBlock::new(2, 8);
        assert_eq!(p.shards(), 2);
        covers_all_shards(&p, 2);
    }

    #[test]
    fn grid2d_tiles_the_matrix() {
        let p = Grid2D::new(8, 2, 2);
        assert_eq!(p.shards(), 4);
        covers_all_shards(&p, 8);
        assert_eq!(p.shard_of(0, 7), 1, "top-right block");
        assert_eq!(p.shard_of(7, 0), 2, "bottom-left block");
    }

    #[test]
    fn edge_hash_is_total() {
        let p = EdgeHash::new(3);
        covers_all_shards(&p, 16);
    }

    #[test]
    fn partitioners_are_pure() {
        let p = Grid2D::new(100, 3, 2);
        for (i, j) in [(0, 0), (57, 3), (99, 99)] {
            assert_eq!(p.shard_of(i, j), p.shard_of(i, j));
        }
    }
}
