//! Concurrent graph serving: snapshot-isolated queries over a live
//! stream of edge updates, scaled out across shards.
//!
//! The paper's incremental-update machinery (§II.A pending tuples and
//! zombies) makes a stream of `e` `set_element` calls as cheap as one
//! `build` of `e` tuples — but only if something *batches* the stream.
//! [`GraphService`] is that something, shaped for the serving workload the
//! ROADMAP targets: many readers running the algorithm suite concurrently
//! with many writers mutating the graph.
//!
//! # Architecture
//!
//! ```text
//!  queries ──▶ admission layer ──────────────┐
//!              batch · cache · dedup · shed  │ k queued BFS sources →
//!                                            │ one k×n multi-source BFS
//!                                            ▼
//!  readers ◀── Arc-swapped epoch snapshot ◀── publish Graph(epoch e)
//!                                            ▲
//!                              combine shard sub-matrices (disjoint ∪)
//!                                            │ barrier: all shards at e
//!              ┌── shard 0 drainer ──▶ sub-matrix 0 (pending, zombies)
//!  epoch ──────┤── shard 1 drainer ──▶ sub-matrix 1       ⋮
//!  coordinator └── shard S-1 drainer ▶ sub-matrix S-1
//!                   ▲ replay own slice of the update log
//!  writers ──▶ per-shard bounded queues, routed by [`Partitioner`]
//!              (block / coalesce / reject)
//! ```
//!
//! * **Writers** call [`GraphService::insert_edge`] / [`delete_edge`]
//!   (or [`submit`] with an explicit [`Update`]). A [`Partitioner`] —
//!   row-block by default, 2D/hypersparse or hashed on request — routes
//!   each update to the shard owning its (canonicalized) edge key; when
//!   that shard's bounded queue is full the configured
//!   [`BackpressurePolicy`] decides whether the writer blocks, coalesces
//!   against a queued update to the same edge, or is rejected.
//! * **The epoch coordinator** cuts a consistent batch across *all*
//!   shard queues at once and fans it out to one **drainer thread per
//!   shard**, each replaying its slice into a private sub-matrix through
//!   the deferred-update entry points — insertions become pending
//!   tuples, deletions become zombies — and resolving its batch with a
//!   single assembly on the `par_chunks` pool. A barrier holds until
//!   every shard reaches the epoch; the disjoint sub-matrices are then
//!   unioned and published. One coordinated drain = one **epoch**; a
//!   snapshot never mixes shards from different epochs.
//! * **Readers** call [`GraphService::snapshot`] for raw access, or
//!   better, [`GraphService::query`]: the admission layer batches
//!   concurrent same-algorithm queries (k queued BFS sources run as one
//!   k×n frontier-matrix traversal), serves repeats from an epoch-keyed
//!   result cache, deduplicates identical in-flight queries, and sheds
//!   load under the service's backpressure policy. Queries never block
//!   behind assembly and never observe a torn batch.
//!
//! [`submit`]: GraphService::submit
//! [`delete_edge`]: GraphService::delete_edge
//!
//! # Failure semantics
//!
//! A shard drainer that panics mid-replay *fails the service* instead of
//! hanging it: the panic is caught, the coordinator stops publishing,
//! and every subsequent [`submit`], [`flush`](GraphService::flush), or
//! [`query`](GraphService::query) returns
//! [`ServiceError::DrainerFailed`] carrying the shard and panic message.
//! The last successfully published snapshot remains available through
//! [`snapshot`](GraphService::snapshot) for draining reads. See
//! `docs/SERVING.md` for the operational playbook.
//!
//! # Observability
//!
//! Every epoch opens a `service.epoch` span ([`graphblas::trace`],
//! category `service`) tagged with the epoch number, batch size, shard
//! count, and the pending-tuple/zombie backlog the assemblies resolved;
//! each batched query execution opens a `service.batch` span tagged with
//! its width and epoch. `GRAPHBLAS_TRACE=burble` narrates the serving
//! loop live.
//!
//! For *live* visibility the service also feeds [`graphblas::metrics`]:
//! per-shard queue-depth gauges and processed counters, update counters
//! by outcome, backpressure events by policy, batch-size and
//! batch-width histograms, query counters by algorithm, cache hit/miss
//! counters, query latency, epoch counters, pending/zombie high-water
//! marks, epoch lag, and resident-bytes gauges. Set
//! `GRAPHBLAS_METRICS_ADDR` to scrape them from a running replica
//! (`examples/metrics_service.rs` shows the whole loop).
//!
//! # Example
//!
//! ```
//! use lagraph::service::{GraphService, Query, ServiceConfig};
//! use lagraph::{bfs_level, Graph, GraphKind};
//!
//! let g = Graph::from_edges(64, &[(0, 1), (1, 2)], GraphKind::Undirected)?;
//! let service = GraphService::new(g, ServiceConfig::default())?;
//!
//! // Writer side: stream updates; they are invisible until an epoch turns.
//! service.insert_edge(2, 3, 1.0)?;
//! service.insert_edge(3, 4, 1.0)?;
//!
//! // Force the pending batch into a new epoch (tests / checkpoints).
//! let snap = service.flush()?;
//! assert!(snap.epoch() >= 1);
//!
//! // Reader side, raw: queries run against the immutable snapshot.
//! let levels = bfs_level(snap.graph(), 0)?;
//! assert_eq!(levels.get(4), Some(5)); // 0-1-2-3-4 after the flush
//!
//! // Reader side, admitted: batched, cached, deduplicated.
//! let result = service.query(Query::bfs_level(0))?;
//! assert_eq!(result.levels().unwrap().get(4), Some(5));
//! # Ok::<(), lagraph::service::ServiceError>(())
//! ```

pub mod admission;
pub mod cache;
pub mod partition;
pub mod views;

mod drainer;

pub use admission::{AdmissionConfig, AdmissionStats, Query, QueryResult};
pub use cache::QueryCache;
pub use partition::{EdgeHash, Grid2D, Partitioner, RowBlock};
pub use views::{ViewKind, ViewStat, ViewsConfig};

use crate::graph::{Graph, GraphKind};
use admission::Admission;
use graphblas::metrics;
use graphblas::trace::{self, ArgValue};
use graphblas::{Error as GrbError, Index};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One edge mutation submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Update {
    /// Insert the edge `row → col` with the given weight, or overwrite
    /// its weight if it already exists.
    Insert(Index, Index, f64),
    /// Delete the edge `row → col`; deleting an absent edge is a no-op.
    Delete(Index, Index),
}

impl Update {
    fn key(&self) -> (Index, Index) {
        match *self {
            Update::Insert(i, j, _) => (i, j),
            Update::Delete(i, j) => (i, j),
        }
    }
}

/// What [`GraphService::submit`] does when the target shard's queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the writer until the drainer frees space. Never loses an
    /// update; converts overload into writer latency.
    #[default]
    Block,
    /// Scan the shard for a queued update to the same edge and replace it
    /// in place (last write wins — exactly the pending-tuple dedup rule
    /// one layer down). Falls back to blocking when nothing coalesces.
    /// Right for high-churn workloads that repeatedly touch hot edges.
    Coalesce,
    /// Fail fast: return [`ServiceError::Backpressure`] and let the
    /// caller retry, shed load, or route elsewhere.
    Reject,
}

/// Tuning knobs for [`GraphService`]. `Default` is sized for tests and
/// moderate churn; serving deployments mostly tune `shards`,
/// `queue_capacity`, and the [`BackpressurePolicy`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards: per-shard update queues, drainer threads, and
    /// graph sub-matrices. Routing defaults to a [`RowBlock`]
    /// partitioner over this many shards; ignored when `partitioner` is
    /// set (the partitioner's own shard count wins). Clamped to ≥ 1.
    pub shards: usize,
    /// Per-shard queue bound. A full shard triggers the backpressure
    /// policy, so `shards × queue_capacity` bounds service memory.
    pub queue_capacity: usize,
    /// The full-queue policy.
    pub policy: BackpressurePolicy,
    /// Upper bound on updates replayed per epoch (summed across
    /// shards); a deeper backlog is split across consecutive epochs so
    /// snapshot latency stays bounded.
    pub max_batch: usize,
    /// Keep the shard sub-matrices (and therefore every published
    /// snapshot) in the compressed storage form: each epoch's assembly
    /// re-encodes them on the parallel pool. Cuts resident bytes roughly
    /// in half on power-law graphs for a modest re-encode cost per
    /// epoch. Implied when the initial graph was loaded from `.lagc`.
    pub compressed: bool,
    /// The edge-to-shard routing policy. `None` (the default) builds a
    /// [`RowBlock`] over `shards`; set to a [`Grid2D`] for the
    /// 2D/hypersparse decomposition or [`EdgeHash`] for skew-proof
    /// hashing.
    pub partitioner: Option<Arc<dyn Partitioner>>,
    /// Query-admission tuning (batch window, batch width, cache size).
    pub admission: AdmissionConfig,
    /// Materialized analytic views to register at startup
    /// ([`views::ViewsConfig`]); `None` (the default) starts no views —
    /// they can still be added later with
    /// [`GraphService::register_view`]. Views inapplicable to the
    /// graph's kind are skipped with a warning.
    pub views: Option<ViewsConfig>,
    /// Test failpoint: shard 0's drainer panics when it is asked to
    /// drain this epoch, exercising the failure path end to end.
    #[doc(hidden)]
    pub fail_epoch: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 1 << 14,
            policy: BackpressurePolicy::Block,
            max_batch: 1 << 20,
            compressed: false,
            partitioner: None,
            admission: AdmissionConfig::default(),
            views: None,
            fail_epoch: None,
        }
    }
}

impl ServiceConfig {
    /// Defaults overridden from the environment:
    /// `LAGRAPH_SERVICE_SHARDS` sets the shard count, the admission
    /// knobs come from [`AdmissionConfig::from_env`], and
    /// `LAGRAPH_VIEWS` / `LAGRAPH_VIEWS_STALENESS` configure the
    /// materialized views ([`ViewsConfig::from_env`]). Malformed values
    /// warn once and fall back to the default.
    pub fn from_env() -> Self {
        let mut c = ServiceConfig::default();
        if let Some(s) = env_parse::<usize>("LAGRAPH_SERVICE_SHARDS") {
            c.shards = s.max(1);
        }
        c.admission = AdmissionConfig::from_env();
        c.views = ViewsConfig::from_env();
        c
    }
}

/// Errors surfaced by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The update queue is full and the policy is
    /// [`BackpressurePolicy::Reject`]; `depth` is the queued-update count
    /// at rejection time.
    Backpressure {
        /// Updates queued (submitted but not yet applied) when the
        /// submission was refused.
        depth: u64,
    },
    /// The service is shutting down and no longer accepts updates.
    ShutDown,
    /// A shard drainer panicked. The service stops ingesting (writes and
    /// queries error instead of hanging on an epoch that will never
    /// arrive); the last published snapshot keeps serving raw reads.
    DrainerFailed {
        /// The shard whose drainer died.
        shard: usize,
        /// The panic message, for the post-mortem.
        message: String,
    },
    /// An underlying GraphBLAS operation failed (bad index, bad
    /// dimensions); carries the typed [`graphblas::Error`].
    Graph(GrbError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure { depth } => {
                write!(f, "update queue full ({depth} queued): submission rejected")
            }
            ServiceError::ShutDown => write!(f, "graph service is shut down"),
            ServiceError::DrainerFailed { shard, message } => {
                write!(f, "shard {shard} drainer failed: {message}")
            }
            ServiceError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<GrbError> for ServiceError {
    fn from(e: GrbError) -> Self {
        ServiceError::Graph(e)
    }
}

/// An immutable, epoch-tagged view of the served graph. Cheap to clone
/// (it is handed out as an `Arc`); holding one pins that epoch's fully
/// assembled matrix and cached properties in memory, unaffected by any
/// concurrent updates or later epochs.
#[derive(Debug)]
pub struct Snapshot {
    pub(crate) epoch: u64,
    pub(crate) nedges: usize,
    pub(crate) graph: Arc<Graph>,
}

impl Snapshot {
    /// The epoch that produced this snapshot (0 = the initial graph).
    /// Equals [`Graph::epoch`] of [`Snapshot::graph`] — a reader that
    /// sees them disagree has found a torn publish, which the regression
    /// suite asserts never happens.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stored edge count at publish time. Constant for the lifetime of
    /// the snapshot: the underlying matrix is fully assembled and never
    /// mutated after publication.
    pub fn nedges(&self) -> usize {
        self.nedges
    }

    /// The graph to run queries against.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The graph as a shared handle, for queries that outlive the
    /// snapshot borrow (e.g. spawned onto another thread).
    pub fn graph_arc(&self) -> Arc<Graph> {
        self.graph.clone()
    }
}

/// One update-log shard: a bounded queue plus the condvar writers block
/// on when it is full.
pub(crate) struct Shard {
    pub(crate) queue: Mutex<VecDeque<Update>>,
    pub(crate) not_full: Condvar,
}

/// Distinct per-shard metric series are capped here; shards beyond the
/// cap share one `shard="other"` series (cardinality budget).
const SHARD_GAUGE_CAP: usize = 64;

pub(crate) fn now_unix_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

fn policy_label(p: BackpressurePolicy) -> &'static str {
    match p {
        BackpressurePolicy::Block => "block",
        BackpressurePolicy::Coalesce => "coalesce",
        BackpressurePolicy::Reject => "reject",
    }
}

/// Parse an environment knob, warning once (and falling back to the
/// default) on malformed values.
pub(crate) fn env_parse<T: std::str::FromStr>(name: &'static str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            trace::warn_once(name, &format!("ignoring malformed {name}={raw}"));
            None
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.as_str()
    } else {
        "opaque panic payload"
    }
}

/// The service's live-metric handles ([`graphblas::metrics`]). The
/// registry is process-global, so two services in one process share
/// these series: counters merge, gauges show the last writer. That is
/// the intended deployment shape (one service per serving process);
/// tests that need isolation read [`GraphService::stats`] instead.
pub(crate) struct ServiceMetrics {
    /// Per-shard queue depth, `lagraph_service_queue_depth{shard=…}`;
    /// indexed by shard, entries past [`SHARD_GAUGE_CAP`] share a series.
    pub(crate) queue_depth: Vec<metrics::Gauge>,
    /// Per-shard replayed updates,
    /// `lagraph_service_shard_processed_total{shard=…}`; same capping.
    pub(crate) shard_processed: Vec<metrics::Counter>,
    pub(crate) submitted: metrics::Counter,
    pub(crate) processed: metrics::Counter,
    pub(crate) coalesced: metrics::Counter,
    pub(crate) rejected: metrics::Counter,
    /// Full-queue events by the service's configured policy (counted
    /// once per affected submission, however it resolved).
    pub(crate) backpressure: metrics::Counter,
    /// Updates replayed per epoch.
    pub(crate) batch_updates: metrics::Histogram,
    pub(crate) epochs: metrics::Counter,
    pub(crate) epoch: metrics::Gauge,
    pub(crate) pending_peak: metrics::Gauge,
    pub(crate) zombies_peak: metrics::Gauge,
    /// Resident bytes summed over the shard sub-matrices, refreshed
    /// after each epoch's assemblies.
    pub(crate) master_bytes: metrics::Gauge,
    pub(crate) last_publish: metrics::Gauge,
    /// Wall clock of the last snapshot publish, in unix nanoseconds —
    /// the `lagraph_service_epoch_lag_seconds` callback reads it at
    /// scrape time, so lag is current even when no epoch is turning.
    pub(crate) publish_unix_ns: Arc<AtomicU64>,
}

impl ServiceMetrics {
    fn new(shards: usize, policy: BackpressurePolicy) -> Self {
        let counters = |result: &str| {
            metrics::counter_with(
                "lagraph_service_updates_total",
                "Service updates by outcome.",
                &[("result", result)],
            )
        };
        let depth_overflow = metrics::gauge_with(
            "lagraph_service_queue_depth",
            "Queued updates per shard.",
            &[("shard", "other")],
        );
        let queue_depth = (0..shards)
            .map(|k| {
                if k < SHARD_GAUGE_CAP {
                    metrics::gauge_with(
                        "lagraph_service_queue_depth",
                        "Queued updates per shard.",
                        &[("shard", &k.to_string())],
                    )
                } else {
                    depth_overflow.clone()
                }
            })
            .collect();
        let processed_overflow = metrics::counter_with(
            "lagraph_service_shard_processed_total",
            "Updates replayed per shard drainer.",
            &[("shard", "other")],
        );
        let shard_processed = (0..shards)
            .map(|k| {
                if k < SHARD_GAUGE_CAP {
                    metrics::counter_with(
                        "lagraph_service_shard_processed_total",
                        "Updates replayed per shard drainer.",
                        &[("shard", &k.to_string())],
                    )
                } else {
                    processed_overflow.clone()
                }
            })
            .collect();
        let publish_unix_ns = Arc::new(AtomicU64::new(now_unix_ns()));
        {
            let at = publish_unix_ns.clone();
            metrics::gauge_fn(
                "lagraph_service_epoch_lag_seconds",
                "Seconds since the served snapshot was published (staleness of reads).",
                &[],
                move || Some(now_unix_ns().saturating_sub(at.load(Relaxed)) as f64 / 1e9),
            );
        }
        ServiceMetrics {
            queue_depth,
            shard_processed,
            submitted: counters("submitted"),
            processed: counters("processed"),
            coalesced: counters("coalesced"),
            rejected: counters("rejected"),
            backpressure: metrics::counter_with(
                "lagraph_service_backpressure_total",
                "Submissions that hit a full shard queue, by configured policy.",
                &[("policy", policy_label(policy))],
            ),
            batch_updates: metrics::histogram(
                "lagraph_service_batch_updates",
                "Updates replayed per epoch batch.",
            ),
            epochs: metrics::counter(
                "lagraph_service_epochs_total",
                "Epochs published since process start.",
            ),
            epoch: metrics::gauge("lagraph_service_epoch", "Epoch of the served snapshot."),
            pending_peak: metrics::gauge(
                "lagraph_service_pending_peak",
                "Largest pending-tuple backlog any single epoch assembly resolved.",
            ),
            zombies_peak: metrics::gauge(
                "lagraph_service_zombies_peak",
                "Largest zombie count any single epoch assembly resolved.",
            ),
            master_bytes: metrics::gauge_with(
                "lagraph_service_resident_bytes",
                "Resident bytes of service-owned graph objects.",
                &[("object", "master")],
            ),
            last_publish: metrics::gauge(
                "lagraph_service_last_publish_unixtime_seconds",
                "Wall-clock time of the last snapshot publish.",
            ),
            publish_unix_ns,
        }
    }
}

/// Drain coordination: counts are monotone, so `submitted == processed`
/// means the log is empty and every accepted update is visible in the
/// published snapshot.
#[derive(Default)]
pub(crate) struct DrainState {
    pub(crate) shutdown: bool,
}

pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    pub(crate) capacity: usize,
    pub(crate) policy: BackpressurePolicy,
    pub(crate) kind: GraphKind,
    pub(crate) nvertices: Index,
    pub(crate) partitioner: Arc<dyn Partitioner>,
    /// The currently served snapshot; swapped wholesale per epoch.
    pub(crate) snapshot: RwLock<Arc<Snapshot>>,
    /// Accepted updates (after coalescing: a coalesced write replaces a
    /// queued one and does not bump this).
    pub(crate) submitted: AtomicU64,
    /// Updates replayed into a *published* epoch.
    pub(crate) processed: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
    /// Fast check for drainer failure; details live in `failed`.
    pub(crate) failed_flag: AtomicBool,
    /// `(shard, panic message)` of the first drainer failure.
    pub(crate) failed: Mutex<Option<(usize, String)>>,
    /// Wakes the coordinator (new work or shutdown) and flushers
    /// (publish).
    pub(crate) state: Mutex<DrainState>,
    pub(crate) work: Condvar,
    pub(crate) published: Condvar,
    /// Live-metric handles (no-ops while `graphblas::metrics` is off).
    pub(crate) metrics: ServiceMetrics,
    /// The materialized-view engine; inert (and delta capture skipped)
    /// until a view is registered.
    pub(crate) views: Arc<views::ViewEngine>,
}

impl Shared {
    pub(crate) fn depth(&self) -> u64 {
        self.submitted.load(SeqCst).saturating_sub(self.processed.load(SeqCst))
    }

    /// The drainer-failure error, if a shard drainer has died.
    pub(crate) fn failure(&self) -> Option<ServiceError> {
        if !self.failed_flag.load(SeqCst) {
            return None;
        }
        let g = self.failed.lock().unwrap_or_else(|e| e.into_inner());
        g.as_ref().map(|(shard, message)| ServiceError::DrainerFailed {
            shard: *shard,
            message: message.clone(),
        })
    }
}

/// A concurrent graph-serving handle: snapshot-isolated reads (raw or
/// through batched query admission) multiplexed with a sharded,
/// streamed, batched write path. See the [module docs](self) for the
/// architecture and an end-to-end example.
pub struct GraphService {
    shared: Arc<Shared>,
    admission: Arc<Admission>,
    coordinator: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A point-in-time counter sample from [`GraphService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epoch of the currently served snapshot.
    pub epoch: u64,
    /// Updates accepted but not yet visible in a published snapshot.
    pub queue_depth: u64,
    /// Total updates accepted since construction.
    pub submitted: u64,
    /// Total updates replayed into published epochs.
    pub processed: u64,
    /// Writes that replaced a queued update to the same edge
    /// ([`BackpressurePolicy::Coalesce`]).
    pub coalesced: u64,
    /// Writes refused with [`ServiceError::Backpressure`]
    /// ([`BackpressurePolicy::Reject`]).
    pub rejected: u64,
}

impl GraphService {
    /// Start serving `initial`: split it across the partitioner's
    /// shards, spawn one drainer thread per shard plus the epoch
    /// coordinator, and stand up the admission layer. The graph's kind
    /// governs update semantics: on an undirected graph every
    /// insert/delete is applied to both arcs atomically within one epoch.
    pub fn new(initial: Graph, config: ServiceConfig) -> Result<Self, ServiceError> {
        let capacity = config.queue_capacity.max(2);
        let max_batch = config.max_batch.max(1);
        let kind = initial.kind();
        let nvertices = initial.nvertices();
        let partitioner: Arc<dyn Partitioner> = match &config.partitioner {
            Some(p) => p.clone(),
            None => Arc::new(RowBlock::new(nvertices, config.shards.max(1))),
        };
        let shards = partitioner.shards();
        let compressed = config.compressed;
        // Each shard's private working copy holds exactly the edges the
        // partitioner routes to it; the served snapshot is immutable, so
        // the sub-matrices start as a routed split of the initial graph.
        let workers_state = Arc::new(drainer::split_masters(&initial, &*partitioner, compressed)?);
        let nedges = initial.nedges();
        let initial = Arc::new(initial);
        let views_cfg = config.views.clone().unwrap_or_default();
        let views_engine = Arc::new(views::ViewEngine::new(kind, initial.clone(), &views_cfg));
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| Shard { queue: Mutex::new(VecDeque::new()), not_full: Condvar::new() })
                .collect(),
            capacity,
            policy: config.policy,
            kind,
            nvertices,
            partitioner,
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: initial.epoch(),
                nedges,
                graph: initial,
            })),
            submitted: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            failed_flag: AtomicBool::new(false),
            failed: Mutex::new(None),
            state: Mutex::new(DrainState::default()),
            work: Condvar::new(),
            published: Condvar::new(),
            metrics: ServiceMetrics::new(shards, config.policy),
            views: views_engine,
        });
        // Resident bytes of the *served* snapshot, sampled at scrape
        // time through a weak handle so a dropped service stops
        // reporting instead of keeping itself alive.
        {
            let weak = Arc::downgrade(&shared);
            metrics::gauge_fn(
                "lagraph_service_resident_bytes",
                "Resident bytes of service-owned graph objects.",
                &[("object", "snapshot")],
                move || weak.upgrade().map(|s| s.snapshot.read().graph.resident_bytes() as f64),
            );
        }
        let spawn_err = |e: std::io::Error| {
            ServiceError::Graph(GrbError::invalid(format!("failed to spawn service thread: {e}")))
        };
        let mut workers = Vec::with_capacity(shards);
        for s in 0..shards {
            let ws = workers_state.clone();
            let fail_epoch = config.fail_epoch;
            let handle = std::thread::Builder::new()
                .name(format!("lagraph-shard-drain-{s}"))
                .spawn(move || drainer::shard_loop(ws, s, kind, fail_epoch))
                .map_err(spawn_err);
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => {
                    drainer::shutdown_workers(&workers_state);
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        let coordinator = {
            let shared = shared.clone();
            let ws = workers_state.clone();
            std::thread::Builder::new()
                .name("lagraph-service-drain".into())
                .spawn(move || drainer::coordinator_loop(&shared, &ws, max_batch, compressed))
                .map_err(|e| {
                    drainer::shutdown_workers(&workers_state);
                    spawn_err(e)
                })?
        };
        let admission = Arc::new(Admission::new(config.admission));
        let service = GraphService { shared, admission, coordinator: Some(coordinator), workers };
        if let Some(vcfg) = &config.views {
            for &k in &vcfg.views {
                if let Err(e) = service.register_view(k) {
                    trace::warn_once(
                        "service.views",
                        &format!("skipping configured view {}: {e}", k.name()),
                    );
                }
            }
        }
        Ok(service)
    }

    /// The currently served snapshot. Lock-light: one read-lock
    /// acquisition and an `Arc` clone; the returned snapshot stays valid
    /// (and unchanged) however long the query runs.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot.read().clone()
    }

    /// Run one query through the admission layer: cache lookup, batch
    /// formation for batchable algorithms (concurrent BFS-level queries
    /// fold into one multi-source traversal), in-flight deduplication
    /// for the rest. Errors with [`ServiceError::DrainerFailed`] once
    /// the service has failed — never hangs.
    pub fn query(&self, query: Query) -> Result<QueryResult, ServiceError> {
        self.admission.query(&self.shared, query)
    }

    /// Run a batch of queries as one deterministic admission batch
    /// against a single snapshot: all BFS-level queries execute as one
    /// multi-source traversal, and every result is answered at the same
    /// epoch. Results come back in input order. See [`Query`] for an
    /// example.
    pub fn query_many(&self, queries: &[Query]) -> Result<Vec<QueryResult>, ServiceError> {
        self.admission.query_many(&self.shared, queries)
    }

    /// Counters from the admission layer (batches formed, cache
    /// hits/misses). Per-service, unlike the process-global metrics.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Register (and materialize) one analytic view; from the next
    /// epoch on it is repaired incrementally from each epoch's deltas
    /// and serves matching [`query`](GraphService::query) calls
    /// directly. Errors if the view is undefined for the graph's kind
    /// (e.g. [`ViewKind::TriangleCount`] on a directed graph);
    /// re-registering is a no-op. See [`views`] for the machinery.
    pub fn register_view(&self, kind: ViewKind) -> Result<(), ServiceError> {
        self.shared.views.register(kind)
    }

    /// Per-view repair/rebuild/served counters for every registered
    /// view. Per-service, unlike the process-global
    /// `lagraph_service_view_*` metric series.
    pub fn view_stats(&self) -> Vec<ViewStat> {
        self.shared.views.stats()
    }

    /// Submit one update. Visibility is *eventual*: the update is
    /// applied by its shard's drainer in a subsequent epoch ([`flush`]
    /// forces that and waits). On undirected graphs the update is stored
    /// once in canonical arc order and the owning shard replays *both*
    /// arcs inside the same batch, so a snapshot never shows half an
    /// undirected edge.
    ///
    /// [`flush`]: GraphService::flush
    pub fn submit(&self, update: Update) -> Result<(), ServiceError> {
        if let Some(err) = self.shared.failure() {
            return Err(err);
        }
        if self.shared.shutting_down.load(SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let (i, j) = update.key();
        let n = self.shared.nvertices;
        if i >= n || j >= n {
            return Err(ServiceError::Graph(GrbError::oob(i.max(j), n)));
        }
        // Undirected graphs store one canonical arc per edge; the drainer
        // mirrors it at replay time. This makes pair atomicity structural:
        // there is no second queue entry a batch boundary could split off.
        let update = if self.shared.kind == GraphKind::Undirected && i > j {
            match update {
                Update::Insert(i, j, w) => Update::Insert(j, i, w),
                Update::Delete(i, j) => Update::Delete(j, i),
            }
        } else {
            update
        };
        let key = update.key();
        // Pure-function routing: every update to one edge goes through
        // one shard, so per-edge order is preserved at any shard count.
        let si = self.shared.partitioner.shard_of(key.0, key.1);
        let shard = &self.shared.shards[si];
        let mut q = shard.queue.lock().expect("shard lock");
        let mut hit_backpressure = false;
        while q.len() >= self.shared.capacity {
            if !hit_backpressure {
                hit_backpressure = true;
                self.shared.metrics.backpressure.inc();
            }
            match self.shared.policy {
                BackpressurePolicy::Reject => {
                    self.shared.rejected.fetch_add(1, SeqCst);
                    self.shared.metrics.rejected.inc();
                    let depth = self.shared.depth();
                    trace::service_instant("service.reject", vec![("depth", ArgValue::U64(depth))]);
                    return Err(ServiceError::Backpressure { depth });
                }
                BackpressurePolicy::Coalesce => {
                    if let Some(slot) = q.iter_mut().find(|u| u.key() == key) {
                        *slot = update;
                        self.shared.coalesced.fetch_add(1, SeqCst);
                        self.shared.metrics.coalesced.inc();
                        return Ok(());
                    }
                    q = self.block_until_room(shard, q);
                }
                BackpressurePolicy::Block => q = self.block_until_room(shard, q),
            }
            if let Some(err) = self.shared.failure() {
                return Err(err);
            }
            if self.shared.shutting_down.load(SeqCst) {
                return Err(ServiceError::ShutDown);
            }
        }
        q.push_back(update);
        self.shared.metrics.queue_depth[si].set(q.len() as f64);
        drop(q);
        self.shared.submitted.fetch_add(1, SeqCst);
        self.shared.metrics.submitted.inc();
        self.shared.work.notify_one();
        Ok(())
    }

    /// Wait (with a wakeup-loss-proof timeout loop) for the drainer to
    /// free room in the shard's queue. Returns with the lock held; the
    /// caller re-checks capacity and shutdown.
    fn block_until_room<'a>(
        &self,
        shard: &'a Shard,
        mut q: std::sync::MutexGuard<'a, VecDeque<Update>>,
    ) -> std::sync::MutexGuard<'a, VecDeque<Update>> {
        self.shared.work.notify_one();
        while q.len() >= self.shared.capacity && !self.shared.shutting_down.load(SeqCst) {
            let (guard, _) =
                shard.not_full.wait_timeout(q, Duration::from_millis(5)).expect("shard lock");
            q = guard;
        }
        q
    }

    /// Insert (or re-weight) an edge. Undirected graphs mirror it.
    pub fn insert_edge(&self, i: Index, j: Index, weight: f64) -> Result<(), ServiceError> {
        self.submit(Update::Insert(i, j, weight))
    }

    /// Delete an edge (no-op if absent). Undirected graphs mirror it.
    pub fn delete_edge(&self, i: Index, j: Index) -> Result<(), ServiceError> {
        self.submit(Update::Delete(i, j))
    }

    /// Block until every update accepted before this call is visible in
    /// the served snapshot, and return that snapshot. Errors instead of
    /// hanging if the service shuts down or a shard drainer fails while
    /// waiting.
    pub fn flush(&self) -> Result<Arc<Snapshot>, ServiceError> {
        if let Some(err) = self.shared.failure() {
            return Err(err);
        }
        if self.shared.shutting_down.load(SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let target = self.shared.submitted.load(SeqCst);
        let mut state = self.shared.state.lock().expect("state lock");
        while self.shared.processed.load(SeqCst) < target {
            if let Some(err) = self.shared.failure() {
                return Err(err);
            }
            if state.shutdown {
                return Err(ServiceError::ShutDown);
            }
            self.shared.work.notify_one();
            let (guard, _) = self
                .shared
                .published
                .wait_timeout(state, Duration::from_millis(5))
                .expect("state lock");
            state = guard;
        }
        drop(state);
        Ok(self.snapshot())
    }

    /// Current counters. All values are monotone except `queue_depth`
    /// (`submitted − processed`).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            epoch: self.snapshot().epoch(),
            queue_depth: self.shared.depth(),
            submitted: self.shared.submitted.load(SeqCst),
            processed: self.shared.processed.load(SeqCst),
            coalesced: self.shared.coalesced.load(SeqCst),
            rejected: self.shared.rejected.load(SeqCst),
        }
    }

    /// Stop accepting updates, drain what was already accepted into a
    /// final epoch, and join the coordinator and every shard drainer.
    /// Called automatically on drop; explicit calls get the final
    /// snapshot back.
    pub fn shutdown(&mut self) -> Arc<Snapshot> {
        self.shared.shutting_down.store(true, SeqCst);
        {
            let mut state = self.shared.state.lock().expect("state lock");
            state.shutdown = true;
        }
        self.shared.work.notify_one();
        for s in &self.shared.shards {
            s.not_full.notify_all();
        }
        if let Some(h) = self.coordinator.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.published.notify_all();
        self.snapshot()
    }
}

impl Drop for GraphService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for GraphService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("GraphService")
            .field("epoch", &s.epoch)
            .field("queue_depth", &s.queue_depth)
            .field("nvertices", &self.shared.nvertices)
            .field("shards", &self.shared.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_with(policy: BackpressurePolicy, capacity: usize, kind: GraphKind) -> GraphService {
        let g = Graph::from_edges(32, &[(0, 1), (1, 2)], kind).expect("graph");
        GraphService::new(
            g,
            ServiceConfig {
                shards: 2,
                queue_capacity: capacity,
                policy,
                max_batch: 1 << 20,
                ..ServiceConfig::default()
            },
        )
        .expect("service")
    }

    #[test]
    fn initial_snapshot_is_epoch_zero() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.nedges(), 2);
        assert_eq!(snap.graph().epoch(), 0);
    }

    #[test]
    fn flush_publishes_updates_in_one_epoch() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        s.insert_edge(5, 6, 2.0).expect("insert");
        s.insert_edge(6, 7, 3.0).expect("insert");
        s.delete_edge(0, 1).expect("delete");
        let snap = s.flush().expect("flush");
        assert!(snap.epoch() >= 1);
        assert_eq!(snap.graph().epoch(), snap.epoch());
        assert_eq!(snap.graph().a().get(5, 6), Some(2.0));
        assert_eq!(snap.graph().a().get(6, 7), Some(3.0));
        assert_eq!(snap.graph().a().get(0, 1), None);
        assert_eq!(snap.nedges(), snap.graph().a().nvals());
    }

    #[test]
    fn old_snapshot_is_isolated_from_later_epochs() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let before = s.snapshot();
        s.insert_edge(9, 9, 1.0).expect("insert");
        let after = s.flush().expect("flush");
        assert_eq!(before.graph().a().get(9, 9), None); // frozen at epoch 0
        assert_eq!(after.graph().a().get(9, 9), Some(1.0));
        assert!(after.epoch() > before.epoch());
    }

    #[test]
    fn undirected_inserts_are_mirrored_atomically() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Undirected);
        s.insert_edge(3, 4, 2.5).expect("insert");
        let snap = s.flush().expect("flush");
        assert_eq!(snap.graph().a().get(3, 4), Some(2.5));
        assert_eq!(snap.graph().a().get(4, 3), Some(2.5));
        snap.graph().check().expect("still symmetric");
    }

    #[test]
    fn out_of_bounds_rejected_at_submit() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let err = s.insert_edge(99, 0, 1.0).expect_err("oob");
        assert!(matches!(err, ServiceError::Graph(GrbError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn reject_policy_sheds_load() {
        // Stop the drainer first so the overflow is deterministic, then
        // re-open the intake: submissions beyond capacity must reject.
        let mut s = service_with(BackpressurePolicy::Reject, 2, GraphKind::Directed);
        let _ = s.shutdown();
        s.shared.shutting_down.store(false, SeqCst);
        s.shared.state.lock().expect("state").shutdown = false;
        s.insert_edge(1, 2, 0.0).expect("fits");
        s.insert_edge(1, 3, 0.0).expect("fits"); // row 1 → shard 0; capacity is per shard
        let mut rejected = 0;
        for k in 0..8 {
            if let Err(ServiceError::Backpressure { depth }) = s.insert_edge(1, 2, k as f64) {
                assert!(depth >= 2);
                rejected += 1;
            }
        }
        assert!(rejected > 0, "capacity-2 shard absorbed 8 extra updates");
        assert_eq!(s.stats().rejected, rejected);
    }

    #[test]
    fn coalesce_replaces_queued_update_when_full() {
        let mut s = service_with(BackpressurePolicy::Coalesce, 2, GraphKind::Directed);
        let _ = s.shutdown();
        s.shared.shutting_down.store(false, SeqCst);
        s.shared.state.lock().expect("state").shutdown = false;
        s.insert_edge(1, 2, 1.0).expect("fits");
        s.insert_edge(1, 2, 2.0).expect("fits"); // same key → same shard, now full
        s.insert_edge(1, 2, 9.0).expect("coalesces in place");
        let st = s.stats();
        assert_eq!(st.coalesced, 1);
        assert_eq!(st.submitted, 2); // the replacement did not grow the log
    }

    #[test]
    fn coalesced_last_write_wins_end_to_end() {
        let s = service_with(BackpressurePolicy::Coalesce, 4, GraphKind::Directed);
        s.insert_edge(2, 3, 1.0).expect("a");
        s.insert_edge(2, 3, 9.0).expect("b");
        let snap = s.flush().expect("flush");
        assert_eq!(snap.graph().a().get(2, 3), Some(9.0));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let mut s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let _ = s.shutdown();
        assert_eq!(s.insert_edge(1, 2, 1.0), Err(ServiceError::ShutDown));
    }

    #[test]
    fn stats_are_coherent_after_flush() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        for k in 0..10 {
            s.insert_edge(k, (k + 1) % 32, 1.0).expect("insert");
        }
        let _ = s.flush().expect("flush");
        let st = s.stats();
        assert_eq!(st.submitted, 10);
        assert_eq!(st.processed, 10);
        assert_eq!(st.queue_depth, 0);
        assert!(st.epoch >= 1);
    }

    #[test]
    fn grid_partitioner_serves_updates() {
        let g = Graph::from_edges(16, &[(0, 1), (1, 2)], GraphKind::Undirected).expect("graph");
        let s = GraphService::new(
            g,
            ServiceConfig {
                partitioner: Some(Arc::new(Grid2D::new(16, 2, 2))),
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        s.insert_edge(14, 3, 1.0).expect("insert"); // canonical (3,14) → off-diagonal block
        s.delete_edge(0, 1).expect("delete");
        let snap = s.flush().expect("flush");
        assert_eq!(snap.graph().a().get(14, 3), Some(1.0));
        assert_eq!(snap.graph().a().get(3, 14), Some(1.0));
        assert_eq!(snap.graph().a().get(0, 1), None);
        snap.graph().check().expect("still symmetric");
    }

    #[test]
    fn drainer_panic_fails_flush_and_submit() {
        let g = Graph::from_edges(16, &[(0, 1)], GraphKind::Directed).expect("graph");
        let s = GraphService::new(
            g,
            ServiceConfig { shards: 2, fail_epoch: Some(1), ..ServiceConfig::default() },
        )
        .expect("service");
        s.insert_edge(2, 3, 1.0).expect("accepted before the failure");
        let err = s.flush().expect_err("flush must surface the drainer panic");
        assert!(matches!(err, ServiceError::DrainerFailed { shard: 0, .. }), "got {err:?}");
        // Subsequent writes and queries error instead of hanging.
        let err = s.insert_edge(4, 5, 1.0).expect_err("submit after failure");
        assert!(matches!(err, ServiceError::DrainerFailed { .. }));
        let err = s.query(Query::bfs_level(0)).expect_err("query after failure");
        assert!(matches!(err, ServiceError::DrainerFailed { .. }));
        // The pre-failure snapshot keeps serving raw reads.
        assert_eq!(s.snapshot().epoch(), 0);
    }

    #[test]
    fn query_serves_and_caches_bfs() {
        let g =
            Graph::from_edges(16, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("graph");
        let s = GraphService::new(g, ServiceConfig::default()).expect("service");
        let r1 = s.query(Query::bfs_level(0)).expect("query");
        assert_eq!(r1.levels().expect("levels").get(3), Some(4));
        let r2 = s.query(Query::bfs_level(0)).expect("repeat");
        assert_eq!(r2.levels().expect("levels").get(3), Some(4));
        let st = s.admission_stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.cache_hits, 1, "repeat within the epoch must hit the cache");
    }
}
