//! Query admission: batching, caching, and deduplication in front of
//! the snapshot read path.
//!
//! Every read goes through [`GraphService::query`]; admission decides
//! *how* it executes:
//!
//! * **Batching** — concurrent BFS-level queries are folded into one
//!   multi-source traversal: the first arrival becomes the *leader*,
//!   waits one `batch_window` for followers, then runs all k collected
//!   sources as a single k×n frontier-matrix BFS
//!   ([`crate::algorithms::bfs_level_batch`]) — one
//!   masked `mxm` per level advances every search at once, so k queries
//!   cost one traversal of the shared structure instead of k.
//! * **Caching** — results land in an epoch-keyed [`QueryCache`]; a
//!   repeat of a canonicalized [`Query`] within the same epoch is a
//!   clone, and every epoch advance invalidates wholesale.
//! * **Deduplication** — identical in-flight queries (same canonical
//!   key) share one execution and one result, for the non-batchable
//!   algorithms too.
//! * **Load shedding** — a full admission queue applies the service's
//!   [`BackpressurePolicy`]: `Reject` fails
//!   fast with [`ServiceError::Backpressure`], the blocking policies
//!   wait for the current batch to clear.
//!
//! Queries run on *caller* threads against immutable snapshots — a
//! panicking algorithm is caught and surfaced as an error to every
//! waiter sharing the batch, never a hang.
//!
//! [`GraphService::query`]: super::GraphService::query

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use graphblas::metrics;
use graphblas::trace;
use graphblas::{Error as GrbError, Index, Vector};

use super::cache::QueryCache;
use super::{panic_message, BackpressurePolicy, ServiceError, Shared, Snapshot};
use crate::algorithms::{
    bfs_level, bfs_level_batch, connected_components, core_numbers, pagerank, triangle_count,
    PageRankOptions, TriCountMethod,
};

/// Tuning knobs for the admission layer. Defaults suit tests and modest
/// concurrency; serving deployments mostly tune `batch_window` (latency
/// sacrificed to widen batches) and `cache_capacity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// How long a batch leader waits for same-algorithm followers before
    /// executing. Zero disables the wait (batches still form from
    /// queries that arrive while an earlier batch is executing).
    pub batch_window: Duration,
    /// Widest multi-source BFS one execution runs; a wider collection is
    /// split into consecutive batches of at most this many sources.
    pub max_batch_width: usize,
    /// Result-cache entries kept per epoch (0 disables caching).
    pub cache_capacity: usize,
    /// Queries queued for batching before the service's backpressure
    /// policy applies to *reads* as well.
    pub max_pending: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            batch_window: Duration::from_micros(500),
            max_batch_width: 64,
            cache_capacity: 256,
            max_pending: 1024,
        }
    }
}

impl AdmissionConfig {
    /// Defaults overridden by the `LAGRAPH_SERVICE_BATCH_WINDOW_US` and
    /// `LAGRAPH_SERVICE_CACHE` environment variables. Malformed values
    /// warn once (via [`graphblas::trace::warn_once`]) and fall back to
    /// the default.
    pub fn from_env() -> Self {
        let mut c = AdmissionConfig::default();
        if let Some(us) = super::env_parse::<u64>("LAGRAPH_SERVICE_BATCH_WINDOW_US") {
            c.batch_window = Duration::from_micros(us);
        }
        if let Some(n) = super::env_parse::<usize>("LAGRAPH_SERVICE_CACHE") {
            c.cache_capacity = n;
        }
        c
    }
}

/// A canonicalized read query. Construct through the named constructors
/// — they normalize parameters (e.g. float options to bit patterns, so
/// `-0.0` and `+0.0` damping are one cache key) and keep the set of
/// admissible algorithms closed.
///
/// # Examples
///
/// Submitting a batch of queries against one snapshot — concurrent
/// BFS-level queries collapse into a single multi-source traversal:
///
/// ```
/// use lagraph::service::{GraphService, Query, ServiceConfig};
/// use lagraph::{Graph, GraphKind};
///
/// let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected)?;
/// let service = GraphService::new(g, ServiceConfig::default())?;
///
/// // Three sources, one traversal: the admission layer runs them as a
/// // single k×n frontier-matrix BFS.
/// let queries = [Query::bfs_level(0), Query::bfs_level(1), Query::bfs_level(2)];
/// let results = service.query_many(&queries)?;
/// assert_eq!(results.len(), 3);
/// let levels = results[0].levels().expect("a BFS result");
/// assert_eq!(levels.get(3), Some(4)); // 0→1→2→3, source at depth 1
/// # Ok::<(), lagraph::service::ServiceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query(pub(crate) QueryKind);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum QueryKind {
    BfsLevel { source: Index },
    PageRank { damping_bits: u64, tolerance_bits: u64, max_iters: usize },
    TriangleCount,
    ConnectedComponents,
    Degrees,
    CoreNumbers,
}

/// Normalize a float for use in a hashable cache key: `-0.0` folds to
/// `+0.0`, everything else keeps its exact bit pattern.
pub(crate) fn canon_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

impl Query {
    /// A single-source BFS level query (the batchable one).
    pub fn bfs_level(source: Index) -> Self {
        Query(QueryKind::BfsLevel { source })
    }

    /// A PageRank query with the given options, canonicalized so that
    /// bit-identical option sets share one cache key.
    pub fn pagerank(opts: &PageRankOptions) -> Self {
        Query(QueryKind::PageRank {
            damping_bits: canon_bits(opts.damping),
            tolerance_bits: canon_bits(opts.tolerance),
            max_iters: opts.max_iters,
        })
    }

    /// A global triangle-count query.
    pub fn triangle_count() -> Self {
        Query(QueryKind::TriangleCount)
    }

    /// A connected-components labeling query (undirected graphs).
    /// Served directly from the materialized view when one is
    /// registered and current.
    pub fn connected_components() -> Self {
        Query(QueryKind::ConnectedComponents)
    }

    /// An out-degree-counts query (sparse: vertices with no arcs have
    /// no entry). Served from the degree view when registered.
    pub fn degrees() -> Self {
        Query(QueryKind::Degrees)
    }

    /// A k-core-numbers query (undirected graphs). Served from the
    /// core-numbers view when registered.
    pub fn core_numbers() -> Self {
        Query(QueryKind::CoreNumbers)
    }

    /// The algorithm label, as used in traces and the
    /// `lagraph_service_queries_total{algo=…}` metric.
    pub fn algorithm(&self) -> &'static str {
        match self.0 {
            QueryKind::BfsLevel { .. } => "bfs_level",
            QueryKind::PageRank { .. } => "pagerank",
            QueryKind::TriangleCount => "triangle_count",
            QueryKind::ConnectedComponents => "connected_components",
            QueryKind::Degrees => "degree",
            QueryKind::CoreNumbers => "core_numbers",
        }
    }
}

/// The result of a [`Query`], shared behind `Arc`s so cache hits and
/// deduplicated waiters clone handles, not data.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// BFS levels: `levels(v) = depth`, source at depth 1, unreachable
    /// vertices absent.
    Levels(Arc<Vector<i32>>),
    /// PageRank ranks plus the iteration count at convergence.
    Ranks {
        /// The rank vector (sums to ≈ 1).
        ranks: Arc<Vector<f64>>,
        /// Iterations PageRank ran before meeting its tolerance.
        iterations: usize,
    },
    /// A global triangle count.
    Count(u64),
    /// Connected-component labels: `components(v)` = the smallest vertex
    /// id in `v`'s component.
    Components(Arc<Vector<u64>>),
    /// Out-degree counts; vertices with no arcs are absent.
    Degrees(Arc<Vector<i64>>),
    /// k-core numbers: `cores(v)` = the largest k with `v` in the
    /// k-core.
    Cores(Arc<Vector<i64>>),
}

impl QueryResult {
    /// The BFS level vector, if this is a [`QueryResult::Levels`].
    pub fn levels(&self) -> Option<&Vector<i32>> {
        match self {
            QueryResult::Levels(v) => Some(v),
            _ => None,
        }
    }

    /// The rank vector and iteration count, if this is
    /// [`QueryResult::Ranks`].
    pub fn ranks(&self) -> Option<(&Vector<f64>, usize)> {
        match self {
            QueryResult::Ranks { ranks, iterations } => Some((ranks, *iterations)),
            _ => None,
        }
    }

    /// The triangle count, if this is a [`QueryResult::Count`].
    pub fn count(&self) -> Option<u64> {
        match self {
            QueryResult::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The component labels, if this is a [`QueryResult::Components`].
    pub fn components(&self) -> Option<&Vector<u64>> {
        match self {
            QueryResult::Components(v) => Some(v),
            _ => None,
        }
    }

    /// The degree counts, if this is a [`QueryResult::Degrees`].
    pub fn degrees(&self) -> Option<&Vector<i64>> {
        match self {
            QueryResult::Degrees(v) => Some(v),
            _ => None,
        }
    }

    /// The core numbers, if this is a [`QueryResult::Cores`].
    pub fn cores(&self) -> Option<&Vector<i64>> {
        match self {
            QueryResult::Cores(v) => Some(v),
            _ => None,
        }
    }
}

/// A point-in-time sample of the admission layer's counters, from
/// [`GraphService::admission_stats`](super::GraphService::admission_stats).
/// Per-service (unlike the process-global metrics registry), so tests
/// can assert on them in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Queries admitted (including cache hits).
    pub queries: u64,
    /// Batch executions (a batch of width 1 still counts).
    pub batches: u64,
    /// Queries answered by a batch of width ≥ 2 — the traversals saved
    /// by batching is `batched_queries − (their batches)`.
    pub batched_queries: u64,
    /// Queries answered from the epoch-keyed result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache and executed.
    pub cache_misses: u64,
    /// Queries answered directly from a materialized view (bypassing
    /// cache, batching, and the query kernel).
    pub view_hits: u64,
}

#[derive(Default)]
struct StatsInner {
    queries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    view_hits: AtomicU64,
}

/// One waiter slot: the leader (or direct executor) fills it exactly
/// once; any number of followers block on it.
struct Slot {
    state: Mutex<Option<Result<QueryResult, ServiceError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot { state: Mutex::new(None), cv: Condvar::new() }
    }

    fn fill(&self, r: Result<QueryResult, ServiceError>) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *s = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<QueryResult, ServiceError> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = s.as_ref() {
                return r.clone();
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct AdmState {
    /// BFS sources awaiting the current batch leader (unique sources;
    /// duplicate arrivals share the queued slot).
    pending: Vec<(Index, Arc<Slot>)>,
    /// Whether a leader is collecting `pending` right now. Invariant:
    /// `pending` non-empty ⟹ a leader is active and will take it all.
    leader_active: bool,
    /// Non-batchable queries currently executing, for dedup.
    inflight: HashMap<Query, Arc<Slot>>,
}

struct AdmissionMetrics {
    batch_width: metrics::Histogram,
    cache_hit: metrics::Counter,
    cache_miss: metrics::Counter,
    queries_bfs: metrics::Counter,
    queries_pagerank: metrics::Counter,
    queries_tricount: metrics::Counter,
    queries_cc: metrics::Counter,
    queries_degree: metrics::Counter,
    queries_kcore: metrics::Counter,
    query_seconds: metrics::Histogram,
}

impl AdmissionMetrics {
    fn new() -> Self {
        let cache = |result: &str| {
            metrics::counter_with(
                "lagraph_service_query_cache_total",
                "Query-cache lookups by result.",
                &[("result", result)],
            )
        };
        let queries = |algo: &str| {
            metrics::counter_with(
                "lagraph_service_queries_total",
                "Queries admitted, by algorithm.",
                &[("algo", algo)],
            )
        };
        AdmissionMetrics {
            batch_width: metrics::histogram(
                "lagraph_service_batch_width",
                "Sources per batched query execution.",
            ),
            cache_hit: cache("hit"),
            cache_miss: cache("miss"),
            queries_bfs: queries("bfs_level"),
            queries_pagerank: queries("pagerank"),
            queries_tricount: queries("triangle_count"),
            queries_cc: queries("connected_components"),
            queries_degree: queries("degree"),
            queries_kcore: queries("core_numbers"),
            query_seconds: metrics::histogram_scaled(
                "lagraph_service_query_seconds",
                "End-to-end query latency through admission (seconds).",
                &[],
                1e-9,
            ),
        }
    }

    fn queries(&self, q: &Query) -> &metrics::Counter {
        match q.0 {
            QueryKind::BfsLevel { .. } => &self.queries_bfs,
            QueryKind::PageRank { .. } => &self.queries_pagerank,
            QueryKind::TriangleCount => &self.queries_tricount,
            QueryKind::ConnectedComponents => &self.queries_cc,
            QueryKind::Degrees => &self.queries_degree,
            QueryKind::CoreNumbers => &self.queries_kcore,
        }
    }
}

/// The admission layer: one per [`GraphService`](super::GraphService).
pub(crate) struct Admission {
    config: AdmissionConfig,
    cache: QueryCache,
    state: Mutex<AdmState>,
    /// Signals `pending` shrinking (for `max_pending` backpressure).
    state_cv: Condvar,
    stats: StatsInner,
    metrics: AdmissionMetrics,
}

impl Admission {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        Admission {
            cache: QueryCache::new(config.cache_capacity),
            config,
            state: Mutex::new(AdmState {
                pending: Vec::new(),
                leader_active: false,
                inflight: HashMap::new(),
            }),
            state_cv: Condvar::new(),
            stats: StatsInner::default(),
            metrics: AdmissionMetrics::new(),
        }
    }

    pub(crate) fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            queries: self.stats.queries.load(Relaxed),
            batches: self.stats.batches.load(Relaxed),
            batched_queries: self.stats.batched_queries.load(Relaxed),
            cache_hits: self.stats.cache_hits.load(Relaxed),
            cache_misses: self.stats.cache_misses.load(Relaxed),
            view_hits: self.stats.view_hits.load(Relaxed),
        }
    }

    /// Admit one query: cache lookup, then either the BFS batching path
    /// or direct (deduplicated) execution.
    pub(crate) fn query(&self, shared: &Shared, q: Query) -> Result<QueryResult, ServiceError> {
        let t0 = Instant::now();
        self.stats.queries.fetch_add(1, Relaxed);
        self.metrics.queries(&q).inc();
        let snap = shared.snapshot.read().clone();
        // Materialized views answer first: a registered, epoch-current
        // view bypasses the cache, batching, and the query kernel. The
        // check runs *before* the failure check on purpose: views only
        // ever reflect successfully published epochs, so — like raw
        // `snapshot()` reads — they keep answering at the last good
        // epoch after a drainer failure.
        if let Some(hit) = shared.views.serve(snap.epoch(), &q.0) {
            self.stats.view_hits.fetch_add(1, Relaxed);
            self.metrics.query_seconds.observe(t0.elapsed().as_nanos() as u64);
            return Ok(hit);
        }
        if let Some(err) = shared.failure() {
            return Err(err);
        }
        if let Some(hit) = self.cache.get(snap.epoch(), &q) {
            self.stats.cache_hits.fetch_add(1, Relaxed);
            self.metrics.cache_hit.inc();
            self.metrics.query_seconds.observe(t0.elapsed().as_nanos() as u64);
            return Ok(hit);
        }
        self.stats.cache_misses.fetch_add(1, Relaxed);
        self.metrics.cache_miss.inc();
        let result = match q.0 {
            QueryKind::BfsLevel { source } => self.bfs_batched(shared, source),
            _ => self.execute_dedup(q, &snap),
        };
        self.metrics.query_seconds.observe(t0.elapsed().as_nanos() as u64);
        result
    }

    /// Admit `queries` as one deterministic batch against a single
    /// snapshot: all BFS-level queries run as one multi-source
    /// traversal (chunked at `max_batch_width`), everything else
    /// executes directly. Results come back in input order, all
    /// answered at the same epoch.
    pub(crate) fn query_many(
        &self,
        shared: &Shared,
        queries: &[Query],
    ) -> Result<Vec<QueryResult>, ServiceError> {
        if let Some(err) = shared.failure() {
            return Err(err);
        }
        self.stats.queries.fetch_add(queries.len() as u64, Relaxed);
        let snap = shared.snapshot.read().clone();
        let epoch = snap.epoch();
        let mut out: Vec<Option<QueryResult>> = vec![None; queries.len()];
        // Unique BFS sources still needing execution, with the output
        // positions each answers.
        let mut sources: Vec<Index> = Vec::new();
        let mut positions: Vec<Vec<usize>> = Vec::new();
        for (idx, q) in queries.iter().enumerate() {
            self.metrics.queries(q).inc();
            if let Some(hit) = shared.views.serve(epoch, &q.0) {
                self.stats.view_hits.fetch_add(1, Relaxed);
                out[idx] = Some(hit);
                continue;
            }
            if let Some(hit) = self.cache.get(epoch, q) {
                self.stats.cache_hits.fetch_add(1, Relaxed);
                self.metrics.cache_hit.inc();
                out[idx] = Some(hit);
                continue;
            }
            self.stats.cache_misses.fetch_add(1, Relaxed);
            self.metrics.cache_miss.inc();
            match q.0 {
                QueryKind::BfsLevel { source } => {
                    if let Some(k) = sources.iter().position(|&s| s == source) {
                        positions[k].push(idx);
                    } else {
                        sources.push(source);
                        positions.push(vec![idx]);
                    }
                }
                _ => {
                    let r = self.execute_dedup(*q, &snap)?;
                    out[idx] = Some(r);
                }
            }
        }
        let width = self.config.max_batch_width.max(1);
        for (chunk, pos_chunk) in sources.chunks(width).zip(positions.chunks(width)) {
            let levels = self.run_bfs_chunk(&snap, chunk)?;
            for ((src, lv), targets) in chunk.iter().zip(levels).zip(pos_chunk) {
                let r = QueryResult::Levels(Arc::new(lv));
                self.cache.insert(epoch, Query::bfs_level(*src), r.clone());
                for &idx in targets {
                    out[idx] = Some(r.clone());
                }
            }
        }
        Ok(out.into_iter().map(|r| r.expect("every query answered")).collect())
    }

    /// The leader/follower BFS batching protocol (see module docs).
    fn bfs_batched(&self, shared: &Shared, source: Index) -> Result<QueryResult, ServiceError> {
        if source >= shared.nvertices {
            return Err(ServiceError::Graph(GrbError::oob(source, shared.nvertices)));
        }
        let (slot, leader) = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.pending.len() >= self.config.max_pending {
                if shared.policy == BackpressurePolicy::Reject {
                    return Err(ServiceError::Backpressure { depth: st.pending.len() as u64 });
                }
                let (guard, _) = self
                    .state_cv
                    .wait_timeout(st, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if let Some(err) = shared.failure() {
                    return Err(err);
                }
            }
            if let Some((_, s)) = st.pending.iter().find(|(s0, _)| *s0 == source) {
                (s.clone(), false)
            } else {
                let s = Arc::new(Slot::new());
                st.pending.push((source, s.clone()));
                let lead = !st.leader_active;
                if lead {
                    st.leader_active = true;
                }
                (s, lead)
            }
        };
        if leader {
            if !self.config.batch_window.is_zero() {
                std::thread::sleep(self.config.batch_window);
            }
            let taken = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.leader_active = false;
                std::mem::take(&mut st.pending)
            };
            self.state_cv.notify_all();
            self.execute_bfs_batch(shared, taken);
        }
        slot.wait()
    }

    /// Run one collected batch, chunked at `max_batch_width`, and fill
    /// every slot — on success, error, or panic alike.
    fn execute_bfs_batch(&self, shared: &Shared, taken: Vec<(Index, Arc<Slot>)>) {
        if taken.is_empty() {
            return;
        }
        let snap = shared.snapshot.read().clone();
        let epoch = snap.epoch();
        for chunk in taken.chunks(self.config.max_batch_width.max(1)) {
            let sources: Vec<Index> = chunk.iter().map(|(s, _)| *s).collect();
            match self.run_bfs_chunk(&snap, &sources) {
                Ok(levels) => {
                    for ((src, slot), lv) in chunk.iter().zip(levels) {
                        let r = QueryResult::Levels(Arc::new(lv));
                        self.cache.insert(epoch, Query::bfs_level(*src), r.clone());
                        slot.fill(Ok(r));
                    }
                }
                Err(err) => {
                    for (_, slot) in chunk {
                        slot.fill(Err(err.clone()));
                    }
                }
            }
        }
    }

    /// One multi-source (or single-source, width 1) BFS execution with
    /// batch accounting; panics are caught and surfaced as errors.
    fn run_bfs_chunk(
        &self,
        snap: &Snapshot,
        sources: &[Index],
    ) -> Result<Vec<Vector<i32>>, ServiceError> {
        let width = sources.len();
        let mut span = trace::service_span("service.batch");
        span.arg("algo", "bfs_level");
        span.arg("width", width);
        span.arg("epoch", snap.epoch());
        self.metrics.batch_width.observe(width as u64);
        self.stats.batches.fetch_add(1, Relaxed);
        if width >= 2 {
            self.stats.batched_queries.fetch_add(width as u64, Relaxed);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if width == 1 {
                bfs_level(snap.graph(), sources[0]).map(|v| vec![v])
            } else {
                bfs_level_batch(snap.graph(), sources)
            }
        }));
        match outcome {
            Ok(r) => r.map_err(ServiceError::Graph),
            Err(p) => Err(ServiceError::Graph(GrbError::invalid(format!(
                "query execution panicked: {}",
                panic_message(&*p)
            )))),
        }
    }

    /// Direct execution for the non-batchable algorithms, deduplicating
    /// identical in-flight queries onto one execution.
    fn execute_dedup(&self, q: Query, snap: &Snapshot) -> Result<QueryResult, ServiceError> {
        let slot = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = st.inflight.get(&q) {
                let s = s.clone();
                drop(st);
                return s.wait();
            }
            let s = Arc::new(Slot::new());
            st.inflight.insert(q, s.clone());
            s
        };
        let mut span = trace::service_span("service.query");
        span.arg("algo", q.algorithm());
        span.arg("epoch", snap.epoch());
        let outcome = catch_unwind(AssertUnwindSafe(|| run_query(&q, snap)));
        let result = match outcome {
            Ok(r) => r,
            Err(p) => Err(ServiceError::Graph(GrbError::invalid(format!(
                "query execution panicked: {}",
                panic_message(&*p)
            )))),
        };
        if let Ok(r) = &result {
            self.cache.insert(snap.epoch(), q, r.clone());
        }
        slot.fill(result.clone());
        self.state.lock().unwrap_or_else(|e| e.into_inner()).inflight.remove(&q);
        result
    }
}

/// Execute a query against one snapshot (no caching, no batching).
fn run_query(q: &Query, snap: &Snapshot) -> Result<QueryResult, ServiceError> {
    match q.0 {
        QueryKind::BfsLevel { source } => {
            let v = bfs_level(snap.graph(), source)?;
            Ok(QueryResult::Levels(Arc::new(v)))
        }
        QueryKind::PageRank { damping_bits, tolerance_bits, max_iters } => {
            let opts = PageRankOptions {
                damping: f64::from_bits(damping_bits),
                tolerance: f64::from_bits(tolerance_bits),
                max_iters,
            };
            let (ranks, iterations) = pagerank(snap.graph(), &opts)?;
            Ok(QueryResult::Ranks { ranks: Arc::new(ranks), iterations })
        }
        QueryKind::TriangleCount => {
            let n = triangle_count(snap.graph(), TriCountMethod::Sandia)?;
            Ok(QueryResult::Count(n))
        }
        QueryKind::ConnectedComponents => {
            let v = connected_components(snap.graph())?;
            Ok(QueryResult::Components(Arc::new(v)))
        }
        QueryKind::Degrees => Ok(QueryResult::Degrees(snap.graph().out_degree()?)),
        QueryKind::CoreNumbers => {
            let v = core_numbers(snap.graph())?;
            Ok(QueryResult::Cores(Arc::new(v)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_queries_canonicalize_zero_sign() {
        let a = Query::pagerank(&PageRankOptions { damping: 0.85, tolerance: 0.0, max_iters: 50 });
        let b = Query::pagerank(&PageRankOptions { damping: 0.85, tolerance: -0.0, max_iters: 50 });
        assert_eq!(a, b, "-0.0 and +0.0 tolerance must share one cache key");
    }

    #[test]
    fn algorithm_labels_are_stable() {
        assert_eq!(Query::bfs_level(3).algorithm(), "bfs_level");
        assert_eq!(Query::triangle_count().algorithm(), "triangle_count");
        assert_eq!(Query::pagerank(&PageRankOptions::default()).algorithm(), "pagerank");
    }

    #[test]
    fn admission_config_defaults() {
        let c = AdmissionConfig::default();
        assert_eq!(c.max_batch_width, 64);
        assert!(c.cache_capacity > 0);
    }
}
