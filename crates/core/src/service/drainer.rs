//! The sharded drain path: one drainer thread per shard replays that
//! shard's slice of the update log into a private sub-matrix, and a
//! coordinator thread cuts consistent batches, barriers the shards at
//! one epoch, combines the disjoint sub-matrices, and publishes the
//! snapshot.
//!
//! Consistency argument: the coordinator swaps *all* shard queues out
//! before dispatching any of them, so one epoch contains exactly the
//! updates accepted before the cut — never a prefix of one shard and a
//! suffix of another. Each edge is routed to exactly one shard by a
//! pure function of its canonical key ([`Partitioner`]), so per-edge
//! replay order equals submission order at any shard count, and the
//! combined matrix is a disjoint union — the S∈{1,2,4} differential
//! tests check it is *bit-identical* to a single-shard replay.
//!
//! Failure semantics: a shard drainer that panics mid-replay marks the
//! service failed. The coordinator stops publishing (the last good
//! epoch keeps serving), and every `submit`/`flush`/`query` thereafter
//! returns [`ServiceError::DrainerFailed`] instead of hanging on an
//! epoch that will never arrive.
//!
//! [`Partitioner`]: super::Partitioner

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use graphblas::binaryop;
use graphblas::trace;
use graphblas::{ops, Descriptor, Error as GrbError, Matrix};

use super::{now_unix_ns, panic_message, Partitioner, Shared, Snapshot, Update};
use crate::graph::{Graph, GraphKind};

/// What the coordinator asks a shard worker to do next.
pub(crate) enum SlotCmd {
    /// Nothing pending; the worker waits.
    Idle,
    /// Replay `batch` and assemble, reporting completion as `epoch`.
    Drain { epoch: u64, batch: Vec<Update> },
    /// Exit the worker thread.
    Shutdown,
}

/// Completion report a shard worker posts after each drain.
pub(crate) struct ShardDone {
    /// Last epoch this shard finished (success or failure).
    pub(crate) epoch: u64,
    /// Pending tuples the assembly resolved.
    pub(crate) pending: usize,
    /// Zombies the assembly resolved.
    pub(crate) zombies: usize,
    /// Panic message if the replay failed.
    pub(crate) failed: Option<String>,
}

/// Per-shard worker state: a command slot, a completion slot, and the
/// shard's private master sub-matrix (holding exactly the edges the
/// partitioner routes to this shard).
pub(crate) struct ShardWorker {
    cmd: Mutex<SlotCmd>,
    cmd_cv: Condvar,
    done: Mutex<ShardDone>,
    done_cv: Condvar,
    master: Mutex<Matrix<f64>>,
}

impl ShardWorker {
    fn new(master: Matrix<f64>, epoch: u64) -> Self {
        ShardWorker {
            cmd: Mutex::new(SlotCmd::Idle),
            cmd_cv: Condvar::new(),
            done: Mutex::new(ShardDone { epoch, pending: 0, zombies: 0, failed: None }),
            done_cv: Condvar::new(),
            master: Mutex::new(master),
        }
    }

    fn send(&self, cmd: SlotCmd) {
        let mut c = self.cmd.lock().unwrap_or_else(|e| e.into_inner());
        *c = cmd;
        self.cmd_cv.notify_all();
    }
}

/// Split the initial graph into per-shard sub-matrices: every stored
/// arc is routed by the canonical key of its edge, so both arcs of an
/// undirected edge land in the owning shard.
pub(crate) fn split_masters(
    initial: &Graph,
    partitioner: &dyn Partitioner,
    compressed: bool,
) -> Result<Vec<ShardWorker>, GrbError> {
    let n = initial.nvertices();
    let undirected = initial.kind() == GraphKind::Undirected;
    let epoch = initial.epoch();
    let mut per: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); partitioner.shards()];
    for (i, j, v) in initial.a().iter() {
        let (ki, kj) = if undirected && i > j { (j, i) } else { (i, j) };
        per[partitioner.shard_of(ki, kj)].push((i, j, v));
    }
    per.into_iter()
        .map(|tuples| {
            let mut m = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
            if compressed {
                m.set_compressed(true);
            }
            Ok(ShardWorker::new(m, epoch))
        })
        .collect()
}

/// The per-shard drainer loop: wait for a command, replay the batch
/// into this shard's master through the deferred-update path, assemble
/// once, report. Panics are caught and reported, never propagated into
/// a hung barrier.
pub(crate) fn shard_loop(
    workers: Arc<Vec<ShardWorker>>,
    index: usize,
    kind: GraphKind,
    fail_epoch: Option<u64>,
) {
    let w = &workers[index];
    loop {
        let cmd = {
            let mut c = w.cmd.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match *c {
                    SlotCmd::Idle => {
                        c = w.cmd_cv.wait(c).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break std::mem::replace(&mut *c, SlotCmd::Idle),
                }
            }
        };
        let (epoch, batch) = match cmd {
            SlotCmd::Shutdown => return,
            SlotCmd::Idle => continue,
            SlotCmd::Drain { epoch, batch } => (epoch, batch),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if index == 0 && fail_epoch == Some(epoch) {
                panic!("injected shard-drainer failure at epoch {epoch}");
            }
            let mut master = w.master.lock().unwrap_or_else(|e| e.into_inner());
            let apply_errors = replay(&mut master, &batch, kind);
            if apply_errors > 0 {
                trace::warn_once(
                    "service.apply",
                    &format!("{apply_errors} service updates failed to apply (skipped)"),
                );
            }
            let (pending, zombies) = master.deferred();
            // One amortized assembly for the whole shard batch, parallel
            // on the par_chunks pool.
            master.wait();
            (pending, zombies)
        }));
        let mut d = w.done.lock().unwrap_or_else(|e| e.into_inner());
        match outcome {
            Ok((pending, zombies)) => {
                d.pending = pending;
                d.zombies = zombies;
                d.failed = None;
            }
            Err(p) => d.failed = Some(panic_message(&*p).to_string()),
        }
        d.epoch = epoch;
        w.done_cv.notify_all();
    }
}

/// Replay one shard batch: inserts become pending tuples, deletes
/// become zombies; undirected graphs mirror both arcs into the same
/// shard master. Returns the count of (internal-bug) apply failures.
fn replay(master: &mut Matrix<f64>, batch: &[Update], kind: GraphKind) -> usize {
    let mirror = kind == GraphKind::Undirected;
    let mut apply_errors = 0usize;
    for u in batch {
        let r = match *u {
            Update::Insert(i, j, w) => master.set_element(i, j, w).and_then(|()| {
                if mirror && i != j {
                    master.set_element(j, i, w)
                } else {
                    Ok(())
                }
            }),
            Update::Delete(i, j) => master.remove_element(i, j).and_then(|()| {
                if mirror && i != j {
                    master.remove_element(j, i)
                } else {
                    Ok(())
                }
            }),
        };
        if r.is_err() {
            apply_errors += 1;
        }
    }
    apply_errors
}

/// Union the (disjoint) shard masters into one publishable matrix. With
/// one shard this is exactly the pre-sharding publish path — a clone of
/// the single master — which is what makes S=1 the differential oracle.
fn combine_masters(workers: &[ShardWorker], compressed: bool) -> Result<Matrix<f64>, GrbError> {
    let first = workers[0].master.lock().unwrap_or_else(|e| e.into_inner());
    if workers.len() == 1 {
        return Ok(first.clone());
    }
    let (nr, nc) = (first.nrows(), first.ncols());
    let mut acc = first.clone();
    drop(first);
    for w in &workers[1..] {
        let shard = w.master.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Matrix::<f64>::new(nr, nc)?;
        // Shard supports are disjoint, so any merge op is a pure union;
        // Plus never actually combines two values.
        ops::ewise_add_matrix(
            &mut out,
            None,
            ops::NOACC,
            binaryop::Plus,
            &acc,
            &shard,
            &Descriptor::default(),
        )?;
        drop(shard);
        acc = out;
    }
    if compressed {
        acc.set_compressed(true);
    }
    Ok(acc)
}

/// Mark the service failed (shard `shard` died with `message`), wake
/// every waiter, and stop accepting work. The last published snapshot
/// keeps serving reads.
fn fail_service(shared: &Shared, shard: usize, message: String) {
    trace::warn_once(
        "service.drainer",
        &format!("shard {shard} drainer failed, service stopping: {message}"),
    );
    *shared.failed.lock().unwrap_or_else(|e| e.into_inner()) = Some((shard, message));
    shared.failed_flag.store(true, SeqCst);
    shared.shutting_down.store(true, SeqCst);
    shared.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
    shared.work.notify_all();
    shared.published.notify_all();
    for s in &shared.shards {
        s.not_full.notify_all();
    }
}

pub(crate) fn shutdown_workers(workers: &[ShardWorker]) {
    for w in workers {
        w.send(SlotCmd::Shutdown);
    }
}

/// The epoch coordinator: cut a consistent batch across all shard
/// queues, fan it out, barrier, combine, publish.
pub(crate) fn coordinator_loop(
    shared: &Arc<Shared>,
    workers: &Arc<Vec<ShardWorker>>,
    max_batch: usize,
    compressed: bool,
) {
    let mut epoch = shared.snapshot.read().epoch;
    loop {
        // Sleep until there is work or a shutdown request. The timeout
        // guards against a notify racing ahead of this wait.
        {
            let state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if shared.depth() == 0 {
                if state.shutdown {
                    drop(state);
                    shutdown_workers(workers);
                    return;
                }
                let _ = shared.work.wait_timeout(state, Duration::from_millis(5));
            }
        }
        if shared.depth() == 0 {
            continue;
        }

        // Cut the epoch: swap every shard's queue out (bounded by
        // max_batch overall) *before* dispatching any of them, freeing
        // blocked writers immediately.
        let mut batches: Vec<Vec<Update>> = Vec::with_capacity(workers.len());
        let mut total = 0usize;
        for (si, shard) in shared.shards.iter().enumerate() {
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            let room = max_batch.saturating_sub(total);
            let b: Vec<Update> = if q.len() <= room {
                std::mem::take(&mut *q).into()
            } else {
                q.drain(..room).collect()
            };
            total += b.len();
            shared.metrics.queue_depth[si].set(q.len() as f64);
            drop(q);
            shard.not_full.notify_all();
            batches.push(b);
        }
        if total == 0 {
            continue;
        }

        epoch += 1;
        let mut span = trace::service_span("service.epoch");
        span.arg("epoch", epoch);
        span.arg("batch", total);
        span.arg("shards", workers.len());
        shared.metrics.batch_updates.observe(total as u64);
        let shard_counts: Vec<usize> = batches.iter().map(Vec::len).collect();
        // Capture the epoch's whole delta for the view engine before the
        // batches are consumed. Shard order here is not submission order
        // across edges, but per-edge order is preserved (one shard owns
        // each edge) and every view's final value is order-independent
        // across distinct edges, so the concatenation is sound.
        let views_delta: Option<Vec<Update>> = if shared.views.wants_deltas() {
            Some(batches.iter().flatten().copied().collect())
        } else {
            None
        };

        // Fan out. Every shard gets a command (empty batches included)
        // so the barrier below is uniform.
        for (si, b) in batches.into_iter().enumerate() {
            workers[si].send(SlotCmd::Drain { epoch, batch: b });
        }

        // Barrier: all shards at this epoch before anything publishes.
        let mut pending_sum = 0usize;
        let mut zombies_sum = 0usize;
        let mut failure: Option<(usize, String)> = None;
        for (si, w) in workers.iter().enumerate() {
            let mut d = w.done.lock().unwrap_or_else(|e| e.into_inner());
            while d.epoch < epoch {
                d = w.done_cv.wait(d).unwrap_or_else(|e| e.into_inner());
            }
            pending_sum += d.pending;
            zombies_sum += d.zombies;
            if failure.is_none() {
                if let Some(m) = &d.failed {
                    failure = Some((si, m.clone()));
                }
            }
        }
        span.arg("pending", pending_sum);
        span.arg("zombies", zombies_sum);
        shared.metrics.pending_peak.set_max(pending_sum as f64);
        shared.metrics.zombies_peak.set_max(zombies_sum as f64);

        if let Some((si, message)) = failure {
            span.arg("failed_shard", si);
            drop(span);
            fail_service(shared, si, message);
            shutdown_workers(workers);
            return;
        }

        let master_bytes: usize = workers
            .iter()
            .map(|w| w.master.lock().unwrap_or_else(|e| e.into_inner()).memory_usage().total())
            .sum();
        shared.metrics.master_bytes.set(master_bytes as f64);

        // Combine the disjoint shard masters and publish: an immutable
        // Graph with fresh (lazily computed) caches, stamped with this
        // epoch. Readers swap over atomically on their next snapshot().
        match combine_masters(workers, compressed).and_then(|m| Graph::new(m, shared.kind)) {
            Ok(mut g) => {
                g.set_epoch(epoch);
                let nedges = g.nedges();
                span.arg("nedges", nedges);
                span.arg("queue_depth", shared.depth());
                let graph = Arc::new(g);
                // Views advance *before* the snapshot swap, so a flush
                // that observes epoch e also observes views at e; a
                // failed epoch never reaches this point, leaving the
                // views at the last good epoch alongside the snapshot.
                shared.views.on_epoch(&graph, epoch, views_delta.as_deref());
                *shared.snapshot.write() = Arc::new(Snapshot { epoch, nedges, graph });
                let now_ns = now_unix_ns();
                shared.metrics.publish_unix_ns.store(now_ns, Relaxed);
                shared.metrics.last_publish.set(now_ns as f64 / 1e9);
                shared.metrics.epochs.inc();
                shared.metrics.epoch.set(epoch as f64);
            }
            Err(_) => {
                // Shard dimensions never change, so this is unreachable;
                // keep serving the previous snapshot if it somehow isn't.
                trace::warn_once("service.publish", "failed to rebuild service snapshot graph");
            }
        }
        drop(span);
        for (si, &n) in shard_counts.iter().enumerate() {
            if n > 0 {
                shared.metrics.shard_processed[si].add(n as u64);
            }
        }
        shared.processed.fetch_add(total as u64, SeqCst);
        shared.metrics.processed.add(total as u64);
        shared.published.notify_all();
    }
}
