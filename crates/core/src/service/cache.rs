//! The epoch-keyed query result cache behind the admission layer.
//!
//! Results are keyed on `(snapshot epoch, canonicalized query)` — the
//! epoch is part of the key *and* the whole cache is cleared the moment
//! a lookup observes a newer epoch, so a result computed against epoch
//! `e` is structurally unservable once the service has published
//! `e + 1`: stale entries are unreachable (key mismatch) and reclaimed
//! eagerly (the clear), rather than lingering until capacity eviction.
//!
//! Canonicalization happens in the [`Query`]
//! constructors (e.g. PageRank float options are normalized to bit
//! patterns), so two textually different but semantically identical
//! queries share one cache line.
//!
//! Materialized views sit *in front of* this cache: the admission layer
//! consults [`super::views`] first, and a view hit (counted as
//! `view_hits`, not a cache hit) never touches these maps — the cache
//! only ever sees the queries the view table could not answer, such as
//! parameterized traversals or algorithms with no registered view.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use super::admission::{Query, QueryResult};

/// A bounded, epoch-invalidated query result cache. FIFO eviction at
/// `capacity`; every result is an `Arc`-backed [`QueryResult`], so a hit
/// is one clone, never a recompute.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// The epoch every cached entry was computed against.
    epoch: u64,
    map: HashMap<Query, QueryResult>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Query>,
}

impl QueryCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        QueryCache { capacity, inner: Mutex::new(Inner::default()) }
    }

    /// Look up `query` as of `epoch`. Observing an epoch different from
    /// the cached generation clears the cache first — a result is never
    /// served across epochs, in either direction.
    pub fn get(&self, epoch: u64, query: &Query) -> Option<QueryResult> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.epoch != epoch {
            inner.map.clear();
            inner.order.clear();
            inner.epoch = epoch;
            return None;
        }
        inner.map.get(query).cloned()
    }

    /// Store a result computed against `epoch`'s snapshot. Ignored when
    /// the cache has already moved to a newer epoch (a slow query must
    /// not resurrect an old generation).
    pub fn insert(&self, epoch: u64, query: Query, result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.epoch != epoch {
            if inner.epoch > epoch {
                return; // stale result from a superseded epoch
            }
            inner.map.clear();
            inner.order.clear();
            inner.epoch = epoch;
        }
        if inner.map.insert(query, result).is_none() {
            inner.order.push_back(query);
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Number of live entries (current epoch only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::admission::QueryResult;

    fn count(n: u64) -> QueryResult {
        QueryResult::Count(n)
    }

    #[test]
    fn hit_within_epoch_miss_across() {
        let c = QueryCache::new(8);
        let q = Query::triangle_count();
        assert!(c.get(1, &q).is_none());
        c.insert(1, q, count(7));
        assert!(matches!(c.get(1, &q), Some(QueryResult::Count(7))));
        // Epoch advance: the same query misses and the cache is empty.
        assert!(c.get(2, &q).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stale_epoch_results_are_dropped() {
        let c = QueryCache::new(8);
        let q = Query::bfs_level(3);
        c.insert(5, q, count(1));
        // A laggard finishing against epoch 4 must not overwrite epoch 5.
        c.insert(4, Query::bfs_level(9), count(2));
        assert!(c.get(5, &q).is_some());
        assert!(c.get(5, &Query::bfs_level(9)).is_none());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = QueryCache::new(2);
        c.insert(1, Query::bfs_level(0), count(0));
        c.insert(1, Query::bfs_level(1), count(1));
        c.insert(1, Query::bfs_level(2), count(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(1, &Query::bfs_level(0)).is_none(), "oldest evicted");
        assert!(c.get(1, &Query::bfs_level(2)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0);
        c.insert(1, Query::triangle_count(), count(1));
        assert!(c.get(1, &Query::triangle_count()).is_none());
    }
}
