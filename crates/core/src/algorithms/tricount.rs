//! Triangle counting (Azad/Buluç/Gilbert; Wolf et al.), in the three
//! masked-mxm formulations SuiteSparse popularized. All use the
//! structural `PLUS_PAIR` semiring, the masked `mxm` kernels, and the
//! `tril`/`triu` selects. The graph must be undirected with no
//! self-loops. Triangle counting is GAP benchmark kernel #6 (and the
//! GraphChallenge kernel).
//!
//! The masked product only computes entries where the mask is present,
//! so the cost is O(Σ_edges min(deg(u), deg(v))) wedge checks rather
//! than a full e² sparse product — the Sandia lower-triangular form has
//! the smallest constant of the three.

use std::collections::{HashMap, HashSet};

use graphblas::prelude::*;
use graphblas::semiring::PLUS_PAIR;
use graphblas::trace;

use super::{AdjacencyView, EdgeEvent};
use crate::graph::Graph;

/// Which formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriCountMethod {
    /// Burkhardt: `sum(sum((A²) .* A)) / 6`.
    Burkhardt,
    /// Cohen: `sum(sum((L * U) .* A)) / 2`.
    Cohen,
    /// Sandia: `sum(sum((L * Lᵀ) .* L))` — the fastest masked-dot form.
    Sandia,
}

/// Count the triangles of an undirected graph.
pub fn triangle_count(graph: &Graph, method: TriCountMethod) -> Result<u64> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    let mut algo = trace::algo_span("tricount");
    algo.arg("n", n);
    algo.arg("nnz", a.nvals());
    algo.arg(
        "method",
        match method {
            TriCountMethod::Burkhardt => "burkhardt",
            TriCountMethod::Cohen => "cohen",
            TriCountMethod::Sandia => "sandia",
        },
    );
    // Each formulation reduces the masked product straight to a scalar;
    // the fused kernel never materializes C = A*B.
    match method {
        TriCountMethod::Burkhardt => {
            // count = sum(A ⊕.pair A over mask A) / 6
            let wedges: u64 = fused_mxm_reduce_scalar(
                &binaryop::Plus,
                a,
                &PLUS_PAIR,
                a,
                a,
                &Descriptor::new().structural(),
            )?;
            Ok(wedges / 6)
        }
        TriCountMethod::Cohen => {
            let l = tril(a)?;
            let u = triu(a)?;
            let wedges: u64 = fused_mxm_reduce_scalar(
                &binaryop::Plus,
                a,
                &PLUS_PAIR,
                &l,
                &u,
                &Descriptor::new().structural(),
            )?;
            Ok(wedges / 2)
        }
        TriCountMethod::Sandia => {
            // sum(L ⊕.pair Lᵀ over mask L), the masked dot-product form.
            let l = tril(a)?;
            fused_mxm_reduce_scalar(
                &binaryop::Plus,
                &l,
                &PLUS_PAIR,
                &l,
                &l,
                &Descriptor::new().structural().transpose_b().method(MxmMethod::Dot),
            )
        }
    }
}

/// Incrementally repair a global triangle count after one batch of
/// structural edge changes: the delta of each changed edge `(u, v)` is
/// `±|N(u) ∩ N(v)|` at the moment it applies, so the whole batch costs
/// O(Σ min(deg u, deg v)) intersections instead of a masked `mxm` over
/// the full graph.
///
/// * `base` — symmetric adjacency of the graph **before** the batch
///   (same precondition as [`triangle_count`]: undirected, no
///   self-loops among the counted edges).
/// * `prev` — the exact count on `base`.
/// * `events` — the real structural changes, in application order.
///
/// Events apply sequentially against an internal patch over `base`, so
/// a triangle formed by two edges inserted in the same batch is counted
/// exactly once; the final value equals [`triangle_count`] on the
/// patched graph bit for bit, at any interleaving of the same per-edge
/// event sequence. Self-loop events are ignored (they form no triangle).
pub fn triangle_count_delta(base: &dyn AdjacencyView, prev: u64, events: &[EdgeEvent]) -> u64 {
    // Patch over `base`: per-vertex inserted and removed neighbor sets.
    let mut added: HashMap<Index, HashSet<Index>> = HashMap::new();
    let mut removed: HashMap<Index, HashSet<Index>> = HashMap::new();
    let has = |added: &HashMap<Index, HashSet<Index>>,
               removed: &HashMap<Index, HashSet<Index>>,
               u: Index,
               v: Index| {
        if added.get(&u).is_some_and(|s| s.contains(&v)) {
            return true;
        }
        base.has_edge(u, v) && !removed.get(&u).is_some_and(|s| s.contains(&v))
    };
    // |N(u) ∩ N(v)| on the patched graph: iterate the cheaper endpoint's
    // current neighborhood, membership-test against the other.
    let common = |added: &HashMap<Index, HashSet<Index>>,
                  removed: &HashMap<Index, HashSet<Index>>,
                  u: Index,
                  v: Index| {
        let (a, b) = if base.degree(u) + added.get(&u).map_or(0, HashSet::len)
            <= base.degree(v) + added.get(&v).map_or(0, HashSet::len)
        {
            (u, v)
        } else {
            (v, u)
        };
        let mut count = 0i64;
        let rem_a = removed.get(&a);
        base.for_each_neighbor(a, &mut |w| {
            if w != a
                && w != b
                && !rem_a.is_some_and(|s| s.contains(&w))
                && has(added, removed, b, w)
            {
                count += 1;
            }
        });
        if let Some(extra) = added.get(&a) {
            for &w in extra {
                if w != a && w != b && has(added, removed, b, w) {
                    count += 1;
                }
            }
        }
        count
    };
    let patch = |added: &mut HashMap<Index, HashSet<Index>>,
                 removed: &mut HashMap<Index, HashSet<Index>>,
                 u: Index,
                 v: Index,
                 present: bool| {
        for (x, y) in [(u, v), (v, u)] {
            if present {
                removed.entry(x).or_default().remove(&y);
                if !base.has_edge(x, y) {
                    added.entry(x).or_default().insert(y);
                }
            } else {
                added.entry(x).or_default().remove(&y);
                if base.has_edge(x, y) {
                    removed.entry(x).or_default().insert(y);
                }
            }
        }
    };
    let mut delta = 0i64;
    for &ev in events {
        match ev {
            EdgeEvent::Insert(u, v) => {
                if u != v {
                    delta += common(&added, &removed, u, v);
                    patch(&mut added, &mut removed, u, v, true);
                }
            }
            EdgeEvent::Delete(u, v) => {
                if u != v {
                    delta -= common(&added, &removed, u, v);
                    patch(&mut added, &mut removed, u, v, false);
                }
            }
        }
    }
    (prev as i64 + delta).max(0) as u64
}

/// Per-vertex triangle counts: `t(v)` = number of triangles through `v`
/// (the diagonal of `A³ / 2`, computed as row sums of `(A ⊕.pair A) .* A`).
pub fn triangle_count_per_vertex(graph: &Graph) -> Result<Vector<u64>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // Row sums of the masked wedge product, fused so the wedge matrix is
    // never materialized.
    let t: Vector<u64> = fused_mxm_row_reduce(
        &binaryop::Plus,
        a,
        &PLUS_PAIR,
        a,
        a,
        &Descriptor::new().structural(),
    )?;
    // Each triangle through v is counted twice in the wedge sum.
    let mut halved = Vector::<u64>::new(n)?;
    apply(&mut halved, None, NOACC, |x: u64| x / 2, &t, &Descriptor::default())?;
    Ok(halved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn two_triangles() -> Graph {
        // Triangles 0-1-2 and 2-3-4, bridge at 2.
        Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn all_methods_count_two() {
        let g = two_triangles();
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 2, "{m:?}");
        }
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("graph");
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 0, "{m:?}");
        }
    }

    #[test]
    fn complete_graph_k5() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges, GraphKind::Undirected).expect("graph");
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 10, "{m:?}");
        }
    }

    /// Symmetric adjacency-set oracle for the delta entry point.
    struct Adj(Vec<std::collections::BTreeSet<Index>>);

    impl Adj {
        fn from_edges(n: usize, edges: &[(Index, Index)]) -> Self {
            let mut sets = vec![std::collections::BTreeSet::new(); n];
            for &(u, v) in edges {
                sets[u].insert(v);
                sets[v].insert(u);
            }
            Adj(sets)
        }
    }

    impl AdjacencyView for Adj {
        fn nvertices(&self) -> Index {
            self.0.len()
        }
        fn has_edge(&self, u: Index, v: Index) -> bool {
            self.0[u].contains(&v)
        }
        fn degree(&self, u: Index) -> usize {
            self.0[u].len()
        }
        fn for_each_neighbor(&self, u: Index, f: &mut dyn FnMut(Index)) {
            for &v in &self.0[u] {
                f(v);
            }
        }
    }

    #[test]
    fn delta_insert_and_delete_track_the_oracle() {
        // Start with one triangle plus a dangling path.
        let start = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)];
        let base = Adj::from_edges(5, &start);
        let g0 = Graph::from_edges(5, &start, GraphKind::Undirected).expect("graph");
        let prev = triangle_count(&g0, TriCountMethod::Sandia).expect("tc");
        assert_eq!(prev, 1);
        // Close 2-3-4 into a triangle, then break the original one.
        let events = [EdgeEvent::Insert(2, 4), EdgeEvent::Delete(0, 1)];
        let got = triangle_count_delta(&base, prev, &events);
        let g1 =
            Graph::from_edges(5, &[(1, 2), (0, 2), (2, 3), (3, 4), (2, 4)], GraphKind::Undirected)
                .expect("graph");
        assert_eq!(got, triangle_count(&g1, TriCountMethod::Sandia).expect("tc"));
        assert_eq!(got, 1);
    }

    #[test]
    fn delta_counts_triangles_formed_within_one_batch() {
        // Empty triangle closed by three same-batch inserts: exactly 1.
        let base = Adj::from_edges(3, &[]);
        let events = [EdgeEvent::Insert(0, 1), EdgeEvent::Insert(1, 2), EdgeEvent::Insert(0, 2)];
        assert_eq!(triangle_count_delta(&base, 0, &events), 1);
        // Insert-then-delete of the same edge is a net no-op.
        let events = [
            EdgeEvent::Insert(0, 1),
            EdgeEvent::Insert(1, 2),
            EdgeEvent::Insert(0, 2),
            EdgeEvent::Delete(1, 2),
        ];
        assert_eq!(triangle_count_delta(&base, 0, &events), 0);
    }

    #[test]
    fn per_vertex_counts() {
        let g = two_triangles();
        let t = triangle_count_per_vertex(&g).expect("tc");
        assert_eq!(t.get(0), Some(1));
        assert_eq!(t.get(2), Some(2), "bridge vertex is in both triangles");
        assert_eq!(t.get(3), Some(1));
        // Sum over vertices = 3 × number of triangles.
        let total = reduce_vector_scalar(&binaryop::Plus, &t);
        assert_eq!(total, 6);
    }
}
