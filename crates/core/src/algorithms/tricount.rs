//! Triangle counting (Azad/Buluç/Gilbert; Wolf et al.), in the three
//! masked-mxm formulations SuiteSparse popularized. All use the
//! structural `PLUS_PAIR` semiring, the masked `mxm` kernels, and the
//! `tril`/`triu` selects. The graph must be undirected with no
//! self-loops. Triangle counting is GAP benchmark kernel #6 (and the
//! GraphChallenge kernel).
//!
//! The masked product only computes entries where the mask is present,
//! so the cost is O(Σ_edges min(deg(u), deg(v))) wedge checks rather
//! than a full e² sparse product — the Sandia lower-triangular form has
//! the smallest constant of the three.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_PAIR;
use graphblas::trace;

use crate::graph::Graph;

/// Which formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriCountMethod {
    /// Burkhardt: `sum(sum((A²) .* A)) / 6`.
    Burkhardt,
    /// Cohen: `sum(sum((L * U) .* A)) / 2`.
    Cohen,
    /// Sandia: `sum(sum((L * Lᵀ) .* L))` — the fastest masked-dot form.
    Sandia,
}

/// Count the triangles of an undirected graph.
pub fn triangle_count(graph: &Graph, method: TriCountMethod) -> Result<u64> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    let mut algo = trace::algo_span("tricount");
    algo.arg("n", n);
    algo.arg("nnz", a.nvals());
    algo.arg(
        "method",
        match method {
            TriCountMethod::Burkhardt => "burkhardt",
            TriCountMethod::Cohen => "cohen",
            TriCountMethod::Sandia => "sandia",
        },
    );
    // Each formulation reduces the masked product straight to a scalar;
    // the fused kernel never materializes C = A*B.
    match method {
        TriCountMethod::Burkhardt => {
            // count = sum(A ⊕.pair A over mask A) / 6
            let wedges: u64 = fused_mxm_reduce_scalar(
                &binaryop::Plus,
                a,
                &PLUS_PAIR,
                a,
                a,
                &Descriptor::new().structural(),
            )?;
            Ok(wedges / 6)
        }
        TriCountMethod::Cohen => {
            let l = tril(a)?;
            let u = triu(a)?;
            let wedges: u64 = fused_mxm_reduce_scalar(
                &binaryop::Plus,
                a,
                &PLUS_PAIR,
                &l,
                &u,
                &Descriptor::new().structural(),
            )?;
            Ok(wedges / 2)
        }
        TriCountMethod::Sandia => {
            // sum(L ⊕.pair Lᵀ over mask L), the masked dot-product form.
            let l = tril(a)?;
            fused_mxm_reduce_scalar(
                &binaryop::Plus,
                &l,
                &PLUS_PAIR,
                &l,
                &l,
                &Descriptor::new().structural().transpose_b().method(MxmMethod::Dot),
            )
        }
    }
}

/// Per-vertex triangle counts: `t(v)` = number of triangles through `v`
/// (the diagonal of `A³ / 2`, computed as row sums of `(A ⊕.pair A) .* A`).
pub fn triangle_count_per_vertex(graph: &Graph) -> Result<Vector<u64>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // Row sums of the masked wedge product, fused so the wedge matrix is
    // never materialized.
    let t: Vector<u64> = fused_mxm_row_reduce(
        &binaryop::Plus,
        a,
        &PLUS_PAIR,
        a,
        a,
        &Descriptor::new().structural(),
    )?;
    // Each triangle through v is counted twice in the wedge sum.
    let mut halved = Vector::<u64>::new(n)?;
    apply(&mut halved, None, NOACC, |x: u64| x / 2, &t, &Descriptor::default())?;
    Ok(halved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn two_triangles() -> Graph {
        // Triangles 0-1-2 and 2-3-4, bridge at 2.
        Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn all_methods_count_two() {
        let g = two_triangles();
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 2, "{m:?}");
        }
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("graph");
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 0, "{m:?}");
        }
    }

    #[test]
    fn complete_graph_k5() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges, GraphKind::Undirected).expect("graph");
        for m in [TriCountMethod::Burkhardt, TriCountMethod::Cohen, TriCountMethod::Sandia] {
            assert_eq!(triangle_count(&g, m).expect("tc"), 10, "{m:?}");
        }
    }

    #[test]
    fn per_vertex_counts() {
        let g = two_triangles();
        let t = triangle_count_per_vertex(&g).expect("tc");
        assert_eq!(t.get(0), Some(1));
        assert_eq!(t.get(2), Some(2), "bridge vertex is in both triangles");
        assert_eq!(t.get(3), Some(1));
        // Sum over vertices = 3 × number of triangles.
        let total = reduce_vector_scalar(&binaryop::Plus, &t);
        assert_eq!(total, 6);
    }
}
