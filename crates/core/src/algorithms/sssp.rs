//! Single-source shortest paths over the min-plus (tropical) semiring
//! `MIN_PLUS`: a Bellman-Ford iteration, and the delta-stepping
//! formulation of Sridhar et al. (IPDPSW 2019) that the paper cites for
//! SSSP. Delta-stepping is GAP benchmark kernel #3.
//!
//! Bellman-Ford costs O(e) per round for up to n rounds (far fewer on
//! small-diameter graphs — the iteration stops at fixpoint).
//! Delta-stepping processes vertices in distance buckets of width Δ,
//! relaxing light edges to fixpoint inside each bucket; with Δ tuned to
//! the weight range it approaches O(n + e) on random weights.

use graphblas::prelude::*;
use graphblas::semiring::MIN_PLUS;
use graphblas::trace;
use graphblas::unaryop::ValueNe;

use crate::graph::Graph;

/// Bellman-Ford SSSP: `dist ← min(dist, dist min.+ A)` until fixpoint.
/// Edge weights must be non-negative for the distances to be shortest
/// paths (negative edges converge too, absent negative cycles). Returns
/// the distance vector; unreachable vertices have no entry.
pub fn sssp_bellman_ford(graph: &Graph, source: Index) -> Result<Vector<f64>> {
    let a = graph.a();
    let n = a.nrows();
    if source >= n {
        return Err(Error::oob(source, n));
    }
    let mut algo = trace::algo_span("sssp.bellman_ford");
    algo.arg("n", n);
    algo.arg("source", source);
    let mut dist = Vector::<f64>::new(n)?;
    dist.set_element(source, 0.0)?;
    for round in 0..n {
        let mut iter = trace::iter_span("sssp.iter", round as u64);
        iter.arg("reached_nnz", dist.nvals());
        let before = dist.extract_tuples();
        // dist = min(dist, dist min.+ A) — vxm accumulates with MIN.
        let d = dist.clone();
        vxm(&mut dist, None, Some(binaryop::Min), &MIN_PLUS, &d, a, &Descriptor::default())?;
        if dist.extract_tuples() == before {
            break;
        }
    }
    Ok(dist)
}

/// Delta-stepping SSSP (Sridhar et al., "Delta-stepping SSSP: from
/// vertices and edges to GraphBLAS implementations"). Vertices are
/// processed in buckets of width `delta`; light edges (≤ delta) are
/// relaxed repeatedly inside a bucket, heavy edges once per bucket.
/// Requires non-negative weights.
pub fn sssp_delta_stepping(graph: &Graph, source: Index, delta: f64) -> Result<Vector<f64>> {
    let a = graph.a();
    let n = a.nrows();
    if source >= n {
        return Err(Error::oob(source, n));
    }
    // "not greater than zero" on purpose: NaN must be rejected as well.
    if delta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(Error::invalid("delta must be positive"));
    }
    // Split the graph into light (w ≤ delta) and heavy (w > delta) edges.
    let mut light = Matrix::<f64>::new(n, n)?;
    select_matrix(
        &mut light,
        None,
        NOACC,
        |_: Index, _: Index, w: f64| w <= delta,
        a,
        &Descriptor::default(),
    )?;
    let mut heavy = Matrix::<f64>::new(n, n)?;
    select_matrix(
        &mut heavy,
        None,
        NOACC,
        |_: Index, _: Index, w: f64| w > delta,
        a,
        &Descriptor::default(),
    )?;
    // Both split matrices are reused across every bucket's vxm loop; dual
    // storage lets Direction::Auto's cost model pick pull when a bucket's
    // frontier grows dense instead of being pinned to the natural push.
    light.set_dual_storage(true);
    heavy.set_dual_storage(true);

    let mut algo = trace::algo_span("sssp.delta_stepping");
    algo.arg("n", n);
    algo.arg("source", source);
    algo.arg("delta", delta);
    let mut t = Vector::<f64>::new(n)?;
    t.set_element(source, 0.0)?;
    let mut bucket = 0usize;
    loop {
        let mut iter = trace::iter_span("sssp.bucket", bucket as u64);
        iter.arg("reached_nnz", t.nvals());
        let lo = bucket as f64 * delta;
        let hi = lo + delta;
        // tmasked: the distances currently falling in this bucket.
        let mut tmasked = Vector::<f64>::new(n)?;
        select(
            &mut tmasked,
            None,
            NOACC,
            |_: Index, _: Index, d: f64| d >= lo && d < hi,
            &t,
            &Descriptor::default(),
        )?;
        if tmasked.nvals() == 0 {
            // Find whether any vertex remains in a later bucket.
            let mut rest = Vector::<f64>::new(n)?;
            select(
                &mut rest,
                None,
                NOACC,
                |_: Index, _: Index, d: f64| d >= hi,
                &t,
                &Descriptor::default(),
            )?;
            if rest.nvals() == 0 {
                break;
            }
            // Jump straight to the next occupied bucket.
            let next_min = reduce_vector_scalar(&binaryop::Min, &rest);
            bucket = (next_min / delta).floor() as usize;
            continue;
        }
        // Settle the bucket: repeat light-edge relaxations until no new
        // vertex enters it.
        let mut settled = tmasked.clone();
        loop {
            let mut treq = Vector::<f64>::new(n)?;
            vxm(&mut treq, None, NOACC, &MIN_PLUS, &tmasked, &light, &Descriptor::default())?;
            // t = min(t, treq)
            let tsnap = t.clone();
            ewise_add(&mut t, None, NOACC, binaryop::Min, &tsnap, &treq, &Descriptor::default())?;
            // New entrants to this bucket: improved distances within range.
            let mut entered = Vector::<f64>::new(n)?;
            select(
                &mut entered,
                None,
                NOACC,
                |_: Index, _: Index, d: f64| d >= lo && d < hi,
                &t,
                &Descriptor::default(),
            )?;
            // Which of them were not already settled at this distance?
            let mut fresh = entered.clone();
            // Remove entries equal to their settled value.
            let settled_snapshot = settled.clone();
            let mut same = Vector::<f64>::new(n)?;
            ewise_mult(
                &mut same,
                None,
                NOACC,
                |a: f64, b: f64| if a == b { 1.0 } else { 0.0 },
                &entered,
                &settled_snapshot,
                &Descriptor::default(),
            )?;
            let mut unchanged = Vector::<f64>::new(n)?;
            select(&mut unchanged, None, NOACC, ValueNe(0.0), &same, &Descriptor::default())?;
            // fresh = entered minus unchanged positions
            let fsnap = fresh.clone();
            assign(
                &mut fresh,
                Some(&unchanged.pattern()),
                NOACC,
                &Vector::<f64>::new(n)?,
                &IndexSel::All,
                &Descriptor::new().structural(),
            )?;
            let _ = fsnap;
            if fresh.nvals() == 0 {
                break;
            }
            settled = entered;
            tmasked = fresh;
        }
        // One heavy-edge relaxation for the settled bucket.
        let mut treq = Vector::<f64>::new(n)?;
        vxm(&mut treq, None, NOACC, &MIN_PLUS, &settled, &heavy, &Descriptor::default())?;
        let tsnap = t.clone();
        ewise_add(&mut t, None, NOACC, binaryop::Min, &tsnap, &treq, &Descriptor::default())?;
        bucket += 1;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn weighted() -> Graph {
        // 0 →1 (1), 0 →2 (4), 1 →2 (2), 1 →3 (7), 2 →3 (3)
        Graph::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (1, 3, 7.0), (2, 3, 3.0)],
            GraphKind::Directed,
        )
        .expect("graph")
    }

    #[test]
    fn bellman_ford_known_distances() {
        let g = weighted();
        let d = sssp_bellman_ford(&g, 0).expect("sssp");
        assert_eq!(d.extract_tuples(), vec![(0, 0.0), (1, 1.0), (2, 3.0), (3, 6.0)]);
        assert_eq!(d.get(4), None, "unreachable");
    }

    #[test]
    fn delta_stepping_matches_bellman_ford() {
        let g = weighted();
        let bf = sssp_bellman_ford(&g, 0).expect("bf");
        for delta in [0.5, 1.0, 2.0, 10.0] {
            let ds = sssp_delta_stepping(&g, 0, delta).expect("ds");
            assert_eq!(ds.extract_tuples(), bf.extract_tuples(), "delta={delta}");
        }
    }

    #[test]
    fn undirected_distances_are_symmetric_in_usage() {
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 2.0), (1, 2, 2.0), (0, 3, 10.0), (2, 3, 1.0)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let d = sssp_bellman_ford(&g, 3).expect("sssp");
        assert_eq!(d.get(0), Some(5.0)); // 3→2→1→0 = 1+2+2
        let ds = sssp_delta_stepping(&g, 3, 2.0).expect("ds");
        assert_eq!(ds.extract_tuples(), d.extract_tuples());
    }

    #[test]
    fn invalid_inputs() {
        let g = weighted();
        assert!(sssp_bellman_ford(&g, 99).is_err());
        assert!(sssp_delta_stepping(&g, 0, 0.0).is_err());
    }

    #[test]
    fn integer_weights_near_max_saturate_instead_of_wrapping() {
        // Bellman-Ford over an i64 adjacency, the same MIN_PLUS vxm loop
        // as the f64 path. The 0→1 edge is within 5 of i64::MAX, so the
        // relaxation 0→1→2 overflows a wrapping add into a huge negative
        // "distance" that would beat every honest path; the saturating
        // MIN_PLUS pins it at i64::MAX and the direct 0→2 edge wins.
        let big = i64::MAX - 5;
        let a = Matrix::from_tuples(3, 3, vec![(0, 1, big), (1, 2, 10), (0, 2, 100)], |_, b| b)
            .expect("a");
        let mut dist = Vector::<i64>::new(3).expect("dist");
        dist.set_element(0, 0).expect("source");
        for _ in 0..3 {
            let d = dist.clone();
            vxm(&mut dist, None, Some(binaryop::Min), &MIN_PLUS, &d, &a, &Descriptor::default())
                .expect("vxm");
        }
        assert_eq!(dist.get(0), Some(0));
        assert_eq!(dist.get(1), Some(big));
        assert_eq!(dist.get(2), Some(100), "saturated path must not undercut the real one");
    }

    #[test]
    fn zero_weight_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 0.0), (1, 2, 5.0)], GraphKind::Directed)
            .expect("graph");
        let d = sssp_bellman_ford(&g, 0).expect("sssp");
        assert_eq!(d.extract_tuples(), vec![(0, 0.0), (1, 0.0), (2, 5.0)]);
    }
}
