//! Greedy graph coloring via independent sets (Jones–Plassmann style, as
//! in Osama et al., "Graph coloring on the GPU", cited in §V): repeatedly
//! carve a maximal independent set out of the uncolored subgraph and give
//! it the next color.

use graphblas::prelude::*;
use graphblas::semiring::MAX_SECOND;

use crate::graph::Graph;
use crate::utils::SplitMix64;

/// Color the vertices of an undirected graph. Returns `colors(v) ∈ 1..=k`
/// such that no edge connects two vertices of the same color, and the
/// number of colors `k` used. Deterministic for a fixed seed.
pub fn greedy_color(graph: &Graph, seed: u64) -> Result<(Vector<i32>, i32)> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    let mut rng = SplitMix64::new(seed);
    let mut colors = Vector::<i32>::new(n)?;
    let mut uncolored: Vec<Index> = (0..n).collect();
    let mut color = 0;
    while !uncolored.is_empty() {
        color += 1;
        // Luby round restricted to the uncolored subgraph, repeated until
        // the round's independent set is maximal within it.
        let mut candidates = Vector::<bool>::new(n)?;
        for &v in &uncolored {
            candidates.set_element(v, true)?;
        }
        let mut members = Vector::<bool>::new(n)?;
        while candidates.nvals() > 0 {
            let cand_idx: Vec<Index> = candidates.iter().map(|(i, _)| i).collect();
            let weights: Vec<(Index, f64)> =
                cand_idx.iter().map(|&i| (i, rng.next_f64())).collect();
            let prob = Vector::from_tuples(n, weights, |_, b| b)?;
            let mut nbr_max = Vector::<f64>::new(n)?;
            mxv(
                &mut nbr_max,
                Some(&candidates),
                NOACC,
                &MAX_SECOND,
                a,
                &prob,
                &Descriptor::default(),
            )?;
            let mut winners: Vec<Index> = Vec::new();
            for &i in &cand_idx {
                let w = prob.get(i).expect("weight");
                if nbr_max.get(i).is_none_or(|m| w > m) {
                    winners.push(i);
                }
            }
            if winners.is_empty() {
                continue;
            }
            let mut wv = Vector::<bool>::new(n)?;
            for &i in &winners {
                wv.set_element(i, true)?;
                members.set_element(i, true)?;
            }
            let mut nbrs = Vector::<bool>::new(n)?;
            mxv(&mut nbrs, None, NOACC, &MAX_SECOND, a, &wv, &Descriptor::default())?;
            for v in winners.into_iter().chain(nbrs.iter().map(|(i, _)| i)) {
                candidates.remove_element(v)?;
            }
        }
        // Assign the color and shrink the uncolored set.
        assign_scalar(
            &mut colors,
            Some(&members),
            NOACC,
            color,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        uncolored.retain(|&v| members.get(v).is_none());
    }
    Ok((colors, color))
}

/// Check that a coloring is proper: every vertex colored, no monochrome
/// edge.
pub fn verify_coloring(graph: &Graph, colors: &Vector<i32>) -> Result<bool> {
    let n = graph.nvertices();
    for v in 0..n {
        if colors.get(v).is_none() {
            return Ok(false);
        }
    }
    for (i, j, _) in graph.a().iter() {
        if i != j && colors.get(i) == colors.get(j) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn path_needs_two_colors() {
        let edges: Vec<(Index, Index)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(10, &edges, GraphKind::Undirected).expect("graph");
        let (colors, k) = greedy_color(&g, 1).expect("color");
        assert!(verify_coloring(&g, &colors).expect("verify"));
        assert!((2..=3).contains(&k), "path colored with {k}");
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges, GraphKind::Undirected).expect("graph");
        let (colors, k) = greedy_color(&g, 3).expect("color");
        assert!(verify_coloring(&g, &colors).expect("verify"));
        assert_eq!(k, 5);
    }

    #[test]
    fn edgeless_graph_one_color() {
        let g = Graph::from_edges(4, &[], GraphKind::Undirected).expect("graph");
        let (colors, k) = greedy_color(&g, 5).expect("color");
        assert_eq!(k, 1);
        assert!(verify_coloring(&g, &colors).expect("verify"));
    }

    #[test]
    fn star_graph_two_colors() {
        let g =
            Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)], GraphKind::Undirected)
                .expect("graph");
        let (colors, k) = greedy_color(&g, 11).expect("color");
        assert!(verify_coloring(&g, &colors).expect("verify"));
        assert_eq!(k, 2);
    }

    #[test]
    fn verify_rejects_monochrome_edge() {
        let g = Graph::from_edges(2, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let bad = Vector::from_tuples(2, vec![(0, 1), (1, 1)], |_, b| b).expect("v");
        assert!(!verify_coloring(&g, &bad).expect("verify"));
    }
}
