//! Community detection by label propagation (CDLP, Raghavan et al.; an
//! LDBC Graphalytics kernel carried by LAGraph): every vertex repeatedly
//! adopts the most frequent label among its neighbors, with ties broken
//! toward the smallest label so the algorithm is deterministic.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;
use graphblas::trace;

use crate::graph::Graph;

/// Label propagation. Returns the final label vector (labels are vertex
/// ids; every vertex is labeled). `max_iters` bounds the rounds.
pub fn cdlp(graph: &Graph, max_iters: usize) -> Result<Vector<u64>> {
    let n = graph.nvertices();
    let mut algo = trace::algo_span("cdlp");
    algo.arg("n", n);
    let mut labels: Vec<u64> = (0..n as u64).collect();
    for round in 0..max_iters {
        let mut iter = trace::iter_span("cdlp.iter", round as u64);
        // Indicator matrix L(label, v) = 1, then tally T = L · A:
        // T(c, v) = #neighbors of v carrying label c.
        let tuples: Vec<(Index, Index, f64)> =
            labels.iter().enumerate().map(|(v, &c)| (c as Index, v, 1.0)).collect();
        let l = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        let mut tally = Matrix::<f64>::new(n, n)?;
        mxm(&mut tally, None, NOACC, &PLUS_SECOND, &l, graph.a(), &Descriptor::default())?;
        // Most frequent label per column, smallest label on ties.
        let mut best: Vec<(f64, u64)> = vec![(0.0, u64::MAX); n];
        for (c, v, votes) in tally.iter() {
            let cand = (votes, c as u64);
            if cand.0 > best[v].0 || (cand.0 == best[v].0 && cand.1 < best[v].1) {
                best[v] = cand;
            }
        }
        let mut changed = 0u64;
        for v in 0..n {
            if best[v].1 != u64::MAX && best[v].1 != labels[v] {
                labels[v] = best[v].1;
                changed += 1;
            }
        }
        iter.arg("changed", changed);
        if changed == 0 {
            break;
        }
    }
    let mut out = Vector::<u64>::new(n)?;
    for (v, &c) in labels.iter().enumerate() {
        out.set_element(v, c)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn cliques_converge_to_one_label_each() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let l = cdlp(&g, 20).expect("cdlp");
        assert_eq!(l.get(0), l.get(1));
        assert_eq!(l.get(1), l.get(2));
        assert_eq!(l.get(3), l.get(4));
        assert_eq!(l.get(4), l.get(5));
        assert_ne!(l.get(0), l.get(3));
    }

    #[test]
    fn ties_break_deterministically_small() {
        // Single edge: both adopt the smaller id's label.
        let g = Graph::from_edges(2, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let l = cdlp(&g, 10).expect("cdlp");
        // Vertex 1 adopts 0's label; vertex 0 adopts 1's in the same
        // round... after convergence the result must be stable and
        // deterministic.
        let l2 = cdlp(&g, 10).expect("cdlp again");
        assert_eq!(l.extract_tuples(), l2.extract_tuples());
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let l = cdlp(&g, 10).expect("cdlp");
        assert_eq!(l.get(2), Some(2));
    }

    #[test]
    fn every_vertex_labeled() {
        let g =
            Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)], GraphKind::Undirected).expect("graph");
        let l = cdlp(&g, 10).expect("cdlp");
        assert_eq!(l.nvals(), 5);
    }
}
