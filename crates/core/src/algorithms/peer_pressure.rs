//! Peer-pressure clustering (Gilbert, Reinhardt & Shah, cited in §V):
//! every vertex repeatedly adopts the cluster most common among its
//! neighbors, expressed as a tally matrix product `T = C ⊕.⊗ A` over an
//! indicator matrix of the current assignment.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;

use crate::graph::Graph;

/// Peer-pressure clustering. Returns `cluster(v)` = a cluster label
/// (canonicalized to the smallest member id). `max_iters` bounds the
/// voting rounds (the assignment usually stabilizes in a handful).
pub fn peer_pressure(graph: &Graph, max_iters: usize) -> Result<Vector<u64>> {
    let n = graph.nvertices();
    // Cluster assignment starts as identity: each vertex its own cluster.
    let mut cluster: Vec<u64> = (0..n as u64).collect();
    for _ in 0..max_iters {
        // Indicator: C(cluster(v), v) = 1.
        let tuples: Vec<(Index, Index, f64)> =
            cluster.iter().enumerate().map(|(v, &c)| (c as Index, v, 1.0)).collect();
        let c_mat = Matrix::from_tuples(n, n, tuples, |_, b| b)?;
        // Tally: T(c, v) = number of v's in-neighbors in cluster c.
        // T = C ⊕.⊗ A over (plus, second) counts A's structure.
        let mut tally = Matrix::<f64>::new(n, n)?;
        mxm(&mut tally, None, NOACC, &PLUS_SECOND, &c_mat, graph.a(), &Descriptor::default())?;
        // Each vertex adopts the argmax cluster of its column; ties break
        // toward the smaller cluster id (deterministic).
        let mut best: Vec<(f64, u64)> = vec![(0.0, u64::MAX); n];
        for (c, v, votes) in tally.iter() {
            if votes > best[v].0 || (votes == best[v].0 && (c as u64) < best[v].1) {
                best[v] = (votes, c as u64);
            }
        }
        let mut next = cluster.clone();
        for v in 0..n {
            if best[v].1 != u64::MAX {
                next[v] = best[v].1;
            }
        }
        if next == cluster {
            break;
        }
        cluster = next;
    }
    // Canonicalize: label each cluster by its smallest member.
    let mut canon = std::collections::HashMap::<u64, u64>::new();
    for (v, &c) in cluster.iter().enumerate() {
        let e = canon.entry(c).or_insert(v as u64);
        if (v as u64) < *e {
            *e = v as u64;
        }
    }
    let mut out = Vector::<u64>::new(n)?;
    for (v, &c) in cluster.iter().enumerate() {
        out.set_element(v, canon[&c])?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn cliques_cluster_together() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let c = peer_pressure(&g, 20).expect("pp");
        assert_eq!(c.get(0), c.get(1));
        assert_eq!(c.get(1), c.get(2));
        assert_eq!(c.get(3), c.get(4));
        assert_eq!(c.get(4), c.get(5));
        assert_ne!(c.get(0), c.get(5));
    }

    #[test]
    fn all_vertices_labeled() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)], GraphKind::Undirected).expect("graph");
        let c = peer_pressure(&g, 10).expect("pp");
        assert_eq!(c.nvals(), 5);
    }

    #[test]
    fn isolated_vertex_keeps_own_cluster() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let c = peer_pressure(&g, 10).expect("pp");
        assert_eq!(c.get(2), Some(2));
    }

    #[test]
    fn deterministic() {
        let g =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)], GraphKind::Undirected)
                .expect("graph");
        let a = peer_pressure(&g, 20).expect("a");
        let b = peer_pressure(&g, 20).expect("b");
        assert_eq!(a.extract_tuples(), b.extract_tuples());
    }
}
