//! Graph neural network inference — from the paper's §V list of
//! algorithms "important but so far not implemented using a
//! GraphBLAS-like library". This module implements GCN-style message
//! passing (Kipf & Welling) as pure GraphBLAS algebra:
//!
//! `H' = σ( Â H W )` with `Â = D^{-1/2} (A + I) D^{-1/2}`,
//!
//! where the normalized adjacency is built with `diag`-scaling matrix
//! products and each layer is one sparse `mxm` pair plus an `apply`.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_TIMES;

use crate::graph::Graph;

/// One GCN layer: a dense-ish weight matrix `features_in × features_out`.
pub struct GcnLayer {
    /// The learned weight matrix (here: supplied or synthetic).
    pub weights: Matrix<f64>,
    /// Apply the ReLU nonlinearity after this layer.
    pub relu: bool,
}

/// The symmetric-normalized adjacency `Â = D^{-1/2}(A + I)D^{-1/2}`.
pub fn normalized_adjacency(graph: &Graph) -> Result<Matrix<f64>> {
    let n = graph.nvertices();
    // A + I (self-loops, the GCN renormalization trick).
    let eye = {
        let tuples: Vec<(Index, Index, f64)> = (0..n).map(|v| (v, v, 1.0)).collect();
        Matrix::from_tuples(n, n, tuples, |_, b| b)?
    };
    let mut a_hat = Matrix::<f64>::new(n, n)?;
    // Use the pattern (structure) of A so weights don't skew degrees.
    let mut ones = Matrix::<f64>::new(n, n)?;
    apply_matrix(&mut ones, None, NOACC, unaryop::One, graph.a(), &Descriptor::default())?;
    ewise_add_matrix(&mut a_hat, None, NOACC, binaryop::Plus, &ones, &eye, &Descriptor::default())?;
    // Degrees of A + I.
    let mut deg = Vector::<f64>::new(n)?;
    reduce_matrix(&mut deg, None, NOACC, &binaryop::Plus, &a_hat, &Descriptor::default())?;
    let mut dinv_sqrt = Vector::<f64>::new(n)?;
    apply(&mut dinv_sqrt, None, NOACC, |d: f64| 1.0 / d.sqrt(), &deg, &Descriptor::default())?;
    let d = Matrix::diag(&dinv_sqrt);
    // D^{-1/2} (A+I) D^{-1/2}
    let mut left = Matrix::<f64>::new(n, n)?;
    mxm(&mut left, None, NOACC, &PLUS_TIMES, &d, &a_hat, &Descriptor::default())?;
    let mut norm = Matrix::<f64>::new(n, n)?;
    mxm(&mut norm, None, NOACC, &PLUS_TIMES, &left, &d, &Descriptor::default())?;
    Ok(norm)
}

/// Run GCN inference: `h` is the `n × f` node-feature matrix; each layer
/// computes `σ(Â h W)`. Returns the final embeddings.
pub fn gcn_inference(graph: &Graph, h: &Matrix<f64>, layers: &[GcnLayer]) -> Result<Matrix<f64>> {
    let n = graph.nvertices();
    if h.nrows() != n {
        return Err(Error::dim(format!(
            "features have {} rows, graph has {n} vertices",
            h.nrows()
        )));
    }
    let a_hat = normalized_adjacency(graph)?;
    let mut h = h.clone();
    for (k, layer) in layers.iter().enumerate() {
        if layer.weights.nrows() != h.ncols() {
            return Err(Error::dim(format!(
                "layer {k}: weights are {}x{}, features have {} columns",
                layer.weights.nrows(),
                layer.weights.ncols(),
                h.ncols()
            )));
        }
        // Message passing: M = Â H.
        let mut m = Matrix::<f64>::new(n, h.ncols())?;
        mxm(&mut m, None, NOACC, &PLUS_TIMES, &a_hat, &h, &Descriptor::default())?;
        // Feature transform: Z = M W.
        let mut z = Matrix::<f64>::new(n, layer.weights.ncols())?;
        mxm(&mut z, None, NOACC, &PLUS_TIMES, &m, &layer.weights, &Descriptor::default())?;
        if layer.relu {
            let mut activated = Matrix::<f64>::new(n, z.ncols())?;
            select_matrix(
                &mut activated,
                None,
                NOACC,
                |_: Index, _: Index, x: f64| x > 0.0,
                &z,
                &Descriptor::default(),
            )?;
            h = activated;
        } else {
            h = z;
        }
    }
    Ok(h)
}

/// Per-node argmax over the final embedding columns — the "predicted
/// class" readout.
pub fn node_classification(embeddings: &Matrix<f64>) -> Result<Vector<u64>> {
    let n = embeddings.nrows();
    let mut best: Vec<Option<(f64, u64)>> = vec![None; n];
    for (v, c, x) in embeddings.iter() {
        let cand = (x, c as u64);
        match best[v] {
            // "not greater" on purpose: NaN never displaces the incumbent.
            Some((bx, _)) if x.partial_cmp(&bx) != Some(std::cmp::Ordering::Greater) => {}
            _ => best[v] = Some(cand),
        }
    }
    let mut out = Vector::<u64>::new(n)?;
    for (v, b) in best.iter().enumerate() {
        if let Some((_, c)) = b {
            out.set_element(v, *c)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn two_cliques() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn normalized_adjacency_rows_bounded() {
        let g = two_cliques();
        let a_hat = normalized_adjacency(&g).expect("norm");
        // Symmetric normalization: all entries in (0, 1], diagonal present.
        for (i, j, x) in a_hat.iter() {
            assert!(x > 0.0 && x <= 1.0, "({i},{j}) = {x}");
        }
        for v in 0..6 {
            assert!(a_hat.get(v, v).is_some());
        }
        // Symmetry.
        for (i, j, x) in a_hat.iter() {
            assert_eq!(a_hat.get(j, i), Some(x));
        }
    }

    #[test]
    fn identity_weights_are_pure_smoothing() {
        let g = two_cliques();
        // One-hot features: vertex 0 carries 1.0 in column 0.
        let h = Matrix::from_tuples(6, 1, vec![(0, 0, 1.0)], |_, b| b).expect("h");
        let eye = Matrix::from_tuples(1, 1, vec![(0, 0, 1.0)], |_, b| b).expect("w");
        let out = gcn_inference(&g, &h, &[GcnLayer { weights: eye, relu: false }]).expect("gcn");
        // One smoothing step spreads mass only within vertex 0's clique.
        for v in 0..3 {
            assert!(out.get(v, 0).unwrap_or(0.0) > 0.0, "clique member {v}");
        }
        for v in 3..6 {
            assert_eq!(out.get(v, 0), None, "other clique untouched");
        }
    }

    #[test]
    fn embeddings_separate_communities() {
        let g = two_cliques();
        // Features: indicator of vertex id parity-ish; two seed features.
        let h = Matrix::from_tuples(6, 2, vec![(0, 0, 1.0), (3, 1, 1.0)], |_, b| b).expect("h");
        let w = Matrix::from_tuples(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)], |_, b| b).expect("w");
        let layers =
            [GcnLayer { weights: w.clone(), relu: true }, GcnLayer { weights: w, relu: false }];
        let out = gcn_inference(&g, &h, &layers).expect("gcn");
        let classes = node_classification(&out).expect("classes");
        for v in 0..3 {
            assert_eq!(classes.get(v), Some(0), "clique A member {v}");
        }
        for v in 3..6 {
            assert_eq!(classes.get(v), Some(1), "clique B member {v}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = two_cliques();
        let h = Matrix::<f64>::new(6, 3).expect("h");
        let w = Matrix::<f64>::new(2, 2).expect("w");
        assert!(gcn_inference(&g, &h, &[GcnLayer { weights: w, relu: true }]).is_err());
        let h_bad = Matrix::<f64>::new(5, 3).expect("h");
        assert!(gcn_inference(&g, &h_bad, &[]).is_err());
    }
}
