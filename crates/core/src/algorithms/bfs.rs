//! Breadth-first search.
//!
//! Three variants, all built only on the public GraphBLAS API:
//!
//! * [`bfs_level`] — a line-for-line transcription of the paper's Fig. 2
//!   pseudocode (`frontier⟨¬levels, replace⟩ = graphᵀ ⊕.⊗ frontier` over
//!   the logical semiring).
//! * [`bfs_parent`] — parent-pointer BFS using the `ANY_SECOND` semiring.
//! * [`bfs_level_batch`] — multi-source BFS: k searches advance together
//!   as one masked `mxm` over a k×n frontier *matrix* per level
//!   (GraphBLAST's batched-traversal trick); the serving layer's query
//!   admission folds concurrent BFS queries into this kernel.
//! * [`bfs_level_direction`] — the direction-optimized (push/pull) BFS of
//!   Beamer et al. that §II.A and §II.E describe, with an explicit
//!   [`Direction`] override for the benchmark harness.
//!
//! All variants run in O(n + e) work over the visited component
//! (direction optimization lowers the constant on scale-free graphs, not
//! the bound) using the `LOR_LAND` logical semiring for levels and
//! `ANY_SECOND` for parents. BFS is GAP benchmark kernel #1; the
//! `lagraph-bench` harness times [`bfs_level_matrix`] with `Auto`
//! direction from multiple sources, GAP-style.

use graphblas::prelude::*;
use graphblas::semiring::{ANY_SECOND, LOR_LAND};
use graphblas::trace;

use crate::graph::Graph;

/// Level BFS, exactly as in Fig. 2 of the paper. Returns the level vector:
/// `levels(v) = depth` with the source at depth 1; unreached vertices have
/// no entry.
pub fn bfs_level(graph: &Graph, source: Index) -> Result<Vector<i32>> {
    let a = graph.structure()?;
    bfs_level_matrix(&a, source, Direction::Auto)
}

/// Level BFS with explicit direction control (Push / Pull / Auto). When
/// the matrix has dual storage, `Auto` switches per iteration between the
/// scatter and dot kernels by comparing flops estimates under the
/// measured `graphblas::cost` model — the direction-optimized traversal
/// GraphBLAST popularized, with the crossover calibrated to the host
/// instead of a fixed frontier-density ratio.
pub fn bfs_level_direction(
    graph: &Graph,
    source: Index,
    direction: Direction,
) -> Result<Vector<i32>> {
    let a = graph.structure()?;
    bfs_level_matrix(&a, source, direction)
}

/// The Fig. 2 kernel over any Boolean adjacency matrix.
pub fn bfs_level_matrix(
    a: &Matrix<bool>,
    source: Index,
    direction: Direction,
) -> Result<Vector<i32>> {
    let n = a.nrows();
    if source >= n {
        return Err(Error::oob(source, n));
    }
    let mut algo = trace::algo_span("bfs.level");
    algo.arg("n", n);
    algo.arg("source", source);
    let mut levels = Vector::<i32>::new(n)?;
    let mut frontier = Vector::<bool>::new(n)?;
    frontier.set_element(source, true)?;
    let mut depth = 0;
    while frontier.nvals() > 0 {
        depth += 1;
        let mut iter = trace::iter_span("bfs.iter", depth as u64);
        iter.arg("frontier_nnz", frontier.nvals());
        // levels[frontier] = depth
        assign_scalar(
            &mut levels,
            Some(&frontier),
            NOACC,
            depth,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        // frontier<¬levels,replace> = graphᵀ ⊕.⊗ frontier
        let visited = levels.pattern();
        let q = std::mem::replace(&mut frontier, Vector::new(n)?);
        mxv(
            &mut frontier,
            Some(&visited),
            NOACC,
            &LOR_LAND,
            a,
            &q,
            &Descriptor::new()
                .transpose_a()
                .complement()
                .structural()
                .replace()
                .direction(direction),
        )?;
    }
    algo.arg("depth", depth as u64);
    Ok(levels)
}

/// Multi-source level BFS: one traversal for a whole batch of sources.
///
/// The k frontiers ride in one k×n Boolean *frontier matrix* (row k is
/// source k's frontier), so every level of every search advances with a
/// **single masked `mxm`** — GraphBLAST's batched-traversal formulation,
/// and the kernel the service admission layer folds k concurrent BFS
/// queries into. Row `k` of the result is bit-identical to
/// `bfs_level(graph, sources[k])`: levels are depths, which no kernel
/// schedule can perturb.
///
/// Duplicate sources are allowed (their rows are computed independently
/// and come out equal); an out-of-bounds source fails the whole batch.
pub fn bfs_level_batch(graph: &Graph, sources: &[Index]) -> Result<Vec<Vector<i32>>> {
    let a = graph.structure()?;
    bfs_level_batch_matrix(&a, sources)
}

/// [`bfs_level_batch`] over any Boolean adjacency matrix.
pub fn bfs_level_batch_matrix(a: &Matrix<bool>, sources: &[Index]) -> Result<Vec<Vector<i32>>> {
    let n = a.nrows();
    for &s in sources {
        if s >= n {
            return Err(Error::oob(s, n));
        }
    }
    let k = sources.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut algo = trace::algo_span("bfs.batch");
    algo.arg("n", n);
    algo.arg("sources", k);
    // levels: k×n, row k holds source k's depth labeling.
    let mut levels = Matrix::<i32>::new(k, n)?;
    let mut frontier = Matrix::<bool>::new(k, n)?;
    for (row, &s) in sources.iter().enumerate() {
        frontier.set_element(row, s, true)?;
    }
    let mut depth = 0;
    while frontier.nvals() > 0 {
        depth += 1;
        let mut iter = trace::iter_span("bfs.iter", depth as u64);
        iter.arg("frontier_nnz", frontier.nvals());
        // levels<frontier> = depth, for every search at once.
        assign_matrix_scalar(
            &mut levels,
            Some(&frontier),
            NOACC,
            depth,
            &IndexSel::All,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        // frontier<¬levels,replace> = frontier ⊕.⊗ graph — one mxm
        // advances all k frontiers (A is applied on the right, so no
        // transpose is needed: row k stays search k).
        let visited = levels.pattern();
        let q = std::mem::replace(&mut frontier, Matrix::new(k, n)?);
        mxm(
            &mut frontier,
            Some(&visited),
            NOACC,
            &LOR_LAND,
            &q,
            a,
            &Descriptor::new().complement().structural().replace(),
        )?;
    }
    algo.arg("depth", depth as u64);
    // Unbundle the rows into per-source level vectors.
    let mut rows: Vec<Vec<(Index, i32)>> = vec![Vec::new(); k];
    for (row, v, l) in levels.iter() {
        rows[row].push((v, l));
    }
    rows.into_iter().map(|tuples| Vector::from_tuples(n, tuples, |_, b| b)).collect()
}

/// Parent BFS: returns `parents(v) = u` where `u` is the vertex that
/// discovered `v` (the source is its own parent). Uses the `ANY_SECOND`
/// semiring so any discovering neighbor may win — with deterministic
/// tie-breaking in this implementation (the first in row order).
pub fn bfs_parent(graph: &Graph, source: Index) -> Result<Vector<u64>> {
    let a = graph.structure()?;
    let n = a.nrows();
    if source >= n {
        return Err(Error::oob(source, n));
    }
    let mut algo = trace::algo_span("bfs.parent");
    algo.arg("n", n);
    algo.arg("source", source);
    let mut parents = Vector::<u64>::new(n)?;
    parents.set_element(source, source as u64)?;
    // The frontier carries the *id of the discovering vertex* as value.
    let mut frontier = Vector::<u64>::new(n)?;
    frontier.set_element(source, source as u64)?;
    let mut depth: u64 = 0;
    while frontier.nvals() > 0 {
        depth += 1;
        let mut iter = trace::iter_span("bfs.iter", depth);
        iter.arg("frontier_nnz", frontier.nvals());
        // q(v) = v for the next wave: each frontier vertex offers itself.
        let mut q = Vector::<u64>::new(n)?;
        apply_indexed(
            &mut q,
            None,
            NOACC,
            |i: Index, _: Index, _: u64| i as u64,
            &frontier,
            &Descriptor::default(),
        )?;
        // next<¬parents,replace> = Aᵀ any.second q
        let visited = parents.pattern();
        let mut next = Vector::<u64>::new(n)?;
        mxv(
            &mut next,
            Some(&visited),
            NOACC,
            &ANY_SECOND,
            &a,
            &q,
            &Descriptor::new().transpose_a().complement().structural().replace(),
        )?;
        // parents<next,structural> = next
        assign(
            &mut parents,
            Some(&next.pattern()),
            NOACC,
            &next,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        frontier = next;
    }
    Ok(parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    /// 0 — 1 — 2 — 3, plus 1 — 4; vertex 5 isolated.
    fn path_graph() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4)], GraphKind::Undirected)
            .expect("graph")
    }

    #[test]
    fn levels_on_a_path() {
        let g = path_graph();
        let levels = bfs_level(&g, 0).expect("bfs");
        assert_eq!(levels.extract_tuples(), vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 3)]);
        assert_eq!(levels.get(5), None, "isolated vertex unreached");
    }

    #[test]
    fn levels_from_interior_source() {
        let g = path_graph();
        let levels = bfs_level(&g, 2).expect("bfs");
        assert_eq!(levels.get(2), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(3), Some(2));
        assert_eq!(levels.get(0), Some(3));
        assert_eq!(levels.get(4), Some(3));
    }

    #[test]
    fn directions_agree() {
        let g = path_graph();
        let auto = bfs_level_direction(&g, 0, Direction::Auto).expect("auto");
        let push = bfs_level_direction(&g, 0, Direction::Push).expect("push");
        let pull = bfs_level_direction(&g, 0, Direction::Pull).expect("pull");
        assert_eq!(auto.extract_tuples(), push.extract_tuples());
        assert_eq!(auto.extract_tuples(), pull.extract_tuples());
    }

    #[test]
    fn parents_form_a_bfs_tree() {
        let g = path_graph();
        let parents = bfs_parent(&g, 0).expect("bfs");
        let levels = bfs_level(&g, 0).expect("levels");
        assert_eq!(parents.get(0), Some(0), "source is its own parent");
        for (v, p) in parents.iter() {
            if v == 0 {
                continue;
            }
            let lv = levels.get(v).expect("reached");
            let lp = levels.get(p as Index).expect("parent reached");
            assert_eq!(lv, lp + 1, "parent of {v} is one level up");
            assert!(g.a().get(p as Index, v).is_some(), "parent edge exists");
        }
        assert_eq!(parents.get(5), None);
    }

    #[test]
    fn batch_rows_match_single_source_runs() {
        let g = path_graph();
        let sources = [0, 2, 4, 5, 0]; // includes an isolated vertex + a duplicate
        let batch = bfs_level_batch(&g, &sources).expect("batch");
        assert_eq!(batch.len(), sources.len());
        for (row, &s) in sources.iter().enumerate() {
            let single = bfs_level(&g, s).expect("single");
            assert_eq!(
                batch[row].extract_tuples(),
                single.extract_tuples(),
                "source {s} diverged from the single-source oracle"
            );
        }
    }

    #[test]
    fn batch_on_directed_graph() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (3, 0)], GraphKind::Directed).expect("graph");
        let batch = bfs_level_batch(&g, &[0, 3]).expect("batch");
        assert_eq!(batch[0].extract_tuples(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(batch[1].extract_tuples(), vec![(0, 2), (1, 3), (2, 4), (3, 1)]);
    }

    #[test]
    fn batch_edge_cases() {
        let g = path_graph();
        assert!(bfs_level_batch(&g, &[]).expect("empty").is_empty());
        assert!(bfs_level_batch(&g, &[0, 6]).is_err(), "oob source fails the batch");
    }

    #[test]
    fn directed_bfs_follows_arcs() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (3, 0)], GraphKind::Directed).expect("graph");
        let levels = bfs_level(&g, 0).expect("bfs");
        assert_eq!(levels.extract_tuples(), vec![(0, 1), (1, 2), (2, 3)]);
        // 3 → 0 is not reachable from 0.
        assert_eq!(levels.get(3), None);
    }

    #[test]
    fn source_out_of_bounds() {
        let g = path_graph();
        assert!(bfs_level(&g, 6).is_err());
    }

    #[test]
    fn bfs_on_single_vertex() {
        let g = Graph::from_edges(1, &[], GraphKind::Undirected).expect("graph");
        let levels = bfs_level(&g, 0).expect("bfs");
        assert_eq!(levels.extract_tuples(), vec![(0, 1)]);
    }
}
