//! Maximal independent set — Luby's randomized algorithm in the
//! linear-algebra formulation of Lugowski et al. (cited in §V): each
//! round, vertices holding a value larger than all their neighbors'
//! values join the set, and their neighborhoods retire.

use graphblas::prelude::*;
use graphblas::semiring::MAX_SECOND;
use graphblas::trace;

use crate::graph::Graph;
use crate::utils::SplitMix64;

/// Compute a maximal independent set. Returns a Boolean vector with
/// `true` at the members. Deterministic for a fixed `seed`.
pub fn maximal_independent_set(graph: &Graph, seed: u64) -> Result<Vector<bool>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    let mut rng = SplitMix64::new(seed);

    let mut iset = Vector::<bool>::new(n)?;
    // Candidates: all vertices still undecided.
    let mut candidates = Vector::<bool>::new(n)?;
    assign_scalar(&mut candidates, None, NOACC, true, &IndexSel::All, &Descriptor::default())?;

    let mut algo = trace::algo_span("mis.luby");
    algo.arg("n", n);
    let mut round: u64 = 0;
    while candidates.nvals() > 0 {
        round += 1;
        let mut iter = trace::iter_span("mis.iter", round);
        iter.arg("candidates_nnz", candidates.nvals());
        // Random weight per candidate. Degree-0 vertices always win.
        let cand_idx: Vec<Index> = candidates.iter().map(|(i, _)| i).collect();
        let weights: Vec<(Index, f64)> = cand_idx.iter().map(|&i| (i, rng.next_f64())).collect();
        let prob = Vector::from_tuples(n, weights, |_, b| b)?;
        // Max neighbor weight among candidates.
        let mut nbr_max = Vector::<f64>::new(n)?;
        mxv(&mut nbr_max, Some(&candidates), NOACC, &MAX_SECOND, a, &prob, &Descriptor::default())?;
        // Winners: candidates whose weight beats every neighbor's.
        let mut winners = Vector::<bool>::new(n)?;
        // A candidate with no candidate neighbors has no nbr_max entry.
        for &i in &cand_idx {
            let w = prob.get(i).expect("candidate weight");
            let beat = match nbr_max.get(i) {
                None => true,
                Some(m) => w > m,
            };
            if beat {
                winners.set_element(i, true)?;
            }
        }
        if winners.nvals() == 0 {
            continue; // rare ties: redraw
        }
        // iset |= winners
        assign_scalar(
            &mut iset,
            Some(&winners),
            NOACC,
            true,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        // Retire winners and their neighborhoods from the candidates.
        let mut nbrs = Vector::<bool>::new(n)?;
        mxv(&mut nbrs, None, NOACC, &MAX_SECOND, a, &winners, &Descriptor::default())?;
        for v in winners.iter().map(|(i, _)| i).chain(nbrs.iter().map(|(i, _)| i)) {
            candidates.remove_element(v)?;
        }
    }
    algo.arg("rounds", round);
    Ok(iset)
}

/// Verify the MIS properties: independence (no two members adjacent) and
/// maximality (every non-member has a member neighbor).
pub fn verify_mis(graph: &Graph, iset: &Vector<bool>) -> Result<bool> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // members' neighborhoods
    let members: Vector<bool> = iset.clone();
    let mut nbrs = Vector::<bool>::new(n)?;
    mxv(&mut nbrs, None, NOACC, &MAX_SECOND, a, &members, &Descriptor::default())?;
    // Independence: no member is a member's neighbor.
    for (i, _) in members.iter() {
        if nbrs.get(i).is_some() {
            return Ok(false);
        }
    }
    // Maximality: every vertex is a member or adjacent to one.
    for v in 0..n {
        if members.get(v).is_none() && nbrs.get(v).is_none() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn mis_on_path_is_valid() {
        let edges: Vec<(Index, Index)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(10, &edges, GraphKind::Undirected).expect("graph");
        for seed in [1, 2, 3, 42] {
            let iset = maximal_independent_set(&g, seed).expect("mis");
            assert!(verify_mis(&g, &iset).expect("verify"), "seed {seed}");
            // A maximal IS on P10 has between 4 and 5 members.
            assert!((4..=5).contains(&iset.nvals()), "size {}", iset.nvals());
        }
    }

    #[test]
    fn mis_on_complete_graph_is_single_vertex() {
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph");
        let iset = maximal_independent_set(&g, 7).expect("mis");
        assert_eq!(iset.nvals(), 1);
        assert!(verify_mis(&g, &iset).expect("verify"));
    }

    #[test]
    fn isolated_vertices_always_join() {
        let g = Graph::from_edges(4, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let iset = maximal_independent_set(&g, 5).expect("mis");
        assert!(iset.get(2).is_some());
        assert!(iset.get(3).is_some());
        assert!(verify_mis(&g, &iset).expect("verify"));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let edges: Vec<(Index, Index)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(20, &edges, GraphKind::Undirected).expect("graph");
        let a = maximal_independent_set(&g, 99).expect("a");
        let b = maximal_independent_set(&g, 99).expect("b");
        assert_eq!(a.extract_tuples(), b.extract_tuples());
    }

    #[test]
    fn verify_rejects_bad_sets() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], GraphKind::Undirected).expect("graph");
        // Not independent: 0 and 1 adjacent.
        let bad = Vector::from_tuples(3, vec![(0, true), (1, true)], |_, b| b).expect("v");
        assert!(!verify_mis(&g, &bad).expect("verify"));
        // Not maximal: {0} leaves 2 uncovered.
        let bad = Vector::from_tuples(3, vec![(0, true)], |_, b| b).expect("v");
        assert!(!verify_mis(&g, &bad).expect("verify"));
    }
}
