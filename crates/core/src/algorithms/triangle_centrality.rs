//! Triangle centrality (Burkhardt; an LAGraph algorithm): ranks vertices
//! by the concentration of triangles in their neighborhood,
//!
//! `TC(v) = ( ⅓·(t(v) + Σ_{u ∈ N_T(v)} t(u)) + Σ_{u ∈ N(v)∖N_T(v)} t(u) ) / T`
//!
//! (N_T(v) = neighbors forming a triangle with v; T = total triangles),
//! computed with two semiring products over the triangle-count vector —
//! no per-vertex graph traversal.

use graphblas::prelude::*;
use graphblas::semiring::{PLUS_PAIR, PLUS_SECOND};

use crate::graph::Graph;

/// Triangle centrality of every vertex. Returns the centrality vector
/// (empty if the graph has no triangles) plus the triangle count.
pub fn triangle_centrality(graph: &Graph) -> Result<(Vector<f64>, u64)> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // Per-vertex triangle counts t(v), and the triangle-edge matrix
    // (entries of A supported by at least one triangle). The fused kernel
    // emits the row sums and the product pattern without ever holding the
    // wedge-count matrix itself.
    let (row_sum, tri_edges): (Vector<u64>, Matrix<bool>) = fused_mxm_row_reduce_pattern(
        &binaryop::Plus,
        a,
        &PLUS_PAIR,
        a,
        a,
        &Descriptor::new().structural(),
    )?;
    let mut t = Vector::<f64>::new(n)?;
    apply(&mut t, None, NOACC, |x: u64| x as f64 / 2.0, &row_sum, &Descriptor::default())?;
    let total = reduce_vector_scalar(&binaryop::Plus, &row_sum) / 6;
    if total == 0 {
        return Ok((Vector::new(n)?, 0));
    }
    // Neighbor sums of t over all edges (A) and over triangle edges only.
    let mut nbr_all = Vector::<f64>::new(n)?;
    mxv(&mut nbr_all, None, NOACC, &PLUS_SECOND, a, &t, &Descriptor::default())?;
    let mut nbr_tri = Vector::<f64>::new(n)?;
    mxv(
        &mut nbr_tri,
        None,
        NOACC,
        &Semiring::new(binaryop::Plus, binaryop::Second),
        &tri_edges,
        &t,
        &Descriptor::default(),
    )?;
    // Burkhardt's definition: triangle neighbors contribute at one third
    // (each of their triangles is shared three ways), non-triangle
    // neighbors contribute their counts in full.
    let total_f = total as f64;
    let mut tc = Vector::<f64>::new(n)?;
    for v in 0..n {
        let tv = t.get(v).unwrap_or(0.0);
        let all = nbr_all.get(v).unwrap_or(0.0);
        let tri = nbr_tri.get(v).unwrap_or(0.0);
        let score = ((tv + tri) / 3.0 + (all - tri)) / total_f;
        if tv > 0.0 || all > 0.0 {
            tc.set_element(v, score)?;
        }
    }
    tc.wait();
    Ok((tc, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn single_triangle_all_equal() {
        let g =
            Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], GraphKind::Undirected).expect("graph");
        let (tc, total) = triangle_centrality(&g).expect("tc");
        assert_eq!(total, 1);
        // All three vertices are symmetric: identical scores, and by
        // Burkhardt's normalization each equals 1.
        let a = tc.get(0).expect("score");
        assert_eq!(tc.get(1), Some(a));
        assert_eq!(tc.get(2), Some(a));
        assert!((a - 1.0).abs() < 1e-9, "score {a}");
    }

    #[test]
    fn pendant_next_to_a_triangle_sees_it_fully() {
        // Triangle 0-1-2 plus pendant 2-3: a documented property of
        // triangle centrality is that a vertex adjacent to the whole
        // triangle's mass scores as if inside it.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], GraphKind::Undirected)
            .expect("graph");
        let (tc, total) = triangle_centrality(&g).expect("tc");
        assert_eq!(total, 1);
        let member = tc.get(2).expect("member");
        let pendant = tc.get(3).expect("pendant");
        assert!((member - 1.0).abs() < 1e-9);
        assert!((pendant - 1.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_free_graph_returns_empty() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("graph");
        let (tc, total) = triangle_centrality(&g).expect("tc");
        assert_eq!(total, 0);
        assert_eq!(tc.nvals(), 0);
    }

    #[test]
    fn bridge_vertex_scores_highest() {
        // Two triangles sharing vertex 2.
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let (tc, total) = triangle_centrality(&g).expect("tc");
        assert_eq!(total, 2);
        let bridge = tc.get(2).expect("bridge");
        assert!((bridge - 1.0).abs() < 1e-9, "bridge {bridge}");
        for v in [0, 1, 3, 4] {
            let other = tc.get(v).expect("other");
            assert!(bridge > other, "vertex {v}");
            assert!((other - 2.0 / 3.0).abs() < 1e-9, "vertex {v}: {other}");
        }
    }
}
