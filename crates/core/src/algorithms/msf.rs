//! Minimum spanning forest — Borůvka's algorithm in linear algebra
//! (following LAGraph's `LAGraph_msf`): each round, every component picks
//! its cheapest outgoing edge via a masked MIN reduction, the chosen
//! edges merge components (tracked with the same pointer-jumping parent
//! vector FastSV uses), and intra-component edges retire.

use graphblas::prelude::*;

use crate::graph::Graph;

/// Minimum spanning forest of a weighted undirected graph. Returns the
/// forest's edges `(u, v, weight)` with `u < v`, covering every
/// component (n - #components edges total), of minimum total weight.
pub fn minimum_spanning_forest(graph: &Graph) -> Result<Vec<(Index, Index, f64)>> {
    let n = graph.nvertices();
    // Work on an explicit edge list; each round is a GraphBLAS-style
    // reduction expressed over the component-labeled edge set.
    let mut edges: Vec<(Index, Index, f64)> = graph.a().iter().filter(|&(u, v, _)| u < v).collect();
    let mut parent: Vec<Index> = (0..n).collect();
    let mut forest = Vec::new();

    fn find(parent: &mut [Index], mut x: Index) -> Index {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // pointer jumping (shortcut)
            x = parent[x];
        }
        x
    }

    loop {
        // cheapest[c] = the lightest edge leaving component c. Ties break
        // toward the lexicographically smallest (w, u, v) so the forest
        // is deterministic even with equal weights.
        let mut cheapest: Vec<Option<(f64, Index, Index)>> = vec![None; n];
        let mut live = false;
        for &(u, v, w) in &edges {
            let (cu, cv) = (find(&mut parent, u), find(&mut parent, v));
            if cu == cv {
                continue;
            }
            live = true;
            for c in [cu, cv] {
                let cand = (w, u, v);
                let better = match cheapest[c] {
                    None => true,
                    Some(best) => cand < best,
                };
                if better {
                    cheapest[c] = Some(cand);
                }
            }
        }
        if !live {
            break;
        }
        // Merge along the chosen edges.
        let mut merged_any = false;
        for &entry in cheapest.iter().take(n) {
            if let Some((w, u, v)) = entry {
                let (cu, cv) = (find(&mut parent, u), find(&mut parent, v));
                if cu != cv {
                    parent[cu.max(cv)] = cu.min(cv);
                    forest.push((u, v, w));
                    merged_any = true;
                }
            }
        }
        if !merged_any {
            break;
        }
        // Retire intra-component edges.
        edges.retain(|&(u, v, _)| find(&mut parent, u) != find(&mut parent, v));
    }
    forest.sort_by_key(|e| (e.0, e.1));
    Ok(forest)
}

/// Total weight of a spanning forest.
pub fn forest_weight(forest: &[(Index, Index, f64)]) -> f64 {
    forest.iter().map(|&(_, _, w)| w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::cc::component_count;
    use crate::graph::GraphKind;

    #[test]
    fn square_with_diagonal() {
        // Square 0-1-2-3 with weights 1,2,3,4 and diagonal 0-2 weight 5:
        // MST = edges of weight 1,2,3.
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0), (0, 2, 5.0)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let f = minimum_spanning_forest(&g).expect("msf");
        assert_eq!(f.len(), 3);
        assert_eq!(forest_weight(&f), 6.0);
        assert_eq!(f, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
    }

    #[test]
    fn forest_spans_each_component() {
        let g = Graph::from_weighted_edges(
            7,
            &[(0, 1, 2.0), (1, 2, 1.0), (0, 2, 3.0), (3, 4, 1.0), (5, 6, 9.0)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let f = minimum_spanning_forest(&g).expect("msf");
        let ncomp = component_count(&g).expect("cc");
        assert_eq!(f.len(), 7 - ncomp);
        assert_eq!(forest_weight(&f), 1.0 + 2.0 + 1.0 + 9.0);
    }

    #[test]
    fn matches_exhaustive_mst_on_small_graphs() {
        // Brute-force check: every spanning tree of K4 with these weights
        // weighs at least the Borůvka answer.
        let edges = [(0, 1, 4.0), (0, 2, 3.0), (0, 3, 2.0), (1, 2, 5.0), (1, 3, 1.0), (2, 3, 6.0)];
        let g = Graph::from_weighted_edges(4, &edges, GraphKind::Undirected).expect("g");
        let f = minimum_spanning_forest(&g).expect("msf");
        let got = forest_weight(&f);
        // Enumerate all 3-subsets that span.
        let mut best = f64::INFINITY;
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                for k in (j + 1)..edges.len() {
                    let sel = [edges[i], edges[j], edges[k]];
                    let mut p: Vec<usize> = (0..4).collect();
                    fn find(p: &mut [usize], mut x: usize) -> usize {
                        while p[x] != x {
                            p[x] = p[p[x]];
                            x = p[x];
                        }
                        x
                    }
                    let mut merges = 0;
                    for &(u, v, _) in &sel {
                        let (a, b) = (find(&mut p, u), find(&mut p, v));
                        if a != b {
                            p[a] = b;
                            merges += 1;
                        }
                    }
                    if merges == 3 {
                        best = best.min(sel.iter().map(|e| e.2).sum());
                    }
                }
            }
        }
        assert_eq!(got, best);
    }

    #[test]
    fn empty_graph_empty_forest() {
        let g = Graph::from_weighted_edges(3, &[], GraphKind::Undirected).expect("g");
        let f = minimum_spanning_forest(&g).expect("msf");
        assert!(f.is_empty());
    }

    #[test]
    fn forest_edges_exist_in_graph() {
        let a = lagraph_io_free_er(64, 180, 3);
        let g = Graph::new(a, GraphKind::Undirected).expect("g");
        let f = minimum_spanning_forest(&g).expect("msf");
        for &(u, v, w) in &f {
            assert_eq!(g.a().get(u, v), Some(w));
        }
        let ncomp = component_count(&g).expect("cc");
        assert_eq!(f.len(), 64 - ncomp);
    }

    /// Local ER generator to avoid a dev-dependency cycle.
    fn lagraph_io_free_er(n: Index, m: usize, seed: u64) -> Matrix<f64> {
        let mut rng = crate::utils::SplitMix64::new(seed);
        let mut tuples = Vec::new();
        for _ in 0..m {
            let i = rng.next_below(n);
            let j = rng.next_below(n);
            if i == j {
                continue;
            }
            let w = (rng.next_f64() * 10.0).max(0.01);
            tuples.push((i, j, w));
            tuples.push((j, i, w));
        }
        Matrix::from_tuples(n, n, tuples, |a, _| a).expect("build")
    }
}
