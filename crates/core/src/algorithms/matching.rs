//! Maximal cardinality matching on bipartite graphs (Azad & Buluç, cited
//! in §V): a propose–accept loop in which unmatched rows offer themselves
//! to unmatched columns over a MIN semiring and conflicts are resolved by
//! a second product in the opposite direction.

use graphblas::prelude::*;
use graphblas::semiring::MIN_FIRST;

/// Maximal matching of a bipartite graph given as an `nrows × ncols`
/// biadjacency matrix. Returns `(row_mate, col_mate)`: `row_mate(i) = j`
/// and `col_mate(j) = i` for every matched pair.
pub fn bipartite_matching(a: &Matrix<bool>) -> Result<(Vector<u64>, Vector<u64>)> {
    let (nr, nc) = (a.nrows(), a.ncols());
    let mut row_mate = Vector::<u64>::new(nr)?;
    let mut col_mate = Vector::<u64>::new(nc)?;
    loop {
        // Unmatched rows offer their id to all adjacent unmatched columns;
        // each column keeps the smallest bidder.
        // bids(j) = min over unmatched rows i adjacent to j of i.
        let mut offer = Vector::<u64>::new(nr)?;
        for i in 0..nr {
            if row_mate.get(i).is_none() {
                offer.set_element(i, i as u64)?;
            }
        }
        if offer.nvals() == 0 {
            break;
        }
        let mut bids = Vector::<u64>::new(nc)?;
        // bids<¬col_mate> = Aᵀ min.second offer
        vxm(
            &mut bids,
            Some(&col_mate.pattern()),
            NOACC,
            &MIN_FIRST,
            &offer,
            a,
            &Descriptor::new().complement().structural().replace(),
        )?;
        if bids.nvals() == 0 {
            break;
        }
        // Each winning row may have won several columns; keep the
        // smallest column per row so the matching stays one-to-one.
        let mut won: std::collections::HashMap<u64, Index> = std::collections::HashMap::new();
        for (j, i) in bids.iter() {
            let e = won.entry(i).or_insert(j);
            if j < *e {
                *e = j;
            }
        }
        let mut progress = false;
        for (i, j) in won {
            if row_mate.get(i as Index).is_none() && col_mate.get(j).is_none() {
                row_mate.set_element(i as Index, j as u64)?;
                col_mate.set_element(j, i)?;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    Ok((row_mate, col_mate))
}

/// Verify matching validity (edges exist, one-to-one) and maximality (no
/// remaining edge between an unmatched row and an unmatched column).
pub fn verify_matching(
    a: &Matrix<bool>,
    row_mate: &Vector<u64>,
    col_mate: &Vector<u64>,
) -> Result<bool> {
    for (i, j) in row_mate.iter() {
        if a.get(i, j as Index).is_none() {
            return Ok(false); // matched along a non-edge
        }
        if col_mate.get(j as Index) != Some(i as u64) {
            return Ok(false); // not mutual
        }
    }
    for (i, j, _) in a.iter() {
        if row_mate.get(i).is_none() && col_mate.get(j).is_none() {
            return Ok(false); // not maximal
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(nr: Index, nc: Index, edges: &[(Index, Index)]) -> Matrix<bool> {
        Matrix::from_tuples(nr, nc, edges.iter().map(|&(i, j)| (i, j, true)).collect(), |_, b| b)
            .expect("build")
    }

    #[test]
    fn perfect_matching_on_disjoint_edges() {
        let a = bi(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        let (rm, cm) = bipartite_matching(&a).expect("match");
        assert_eq!(rm.nvals(), 3);
        assert!(verify_matching(&a, &rm, &cm).expect("verify"));
    }

    #[test]
    fn conflict_resolution_is_one_to_one() {
        // Both rows want column 0; only one can have it, but row 1 also
        // has column 1 available.
        let a = bi(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let (rm, cm) = bipartite_matching(&a).expect("match");
        assert!(verify_matching(&a, &rm, &cm).expect("verify"));
        assert_eq!(rm.nvals(), 2, "maximal here is perfect");
    }

    #[test]
    fn star_matches_one() {
        let a = bi(3, 1, &[(0, 0), (1, 0), (2, 0)]);
        let (rm, cm) = bipartite_matching(&a).expect("match");
        assert_eq!(rm.nvals(), 1);
        assert!(verify_matching(&a, &rm, &cm).expect("verify"));
    }

    #[test]
    fn empty_graph_empty_matching() {
        let a = Matrix::<bool>::new(3, 3).expect("a");
        let (rm, cm) = bipartite_matching(&a).expect("match");
        assert_eq!(rm.nvals(), 0);
        assert!(verify_matching(&a, &rm, &cm).expect("verify"));
    }

    #[test]
    fn rectangular_bipartite() {
        let a = bi(2, 5, &[(0, 3), (0, 4), (1, 3)]);
        let (rm, cm) = bipartite_matching(&a).expect("match");
        // Maximal (not necessarily maximum): row 0 may claim column 3
        // first, stranding row 1, and the result is still maximal.
        assert!(verify_matching(&a, &rm, &cm).expect("verify"));
        assert!(rm.nvals() >= 1);
    }

    #[test]
    fn verify_detects_flaws() {
        let a = bi(2, 2, &[(0, 0), (1, 1)]);
        // Non-edge matching.
        let rm = Vector::from_tuples(2, vec![(0, 1u64)], |_, b| b).expect("rm");
        let cm = Vector::from_tuples(2, vec![(1, 0u64)], |_, b| b).expect("cm");
        assert!(!verify_matching(&a, &rm, &cm).expect("verify"));
        // Non-maximal (empty) matching.
        let rm = Vector::<u64>::new(2).expect("rm");
        let cm = Vector::<u64>::new(2).expect("cm");
        assert!(!verify_matching(&a, &rm, &cm).expect("verify"));
    }
}
