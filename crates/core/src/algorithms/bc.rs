//! Betweenness centrality — the batched Brandes algorithm in linear
//! algebra (Buluç & Gilbert's Combinatorial BLAS formulation, cited in
//! §V), computing the contribution of a batch of source vertices with a
//! forward sweep of masked `mxm`s and a backward dependency accumulation.

use graphblas::prelude::*;
use graphblas::semiring::{PLUS_FIRST, PLUS_TIMES};
use graphblas::trace;

use crate::graph::Graph;

/// Batch betweenness centrality: the centrality contribution of shortest
/// paths that start at the given `sources`. Passing all vertices yields
/// exact BC (up to the constant factor conventions of Brandes).
pub fn betweenness_centrality(graph: &Graph, sources: &[Index]) -> Result<Vector<f64>> {
    let s = graph.structure()?;
    let n = s.nrows();
    for &src in sources {
        if src >= n {
            return Err(Error::oob(src, n));
        }
    }
    let ns = sources.len();
    if ns == 0 {
        return Vector::new(n);
    }
    let mut algo = trace::algo_span("bc.batch");
    algo.arg("n", n);
    algo.arg("sources", ns);
    // A as f64 pattern for path counting.
    let mut a = Matrix::<f64>::new(n, n)?;
    apply_matrix(&mut a, None, NOACC, unaryop::One, &*s, &Descriptor::default())?;

    // numsp: ns × n path counts; starts with 1 at each source.
    let mut numsp = Matrix::<f64>::new(ns, n)?;
    for (k, &src) in sources.iter().enumerate() {
        numsp.set_element(k, src, 1.0)?;
    }
    // frontier: paths discovered this level.
    let mut frontier = numsp.clone();
    // Stack of per-level frontiers for the backward sweep.
    let mut stack: Vec<Matrix<f64>> = Vec::new();
    loop {
        let mut iter = trace::iter_span("bc.forward", stack.len() as u64);
        iter.arg("frontier_nnz", frontier.nvals());
        // next<¬numsp,replace> = frontier ⊕.⊗ A
        let visited = numsp.pattern();
        let mut next = Matrix::<f64>::new(ns, n)?;
        mxm(
            &mut next,
            Some(&visited),
            NOACC,
            &PLUS_FIRST,
            &frontier,
            &a,
            &Descriptor::new().complement().structural().replace(),
        )?;
        if next.nvals() == 0 {
            break;
        }
        // numsp += next
        let nsnap = numsp.clone();
        ewise_add_matrix(
            &mut numsp,
            None,
            NOACC,
            binaryop::Plus,
            &nsnap,
            &next,
            &Descriptor::default(),
        )?;
        stack.push(next.clone());
        frontier = next;
    }

    // Backward: dependency accumulation.
    // bcu starts as all-ones dense ns × n (the +1 term of Brandes).
    let mut bcu = Matrix::<f64>::new(ns, n)?;
    assign_matrix_scalar(
        &mut bcu,
        None,
        NOACC,
        1.0,
        &IndexSel::All,
        &IndexSel::All,
        &Descriptor::default(),
    )?;
    // Write levels `stack.len()-1 .. 1`; the source level (0) is excluded,
    // as Brandes' dependency accumulation never assigns δ to the source.
    for d in (1..stack.len()).rev() {
        let _iter = trace::iter_span("bc.backward", d as u64);
        // w<S_d> = bcu ./ numsp
        let sd = stack[d].pattern();
        let mut w = Matrix::<f64>::new(ns, n)?;
        ewise_mult_matrix(
            &mut w,
            Some(&sd),
            NOACC,
            |b: f64, p: f64| b / p,
            &bcu,
            &numsp,
            &Descriptor::new().structural().replace(),
        )?;
        // back-propagate along reversed edges: t<S_{d-1}> = w ⊕.⊗ Aᵀ
        let mask_prev = stack[d - 1].pattern();
        let mut t = Matrix::<f64>::new(ns, n)?;
        mxm(
            &mut t,
            Some(&mask_prev),
            NOACC,
            &PLUS_TIMES,
            &w,
            &a,
            &Descriptor::new().structural().replace().transpose_b(),
        )?;
        // bcu += t .* numsp
        let mut contrib = Matrix::<f64>::new(ns, n)?;
        ewise_mult_matrix(
            &mut contrib,
            None,
            NOACC,
            binaryop::Times,
            &t,
            &numsp,
            &Descriptor::default(),
        )?;
        let bsnap = bcu.clone();
        ewise_add_matrix(
            &mut bcu,
            None,
            NOACC,
            binaryop::Plus,
            &bsnap,
            &contrib,
            &Descriptor::default(),
        )?;
    }
    // centrality(v) = sum over sources of bcu(:, v) minus ns (the +1s).
    let mut bc = Vector::<f64>::new(n)?;
    reduce_matrix(&mut bc, None, NOACC, &binaryop::Plus, &bcu, &Descriptor::new().transpose_a())?;
    let snapshot = bc.clone();
    let ns_f = ns as f64;
    apply(&mut bc, None, NOACC, move |x: f64| x - ns_f, &snapshot, &Descriptor::default())?;
    Ok(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn assert_close(v: &Vector<f64>, i: Index, want: f64) {
        let got = v.get(i).unwrap_or(f64::NAN);
        assert!((got - want).abs() < 1e-9, "bc({i}) = {got}, want {want}");
    }

    #[test]
    fn path_centrality() {
        // Path 0-1-2-3-4: exact BC (all sources, undirected convention
        // counting both directions) of middle vertex 2 is 8:
        // pairs (0,3),(0,4),(1,3),(1,4) and reverses pass through 2.
        let edges: Vec<(Index, Index)> = (0..4).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(5, &edges, GraphKind::Undirected).expect("graph");
        let all: Vec<Index> = (0..5).collect();
        let bc = betweenness_centrality(&g, &all).expect("bc");
        assert_close(&bc, 0, 0.0);
        assert_close(&bc, 1, 6.0); // (0,2),(0,3),(0,4) ×2 directions
        assert_close(&bc, 2, 8.0);
        assert_close(&bc, 3, 6.0);
        assert_close(&bc, 4, 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], GraphKind::Undirected)
            .expect("graph");
        let all: Vec<Index> = (0..5).collect();
        let bc = betweenness_centrality(&g, &all).expect("bc");
        // Center lies on all 4×3 = 12 ordered leaf pairs.
        assert_close(&bc, 0, 12.0);
        for leaf in 1..5 {
            assert_close(&bc, leaf, 0.0);
        }
    }

    #[test]
    fn split_paths_share_centrality() {
        // Diamond: 0-1-3, 0-2-3: two shortest paths 0→3; each middle
        // vertex gets half per direction.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], GraphKind::Undirected)
            .expect("graph");
        let all: Vec<Index> = (0..4).collect();
        let bc = betweenness_centrality(&g, &all).expect("bc");
        assert_close(&bc, 1, 1.0); // 0.5 each direction
        assert_close(&bc, 2, 1.0);
        // 0 and 3 likewise lie on the two shortest 1 ↔ 2 paths.
        assert_close(&bc, 0, 1.0);
        assert_close(&bc, 3, 1.0);
    }

    #[test]
    fn batch_subset_is_partial_sum() {
        let edges: Vec<(Index, Index)> = (0..4).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(5, &edges, GraphKind::Undirected).expect("graph");
        let from0 = betweenness_centrality(&g, &[0]).expect("bc0");
        let from4 = betweenness_centrality(&g, &[4]).expect("bc4");
        let both = betweenness_centrality(&g, &[0, 4]).expect("bc04");
        for v in 0..5 {
            let a = from0.get(v).unwrap_or(0.0) + from4.get(v).unwrap_or(0.0);
            let b = both.get(v).unwrap_or(0.0);
            assert!((a - b).abs() < 1e-9, "v={v}: {a} vs {b}");
        }
    }

    #[test]
    fn empty_sources_empty_result() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let bc = betweenness_centrality(&g, &[]).expect("bc");
        assert_eq!(bc.nvals(), 0);
    }
}
