//! Local graph clustering — the third row of the paper's Table II.
//!
//! Approximate personalized PageRank by the Andersen–Chung–Lang push
//! method, followed by a conductance sweep cut: given a seed vertex,
//! return a low-conductance cluster around it without touching the rest
//! of the graph.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;

use crate::graph::Graph;

/// Options for [`local_cluster`].
#[derive(Debug, Clone, Copy)]
pub struct LocalClusterOptions {
    /// PPR teleport probability (ACL's alpha).
    pub alpha: f64,
    /// Push tolerance: stop when all residuals are below `epsilon * deg`.
    pub epsilon: f64,
}

impl Default for LocalClusterOptions {
    fn default() -> Self {
        LocalClusterOptions { alpha: 0.15, epsilon: 1e-4 }
    }
}

/// Approximate personalized PageRank from `seed` via ACL push. Returns a
/// sparse vector supported only near the seed.
pub fn approximate_ppr(
    graph: &Graph,
    seed: Index,
    opts: &LocalClusterOptions,
) -> Result<Vector<f64>> {
    let n = graph.nvertices();
    if seed >= n {
        return Err(Error::oob(seed, n));
    }
    let degree = graph.out_degree()?;
    let deg = |v: Index| degree.get(v).unwrap_or(0) as f64;
    let mut p = Vector::<f64>::new(n)?;
    let mut r = Vector::<f64>::new(n)?;
    r.set_element(seed, 1.0)?;
    // Work queue of vertices with pushable residual.
    let mut queue: Vec<Index> = vec![seed];
    let mut queued = vec![false; n];
    queued[seed] = true;
    while let Some(v) = queue.pop() {
        queued[v] = false;
        let dv = deg(v);
        let rv = r.get(v).unwrap_or(0.0);
        if dv == 0.0 {
            // Dangling seed: all residual becomes rank.
            if rv > 0.0 {
                p.set_element(v, p.get(v).unwrap_or(0.0) + rv)?;
                r.remove_element(v)?;
            }
            continue;
        }
        if rv < opts.epsilon * dv {
            continue;
        }
        // Push: move alpha of the residual into p, spread the rest.
        p.set_element(v, p.get(v).unwrap_or(0.0) + opts.alpha * rv)?;
        let share = (1.0 - opts.alpha) * rv / (2.0 * dv);
        r.set_element(v, (1.0 - opts.alpha) * rv / 2.0)?;
        // Neighbors of v: row v of A.
        let mut row = Vector::<f64>::new(n)?;
        extract_col(
            &mut row,
            None,
            NOACC,
            graph.a(),
            &IndexSel::All,
            v,
            &Descriptor::new().transpose_a(),
        )?;
        for (u, _) in row.iter() {
            r.set_element(u, r.get(u).unwrap_or(0.0) + share)?;
            if !queued[u] && r.get(u).unwrap_or(0.0) >= opts.epsilon * deg(u).max(1.0) {
                queued[u] = true;
                queue.push(u);
            }
        }
        // v itself may still be pushable.
        if !queued[v] && r.get(v).unwrap_or(0.0) >= opts.epsilon * dv {
            queued[v] = true;
            queue.push(v);
        }
    }
    Ok(p)
}

/// Conductance of a vertex set `s`: cut(S) / min(vol(S), vol(V∖S)).
pub fn conductance(graph: &Graph, members: &[Index]) -> Result<f64> {
    let n = graph.nvertices();
    let total_vol = graph.nedges() as f64;
    if members.is_empty() {
        return Ok(1.0);
    }
    let mut indicator = Vector::<bool>::new(n)?;
    for &v in members {
        indicator.set_element(v, true)?;
    }
    // Edges leaving S: for each member, count neighbors outside S.
    let degree = graph.out_degree()?;
    let mut vol = 0.0;
    let mut internal = 0.0;
    // inside(v) = number of v's neighbors inside S = (A x_S)(v).
    let mut inside = Vector::<f64>::new(n)?;
    mxv(
        &mut inside,
        None,
        NOACC,
        &PLUS_SECOND,
        graph.a(),
        &Vector::from_tuples(n, members.iter().map(|&v| (v, 1.0)).collect(), |_, b| b)?,
        &Descriptor::default(),
    )?;
    for &v in members {
        vol += degree.get(v).unwrap_or(0) as f64;
        internal += inside.get(v).unwrap_or(0.0);
    }
    let cut = vol - internal;
    let other = total_vol - vol;
    if vol <= 0.0 || other <= 0.0 {
        // The empty set and the full vertex set are not clusters.
        return Ok(1.0);
    }
    Ok(cut / vol.min(other))
}

/// Local clustering: ACL push + sweep cut. Returns the member vertices of
/// the lowest-conductance prefix and that conductance.
pub fn local_cluster(
    graph: &Graph,
    seed: Index,
    opts: &LocalClusterOptions,
) -> Result<(Vec<Index>, f64)> {
    let p = approximate_ppr(graph, seed, opts)?;
    let degree = graph.out_degree()?;
    // Order by degree-normalized rank.
    let mut order: Vec<(Index, f64)> =
        p.iter().map(|(v, x)| (v, x / (degree.get(v).unwrap_or(0).max(1) as f64))).collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN ranks"));
    let mut best: (Vec<Index>, f64) = (vec![seed], 1.0);
    let mut prefix: Vec<Index> = Vec::new();
    for (v, _) in order {
        prefix.push(v);
        let phi = conductance(graph, &prefix)?;
        if phi < best.1 {
            best = (prefix.clone(), phi);
        }
    }
    best.0.sort_unstable();
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    /// Two K4s joined by a single bridge.
    fn dumbbell() -> Graph {
        let mut edges = Vec::new();
        for block in 0..2 {
            let base = block * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4)); // bridge
        Graph::from_edges(8, &edges, GraphKind::Undirected).expect("graph")
    }

    #[test]
    fn ppr_concentrates_near_seed() {
        let g = dumbbell();
        let p = approximate_ppr(&g, 0, &LocalClusterOptions::default()).expect("ppr");
        let near: f64 = (0..4).map(|v| p.get(v).unwrap_or(0.0)).sum();
        let far: f64 = (4..8).map(|v| p.get(v).unwrap_or(0.0)).sum();
        assert!(near > 4.0 * far, "near {near} vs far {far}");
    }

    #[test]
    fn sweep_finds_the_block() {
        let g = dumbbell();
        let (members, phi) =
            local_cluster(&g, 0, &LocalClusterOptions::default()).expect("cluster");
        assert_eq!(members, vec![0, 1, 2, 3]);
        // One bridge edge over volume 13 (12 internal half-edges + bridge).
        assert!(phi < 0.1, "conductance {phi}");
    }

    #[test]
    fn conductance_extremes() {
        let g = dumbbell();
        // The full vertex set is not a meaningful cluster: defined as 1.
        let all: Vec<Index> = (0..8).collect();
        assert_eq!(conductance(&g, &all).expect("phi"), 1.0);
        // A single clique vertex has high conductance.
        let phi = conductance(&g, &[0]).expect("phi");
        assert!(phi > 0.9);
    }

    #[test]
    fn seed_bounds_checked() {
        let g = dumbbell();
        assert!(approximate_ppr(&g, 99, &LocalClusterOptions::default()).is_err());
    }
}
