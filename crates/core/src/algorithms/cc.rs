//! Connected components via FastSV (Zhang, Azad, Buluç), the
//! linear-algebraic successor of LACC cited by the paper: min-label
//! hooking through `mxv` over the `MIN_SECOND` semiring plus pointer
//! shortcutting with `extract`. Connected components is GAP benchmark
//! kernel #5.
//!
//! Each round costs O(n + e); label trees halve in height per round, so
//! the round count is O(log n) — in practice a handful even at large
//! scale.

use graphblas::prelude::*;
use graphblas::semiring::MIN_SECOND;
use graphblas::trace;

use crate::graph::Graph;

/// Connected components of an undirected graph: returns `comp(v)` = the
/// smallest vertex id in `v`'s component.
pub fn connected_components(graph: &Graph) -> Result<Vector<u64>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // f(v) starts as v itself.
    let mut f = Vector::<u64>::new(n)?;
    assign_scalar(&mut f, None, NOACC, 0u64, &IndexSel::All, &Descriptor::default())?;
    let mut init = Vector::<u64>::new(n)?;
    apply_indexed(
        &mut init,
        None,
        NOACC,
        |i: Index, _: Index, _: u64| i as u64,
        &f,
        &Descriptor::default(),
    )?;
    f = init;

    let mut algo = trace::algo_span("cc.fastsv");
    algo.arg("n", n);
    let mut round: u64 = 0;
    loop {
        round += 1;
        let _iter = trace::iter_span("cc.iter", round);
        let before = f.extract_tuples();
        // Grandparents: gp(v) = f(f(v)).
        let fv: Vec<Index> = f.iter().map(|(_, p)| p as Index).collect();
        let mut gp = Vector::<u64>::new(n)?;
        extract(&mut gp, None, NOACC, &f, &IndexSel::List(fv), &Descriptor::default())?;
        // Hooking: mngp(v) = min over neighbors u of gp(u).
        let mut mngp = Vector::<u64>::new(n)?;
        mxv(&mut mngp, None, NOACC, &MIN_SECOND, a, &gp, &Descriptor::default())?;
        // f = min(f, mngp, gp): hook low labels and shortcut.
        let fc = f.clone();
        ewise_add(&mut f, None, NOACC, binaryop::Min, &fc, &mngp, &Descriptor::default())?;
        let fc = f.clone();
        ewise_add(&mut f, None, NOACC, binaryop::Min, &fc, &gp, &Descriptor::default())?;
        if f.extract_tuples() == before {
            break;
        }
    }
    algo.arg("iters", round);
    Ok(f)
}

/// The number of connected components.
pub fn component_count(graph: &Graph) -> Result<usize> {
    let comp = connected_components(graph)?;
    let mut labels: Vec<u64> = comp.iter().map(|(_, c)| c).collect();
    labels.sort_unstable();
    labels.dedup();
    Ok(labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn two_components_and_an_isolate() {
        // {0,1,2} path, {3,4} edge, {5} isolated.
        let g =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        assert_eq!(comp.get(0), Some(0));
        assert_eq!(comp.get(1), Some(0));
        assert_eq!(comp.get(2), Some(0));
        assert_eq!(comp.get(3), Some(3));
        assert_eq!(comp.get(4), Some(3));
        assert_eq!(comp.get(5), Some(5));
        assert_eq!(component_count(&g).expect("count"), 3);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], GraphKind::Undirected)
            .expect("graph");
        assert_eq!(component_count(&g).expect("count"), 1);
        let comp = connected_components(&g).expect("cc");
        for v in 0..4 {
            assert_eq!(comp.get(v), Some(0));
        }
    }

    #[test]
    fn no_edges_every_vertex_its_own() {
        let g = Graph::from_edges(5, &[], GraphKind::Undirected).expect("graph");
        assert_eq!(component_count(&g).expect("count"), 5);
    }

    #[test]
    fn long_path_converges() {
        // A long path exercises the shortcutting (doubling) behaviour.
        let edges: Vec<(Index, Index)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(100, &edges, GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        for v in 0..100 {
            assert_eq!(comp.get(v), Some(0), "vertex {v}");
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let g =
            Graph::from_edges(7, &[(6, 5), (5, 4), (2, 3)], GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        assert_eq!(comp.get(6), Some(4));
        assert_eq!(comp.get(3), Some(2));
        assert_eq!(comp.get(0), Some(0));
    }
}
