//! Connected components via FastSV (Zhang, Azad, Buluç), the
//! linear-algebraic successor of LACC cited by the paper: min-label
//! hooking through `mxv` over the `MIN_SECOND` semiring plus pointer
//! shortcutting with `extract`. Connected components is GAP benchmark
//! kernel #5.
//!
//! Each round costs O(n + e); label trees halve in height per round, so
//! the round count is O(log n) — in practice a handful even at large
//! scale.

use graphblas::prelude::*;
use graphblas::semiring::MIN_SECOND;
use graphblas::trace;

use super::AdjacencyView;
use crate::graph::Graph;

/// Connected components of an undirected graph: returns `comp(v)` = the
/// smallest vertex id in `v`'s component.
pub fn connected_components(graph: &Graph) -> Result<Vector<u64>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // f(v) starts as v itself.
    let mut f = Vector::<u64>::new(n)?;
    assign_scalar(&mut f, None, NOACC, 0u64, &IndexSel::All, &Descriptor::default())?;
    let mut init = Vector::<u64>::new(n)?;
    apply_indexed(
        &mut init,
        None,
        NOACC,
        |i: Index, _: Index, _: u64| i as u64,
        &f,
        &Descriptor::default(),
    )?;
    f = init;

    let mut algo = trace::algo_span("cc.fastsv");
    algo.arg("n", n);
    let mut round: u64 = 0;
    loop {
        round += 1;
        let _iter = trace::iter_span("cc.iter", round);
        let before = f.extract_tuples();
        // Grandparents: gp(v) = f(f(v)).
        let fv: Vec<Index> = f.iter().map(|(_, p)| p as Index).collect();
        let mut gp = Vector::<u64>::new(n)?;
        extract(&mut gp, None, NOACC, &f, &IndexSel::List(fv), &Descriptor::default())?;
        // Hooking: mngp(v) = min over neighbors u of gp(u).
        let mut mngp = Vector::<u64>::new(n)?;
        mxv(&mut mngp, None, NOACC, &MIN_SECOND, a, &gp, &Descriptor::default())?;
        // f = min(f, mngp, gp): hook low labels and shortcut.
        let fc = f.clone();
        ewise_add(&mut f, None, NOACC, binaryop::Min, &fc, &mngp, &Descriptor::default())?;
        let fc = f.clone();
        ewise_add(&mut f, None, NOACC, binaryop::Min, &fc, &gp, &Descriptor::default())?;
        if f.extract_tuples() == before {
            break;
        }
    }
    algo.arg("iters", round);
    Ok(f)
}

/// Incrementally repair a connected-components labeling after one batch
/// of structural edge changes, without touching the matrix.
///
/// * `adj` — adjacency of the graph **after** the batch is applied
///   (symmetric; undirected graphs only).
/// * `prev` — dense labels of the graph before the batch, one per
///   vertex, each equal to its component's minimum vertex id (the
///   invariant [`connected_components`] establishes).
/// * `inserts` / `deletes` — the real structural changes (an insert of a
///   present edge or delete of an absent one must be filtered out).
///
/// Inserts are pure label algebra: a min-wins union-find over the old
/// labels merges components in O(Δ α). Deletes get a *targeted re-run*:
/// a BFS from each deleted edge's endpoints on the new adjacency either
/// proves the component stayed connected (early exit on meeting the
/// other endpoint) or exhaustively discovers the split-off part, which
/// is then exactly relabeled with its minimum. Every split part of a
/// component contains at least one deleted-edge endpoint, so the sweep
/// over endpoints covers all of them — the result is exact, never an
/// approximation, and matches [`connected_components`] bit for bit.
pub fn connected_components_delta(
    adj: &dyn AdjacencyView,
    prev: &[u64],
    inserts: &[(Index, Index)],
    deletes: &[(Index, Index)],
) -> Vec<u64> {
    let n = prev.len();
    // Min-wins union-find seeded from the old labels: every old label is
    // its component's minimum vertex id, so it is its own root.
    let mut parent: Vec<Index> = prev.iter().map(|&c| c as Index).collect();
    fn find(parent: &mut [Index], mut v: Index) -> Index {
        while parent[v] != v {
            parent[v] = parent[parent[v]]; // path halving
            v = parent[v];
        }
        v
    }
    for &(u, v) in inserts {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // Min root wins, preserving the labels-are-minima invariant.
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi] = lo;
        }
    }
    let mut labels: Vec<u64> = (0..n).map(|v| find(&mut parent, v) as u64).collect();

    // Targeted re-runs for deletes, on the new adjacency. `fixed[v]`
    // marks vertices already exactly relabeled by an exhaustive BFS.
    let mut fixed = vec![false; n];
    let mut visited = vec![false; n];
    let mut queue: Vec<Index> = Vec::new();
    // BFS from `start`; stops early (returning None) on reaching
    // `target`, otherwise returns the full component of `start`.
    let mut component = |start: Index, target: Option<Index>, visited: &mut Vec<bool>| {
        queue.clear();
        queue.push(start);
        let mut reached = vec![start];
        visited[start] = true;
        let mut hit_target = false;
        while let Some(w) = queue.pop() {
            adj.for_each_neighbor(w, &mut |x| {
                if !visited[x] {
                    visited[x] = true;
                    reached.push(x);
                    queue.push(x);
                }
                if Some(x) == target {
                    hit_target = true;
                }
            });
            if hit_target {
                break;
            }
        }
        for &v in &reached {
            visited[v] = false;
        }
        if hit_target {
            None
        } else {
            Some(reached)
        }
    };
    let relabel = |part: Vec<Index>, labels: &mut Vec<u64>, fixed: &mut Vec<bool>| {
        let min = part.iter().copied().min().unwrap_or(0) as u64;
        for &v in &part {
            labels[v] = min;
            fixed[v] = true;
        }
    };
    for &(u, v) in deletes {
        let mut split = fixed[u]; // a fixed endpoint's component excludes the other
        if !fixed[u] {
            match component(u, Some(v), &mut visited) {
                None => continue, // still connected: labels already exact
                Some(part) => {
                    relabel(part, &mut labels, &mut fixed);
                    split = true;
                }
            }
        }
        if split && !fixed[v] {
            if let Some(part) = component(v, None, &mut visited) {
                relabel(part, &mut labels, &mut fixed);
            }
        }
    }
    labels
}

/// The number of connected components.
pub fn component_count(graph: &Graph) -> Result<usize> {
    let comp = connected_components(graph)?;
    let mut labels: Vec<u64> = comp.iter().map(|(_, c)| c).collect();
    labels.sort_unstable();
    labels.dedup();
    Ok(labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn two_components_and_an_isolate() {
        // {0,1,2} path, {3,4} edge, {5} isolated.
        let g =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        assert_eq!(comp.get(0), Some(0));
        assert_eq!(comp.get(1), Some(0));
        assert_eq!(comp.get(2), Some(0));
        assert_eq!(comp.get(3), Some(3));
        assert_eq!(comp.get(4), Some(3));
        assert_eq!(comp.get(5), Some(5));
        assert_eq!(component_count(&g).expect("count"), 3);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], GraphKind::Undirected)
            .expect("graph");
        assert_eq!(component_count(&g).expect("count"), 1);
        let comp = connected_components(&g).expect("cc");
        for v in 0..4 {
            assert_eq!(comp.get(v), Some(0));
        }
    }

    #[test]
    fn no_edges_every_vertex_its_own() {
        let g = Graph::from_edges(5, &[], GraphKind::Undirected).expect("graph");
        assert_eq!(component_count(&g).expect("count"), 5);
    }

    #[test]
    fn long_path_converges() {
        // A long path exercises the shortcutting (doubling) behaviour.
        let edges: Vec<(Index, Index)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(100, &edges, GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        for v in 0..100 {
            assert_eq!(comp.get(v), Some(0), "vertex {v}");
        }
    }

    /// Symmetric adjacency-set oracle for the delta entry point.
    struct Adj(Vec<std::collections::BTreeSet<Index>>);

    impl Adj {
        fn from_edges(n: usize, edges: &[(Index, Index)]) -> Self {
            let mut sets = vec![std::collections::BTreeSet::new(); n];
            for &(u, v) in edges {
                sets[u].insert(v);
                sets[v].insert(u);
            }
            Adj(sets)
        }
    }

    impl AdjacencyView for Adj {
        fn nvertices(&self) -> Index {
            self.0.len()
        }
        fn has_edge(&self, u: Index, v: Index) -> bool {
            self.0[u].contains(&v)
        }
        fn degree(&self, u: Index) -> usize {
            self.0[u].len()
        }
        fn for_each_neighbor(&self, u: Index, f: &mut dyn FnMut(Index)) {
            for &v in &self.0[u] {
                f(v);
            }
        }
    }

    fn dense_labels(g: &Graph) -> Vec<u64> {
        connected_components(g).expect("cc").iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn delta_insert_merges_components() {
        // {0,1,2} and {3,4} merge through (2,3); {5} stays alone.
        let before =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        let prev = dense_labels(&before);
        let adj = Adj::from_edges(6, &[(0, 1), (1, 2), (3, 4), (2, 3)]);
        let got = connected_components_delta(&adj, &prev, &[(2, 3)], &[]);
        let after = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (2, 3)], GraphKind::Undirected)
            .expect("graph");
        assert_eq!(got, dense_labels(&after));
    }

    #[test]
    fn delta_delete_splits_exactly() {
        // Path 0-1-2-3-4: cutting (1,2) splits {0,1} from {2,3,4}.
        let before = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], GraphKind::Undirected)
            .expect("graph");
        let prev = dense_labels(&before);
        let adj = Adj::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let got = connected_components_delta(&adj, &prev, &[], &[(1, 2)]);
        assert_eq!(got, vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn delta_delete_on_cycle_keeps_component() {
        // Cycle: deleting one edge leaves it connected (early-exit path).
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let before = Graph::from_edges(4, &edges, GraphKind::Undirected).expect("graph");
        let prev = dense_labels(&before);
        let adj = Adj::from_edges(4, &[(1, 2), (2, 3), (3, 0)]);
        let got = connected_components_delta(&adj, &prev, &[], &[(0, 1)]);
        assert_eq!(got, vec![0, 0, 0, 0]);
    }

    #[test]
    fn delta_mixed_batch_matches_oracle() {
        // Merge {0..2} with {3,4}, then cut (0,1) off the merged blob.
        let before =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        let prev = dense_labels(&before);
        let final_edges = [(1, 2), (3, 4), (2, 3)];
        let adj = Adj::from_edges(6, &final_edges);
        let got = connected_components_delta(&adj, &prev, &[(2, 3)], &[(0, 1)]);
        let after = Graph::from_edges(6, &final_edges, GraphKind::Undirected).expect("graph");
        assert_eq!(got, dense_labels(&after));
    }

    #[test]
    fn labels_are_component_minima() {
        let g =
            Graph::from_edges(7, &[(6, 5), (5, 4), (2, 3)], GraphKind::Undirected).expect("graph");
        let comp = connected_components(&g).expect("cc");
        assert_eq!(comp.get(6), Some(4));
        assert_eq!(comp.get(3), Some(2));
        assert_eq!(comp.get(0), Some(0));
    }
}
