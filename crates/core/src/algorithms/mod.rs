//! The LAGraph algorithm collection (§V of the paper), each built purely
//! on the public GraphBLAS API. `docs/ALGORITHMS.md` is the user-facing
//! catalog: semirings, complexity, provenance, and service availability
//! for every module below.
//!
//! A few algorithms additionally expose *incremental* (`*_delta` /
//! `*_warm`) entry points that repair a previous answer from a batch of
//! edge changes instead of recomputing — the engine behind
//! [`crate::service::views`]. They take adjacency through the
//! [`AdjacencyView`] trait so callers can supply an O(1)-updatable
//! overlay rather than re-extracting the matrix structure per epoch.

use graphblas::Index;

/// Read-only adjacency access for the incremental entry points
/// ([`cc::connected_components_delta`], [`tricount::triangle_count_delta`],
/// [`kcore::core_numbers_insert`]).
///
/// Implementors expose the graph as it stands *at a known point in the
/// update stream*; the incremental algorithms document which point they
/// expect (before or after the batch is applied). For undirected graphs
/// the view must be symmetric: `has_edge(u, v) == has_edge(v, u)`.
pub trait AdjacencyView {
    /// Number of vertices (all indices below are `< nvertices()`).
    fn nvertices(&self) -> Index;
    /// Whether the arc `u → v` is present.
    fn has_edge(&self, u: Index, v: Index) -> bool;
    /// Out-degree of `u` (equals degree on a symmetric view).
    fn degree(&self, u: Index) -> usize;
    /// Visit every out-neighbor of `u` (order unspecified).
    fn for_each_neighbor(&self, u: Index, f: &mut dyn FnMut(Index));
}

/// One structural edge change, in application order. Produced by the
/// service's delta classifier (weight overwrites and redundant deletes
/// are filtered out before they reach the incremental algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEvent {
    /// The edge `(u, v)` was absent and is now present.
    Insert(Index, Index),
    /// The edge `(u, v)` was present and is now absent.
    Delete(Index, Index),
}

pub mod apsp;
pub mod astar;
pub mod bc;
pub mod bfs;
pub mod cc;
pub mod cdlp;
pub mod coloring;
pub mod dnn;
pub mod gnn;
pub mod kcore;
pub mod ktruss;
pub mod local_cluster;
pub mod matching;
pub mod mcl;
pub mod mis;
pub mod msf;
pub mod pagerank;
pub mod peer_pressure;
pub mod scc;
pub mod sssp;
pub mod subgraph;
pub mod triangle_centrality;
pub mod tricount;

pub use apsp::apsp;
pub use astar::astar;
pub use bc::betweenness_centrality;
pub use bfs::{
    bfs_level, bfs_level_batch, bfs_level_batch_matrix, bfs_level_direction, bfs_level_matrix,
    bfs_parent,
};
pub use cc::{component_count, connected_components, connected_components_delta};
pub use cdlp::cdlp;
pub use coloring::{greedy_color, verify_coloring};
pub use dnn::{dnn_categorize, dnn_inference, DnnLayer};
pub use gnn::{gcn_inference, node_classification, normalized_adjacency, GcnLayer};
pub use kcore::{core_numbers, core_numbers_insert, kcore};
pub use ktruss::{ktruss, max_truss};
pub use local_cluster::{approximate_ppr, conductance, local_cluster, LocalClusterOptions};
pub use matching::{bipartite_matching, verify_matching};
pub use mcl::{markov_cluster, MclOptions};
pub use mis::{maximal_independent_set, verify_mis};
pub use msf::{forest_weight, minimum_spanning_forest};
pub use pagerank::{pagerank, pagerank_warm, PageRankOptions};
pub use peer_pressure::peer_pressure;
pub use scc::{scc_count, strongly_connected_components};
pub use sssp::{sssp_bellman_ford, sssp_delta_stepping};
pub use subgraph::{subgraph_counts, SubgraphCounts};
pub use triangle_centrality::triangle_centrality;
pub use tricount::{
    triangle_count, triangle_count_delta, triangle_count_per_vertex, TriCountMethod,
};
