//! The LAGraph algorithm collection (§V of the paper), each built purely
//! on the public GraphBLAS API.

pub mod apsp;
pub mod astar;
pub mod bc;
pub mod bfs;
pub mod cc;
pub mod cdlp;
pub mod coloring;
pub mod dnn;
pub mod gnn;
pub mod kcore;
pub mod ktruss;
pub mod local_cluster;
pub mod matching;
pub mod mcl;
pub mod mis;
pub mod msf;
pub mod pagerank;
pub mod peer_pressure;
pub mod scc;
pub mod sssp;
pub mod subgraph;
pub mod triangle_centrality;
pub mod tricount;

pub use apsp::apsp;
pub use astar::astar;
pub use bc::betweenness_centrality;
pub use bfs::{
    bfs_level, bfs_level_batch, bfs_level_batch_matrix, bfs_level_direction, bfs_level_matrix,
    bfs_parent,
};
pub use cc::{component_count, connected_components};
pub use cdlp::cdlp;
pub use coloring::{greedy_color, verify_coloring};
pub use dnn::{dnn_categorize, dnn_inference, DnnLayer};
pub use gnn::{gcn_inference, node_classification, normalized_adjacency, GcnLayer};
pub use kcore::{core_numbers, kcore};
pub use ktruss::{ktruss, max_truss};
pub use local_cluster::{approximate_ppr, conductance, local_cluster, LocalClusterOptions};
pub use matching::{bipartite_matching, verify_matching};
pub use mcl::{markov_cluster, MclOptions};
pub use mis::{maximal_independent_set, verify_mis};
pub use msf::{forest_weight, minimum_spanning_forest};
pub use pagerank::{pagerank, PageRankOptions};
pub use peer_pressure::peer_pressure;
pub use scc::{scc_count, strongly_connected_components};
pub use sssp::{sssp_bellman_ford, sssp_delta_stepping};
pub use subgraph::{subgraph_counts, SubgraphCounts};
pub use triangle_centrality::triangle_centrality;
pub use tricount::{triangle_count, triangle_count_per_vertex, TriCountMethod};
