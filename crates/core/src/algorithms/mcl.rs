//! Markov clustering (van Dongen; HipMCL of Azad et al., cited in §V):
//! alternate *expansion* (squaring the column-stochastic matrix),
//! *inflation* (entrywise powering + renormalization), and pruning, until
//! the matrix reaches a (near-)idempotent state; clusters are read off
//! the attractor rows.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_TIMES;

use crate::graph::Graph;

/// Options for [`markov_cluster`].
#[derive(Debug, Clone, Copy)]
pub struct MclOptions {
    /// Inflation exponent (canonically 2.0; larger → finer clusters).
    pub inflation: f64,
    /// Entries below this are pruned after each round.
    pub prune: f64,
    /// Maximum expansion/inflation rounds.
    pub max_iters: usize,
}

impl Default for MclOptions {
    fn default() -> Self {
        MclOptions { inflation: 2.0, prune: 1e-6, max_iters: 60 }
    }
}

/// Normalize the columns of `m` to sum to 1 (column-stochastic), via
/// `M · diag(1/colsum)`.
fn normalize_columns(m: &Matrix<f64>) -> Result<Matrix<f64>> {
    let n = m.nrows();
    let mut colsum = Vector::<f64>::new(m.ncols())?;
    reduce_matrix(&mut colsum, None, NOACC, &binaryop::Plus, m, &Descriptor::new().transpose_a())?;
    let mut inv = Vector::<f64>::new(m.ncols())?;
    apply(&mut inv, None, NOACC, |s: f64| 1.0 / s, &colsum, &Descriptor::default())?;
    let d = Matrix::diag(&inv);
    let mut out = Matrix::<f64>::new(n, m.ncols())?;
    mxm(&mut out, None, NOACC, &PLUS_TIMES, m, &d, &Descriptor::default())?;
    Ok(out)
}

/// Markov clustering. Returns `cluster(v)` = a cluster label (the id of
/// the attractor vertex whose row holds `v`).
pub fn markov_cluster(graph: &Graph, opts: &MclOptions) -> Result<Vector<u64>> {
    let n = graph.nvertices();
    // Start from the adjacency with self-loops (standard MCL trick), as
    // structure only.
    let mut m = Matrix::<f64>::new(n, n)?;
    apply_matrix(&mut m, None, NOACC, unaryop::One, graph.a(), &Descriptor::default())?;
    for v in 0..n {
        m.set_element(v, v, 1.0)?;
    }
    let mut m = normalize_columns(&m)?;
    for _ in 0..opts.max_iters {
        // Expansion: M ← M².
        let mut expanded = Matrix::<f64>::new(n, n)?;
        mxm(&mut expanded, None, NOACC, &PLUS_TIMES, &m, &m, &Descriptor::default())?;
        // Inflation: entrywise power, then renormalize.
        let mut inflated = Matrix::<f64>::new(n, n)?;
        let r = opts.inflation;
        apply_matrix(
            &mut inflated,
            None,
            NOACC,
            move |x: f64| x.powf(r),
            &expanded,
            &Descriptor::default(),
        )?;
        // Prune tiny entries to keep sparsity.
        let prune = opts.prune;
        let mut pruned = Matrix::<f64>::new(n, n)?;
        select_matrix(
            &mut pruned,
            None,
            NOACC,
            move |_: Index, _: Index, x: f64| x > prune,
            &inflated,
            &Descriptor::default(),
        )?;
        let next = normalize_columns(&pruned)?;
        // Converged when the matrix is (numerically) unchanged.
        let delta: f64 = {
            let mut diff = Matrix::<f64>::new(n, n)?;
            ewise_add_matrix(
                &mut diff,
                None,
                NOACC,
                |a: f64, b: f64| (a - b).abs(),
                &m,
                &next,
                &Descriptor::default(),
            )?;
            reduce_matrix_scalar(&binaryop::Max, &diff)
        };
        m = next;
        if delta < 1e-9 {
            break;
        }
    }
    // Attractors: vertices with support on their own diagonal. Each
    // column j is assigned to the attractor row with its maximum value.
    let mut cluster = Vector::<u64>::new(n)?;
    // col_max(j) = max value in column j; attained row = label.
    let mut best: Vec<(f64, u64)> = vec![(-1.0, 0); n];
    for (i, j, x) in m.iter() {
        if x > best[j].0 {
            best[j] = (x, i as u64);
        }
    }
    for (j, &(w, attractor)) in best.iter().enumerate() {
        if w >= 0.0 {
            cluster.set_element(j, attractor)?;
        }
    }
    // Canonicalize labels: use the smallest member id of each attractor's
    // cluster so labels are stable.
    let mut canon = std::collections::HashMap::<u64, u64>::new();
    let assignments = cluster.extract_tuples();
    for &(v, lab) in &assignments {
        let e = canon.entry(lab).or_insert(v as u64);
        if (v as u64) < *e {
            *e = v as u64;
        }
    }
    let mut out = Vector::<u64>::new(n)?;
    for (v, lab) in assignments {
        out.set_element(v, canon[&lab])?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn two_cliques_with_a_bridge() {
        // Cliques {0,1,2} and {3,4,5} joined by one weak bridge 2-3.
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let c = markov_cluster(&g, &MclOptions::default()).expect("mcl");
        // Same cluster within each clique; different across the bridge.
        assert_eq!(c.get(0), c.get(1));
        assert_eq!(c.get(1), c.get(2));
        assert_eq!(c.get(3), c.get(4));
        assert_eq!(c.get(4), c.get(5));
        assert_ne!(c.get(0), c.get(3));
    }

    #[test]
    fn disconnected_components_separate() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)], GraphKind::Undirected).expect("graph");
        let c = markov_cluster(&g, &MclOptions::default()).expect("mcl");
        assert_eq!(c.get(0), c.get(1));
        assert_eq!(c.get(2), c.get(3));
        assert_ne!(c.get(0), c.get(2));
    }

    #[test]
    fn every_vertex_gets_a_label() {
        let g =
            Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        let c = markov_cluster(&g, &MclOptions::default()).expect("mcl");
        assert_eq!(c.nvals(), 5);
    }

    #[test]
    fn higher_inflation_refines() {
        // A ring of 8: strong inflation splits it into more clusters than
        // weak inflation.
        let edges: Vec<(Index, Index)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, &edges, GraphKind::Undirected).expect("graph");
        let count = |infl: f64| {
            let c = markov_cluster(&g, &MclOptions { inflation: infl, ..Default::default() })
                .expect("mcl");
            let mut labs: Vec<u64> = c.iter().map(|(_, l)| l).collect();
            labs.sort_unstable();
            labs.dedup();
            labs.len()
        };
        assert!(count(4.0) >= count(1.5));
    }
}
