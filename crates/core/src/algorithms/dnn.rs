//! Sparse deep neural network inference (Kepner et al., "Enabling massive
//! deep neural networks with the GraphBLAS", cited in §V; the MIT/IEEE
//! GraphChallenge SDNN kernel): `Y ← ReLU(Y W_l + b_l)` per layer with a
//! saturation cap, all in sparse matrix algebra.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_TIMES;

use crate::graph::Graph;

/// One layer: a sparse weight matrix and a per-neuron bias.
pub struct DnnLayer {
    /// `neurons_in × neurons_out` weights.
    pub weights: Matrix<f64>,
    /// Bias added to every column (neuron) after the product.
    pub bias: Vector<f64>,
}

/// The GraphChallenge activation cap.
pub const YMAX: f64 = 32.0;

/// Run sparse DNN inference: `Y0` is `samples × neurons`; each layer maps
/// through `ReLU(Y W + bias)` truncated at [`YMAX`]. Returns the final
/// activation matrix.
pub fn dnn_inference(y0: &Matrix<f64>, layers: &[DnnLayer]) -> Result<Matrix<f64>> {
    let mut y = y0.clone();
    for (li, layer) in layers.iter().enumerate() {
        if layer.weights.nrows() != y.ncols() {
            return Err(Error::dim(format!(
                "layer {li}: weights are {}x{}, activations have {} columns",
                layer.weights.nrows(),
                layer.weights.ncols(),
                y.ncols()
            )));
        }
        if layer.bias.size() != layer.weights.ncols() {
            return Err(Error::dim(format!("layer {li}: bias length mismatch")));
        }
        // Y ← Y ⊕.⊗ W
        let mut z = Matrix::<f64>::new(y.nrows(), layer.weights.ncols())?;
        mxm(&mut z, None, NOACC, &PLUS_TIMES, &y, &layer.weights, &Descriptor::default())?;
        // += bias per column, then ReLU with saturation; drop zeros to
        // keep the activations sparse.
        let bias: Vec<f64> = {
            let mut b = vec![0.0; layer.bias.size()];
            for (j, x) in layer.bias.iter() {
                b[j] = x;
            }
            b
        };
        let bias_ref: &[f64] = &bias;
        let mut activated = Matrix::<f64>::new(z.nrows(), z.ncols())?;
        apply_matrix_indexed(
            &mut activated,
            None,
            NOACC,
            |_: Index, j: Index, x: f64| (x + bias_ref[j]).clamp(0.0, YMAX),
            &z,
            &Descriptor::default(),
        )?;
        let mut sparse = Matrix::<f64>::new(z.nrows(), z.ncols())?;
        select_matrix(
            &mut sparse,
            None,
            NOACC,
            |_: Index, _: Index, x: f64| x > 0.0,
            &activated,
            &Descriptor::default(),
        )?;
        y = sparse;
    }
    Ok(y)
}

/// The GraphChallenge categorization step: a sample is "positive" when
/// its final activations sum to a nonzero value.
pub fn dnn_categorize(y: &Matrix<f64>) -> Result<Vector<bool>> {
    let mut sums = Vector::<f64>::new(y.nrows())?;
    reduce_matrix(&mut sums, None, NOACC, &binaryop::Plus, y, &Descriptor::default())?;
    let mut cats = Vector::<bool>::new(y.nrows())?;
    apply(&mut cats, None, NOACC, |s: f64| s > 0.0, &sums, &Descriptor::default())?;
    Ok(cats)
}

/// Build a synthetic RadiX-Net-like layer stack for tests and benches:
/// `nlayers` square layers over `nneurons` neurons, each neuron feeding a
/// fixed fan-out, with the GraphChallenge bias convention (a constant
/// negative bias so weak activations die out).
pub fn synthetic_layers(nneurons: Index, nlayers: usize, bias: f64) -> Vec<DnnLayer> {
    let mut layers = Vec::with_capacity(nlayers);
    for l in 0..nlayers {
        let mut tuples = Vec::new();
        for i in 0..nneurons {
            // Fan-out of 4 with a layer-dependent stride pattern.
            for k in 0..4usize {
                let j = (i * 2 + k * (l + 1) + l) % nneurons;
                tuples.push((i, j, 0.5));
            }
        }
        let weights =
            Matrix::from_tuples(nneurons, nneurons, tuples, |a, _| a).expect("valid dims");
        let bias = Vector::dense(nneurons, bias).expect("valid dims");
        layers.push(DnnLayer { weights, bias });
    }
    layers
}

/// Interpret a graph's adjacency as a single DNN layer (utility used by
/// examples; the paper's §V lists DNN inference among the algorithms a
/// GraphBLAS library should host).
pub fn layer_from_graph(graph: &Graph, bias: f64) -> DnnLayer {
    DnnLayer {
        weights: graph.a().clone(),
        bias: Vector::dense(graph.nvertices(), bias).expect("valid dims"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_network_passes_through() {
        let eye = Matrix::from_tuples(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)], |_, b| b)
            .expect("eye");
        let layers = vec![DnnLayer { weights: eye, bias: Vector::dense(3, 0.0).expect("b") }];
        let y0 = Matrix::from_tuples(2, 3, vec![(0, 0, 5.0), (1, 2, 7.0)], |_, b| b).expect("y0");
        let y = dnn_inference(&y0, &layers).expect("dnn");
        assert_eq!(y.extract_tuples(), y0.extract_tuples());
    }

    #[test]
    fn relu_kills_negative_activations() {
        let w = Matrix::from_tuples(1, 1, vec![(0, 0, 1.0)], |_, b| b).expect("w");
        let layers = vec![DnnLayer { weights: w, bias: Vector::dense(1, -10.0).expect("b") }];
        let y0 = Matrix::from_tuples(1, 1, vec![(0, 0, 5.0)], |_, b| b).expect("y0");
        let y = dnn_inference(&y0, &layers).expect("dnn");
        assert_eq!(y.nvals(), 0);
    }

    #[test]
    fn saturation_at_ymax() {
        let w = Matrix::from_tuples(1, 1, vec![(0, 0, 100.0)], |_, b| b).expect("w");
        let layers = vec![DnnLayer { weights: w, bias: Vector::dense(1, 0.0).expect("b") }];
        let y0 = Matrix::from_tuples(1, 1, vec![(0, 0, 5.0)], |_, b| b).expect("y0");
        let y = dnn_inference(&y0, &layers).expect("dnn");
        assert_eq!(y.get(0, 0), Some(YMAX));
    }

    #[test]
    fn multilayer_synthetic_network_runs() {
        let layers = synthetic_layers(32, 4, -0.05);
        let y0 =
            Matrix::from_tuples(8, 32, (0..8).map(|s| (s, (s * 3) % 32, 1.0)).collect(), |_, b| b)
                .expect("y0");
        let y = dnn_inference(&y0, &layers).expect("dnn");
        assert_eq!(y.nrows(), 8);
        assert_eq!(y.ncols(), 32);
        let cats = dnn_categorize(&y).expect("cats");
        // Someone survives the shallow network.
        assert!(cats.nvals() > 0);
        for (_, alive) in cats.iter() {
            assert!(alive);
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let w = Matrix::<f64>::new(4, 4).expect("w");
        let layers = vec![DnnLayer { weights: w, bias: Vector::dense(4, 0.0).expect("b") }];
        let y0 = Matrix::<f64>::new(2, 3).expect("y0");
        assert!(dnn_inference(&y0, &layers).is_err());
    }
}
