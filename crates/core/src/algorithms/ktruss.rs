//! k-truss decomposition (Davis, HPEC'18; Low et al., HPEC'18): the
//! masked `C⟨C⟩ = C ⊕.pair Cᵀ` support computation fused with the
//! `select` on the support threshold, iterated to fixpoint.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_PAIR;

use crate::graph::Graph;

/// The k-truss of an undirected graph: the maximal subgraph in which
/// every edge is supported by at least `k - 2` triangles. Returns the
/// support matrix: entry `(i, j)` = number of triangles supporting the
/// surviving edge. Requires `k >= 3`.
pub fn ktruss(graph: &Graph, k: u64) -> Result<Matrix<u64>> {
    if k < 3 {
        return Err(Error::invalid("k-truss requires k >= 3"));
    }
    let s = graph.structure()?;
    let n = s.nrows();
    // C: the current candidate edge set, with support values.
    let mut c = Matrix::<u64>::new(n, n)?;
    apply_matrix(&mut c, None, NOACC, unaryop::One, &*s, &Descriptor::default())?;
    let support = k - 2;
    loop {
        let nvals_before = c.nvals();
        // support(i,j) = # common neighbors of i and j within C
        //   = (C ⊕.pair Cᵀ)(i,j), masked to C's edges. The fused kernel
        // applies the support threshold as each dot product completes, so
        // the unthresholded support matrix is never materialized.
        let mask = c.pattern();
        let kept = fused_mxm_select(
            |v: u64| v >= support,
            &mask,
            &PLUS_PAIR,
            &c,
            &c,
            &Descriptor::new().structural().transpose_b().method(MxmMethod::Dot),
        )?;
        c = kept;
        if c.nvals() == nvals_before {
            return Ok(c);
        }
    }
}

/// The largest `k` for which the k-truss is non-empty (the graph's
/// trussness). Returns 2 for a graph with edges but no triangles.
pub fn max_truss(graph: &Graph) -> Result<u64> {
    let mut k = 2;
    loop {
        let t = ktruss(graph, k + 1)?;
        if t.nvals() == 0 {
            return Ok(k);
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn k4_plus_tail() -> Graph {
        // K4 on {0,1,2,3} plus a tail 3-4.
        Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn three_truss_drops_the_tail() {
        let g = k4_plus_tail();
        let t = ktruss(&g, 3).expect("ktruss");
        // K4 has 12 directed edges; the tail edge has no triangle support.
        assert_eq!(t.nvals(), 12);
        assert_eq!(t.get(3, 4), None);
        assert_eq!(t.get(0, 1), Some(2), "edge 0-1 supported by 2 and 3");
    }

    #[test]
    fn four_truss_keeps_k4() {
        let g = k4_plus_tail();
        let t = ktruss(&g, 4).expect("ktruss");
        assert_eq!(t.nvals(), 12);
    }

    #[test]
    fn five_truss_is_empty() {
        let g = k4_plus_tail();
        let t = ktruss(&g, 5).expect("ktruss");
        assert_eq!(t.nvals(), 0);
        assert_eq!(max_truss(&g).expect("max"), 4);
    }

    #[test]
    fn triangle_free_graph_has_empty_3truss() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Undirected).expect("graph");
        assert_eq!(ktruss(&g, 3).expect("ktruss").nvals(), 0);
        assert_eq!(max_truss(&g).expect("max"), 2);
    }

    #[test]
    fn cascading_removal() {
        // Two triangles sharing edge 1-2, plus a pendant triangle chain:
        // removing weak edges cascades.
        let g = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let t = ktruss(&g, 3).expect("ktruss");
        // Every edge here lies in at least one triangle; all survive k=3.
        assert_eq!(t.nvals(), 14);
        // k=4 requires each edge in 2 triangles: only the shared core
        // edge 1-2 has support 2, but its endpoints' other edges die,
        // cascading to empty.
        let t4 = ktruss(&g, 4).expect("ktruss");
        assert_eq!(t4.nvals(), 0);
    }

    #[test]
    fn rejects_small_k() {
        let g = k4_plus_tail();
        assert!(ktruss(&g, 2).is_err());
    }
}
