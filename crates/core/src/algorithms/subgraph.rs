//! Subgraph counting (Chen et al., "A GraphBLAS approach for subgraph
//! counting", cited in §V): closed-form counts of small patterns —
//! wedges (2-paths), triangles, 3-paths, 4-cycles — from moments of the
//! adjacency matrix, all computed with masked semiring products and
//! reductions.

use graphblas::prelude::*;
use graphblas::semiring::{PLUS_PAIR, PLUS_SECOND};

use crate::graph::Graph;

/// Counts of small connected subgraphs (as vertex-set patterns, each
/// counted once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgraphCounts {
    /// Unordered wedges (paths on 3 vertices), `Σ_v C(d(v), 2)`.
    pub wedges: u64,
    /// Triangles.
    pub triangles: u64,
    /// 4-cycles (squares).
    pub four_cycles: u64,
    /// Paths on 4 vertices (3 edges).
    pub three_paths: u64,
}

/// Count wedges, triangles, 4-cycles, and 3-paths of an undirected,
/// loop-free graph.
pub fn subgraph_counts(graph: &Graph) -> Result<SubgraphCounts> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    let m = (a.nvals() / 2) as u64; // undirected edge count
    let degree = graph.out_degree()?;

    // Wedges: Σ_v d(v)(d(v)-1)/2.
    let wedges: u64 = degree
        .iter()
        .map(|(_, d)| {
            let d = d as u64;
            d * (d - 1) / 2
        })
        .sum();

    // Triangles via the masked structural product.
    let mut c = Matrix::<u64>::new(n, n)?;
    mxm(&mut c, Some(a), NOACC, &PLUS_PAIR, a, a, &Descriptor::new().structural())?;
    let triangles = reduce_matrix_scalar(&binaryop::Plus, &c) / 6;

    // 4-cycles: C4 = ¼ Σ_{i≠j} C(w_ij, 2) with w = A² — each square has
    // two diagonal vertex pairs, and each pair appears in both symmetric
    // orders of the sum, so every square is counted four times.
    let mut a2 = Matrix::<u64>::new(n, n)?;
    mxm(&mut a2, None, NOACC, &PLUS_PAIR, a, a, &Descriptor::default())?;
    let mut paired = 0u64;
    for (i, j, w) in a2.iter() {
        if i != j {
            paired += w * (w - 1) / 2;
        }
    }
    let four_cycles = paired / 4;

    // 3-paths (paths on 4 vertices): Σ_{(u,v)∈E} (d(u)-1)(d(v)-1) − 3·triangles.
    // Compute the edge sum with a semiring product against the degree
    // vector: s(v) = Σ_{u∈N(v)} (d(u)-1).
    let mut dm1 = Vector::<f64>::new(n)?;
    apply(&mut dm1, None, NOACC, |d: i64| (d - 1) as f64, &degree, &Descriptor::default())?;
    let mut nbr_sum = Vector::<f64>::new(n)?;
    mxv(&mut nbr_sum, None, NOACC, &PLUS_SECOND, a, &dm1, &Descriptor::default())?;
    let mut edge_sum = 0.0;
    for (v, s) in nbr_sum.iter() {
        edge_sum += s * dm1.get(v).unwrap_or(0.0);
    }
    let edge_sum = (edge_sum / 2.0) as u64; // each edge counted twice
    let three_paths = edge_sum - 3 * triangles;

    let _ = m;
    Ok(SubgraphCounts { wedges, triangles, four_cycles, three_paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn count(edges: &[(Index, Index)], n: Index) -> SubgraphCounts {
        let g = Graph::from_edges(n, edges, GraphKind::Undirected).expect("graph");
        subgraph_counts(&g).expect("counts")
    }

    #[test]
    fn triangle_graph() {
        let c = count(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(c, SubgraphCounts { wedges: 3, triangles: 1, four_cycles: 0, three_paths: 0 });
    }

    #[test]
    fn square_graph() {
        let c = count(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(c.wedges, 4);
        assert_eq!(c.triangles, 0);
        assert_eq!(c.four_cycles, 1);
        // P4 subpaths of C4: 4 (one per omitted edge).
        assert_eq!(c.three_paths, 4);
    }

    #[test]
    fn path_graph() {
        // P4: 0-1-2-3.
        let c = count(&[(0, 1), (1, 2), (2, 3)], 4);
        assert_eq!(c.wedges, 2);
        assert_eq!(c.triangles, 0);
        assert_eq!(c.four_cycles, 0);
        assert_eq!(c.three_paths, 1);
    }

    #[test]
    fn k4_counts() {
        let c = count(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        // K4: wedges = 4·C(3,2) = 12; triangles = 4; 4-cycles = 3;
        // 3-paths (P4 subgraphs) = 4!/2 − ... = 12 labeled paths on 4
        // distinct vertices / ... exact value: 12.
        assert_eq!(c.wedges, 12);
        assert_eq!(c.triangles, 4);
        assert_eq!(c.four_cycles, 3);
        assert_eq!(c.three_paths, 12);
    }

    #[test]
    fn star_has_only_wedges() {
        let c = count(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        assert_eq!(c.wedges, 6); // C(4,2)
        assert_eq!(c.triangles, 0);
        assert_eq!(c.four_cycles, 0);
        assert_eq!(c.three_paths, 0);
    }

    #[test]
    fn brute_force_cross_check_on_random_graph() {
        // Exhaustive 4-subset check of 4-cycles on a small random graph.
        let mut rng = crate::utils::SplitMix64::new(8);
        let n = 10;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_f64() < 0.4 {
                    edges.push((i, j));
                }
            }
        }
        let g = Graph::from_edges(n, &edges, GraphKind::Undirected).expect("graph");
        let c = subgraph_counts(&g).expect("counts");
        let has = |u: Index, v: Index| g.a().get(u, v).is_some();
        // Brute-force 4-cycles: count vertex 4-subsets arranged in a cycle.
        let mut squares = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for cc in (b + 1)..n {
                    for dd in (cc + 1)..n {
                        let perms = [[a, b, cc, dd], [a, b, dd, cc], [a, cc, b, dd]];
                        for p in perms {
                            if has(p[0], p[1])
                                && has(p[1], p[2])
                                && has(p[2], p[3])
                                && has(p[3], p[0])
                            {
                                squares += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(c.four_cycles, squares);
        // Brute-force triangles.
        let mut tri = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for cc in (b + 1)..n {
                    if has(a, b) && has(b, cc) && has(a, cc) {
                        tri += 1;
                    }
                }
            }
        }
        assert_eq!(c.triangles, tri);
    }
}
