//! A* search — one of the algorithms §V lists as "important but so far
//! not implemented using a GraphBLAS-like library". This implementation
//! is our contribution to that open item: the frontier bookkeeping is a
//! classic priority queue, but all graph access goes through the
//! GraphBLAS API (`extract_col` row extraction), so the algorithm remains
//! storage-agnostic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use graphblas::prelude::*;

use crate::graph::Graph;

#[derive(PartialEq)]
struct QueueItem {
    f: f64,
    vertex: Index,
}

impl Eq for QueueItem {}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f; ties toward the smaller vertex for determinism.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// A* search from `source` to `target` with a heuristic `h(v)` estimating
/// the remaining distance. Returns the path (source..=target) and its
/// length, or `None` if the target is unreachable. The heuristic must be
/// admissible (never overestimate) for the result to be optimal.
pub fn astar(
    graph: &Graph,
    source: Index,
    target: Index,
    h: impl Fn(Index) -> f64,
) -> Result<Option<(Vec<Index>, f64)>> {
    let n = graph.nvertices();
    if source >= n {
        return Err(Error::oob(source, n));
    }
    if target >= n {
        return Err(Error::oob(target, n));
    }
    let mut dist = Vector::<f64>::new(n)?;
    let mut parent = Vector::<u64>::new(n)?;
    let mut done = vec![false; n];
    dist.set_element(source, 0.0)?;
    let mut heap = BinaryHeap::new();
    heap.push(QueueItem { f: h(source), vertex: source });
    while let Some(QueueItem { vertex: v, .. }) = heap.pop() {
        if done[v] {
            continue;
        }
        done[v] = true;
        if v == target {
            // Reconstruct the path.
            let mut path = vec![target];
            let mut cur = target;
            while cur != source {
                cur = parent.extract_element(cur)? as Index;
                path.push(cur);
            }
            path.reverse();
            let d = dist.extract_element(target)?;
            return Ok(Some((path, d)));
        }
        let dv = dist.extract_element(v)?;
        // Neighbors of v: row v of A, via the GraphBLAS extract.
        let mut row = Vector::<f64>::new(n)?;
        extract_col(
            &mut row,
            None,
            NOACC,
            graph.a(),
            &IndexSel::All,
            v,
            &Descriptor::new().transpose_a(),
        )?;
        for (u, w) in row.iter() {
            if done[u] {
                continue;
            }
            let cand = dv + w;
            if dist.get(u).is_none_or(|cur| cand < cur) {
                dist.set_element(u, cand)?;
                parent.set_element(u, v as u64)?;
                heap.push(QueueItem { f: cand + h(u), vertex: u });
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::sssp::sssp_bellman_ford;
    use crate::graph::GraphKind;

    /// 4×4 grid graph with unit weights; vertex = row*4 + col.
    fn grid() -> Graph {
        let mut edges = Vec::new();
        for r in 0..4usize {
            for c in 0..4usize {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    edges.push((v, v + 1, 1.0));
                }
                if r + 1 < 4 {
                    edges.push((v, v + 4, 1.0));
                }
            }
        }
        Graph::from_weighted_edges(16, &edges, GraphKind::Undirected).expect("graph")
    }

    fn manhattan(target: Index) -> impl Fn(Index) -> f64 {
        move |v| {
            let (vr, vc) = (v / 4, v % 4);
            let (tr, tc) = (target / 4, target % 4);
            (vr.abs_diff(tr) + vc.abs_diff(tc)) as f64
        }
    }

    #[test]
    fn grid_corner_to_corner() {
        let g = grid();
        let (path, d) = astar(&g, 0, 15, manhattan(15)).expect("astar").expect("reachable");
        assert_eq!(d, 6.0);
        assert_eq!(path.len(), 7);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().expect("nonempty"), 15);
        // Each step is a real edge.
        for w in path.windows(2) {
            assert!(g.a().get(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn astar_matches_sssp_distances() {
        let g = Graph::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (1, 3, 7.0), (2, 3, 3.0)],
            GraphKind::Directed,
        )
        .expect("graph");
        let d = sssp_bellman_ford(&g, 0).expect("sssp");
        // Zero heuristic = Dijkstra: must agree with Bellman-Ford.
        for target in 1..4 {
            let (_, ad) = astar(&g, 0, target, |_| 0.0).expect("astar").expect("reach");
            assert_eq!(Some(ad), d.get(target), "target {target}");
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0)], GraphKind::Directed).expect("graph");
        assert!(astar(&g, 0, 2, |_| 0.0).expect("astar").is_none());
    }

    #[test]
    fn source_equals_target() {
        let g = grid();
        let (path, d) = astar(&g, 5, 5, manhattan(5)).expect("astar").expect("trivial");
        assert_eq!(path, vec![5]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn heuristic_prunes_work_but_keeps_optimality() {
        let g = grid();
        let (_, d0) = astar(&g, 0, 15, |_| 0.0).expect("astar").expect("reach");
        let (_, dh) = astar(&g, 0, 15, manhattan(15)).expect("astar").expect("reach");
        assert_eq!(d0, dh);
    }

    #[test]
    fn bounds_checked() {
        let g = grid();
        assert!(astar(&g, 99, 0, |_| 0.0).is_err());
        assert!(astar(&g, 0, 99, |_| 0.0).is_err());
    }
}
