//! All-pairs shortest paths over min-plus (Solomonik, Buluç & Demmel,
//! cited in §V): repeated squaring of the distance matrix, `D ← D min.+ D`
//! until fixpoint — `O(log n)` semiring matrix products.

use graphblas::prelude::*;
use graphblas::semiring::MIN_PLUS;

use crate::graph::Graph;

/// All-pairs shortest path distances as a matrix: `D(i, j)` = length of
/// the shortest path `i → j` (diagonal is 0; unreachable pairs have no
/// entry). Intended for small and mid-sized graphs — the output is dense
/// for connected graphs.
pub fn apsp(graph: &Graph) -> Result<Matrix<f64>> {
    let a = graph.a();
    let n = a.nrows();
    // D = A with a zero diagonal.
    let mut d = a.clone();
    for i in 0..n {
        d.set_element(i, i, 0.0)?;
    }
    // Repeated squaring: distances double in hop count each step.
    let mut hops = 1usize;
    while hops < n {
        let mut next = Matrix::<f64>::new(n, n)?;
        mxm(&mut next, None, NOACC, &MIN_PLUS, &d, &d, &Descriptor::default())?;
        if next.extract_tuples() == d.extract_tuples() {
            break;
        }
        d = next;
        hops *= 2;
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::sssp::sssp_bellman_ford;
    use crate::graph::GraphKind;

    fn weighted() -> Graph {
        Graph::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (1, 3, 7.0), (2, 3, 3.0), (4, 0, 1.0)],
            GraphKind::Directed,
        )
        .expect("graph")
    }

    #[test]
    fn apsp_matches_repeated_sssp() {
        let g = weighted();
        let d = apsp(&g).expect("apsp");
        for src in 0..5 {
            let row = sssp_bellman_ford(&g, src).expect("sssp");
            for dst in 0..5 {
                assert_eq!(d.get(src, dst), row.get(dst), "distance {src} -> {dst}");
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let g = weighted();
        let d = apsp(&g).expect("apsp");
        for v in 0..5 {
            assert_eq!(d.get(v, v), Some(0.0));
        }
    }

    #[test]
    fn unreachable_pairs_missing() {
        let g = weighted();
        let d = apsp(&g).expect("apsp");
        assert_eq!(d.get(0, 4), None, "nothing reaches 4");
    }

    #[test]
    fn undirected_apsp_is_symmetric() {
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let d = apsp(&g).expect("apsp");
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert_eq!(d.get(0, 3), Some(6.0));
    }
}
