//! k-core decomposition: the maximal subgraph in which every vertex has
//! degree ≥ k, and the full core-number labeling — a standard LAGraph
//! algorithm, computed by repeated peeling with masked degree updates.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;

use crate::graph::Graph;

/// The k-core of an undirected graph: returns the Boolean membership
/// vector of vertices in the k-core (possibly empty).
pub fn kcore(graph: &Graph, k: i64) -> Result<Vector<bool>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // alive: current candidate set; degrees restricted to alive vertices.
    let mut alive = Vector::<bool>::new(n)?;
    assign_scalar(&mut alive, None, NOACC, true, &IndexSel::All, &Descriptor::default())?;
    loop {
        // deg(v) = |N(v) ∩ alive| for alive v.
        let ones = {
            let mut o = Vector::<f64>::new(n)?;
            apply(&mut o, None, NOACC, |_: bool| 1.0, &alive, &Descriptor::default())?;
            o
        };
        let mut deg = Vector::<f64>::new(n)?;
        mxv(
            &mut deg,
            Some(&alive),
            NOACC,
            &PLUS_SECOND,
            a,
            &ones,
            &Descriptor::new().structural(),
        )?;
        // Peel vertices with degree < k (including alive vertices with no
        // alive neighbors at all).
        let mut peeled = Vec::new();
        for (v, _) in alive.iter() {
            if deg.get(v).unwrap_or(0.0) < k as f64 {
                peeled.push(v);
            }
        }
        if peeled.is_empty() {
            return Ok(alive);
        }
        for v in peeled {
            alive.remove_element(v)?;
        }
        if alive.nvals() == 0 {
            return Ok(alive);
        }
    }
}

/// Core numbers: `core(v)` = the largest k such that `v` belongs to the
/// k-core. Computed by successive peeling.
pub fn core_numbers(graph: &Graph) -> Result<Vector<i64>> {
    let n = graph.nvertices();
    let mut core = Vector::<i64>::new(n)?;
    assign_scalar(&mut core, None, NOACC, 0, &IndexSel::All, &Descriptor::default())?;
    let mut k = 1;
    loop {
        let members = kcore(graph, k)?;
        if members.nvals() == 0 {
            return Ok(core);
        }
        assign_scalar(
            &mut core,
            Some(&members),
            NOACC,
            k,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    /// K4 with a pendant path 3-4-5.
    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn three_core_is_the_k4() {
        let g = k4_tail();
        let c3 = kcore(&g, 3).expect("kcore");
        assert_eq!(c3.nvals(), 4);
        for v in 0..4 {
            assert_eq!(c3.get(v), Some(true));
        }
        assert_eq!(c3.get(4), None);
    }

    #[test]
    fn one_core_drops_isolates_only() {
        let g = Graph::from_edges(4, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let c1 = kcore(&g, 1).expect("kcore");
        assert_eq!(c1.nvals(), 2);
        assert_eq!(c1.get(2), None);
    }

    #[test]
    fn peeling_cascades() {
        // Path graph: the 2-core is empty (endpoints peel, then inward).
        let edges: Vec<(Index, Index)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph");
        assert_eq!(kcore(&g, 2).expect("kcore").nvals(), 0);
        // A cycle's 2-core is the whole cycle.
        let mut edges: Vec<(Index, Index)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.push((5, 0));
        let g = Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph");
        assert_eq!(kcore(&g, 2).expect("kcore").nvals(), 6);
    }

    #[test]
    fn core_numbers_on_k4_tail() {
        let g = k4_tail();
        let core = core_numbers(&g).expect("cores");
        for v in 0..4 {
            assert_eq!(core.get(v), Some(3), "K4 member {v}");
        }
        assert_eq!(core.get(4), Some(1));
        assert_eq!(core.get(5), Some(1));
    }

    #[test]
    fn core_numbers_monotone_under_k() {
        let g = k4_tail();
        let core = core_numbers(&g).expect("cores");
        for k in 1..=3 {
            let members = kcore(&g, k).expect("kcore");
            for (v, _) in members.iter() {
                assert!(core.get(v).expect("labeled") >= k);
            }
        }
    }
}
