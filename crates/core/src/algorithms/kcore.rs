//! k-core decomposition: the maximal subgraph in which every vertex has
//! degree ≥ k, and the full core-number labeling — a standard LAGraph
//! algorithm, computed by repeated peeling with masked degree updates.

use std::collections::HashMap;

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;

use super::AdjacencyView;
use crate::graph::Graph;

/// The k-core of an undirected graph: returns the Boolean membership
/// vector of vertices in the k-core (possibly empty).
pub fn kcore(graph: &Graph, k: i64) -> Result<Vector<bool>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let n = a.nrows();
    // alive: current candidate set; degrees restricted to alive vertices.
    let mut alive = Vector::<bool>::new(n)?;
    assign_scalar(&mut alive, None, NOACC, true, &IndexSel::All, &Descriptor::default())?;
    loop {
        // deg(v) = |N(v) ∩ alive| for alive v.
        let ones = {
            let mut o = Vector::<f64>::new(n)?;
            apply(&mut o, None, NOACC, |_: bool| 1.0, &alive, &Descriptor::default())?;
            o
        };
        let mut deg = Vector::<f64>::new(n)?;
        mxv(
            &mut deg,
            Some(&alive),
            NOACC,
            &PLUS_SECOND,
            a,
            &ones,
            &Descriptor::new().structural(),
        )?;
        // Peel vertices with degree < k (including alive vertices with no
        // alive neighbors at all).
        let mut peeled = Vec::new();
        for (v, _) in alive.iter() {
            if deg.get(v).unwrap_or(0.0) < k as f64 {
                peeled.push(v);
            }
        }
        if peeled.is_empty() {
            return Ok(alive);
        }
        for v in peeled {
            alive.remove_element(v)?;
        }
        if alive.nvals() == 0 {
            return Ok(alive);
        }
    }
}

/// Core numbers: `core(v)` = the largest k such that `v` belongs to the
/// k-core. Computed by successive peeling.
pub fn core_numbers(graph: &Graph) -> Result<Vector<i64>> {
    let n = graph.nvertices();
    let mut core = Vector::<i64>::new(n)?;
    assign_scalar(&mut core, None, NOACC, 0, &IndexSel::All, &Descriptor::default())?;
    let mut k = 1;
    loop {
        let members = kcore(graph, k)?;
        if members.nvals() == 0 {
            return Ok(core);
        }
        assign_scalar(
            &mut core,
            Some(&members),
            NOACC,
            k,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        k += 1;
    }
}

/// Incrementally repair core numbers after a batch of edge *insertions*
/// — the traversal insertion algorithm of Sarıyüce et al. (streaming
/// k-core decomposition). Deletions have no comparably local repair
/// rule here; the service falls back to [`core_numbers`] for them.
///
/// * `base` — symmetric adjacency of the graph **before** the batch.
/// * `core` — dense core numbers on `base`, updated in place.
/// * `inserts` — the real structural insertions, in application order.
///
/// Each insertion of `(u, v)` can raise core numbers by at most one,
/// and only inside the *subcore*: the vertices with core exactly
/// `k = min(core(u), core(v))` reachable from the endpoint(s) at `k`
/// through core-`k` vertices. The repair collects that subcore, counts
/// each member's neighbors with core ≥ k, peels members supported by ≤ k
/// of them (cascading), and promotes the survivors to `k + 1` — exact,
/// matching [`core_numbers`] on the patched graph bit for bit.
/// Self-loop inserts are ignored.
pub fn core_numbers_insert(base: &dyn AdjacencyView, core: &mut [i64], inserts: &[(Index, Index)]) {
    let n = core.len();
    // Insert-only patch over `base`: per-vertex added neighbor lists.
    let mut added: HashMap<Index, Vec<Index>> = HashMap::new();
    let neighbors = |added: &HashMap<Index, Vec<Index>>, u: Index, f: &mut dyn FnMut(Index)| {
        base.for_each_neighbor(u, f);
        if let Some(extra) = added.get(&u) {
            for &w in extra {
                f(w);
            }
        }
    };
    // Scratch reused across insertions; `stamp` marks subcore membership
    // for the current insertion without an O(n) clear.
    let mut stamp = vec![0u32; n];
    let mut support: Vec<i64> = vec![0; n];
    let mut peeled = vec![false; n];
    let mut generation = 0u32;
    for &(u, v) in inserts {
        if u == v || u >= n || v >= n {
            continue;
        }
        // The new edge is part of the graph the subcore is computed on.
        let dup = base.has_edge(u, v) || added.get(&u).is_some_and(|s| s.contains(&v));
        if !dup {
            added.entry(u).or_default().push(v);
            added.entry(v).or_default().push(u);
        }
        generation += 1;
        let gen = generation;
        let k = core[u].min(core[v]);
        // Subcore: BFS from the endpoint(s) sitting at k, through
        // vertices with core exactly k. Any core-k neighbor of a member
        // is itself a member (closure), so "neighbors with core ≥ k"
        // splits cleanly into members and permanently-higher vertices.
        let mut members: Vec<Index> = Vec::new();
        let mut queue: Vec<Index> = Vec::new();
        for w in [u, v] {
            if core[w] == k && stamp[w] != gen {
                stamp[w] = gen;
                members.push(w);
                queue.push(w);
            }
        }
        while let Some(w) = queue.pop() {
            neighbors(&added, w, &mut |x| {
                if core[x] == k && stamp[x] != gen {
                    stamp[x] = gen;
                    members.push(x);
                    queue.push(x);
                }
            });
        }
        // support(w) = |{x ∈ N(w) : core(x) ≥ k}| on the patched graph.
        for &w in &members {
            let mut s = 0i64;
            neighbors(&added, w, &mut |x| {
                if core[x] >= k {
                    s += 1;
                }
            });
            support[w] = s;
            peeled[w] = false;
        }
        // Peel members that cannot reach degree k+1 within the
        // candidate set; survivors are promoted.
        let mut worklist: Vec<Index> =
            members.iter().copied().filter(|&w| support[w] <= k).collect();
        for &w in &worklist {
            peeled[w] = true;
        }
        while let Some(w) = worklist.pop() {
            neighbors(&added, w, &mut |x| {
                if stamp[x] == gen && !peeled[x] {
                    support[x] -= 1;
                    if support[x] <= k {
                        peeled[x] = true;
                        worklist.push(x);
                    }
                }
            });
        }
        for &w in &members {
            if !peeled[w] {
                core[w] = k + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    /// K4 with a pendant path 3-4-5.
    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn three_core_is_the_k4() {
        let g = k4_tail();
        let c3 = kcore(&g, 3).expect("kcore");
        assert_eq!(c3.nvals(), 4);
        for v in 0..4 {
            assert_eq!(c3.get(v), Some(true));
        }
        assert_eq!(c3.get(4), None);
    }

    #[test]
    fn one_core_drops_isolates_only() {
        let g = Graph::from_edges(4, &[(0, 1)], GraphKind::Undirected).expect("graph");
        let c1 = kcore(&g, 1).expect("kcore");
        assert_eq!(c1.nvals(), 2);
        assert_eq!(c1.get(2), None);
    }

    #[test]
    fn peeling_cascades() {
        // Path graph: the 2-core is empty (endpoints peel, then inward).
        let edges: Vec<(Index, Index)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph");
        assert_eq!(kcore(&g, 2).expect("kcore").nvals(), 0);
        // A cycle's 2-core is the whole cycle.
        let mut edges: Vec<(Index, Index)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.push((5, 0));
        let g = Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph");
        assert_eq!(kcore(&g, 2).expect("kcore").nvals(), 6);
    }

    #[test]
    fn core_numbers_on_k4_tail() {
        let g = k4_tail();
        let core = core_numbers(&g).expect("cores");
        for v in 0..4 {
            assert_eq!(core.get(v), Some(3), "K4 member {v}");
        }
        assert_eq!(core.get(4), Some(1));
        assert_eq!(core.get(5), Some(1));
    }

    /// Symmetric adjacency-set oracle for the delta entry point.
    struct Adj(Vec<std::collections::BTreeSet<Index>>);

    impl Adj {
        fn from_edges(n: usize, edges: &[(Index, Index)]) -> Self {
            let mut sets = vec![std::collections::BTreeSet::new(); n];
            for &(u, v) in edges {
                sets[u].insert(v);
                sets[v].insert(u);
            }
            Adj(sets)
        }
    }

    impl AdjacencyView for Adj {
        fn nvertices(&self) -> Index {
            self.0.len()
        }
        fn has_edge(&self, u: Index, v: Index) -> bool {
            self.0[u].contains(&v)
        }
        fn degree(&self, u: Index) -> usize {
            self.0[u].len()
        }
        fn for_each_neighbor(&self, u: Index, f: &mut dyn FnMut(Index)) {
            for &v in &self.0[u] {
                f(v);
            }
        }
    }

    fn dense_cores(g: &Graph) -> Vec<i64> {
        core_numbers(g).expect("cores").iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn insert_repair_matches_full_recompute() {
        // Grow K4-with-tail into K5-with-tail one edge at a time; every
        // prefix must match the from-scratch oracle.
        let start: Vec<(Index, Index)> =
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)];
        let inserts: Vec<(Index, Index)> = vec![(4, 0), (4, 1), (4, 2), (5, 0), (2, 5)];
        let g0 = Graph::from_edges(6, &start, GraphKind::Undirected).expect("graph");
        let base = Adj::from_edges(6, &start);
        let mut core = dense_cores(&g0);
        for upto in 1..=inserts.len() {
            let mut core_step = dense_cores(&g0);
            core_numbers_insert(&base, &mut core_step, &inserts[..upto]);
            let mut edges = start.clone();
            edges.extend_from_slice(&inserts[..upto]);
            let oracle =
                dense_cores(&Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph"));
            assert_eq!(core_step, oracle, "after {upto} inserts");
        }
        core_numbers_insert(&base, &mut core, &inserts);
        let mut edges = start;
        edges.extend_from_slice(&inserts);
        let oracle =
            dense_cores(&Graph::from_edges(6, &edges, GraphKind::Undirected).expect("graph"));
        assert_eq!(core, oracle);
    }

    #[test]
    fn insert_repair_promotes_a_closing_cycle() {
        // A path's cores are all 1 (ends) / 1; closing it into a cycle
        // lifts every vertex to 2 in one subcore cascade.
        let path: Vec<(Index, Index)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(6, &path, GraphKind::Undirected).expect("graph");
        let base = Adj::from_edges(6, &path);
        let mut core = dense_cores(&g);
        core_numbers_insert(&base, &mut core, &[(5, 0)]);
        assert_eq!(core, vec![2; 6]);
    }

    #[test]
    fn core_numbers_monotone_under_k() {
        let g = k4_tail();
        let core = core_numbers(&g).expect("cores");
        for k in 1..=3 {
            let members = kcore(&g, k).expect("kcore");
            for (v, _) in members.iter() {
                assert!(core.get(v).expect("labeled") >= k);
            }
        }
    }
}
