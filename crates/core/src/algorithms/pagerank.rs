//! PageRank, in the GAP-benchmark formulation LAGraph adopted (GAP
//! kernel #4): structure only (weights ignored), damping, explicit
//! handling of dangling (sink) vertices, iterating to an L1 tolerance.
//!
//! Each iteration is one `mxv` over the `PLUS_SECOND` semiring on the
//! transposed structure — O(e) per iteration, O(e · iters) total, with
//! the iteration count set by the damping factor and tolerance rather
//! than the graph size.

use graphblas::prelude::*;
use graphblas::semiring::PLUS_SECOND;
use graphblas::trace;

use crate::graph::Graph;

/// Options for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor (the canonical 0.85).
    pub damping: f64,
    /// Stop when the L1 change falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions { damping: 0.85, tolerance: 1e-9, max_iters: 100 }
    }
}

/// PageRank scores (summing to 1), plus the number of iterations run.
pub fn pagerank(graph: &Graph, opts: &PageRankOptions) -> Result<(Vector<f64>, usize)> {
    pagerank_core(graph, opts, None)
}

/// PageRank warm-restarted from a previous rank vector — the incremental
/// entry point behind the service's materialized view.
///
/// The iteration is identical to [`pagerank`] (same damping, sink-mass
/// redistribution, and L1 stopping rule); only the starting point
/// differs, so after a small structural delta the residual is already
/// near the tolerance and convergence takes a handful of iterations
/// instead of a cold start's dozens. The fixed point is unique, so the
/// result agrees with a cold run to within the tolerance (not bit for
/// bit: the float operation order differs).
///
/// `warm` must be a dense length-`n` vector (any previous epoch's ranks;
/// the power iteration renormalizes drifted mass on its own).
pub fn pagerank_warm(
    graph: &Graph,
    opts: &PageRankOptions,
    warm: &Vector<f64>,
) -> Result<(Vector<f64>, usize)> {
    if warm.size() != graph.nvertices() {
        return Err(Error::invalid(format!(
            "pagerank_warm: warm-start vector has size {} but the graph has {} vertices",
            warm.size(),
            graph.nvertices()
        )));
    }
    pagerank_core(graph, opts, Some(warm))
}

fn pagerank_core(
    graph: &Graph,
    opts: &PageRankOptions,
    warm: Option<&Vector<f64>>,
) -> Result<(Vector<f64>, usize)> {
    let at = graph.at()?; // pull ranks along in-edges: r' = Aᵀ (r/d)
    let n = graph.nvertices();
    let nf = n as f64;
    let damping = opts.damping;

    // Out-degrees as f64; dangling vertices have no entry.
    let degree = graph.out_degree()?;
    let mut dinv = Vector::<f64>::new(n)?;
    apply(&mut dinv, None, NOACC, |d: i64| 1.0 / d as f64, &degree, &Descriptor::default())?;

    let mut algo = trace::algo_span("pagerank");
    algo.arg("n", n);
    algo.arg("damping", damping);
    algo.arg("warm", if warm.is_some() { "yes" } else { "no" });
    let mut r = match warm {
        Some(w) => w.clone(),
        None => Vector::dense(n, 1.0 / nf)?,
    };
    let teleport = (1.0 - damping) / nf;
    let mut iters = 0;
    for _ in 0..opts.max_iters {
        iters += 1;
        let mut iter = trace::iter_span("pagerank.iter", iters as u64);
        // w = r ./ d on non-dangling vertices.
        let mut w = Vector::<f64>::new(n)?;
        ewise_mult(&mut w, None, NOACC, binaryop::Times, &r, &dinv, &Descriptor::default())?;
        // Sink mass: rank held by dangling vertices, redistributed evenly.
        let mut sunk = r.clone();
        assign(
            &mut sunk,
            Some(&degree.pattern()),
            NOACC,
            &Vector::<f64>::new(n)?,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        let sink_mass = reduce_vector_scalar(&binaryop::Plus, &sunk);
        // r_new = teleport + damping * (Aᵀ w + sink_mass / n)
        let mut pulled = Vector::<f64>::new(n)?;
        mxv(&mut pulled, None, NOACC, &PLUS_SECOND, &at, &w, &Descriptor::default())?;
        let base = teleport + damping * sink_mass / nf;
        let mut r_new = Vector::dense(n, base)?;
        let snapshot = r_new.clone();
        ewise_add(
            &mut r_new,
            None,
            NOACC,
            |a: f64, b: f64| a + damping * b,
            &snapshot,
            &pulled,
            &Descriptor::default(),
        )?;
        // L1 delta.
        let mut diff = Vector::<f64>::new(n)?;
        ewise_add(
            &mut diff,
            None,
            NOACC,
            |a: f64, b: f64| (a - b).abs(),
            &r,
            &r_new,
            &Descriptor::default(),
        )?;
        let delta = reduce_vector_scalar(&binaryop::Plus, &diff);
        iter.arg("residual", delta);
        r = r_new;
        if delta < opts.tolerance {
            break;
        }
    }
    algo.arg("iters", iters);
    Ok((r, iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn ranks(g: &Graph) -> Vector<f64> {
        pagerank(g, &PageRankOptions::default()).expect("pagerank").0
    }

    #[test]
    fn ranks_sum_to_one() {
        let g =
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (4, 3)], GraphKind::Directed)
                .expect("graph");
        let r = ranks(&g);
        let total = reduce_vector_scalar(&binaryop::Plus, &r);
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn symmetric_ring_is_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], GraphKind::Undirected)
            .expect("graph");
        let r = ranks(&g);
        for v in 0..4 {
            assert!((r.get(v).expect("rank") - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_collects_rank() {
        // Star: everyone points at 0.
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)], GraphKind::Directed)
            .expect("graph");
        let r = ranks(&g);
        let hub = r.get(0).expect("hub");
        for v in 1..5 {
            assert!(hub > r.get(v).expect("leaf") * 2.0);
        }
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 → 1 and 1 is a sink: without sink handling, mass drains.
        let g = Graph::from_edges(2, &[(0, 1)], GraphKind::Directed).expect("graph");
        let r = ranks(&g);
        let total = reduce_vector_scalar(&binaryop::Plus, &r);
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
        assert!(r.get(1).expect("sink target") > r.get(0).expect("source"));
    }

    #[test]
    fn warm_restart_matches_cold_within_tolerance() {
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (3, 2), (4, 3), (5, 6), (6, 7), (7, 5), (2, 5)],
            GraphKind::Directed,
        )
        .expect("graph");
        let opts = PageRankOptions::default();
        let (cold, cold_iters) = pagerank(&g, &opts).expect("cold");
        // Warm-start from the converged vector: it should agree with the
        // cold run within tolerance and take far fewer iterations.
        let (hot, hot_iters) = pagerank_warm(&g, &opts, &cold).expect("warm");
        assert!(hot_iters <= cold_iters, "warm {hot_iters} vs cold {cold_iters}");
        for v in 0..8 {
            let (a, b) = (cold.get(v).expect("cold"), hot.get(v).expect("hot"));
            assert!((a - b).abs() < 1e-6, "vertex {v}: cold {a} vs warm {b}");
        }
    }

    #[test]
    fn warm_restart_rejects_size_mismatch() {
        let g = Graph::from_edges(4, &[(0, 1)], GraphKind::Directed).expect("graph");
        let bad = Vector::dense(3, 0.25).expect("vector");
        assert!(pagerank_warm(&g, &PageRankOptions::default(), &bad).is_err());
    }

    #[test]
    fn tolerance_controls_iterations() {
        // Asymmetric: a chain with a shortcut, so convergence is gradual.
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (2, 0)],
            GraphKind::Directed,
        )
        .expect("graph");
        let (_, fast) =
            pagerank(&g, &PageRankOptions { tolerance: 1e-2, ..Default::default() }).expect("pr");
        let (_, slow) =
            pagerank(&g, &PageRankOptions { tolerance: 1e-12, ..Default::default() }).expect("pr");
        assert!(fast < slow);
    }
}
