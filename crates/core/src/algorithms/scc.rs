//! Strongly connected components by the forward–backward (FW–BW) method:
//! the SCC of a pivot is the intersection of its forward and backward
//! reachable sets — both computed with the Fig. 2 BFS kernel, once on `A`
//! and once on `Aᵀ` — recursing on the three remainder sets.

use graphblas::prelude::*;
use graphblas::semiring::LOR_LAND;

use crate::graph::Graph;

/// Reachable set from `sources` (restricted to `allowed`) along the rows
/// of `mat`.
fn reach(
    mat: &Matrix<bool>,
    sources: &Vector<bool>,
    allowed: &Vector<bool>,
) -> Result<Vector<bool>> {
    let n = mat.nrows();
    let mut visited = sources.clone();
    let mut frontier = sources.clone();
    while frontier.nvals() > 0 {
        let mut next = Vector::<bool>::new(n)?;
        // next = (Aᵀ q) ∩ allowed ∖ visited
        mxv(
            &mut next,
            Some(&visited),
            NOACC,
            &LOR_LAND,
            mat,
            &frontier,
            &Descriptor::new().transpose_a().complement().structural().replace(),
        )?;
        // Restrict to the allowed set.
        let mut gated = Vector::<bool>::new(n)?;
        ewise_mult(
            &mut gated,
            None,
            NOACC,
            binaryop::Land,
            &next,
            allowed,
            &Descriptor::default(),
        )?;
        if gated.nvals() == 0 {
            break;
        }
        let vsnap = visited.clone();
        ewise_add(
            &mut visited,
            None,
            NOACC,
            binaryop::Lor,
            &vsnap,
            &gated,
            &Descriptor::default(),
        )?;
        frontier = gated;
    }
    Ok(visited)
}

/// Strongly connected components of a directed graph: `scc(v)` = the
/// smallest vertex id in `v`'s SCC.
pub fn strongly_connected_components(graph: &Graph) -> Result<Vector<u64>> {
    let s = graph.structure()?;
    let a: &Matrix<bool> = &s;
    let at = {
        let mut t = Matrix::<bool>::new(a.nrows(), a.ncols())?;
        transpose(&mut t, None, NOACC, a, &Descriptor::default())?;
        t
    };
    let n = a.nrows();
    let mut labels = Vector::<u64>::new(n)?;
    // Worklist of candidate sets, processed iteratively.
    let mut all = Vector::<bool>::new(n)?;
    assign_scalar(&mut all, None, NOACC, true, &IndexSel::All, &Descriptor::default())?;
    let mut work = vec![all];
    while let Some(set) = work.pop() {
        if set.nvals() == 0 {
            continue;
        }
        // Pivot: smallest member.
        let pivot = set.iter().next().expect("nonempty").0;
        let mut seed = Vector::<bool>::new(n)?;
        seed.set_element(pivot, true)?;
        let fwd = reach(a, &seed, &set)?;
        let bwd = reach(&at, &seed, &set)?;
        // SCC = fwd ∩ bwd.
        let mut scc = Vector::<bool>::new(n)?;
        ewise_mult(&mut scc, None, NOACC, binaryop::Land, &fwd, &bwd, &Descriptor::default())?;
        // Label by the smallest member of the SCC.
        let label = scc.iter().next().expect("contains pivot").0 as u64;
        assign_scalar(
            &mut labels,
            Some(&scc),
            NOACC,
            label,
            &IndexSel::All,
            &Descriptor::new().structural(),
        )?;
        // Remainders: fwd∖scc, bwd∖scc, set∖(fwd∪bwd).
        let minus = |base: &Vector<bool>, remove: &Vector<bool>| -> Result<Vector<bool>> {
            let mut out = base.clone();
            assign(
                &mut out,
                Some(&remove.pattern()),
                NOACC,
                &Vector::<bool>::new(n)?,
                &IndexSel::All,
                &Descriptor::new().structural(),
            )?;
            Ok(out)
        };
        work.push(minus(&fwd, &scc)?);
        work.push(minus(&bwd, &scc)?);
        let mut fb = Vector::<bool>::new(n)?;
        ewise_add(&mut fb, None, NOACC, binaryop::Lor, &fwd, &bwd, &Descriptor::default())?;
        work.push(minus(&set, &fb)?);
    }
    Ok(labels)
}

/// Number of strongly connected components.
pub fn scc_count(graph: &Graph) -> Result<usize> {
    let labels = strongly_connected_components(graph)?;
    let mut l: Vec<u64> = labels.iter().map(|(_, c)| c).collect();
    l.sort_unstable();
    l.dedup();
    Ok(l.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn digraph(n: Index, edges: &[(Index, Index)]) -> Graph {
        Graph::from_edges(n, edges, GraphKind::Directed).expect("graph")
    }

    #[test]
    fn cycle_is_one_scc() {
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(scc_count(&g).expect("scc"), 1);
        let l = strongly_connected_components(&g).expect("labels");
        for v in 0..4 {
            assert_eq!(l.get(v), Some(0));
        }
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(scc_count(&g).expect("scc"), 4);
        let l = strongly_connected_components(&g).expect("labels");
        for v in 0..4 {
            assert_eq!(l.get(v), Some(v as u64));
        }
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // Cycle {0,1,2}, cycle {3,4}, bridge 2→3.
        let g = digraph(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        assert_eq!(scc_count(&g).expect("scc"), 2);
        let l = strongly_connected_components(&g).expect("labels");
        assert_eq!(l.get(0), Some(0));
        assert_eq!(l.get(1), Some(0));
        assert_eq!(l.get(2), Some(0));
        assert_eq!(l.get(3), Some(3));
        assert_eq!(l.get(4), Some(3));
    }

    #[test]
    fn mixed_structure() {
        // 0→1→2→0 cycle; 3 feeds in; 4 fed from the cycle; 5 isolated.
        let g = digraph(6, &[(0, 1), (1, 2), (2, 0), (3, 0), (1, 4)]);
        assert_eq!(scc_count(&g).expect("scc"), 4);
        let l = strongly_connected_components(&g).expect("labels");
        assert_eq!(l.get(0), l.get(1));
        assert_eq!(l.get(1), l.get(2));
        assert_eq!(l.get(3), Some(3));
        assert_eq!(l.get(4), Some(4));
        assert_eq!(l.get(5), Some(5));
    }

    #[test]
    fn every_vertex_labeled() {
        let g = digraph(7, &[(0, 1), (1, 0), (2, 3), (4, 5), (5, 6), (6, 4)]);
        let l = strongly_connected_components(&g).expect("labels");
        assert_eq!(l.nvals(), 7);
        assert_eq!(scc_count(&g).expect("count"), 4);
    }

    #[test]
    fn scc_of_undirected_style_graph_equals_weak_components() {
        // If every edge is mirrored, SCCs are the connected components.
        let g =
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).expect("graph");
        assert_eq!(scc_count(&g).expect("scc"), 3);
    }
}
