//! The algorithm test harness (§III of the paper lists "a directory
//! holding a test harness for each algorithm" among the repository's
//! basic elements): validators that check an algorithm's *output
//! properties* using only GraphBLAS operations, independent of how the
//! result was computed. Integration tests and downstream users both call
//! these.

use graphblas::prelude::*;
use graphblas::semiring::MIN_PLUS;

use crate::graph::Graph;

/// Check BFS levels from `source`: the source has level 1; every leveled
/// vertex other than the source has a neighbor exactly one level above;
/// no edge skips a level (|level(u) − level(v)| ≤ 1 across any edge);
/// and no unreached vertex is adjacent to a reached one.
pub fn verify_bfs_levels(graph: &Graph, source: Index, levels: &Vector<i32>) -> Result<bool> {
    if levels.get(source) != Some(1) {
        return Ok(false);
    }
    // Edge conditions, checked edge by edge over the adjacency.
    for (u, v, _) in graph.a().iter() {
        match (levels.get(u), levels.get(v)) {
            (Some(lu), Some(lv)) if (lu - lv).abs() > 1 => {
                return Ok(false); // a level was skipped
            }
            (Some(_), Some(_)) => {}
            (Some(_), None) => {
                // u reached, v not, but u → v exists: v was reachable.
                return Ok(false);
            }
            _ => {}
        }
    }
    // Every non-source leveled vertex has an in-neighbor one level up:
    // pred(v) = min over in-neighbors u of level(u) must equal level-1.
    let n = graph.nvertices();
    let mut best_pred = Vector::<i32>::new(n)?;
    mxv(
        &mut best_pred,
        Some(&levels.pattern()),
        NOACC,
        &Semiring::new(binaryop::Min, binaryop::Second),
        &*graph.at()?,
        levels,
        &Descriptor::new().structural(),
    )?;
    for (v, l) in levels.iter() {
        if v == source {
            continue;
        }
        match best_pred.get(v) {
            Some(p) if p == l - 1 => {}
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// Check a batch of BFS level vectors against their sources: one
/// [`verify_bfs_levels`] pass per (source, levels) pair, plus the batch
/// shape invariant (one result row per source). This is the validator
/// the admission-layer tests run over [`crate::bfs_level_batch`] output,
/// so a batched multi-source traversal is held to exactly the per-source
/// properties a single-source run is.
pub fn verify_bfs_levels_batch(
    graph: &Graph,
    sources: &[Index],
    levels: &[Vector<i32>],
) -> Result<bool> {
    if sources.len() != levels.len() {
        return Ok(false);
    }
    for (&s, l) in sources.iter().zip(levels) {
        if !verify_bfs_levels(graph, s, l)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Check SSSP distances from `source` (non-negative weights): the source
/// is 0; every distance is realized by some in-edge (consistency); and no
/// edge can relax further (optimality): `dist(v) ≤ dist(u) + w(u,v)` for
/// every edge, with equality achieved by at least one in-edge of each
/// reached non-source vertex.
pub fn verify_sssp(graph: &Graph, source: Index, dist: &Vector<f64>) -> Result<bool> {
    if dist.get(source) != Some(0.0) {
        return Ok(false);
    }
    // No further relaxation possible: min-plus step must not improve.
    let n = graph.nvertices();
    let mut relaxed = Vector::<f64>::new(n)?;
    vxm(&mut relaxed, None, NOACC, &MIN_PLUS, dist, graph.a(), &Descriptor::default())?;
    for (v, r) in relaxed.iter() {
        match dist.get(v) {
            Some(d) => {
                if r < d - 1e-12 {
                    return Ok(false); // an edge still relaxes
                }
            }
            None => return Ok(false), // reachable but unlabeled
        }
    }
    // Consistency: every reached non-source vertex attains its distance
    // through some in-edge.
    for (v, d) in dist.iter() {
        if v == source {
            continue;
        }
        match relaxed.get(v) {
            Some(r) if (r - d).abs() <= 1e-12 => {}
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// Check a component labeling: labels are constant along edges, distinct
/// components are never connected, and each label is the smallest member
/// id of its class.
pub fn verify_components(graph: &Graph, comp: &Vector<u64>) -> Result<bool> {
    let n = graph.nvertices();
    if comp.nvals() != n {
        return Ok(false);
    }
    for (u, v, _) in graph.a().iter() {
        if comp.get(u) != comp.get(v) {
            return Ok(false);
        }
    }
    // Smallest-member canonical labels.
    let mut min_of_label = std::collections::HashMap::<u64, u64>::new();
    for (v, c) in comp.iter() {
        let e = min_of_label.entry(c).or_insert(v as u64);
        if (v as u64) < *e {
            *e = v as u64;
        }
    }
    for (c, m) in min_of_label {
        if c != m {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Check a k-truss: every stored edge must have at least `k − 2`
/// supporting triangles inside the truss, and the structure must be
/// symmetric.
pub fn verify_ktruss(truss: &Matrix<u64>, k: u64) -> Result<bool> {
    let n = truss.nrows();
    let pattern = truss.pattern();
    // support = (T ⊕.pair Tᵀ) masked to T's edges.
    let mut sup = Matrix::<u64>::new(n, n)?;
    mxm(
        &mut sup,
        Some(&pattern),
        NOACC,
        &graphblas::semiring::PLUS_PAIR,
        &pattern,
        &pattern,
        &Descriptor::new().structural().transpose_b(),
    )?;
    for (i, j, _) in truss.iter() {
        if truss.get(j, i).is_none() {
            return Ok(false); // asymmetric
        }
        match sup.get(i, j) {
            Some(s) if s >= k - 2 => {}
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// Check PageRank output: a full, non-negative distribution summing to 1
/// within `tol`.
pub fn verify_pagerank(graph: &Graph, ranks: &Vector<f64>, tol: f64) -> Result<bool> {
    if ranks.nvals() != graph.nvertices() {
        return Ok(false);
    }
    let mut total = 0.0;
    for (_, r) in ranks.iter() {
        // "not >= 0" on purpose: a NaN rank must fail verification too.
        if !matches!(
            r.partial_cmp(&0.0),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ) {
            return Ok(false);
        }
        total += r;
    }
    Ok((total - 1.0).abs() <= tol)
}

/// Check a vertex coloring against the graph (proper and total) and
/// additionally that colors form the contiguous range `1..=k`.
pub fn verify_coloring_range(graph: &Graph, colors: &Vector<i32>, k: i32) -> Result<bool> {
    if !crate::algorithms::coloring::verify_coloring(graph, colors)? {
        return Ok(false);
    }
    let mut seen = vec![false; k as usize + 1];
    for (_, c) in colors.iter() {
        if c < 1 || c > k {
            return Ok(false);
        }
        seen[c as usize] = true;
    }
    Ok(seen[1..].iter().all(|&s| s))
}

/// Count how many of v's in-neighbors hold each value — a reusable
/// "tally" helper several validators above and algorithms share.
pub fn neighbor_min_label(graph: &Graph, labels: &Vector<u64>) -> Result<Vector<u64>> {
    let n = graph.nvertices();
    let mut out = Vector::<u64>::new(n)?;
    mxv(
        &mut out,
        None,
        NOACC,
        &Semiring::new(binaryop::Min, binaryop::Second),
        &*graph.at()?,
        labels,
        &Descriptor::default(),
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::*;
    use crate::graph::GraphKind;

    fn sample() -> Graph {
        Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (6, 7)],
            GraphKind::Undirected,
        )
        .expect("graph")
    }

    #[test]
    fn bfs_output_validates() {
        let g = sample();
        let levels = bfs_level(&g, 0).expect("bfs");
        assert!(verify_bfs_levels(&g, 0, &levels).expect("verify"));
    }

    #[test]
    fn bfs_validator_rejects_corruption() {
        let g = sample();
        let mut levels = bfs_level(&g, 0).expect("bfs");
        // Corrupt: skip a level.
        levels.set_element(3, 9).expect("set");
        assert!(!verify_bfs_levels(&g, 0, &levels).expect("verify"));
        // Corrupt: drop a reachable vertex.
        let mut levels = bfs_level(&g, 0).expect("bfs");
        levels.remove_element(2).expect("remove");
        assert!(!verify_bfs_levels(&g, 0, &levels).expect("verify"));
        // Corrupt: wrong source level.
        let mut levels = bfs_level(&g, 0).expect("bfs");
        levels.set_element(0, 5).expect("set");
        assert!(!verify_bfs_levels(&g, 0, &levels).expect("verify"));
    }

    #[test]
    fn bfs_batch_output_validates() {
        let g = sample();
        let sources = [0, 4, 6];
        let batch = bfs_level_batch(&g, &sources).expect("batch");
        assert!(verify_bfs_levels_batch(&g, &sources, &batch).expect("verify"));
        // Shape mismatch and a corrupted row must both fail.
        assert!(!verify_bfs_levels_batch(&g, &sources[..2], &batch).expect("verify"));
        let mut bad = batch.clone();
        bad[1].set_element(5, 9).expect("set");
        assert!(!verify_bfs_levels_batch(&g, &sources, &bad).expect("verify"));
    }

    #[test]
    fn sssp_output_validates() {
        let g = Graph::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 3.0)],
            GraphKind::Directed,
        )
        .expect("graph");
        let d = sssp_bellman_ford(&g, 0).expect("sssp");
        assert!(verify_sssp(&g, 0, &d).expect("verify"));
        // Corrupt: too-short distance (inconsistent).
        let mut bad = d.clone();
        bad.set_element(3, 1.0).expect("set");
        assert!(!verify_sssp(&g, 0, &bad).expect("verify"));
        // Corrupt: too-long distance (relaxable).
        let mut bad = d.clone();
        bad.set_element(3, 99.0).expect("set");
        assert!(!verify_sssp(&g, 0, &bad).expect("verify"));
    }

    #[test]
    fn components_output_validates() {
        let g = sample();
        let comp = connected_components(&g).expect("cc");
        assert!(verify_components(&g, &comp).expect("verify"));
        let mut bad = comp.clone();
        bad.set_element(1, 6).expect("set");
        assert!(!verify_components(&g, &bad).expect("verify"));
    }

    #[test]
    fn ktruss_output_validates() {
        let g = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
            GraphKind::Undirected,
        )
        .expect("graph");
        let t = ktruss(&g, 3).expect("truss");
        assert!(verify_ktruss(&t, 3).expect("verify"));
        // The raw graph (with the weak tail edge) is not a valid 3-truss.
        let mut raw = Matrix::<u64>::new(5, 5).expect("raw");
        apply_matrix(&mut raw, None, NOACC, unaryop::One, g.a(), &Descriptor::default())
            .expect("ones");
        assert!(!verify_ktruss(&raw, 3).expect("verify"));
    }

    #[test]
    fn pagerank_output_validates() {
        let g = sample();
        let (r, _) = pagerank(&g, &PageRankOptions::default()).expect("pr");
        assert!(verify_pagerank(&g, &r, 1e-6).expect("verify"));
        let mut bad = r.clone();
        bad.set_element(0, 0.9).expect("set");
        assert!(!verify_pagerank(&g, &bad, 1e-6).expect("verify"));
    }

    #[test]
    fn coloring_output_validates() {
        let g = sample();
        let (colors, k) = greedy_color(&g, 3).expect("color");
        assert!(verify_coloring_range(&g, &colors, k).expect("verify"));
        assert!(!verify_coloring_range(&g, &colors, k + 1).expect("verify"));
    }
}
