//! # lagraph — graph algorithms built on top of the GraphBLAS
//!
//! The Rust realization of the library the LAGraph position paper calls
//! for: a [`Graph`] object with cached derived properties,
//! and a collection of graph algorithms (§V) written exclusively against
//! the GraphBLAS API of the [`graphblas`] crate — BFS (level, parent, and
//! direction-optimized), single-source and all-pairs shortest paths,
//! betweenness centrality, triangle counting, k-truss, connected
//! components, PageRank, graph coloring, maximal independent set,
//! bipartite matching, Markov and peer-pressure clustering, local graph
//! clustering, sparse deep-neural-network inference, and A* search.
//!
//! Beyond the algorithm suite, [`service`] turns the library into a
//! *serving* layer: a [`service::GraphService`] multiplexes concurrent
//! read queries over epoch-tagged immutable snapshots while a background
//! drainer batches streaming edge updates through the GraphBLAS
//! pending-tuple/zombie machinery. The [`gen`] module generates the
//! seeded Graph500-style synthetic workloads the `lagraph-bench` harness
//! (and any reproducible experiment) measures against.

#![warn(missing_docs)]

pub mod algorithms;
pub mod gen;
pub mod graph;
pub mod harness;
pub mod service;
pub mod utils;

pub use algorithms::*;
pub use graph::{Graph, GraphKind};
/// Runtime tracing & profiling (re-exported from the GraphBLAS layer):
/// algorithms open [`trace::algo_span`]/[`trace::iter_span`] spans so a
/// drained trace shows per-iteration frontier sizes, residuals, and the
/// kernels each iteration chose.
pub use graphblas::trace;
