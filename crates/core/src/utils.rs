//! Support utilities the paper lists for LAGraph (§VI): deterministic
//! pseudo-randomness for randomized algorithms, and small vector helpers.

use graphblas::prelude::*;

/// SplitMix64: a tiny, deterministic PRNG. Algorithms that need randomness
/// (Luby's MIS, graph coloring) take an explicit seed so results are
/// reproducible without pulling a dependency into the library.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n`.
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The index of the maximum entry of a vector (ties broken toward the
/// smallest index); `None` for an empty vector.
pub fn argmax<T: Scalar + PartialOrd>(v: &Vector<T>) -> Option<(Index, T)> {
    let mut best: Option<(Index, T)> = None;
    for (i, x) in v.iter() {
        match &best {
            // "not greater" on purpose: NaN never displaces the incumbent.
            Some((_, bx)) if x.partial_cmp(bx) != Some(std::cmp::Ordering::Greater) => {}
            _ => best = Some((i, x)),
        }
    }
    best
}

/// The index of the minimum entry of a vector.
pub fn argmin<T: Scalar + PartialOrd>(v: &Vector<T>) -> Option<(Index, T)> {
    let mut best: Option<(Index, T)> = None;
    for (i, x) in v.iter() {
        match &best {
            // "not less" on purpose: NaN never displaces the incumbent.
            Some((_, bx)) if x.partial_cmp(bx) != Some(std::cmp::Ordering::Less) => {}
            _ => best = Some((i, x)),
        }
    }
    best
}

/// Sum of an `f64` vector's entries.
pub fn sum(v: &Vector<f64>) -> f64 {
    reduce_vector_scalar(&binaryop::Plus, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn argmax_argmin() {
        let v = Vector::from_tuples(5, vec![(1, 3.0), (2, 9.0), (4, 9.0)], |_, b| b).expect("v");
        assert_eq!(argmax(&v), Some((2, 9.0)));
        assert_eq!(argmin(&v), Some((1, 3.0)));
        let e = Vector::<f64>::new(3).expect("e");
        assert_eq!(argmax(&e), None);
    }

    #[test]
    fn sum_works() {
        let v = Vector::from_tuples(3, vec![(0, 1.5), (2, 2.5)], |_, b| b).expect("v");
        assert_eq!(sum(&v), 4.0);
    }
}
