//! Concurrent graph serving: snapshot-isolated queries over a live
//! stream of edge updates.
//!
//! The paper's incremental-update machinery (§II.A pending tuples and
//! zombies) makes a stream of `e` `set_element` calls as cheap as one
//! `build` of `e` tuples — but only if something *batches* the stream.
//! [`GraphService`] is that something, shaped for the serving workload the
//! ROADMAP targets: many readers running the algorithm suite concurrently
//! with many writers mutating the graph.
//!
//! # Architecture
//!
//! ```text
//!  writers ──▶ sharded bounded update log ──▶ drainer thread
//!              (block / coalesce / reject)       │ set_element / remove_element
//!                                                ▼
//!                                  master matrix (pending tuples, zombies)
//!                                                │ wait() = one amortized
//!                                                │ assembly on the par_chunks pool
//!                                                ▼
//!  readers ◀── Arc-swapped epoch snapshot ◀── publish Graph(epoch e)
//! ```
//!
//! * **Writers** call [`GraphService::insert_edge`] / [`delete_edge`]
//!   (or [`submit`] with an explicit [`Update`]). Updates land in a
//!   sharded, bounded in-memory log; when a shard is full the configured
//!   [`BackpressurePolicy`] decides whether the writer blocks, coalesces
//!   against a queued update to the same edge, or is rejected.
//! * **The drainer** (one background thread) swaps whole shard queues
//!   out, replays them into a private *master* matrix through the
//!   deferred-update entry points — insertions become pending tuples,
//!   deletions become zombies — and resolves the entire batch with a
//!   single assembly, which runs parallel on the `par_chunks` pool. One
//!   drain = one **epoch**.
//! * **Readers** call [`GraphService::snapshot`] and get an
//!   [`Arc<Snapshot>`]: an immutable, fully-assembled [`Graph`] tagged
//!   with the epoch that produced it. Queries never block behind
//!   assembly (the master matrix and its lock are private to the
//!   drainer) and never observe a torn batch — a snapshot is published
//!   only after its assembly completed. Cached properties (transpose,
//!   structure, degrees) are per-snapshot, so they are computed at most
//!   once per epoch and never go stale.
//!
//! [`submit`]: GraphService::submit
//! [`delete_edge`]: GraphService::delete_edge
//!
//! # Observability
//!
//! Every epoch opens a `service.epoch` span ([`graphblas::trace`],
//! category `service`) tagged with the epoch number, batch size, the
//! pending-tuple/zombie backlog the assembly resolved, and the queue
//! depth left behind; rejected and coalesced writes emit
//! `service.reject` / counter updates. `GRAPHBLAS_TRACE=burble` narrates
//! the serving loop live.
//!
//! For *live* visibility the service also feeds [`graphblas::metrics`]:
//! per-shard queue-depth gauges, update counters by outcome,
//! backpressure events by policy, batch-size histograms, epoch counters,
//! pending/zombie high-water marks, epoch lag (seconds since the served
//! snapshot was published), and resident-bytes gauges for the master
//! matrix and the served snapshot. Set `GRAPHBLAS_METRICS_ADDR` to
//! scrape them from a running replica (`examples/metrics_service.rs`
//! shows the whole loop).
//!
//! # Example
//!
//! ```
//! use lagraph::service::{GraphService, ServiceConfig};
//! use lagraph::{bfs_level, Graph, GraphKind};
//!
//! let g = Graph::from_edges(64, &[(0, 1), (1, 2)], GraphKind::Undirected)?;
//! let service = GraphService::new(g, ServiceConfig::default())?;
//!
//! // Writer side: stream updates; they are invisible until an epoch turns.
//! service.insert_edge(2, 3, 1.0)?;
//! service.insert_edge(3, 4, 1.0)?;
//!
//! // Force the pending batch into a new epoch (tests / checkpoints).
//! let snap = service.flush()?;
//! assert!(snap.epoch() >= 1);
//!
//! // Reader side: queries run against the immutable snapshot.
//! let levels = bfs_level(snap.graph(), 0)?;
//! assert_eq!(levels.get(4), Some(5)); // 0-1-2-3-4 after the flush
//! # Ok::<(), lagraph::service::ServiceError>(())
//! ```

use crate::graph::{Graph, GraphKind};
use graphblas::metrics;
use graphblas::trace::{self, ArgValue};
use graphblas::{Error as GrbError, Index, Matrix};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One edge mutation submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Update {
    /// Insert the edge `row → col` with the given weight, or overwrite
    /// its weight if it already exists.
    Insert(Index, Index, f64),
    /// Delete the edge `row → col`; deleting an absent edge is a no-op.
    Delete(Index, Index),
}

impl Update {
    fn key(&self) -> (Index, Index) {
        match *self {
            Update::Insert(i, j, _) => (i, j),
            Update::Delete(i, j) => (i, j),
        }
    }
}

/// What [`GraphService::submit`] does when the target shard's queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the writer until the drainer frees space. Never loses an
    /// update; converts overload into writer latency.
    #[default]
    Block,
    /// Scan the shard for a queued update to the same edge and replace it
    /// in place (last write wins — exactly the pending-tuple dedup rule
    /// one layer down). Falls back to blocking when nothing coalesces.
    /// Right for high-churn workloads that repeatedly touch hot edges.
    Coalesce,
    /// Fail fast: return [`ServiceError::Backpressure`] and let the
    /// caller retry, shed load, or route elsewhere.
    Reject,
}

/// Tuning knobs for [`GraphService`]. `Default` is sized for tests and
/// moderate churn; serving deployments mostly tune `queue_capacity` and
/// the [`BackpressurePolicy`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of update-log shards; writers hash edges across them so
    /// concurrent writers rarely contend on one lock. Clamped to ≥ 1.
    pub shards: usize,
    /// Per-shard queue bound. A full shard triggers the backpressure
    /// policy, so `shards × queue_capacity` bounds service memory.
    pub queue_capacity: usize,
    /// The full-queue policy.
    pub policy: BackpressurePolicy,
    /// Upper bound on updates replayed per epoch; a deeper backlog is
    /// split across consecutive epochs so snapshot latency stays bounded.
    pub max_batch: usize,
    /// Keep the drainer's master matrix (and therefore every published
    /// snapshot) in the compressed storage form: each epoch's assembly
    /// re-encodes it on the parallel pool. Cuts resident bytes roughly
    /// in half on power-law graphs for a modest re-encode cost per
    /// epoch. Implied when the initial graph was loaded from `.lagc`.
    pub compressed: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 1 << 14,
            policy: BackpressurePolicy::Block,
            max_batch: 1 << 20,
            compressed: false,
        }
    }
}

/// Errors surfaced by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The update queue is full and the policy is
    /// [`BackpressurePolicy::Reject`]; `depth` is the queued-update count
    /// at rejection time.
    Backpressure {
        /// Updates queued (submitted but not yet applied) when the
        /// submission was refused.
        depth: u64,
    },
    /// The service is shutting down and no longer accepts updates.
    ShutDown,
    /// An underlying GraphBLAS operation failed (bad index, bad
    /// dimensions); carries the typed [`graphblas::Error`].
    Graph(GrbError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure { depth } => {
                write!(f, "update queue full ({depth} queued): submission rejected")
            }
            ServiceError::ShutDown => write!(f, "graph service is shut down"),
            ServiceError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<GrbError> for ServiceError {
    fn from(e: GrbError) -> Self {
        ServiceError::Graph(e)
    }
}

/// An immutable, epoch-tagged view of the served graph. Cheap to clone
/// (it is handed out as an `Arc`); holding one pins that epoch's fully
/// assembled matrix and cached properties in memory, unaffected by any
/// concurrent updates or later epochs.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    nedges: usize,
    graph: Arc<Graph>,
}

impl Snapshot {
    /// The epoch that produced this snapshot (0 = the initial graph).
    /// Equals [`Graph::epoch`] of [`Snapshot::graph`] — a reader that
    /// sees them disagree has found a torn publish, which the regression
    /// suite asserts never happens.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stored edge count at publish time. Constant for the lifetime of
    /// the snapshot: the underlying matrix is fully assembled and never
    /// mutated after publication.
    pub fn nedges(&self) -> usize {
        self.nedges
    }

    /// The graph to run queries against.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The graph as a shared handle, for queries that outlive the
    /// snapshot borrow (e.g. spawned onto another thread).
    pub fn graph_arc(&self) -> Arc<Graph> {
        self.graph.clone()
    }
}

/// One update-log shard: a bounded queue plus the condvar writers block
/// on when it is full.
struct Shard {
    queue: Mutex<VecDeque<Update>>,
    not_full: Condvar,
}

/// Distinct per-shard queue-depth gauges are capped here; shards beyond
/// the cap share one `shard="other"` series (cardinality budget).
const SHARD_GAUGE_CAP: usize = 64;

fn now_unix_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

fn policy_label(p: BackpressurePolicy) -> &'static str {
    match p {
        BackpressurePolicy::Block => "block",
        BackpressurePolicy::Coalesce => "coalesce",
        BackpressurePolicy::Reject => "reject",
    }
}

/// The service's live-metric handles ([`graphblas::metrics`]). The
/// registry is process-global, so two services in one process share
/// these series: counters merge, gauges show the last writer. That is
/// the intended deployment shape (one service per serving process);
/// tests that need isolation read [`GraphService::stats`] instead.
struct ServiceMetrics {
    /// Per-shard queue depth, `lagraph_service_queue_depth{shard=…}`;
    /// indexed by shard, entries past [`SHARD_GAUGE_CAP`] share a series.
    queue_depth: Vec<metrics::Gauge>,
    submitted: metrics::Counter,
    processed: metrics::Counter,
    coalesced: metrics::Counter,
    rejected: metrics::Counter,
    /// Full-queue events by the service's configured policy (counted
    /// once per affected submission, however it resolved).
    backpressure: metrics::Counter,
    /// Updates replayed per epoch.
    batch_updates: metrics::Histogram,
    epochs: metrics::Counter,
    epoch: metrics::Gauge,
    pending_peak: metrics::Gauge,
    zombies_peak: metrics::Gauge,
    /// Resident bytes of the drainer's private master matrix, refreshed
    /// after each epoch's assembly.
    master_bytes: metrics::Gauge,
    last_publish: metrics::Gauge,
    /// Wall clock of the last snapshot publish, in unix nanoseconds —
    /// the `lagraph_service_epoch_lag_seconds` callback reads it at
    /// scrape time, so lag is current even when no epoch is turning.
    publish_unix_ns: Arc<AtomicU64>,
}

impl ServiceMetrics {
    fn new(shards: usize, policy: BackpressurePolicy) -> Self {
        let counters = |result: &str| {
            metrics::counter_with(
                "lagraph_service_updates_total",
                "Service updates by outcome.",
                &[("result", result)],
            )
        };
        let overflow = metrics::gauge_with(
            "lagraph_service_queue_depth",
            "Queued updates per shard.",
            &[("shard", "other")],
        );
        let queue_depth = (0..shards)
            .map(|k| {
                if k < SHARD_GAUGE_CAP {
                    metrics::gauge_with(
                        "lagraph_service_queue_depth",
                        "Queued updates per shard.",
                        &[("shard", &k.to_string())],
                    )
                } else {
                    overflow.clone()
                }
            })
            .collect();
        let publish_unix_ns = Arc::new(AtomicU64::new(now_unix_ns()));
        {
            let at = publish_unix_ns.clone();
            metrics::gauge_fn(
                "lagraph_service_epoch_lag_seconds",
                "Seconds since the served snapshot was published (staleness of reads).",
                &[],
                move || Some(now_unix_ns().saturating_sub(at.load(Relaxed)) as f64 / 1e9),
            );
        }
        ServiceMetrics {
            queue_depth,
            submitted: counters("submitted"),
            processed: counters("processed"),
            coalesced: counters("coalesced"),
            rejected: counters("rejected"),
            backpressure: metrics::counter_with(
                "lagraph_service_backpressure_total",
                "Submissions that hit a full shard queue, by configured policy.",
                &[("policy", policy_label(policy))],
            ),
            batch_updates: metrics::histogram(
                "lagraph_service_batch_updates",
                "Updates replayed per epoch batch.",
            ),
            epochs: metrics::counter(
                "lagraph_service_epochs_total",
                "Epochs published since process start.",
            ),
            epoch: metrics::gauge("lagraph_service_epoch", "Epoch of the served snapshot."),
            pending_peak: metrics::gauge(
                "lagraph_service_pending_peak",
                "Largest pending-tuple backlog any single epoch assembly resolved.",
            ),
            zombies_peak: metrics::gauge(
                "lagraph_service_zombies_peak",
                "Largest zombie count any single epoch assembly resolved.",
            ),
            master_bytes: metrics::gauge_with(
                "lagraph_service_resident_bytes",
                "Resident bytes of service-owned graph objects.",
                &[("object", "master")],
            ),
            last_publish: metrics::gauge(
                "lagraph_service_last_publish_unixtime_seconds",
                "Wall-clock time of the last snapshot publish.",
            ),
            publish_unix_ns,
        }
    }
}

/// Drain coordination: counts are monotone, so `submitted == processed`
/// means the log is empty and every accepted update is visible in the
/// published snapshot.
#[derive(Default)]
struct DrainState {
    shutdown: bool,
}

struct Shared {
    shards: Vec<Shard>,
    capacity: usize,
    policy: BackpressurePolicy,
    kind: GraphKind,
    nvertices: Index,
    /// The currently served snapshot; swapped wholesale per epoch.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Accepted updates (after coalescing: a coalesced write replaces a
    /// queued one and does not bump this).
    submitted: AtomicU64,
    /// Updates replayed into a *published* epoch.
    processed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    shutting_down: AtomicBool,
    /// Wakes the drainer (new work or shutdown) and flushers (publish).
    state: Mutex<DrainState>,
    work: Condvar,
    published: Condvar,
    /// Live-metric handles (no-ops while `graphblas::metrics` is off).
    metrics: ServiceMetrics,
}

impl Shared {
    fn depth(&self) -> u64 {
        self.submitted.load(SeqCst).saturating_sub(self.processed.load(SeqCst))
    }

    fn shard_index(&self, key: (Index, Index)) -> usize {
        // Fibonacci-style mix; undirected mirrors normalize the key first
        // so both arcs of an edge always land in the same shard.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xD1B5_4A32_D192_ED03));
        h % self.shards.len()
    }
}

/// A concurrent graph-serving handle: snapshot-isolated reads multiplexed
/// with a streamed, batched write path. See the [module docs](self) for
/// the architecture and an end-to-end example.
pub struct GraphService {
    shared: Arc<Shared>,
    drainer: Option<JoinHandle<()>>,
}

/// A point-in-time counter sample from [`GraphService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epoch of the currently served snapshot.
    pub epoch: u64,
    /// Updates accepted but not yet visible in a published snapshot.
    pub queue_depth: u64,
    /// Total updates accepted since construction.
    pub submitted: u64,
    /// Total updates replayed into published epochs.
    pub processed: u64,
    /// Writes that replaced a queued update to the same edge
    /// ([`BackpressurePolicy::Coalesce`]).
    pub coalesced: u64,
    /// Writes refused with [`ServiceError::Backpressure`]
    /// ([`BackpressurePolicy::Reject`]).
    pub rejected: u64,
}

impl GraphService {
    /// Start serving `initial`, spawning the drainer thread. The graph's
    /// kind governs update semantics: on an undirected graph every
    /// insert/delete is applied to both arcs atomically within one epoch.
    pub fn new(initial: Graph, config: ServiceConfig) -> Result<Self, ServiceError> {
        let shards = config.shards.max(1);
        let capacity = config.queue_capacity.max(2);
        let max_batch = config.max_batch.max(1);
        let kind = initial.kind();
        let nvertices = initial.nvertices();
        // The drainer's private working copy; the served snapshot is
        // immutable, so the master starts as a deep clone. The clone
        // carries the compressed-storage opt-in with it, so a `.lagc`
        // - loaded graph keeps serving compressed without any config.
        let mut master = initial.a().clone();
        if config.compressed {
            master.set_compressed(true);
        }
        let nedges = initial.nedges();
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| Shard { queue: Mutex::new(VecDeque::new()), not_full: Condvar::new() })
                .collect(),
            capacity,
            policy: config.policy,
            kind,
            nvertices,
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: initial.epoch(),
                nedges,
                graph: Arc::new(initial),
            })),
            submitted: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            state: Mutex::new(DrainState::default()),
            work: Condvar::new(),
            published: Condvar::new(),
            metrics: ServiceMetrics::new(shards, config.policy),
        });
        // Resident bytes of the *served* snapshot, sampled at scrape
        // time through a weak handle so a dropped service stops
        // reporting instead of keeping itself alive.
        {
            let weak = Arc::downgrade(&shared);
            metrics::gauge_fn(
                "lagraph_service_resident_bytes",
                "Resident bytes of service-owned graph objects.",
                &[("object", "snapshot")],
                move || weak.upgrade().map(|s| s.snapshot.read().graph.resident_bytes() as f64),
            );
        }
        let drainer = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lagraph-service-drain".into())
                .spawn(move || drain_loop(&shared, master, max_batch))
                .map_err(|e| {
                    ServiceError::Graph(GrbError::invalid(format!(
                        "failed to spawn service drainer: {e}"
                    )))
                })?
        };
        Ok(GraphService { shared, drainer: Some(drainer) })
    }

    /// The currently served snapshot. Lock-light: one read-lock
    /// acquisition and an `Arc` clone; the returned snapshot stays valid
    /// (and unchanged) however long the query runs.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot.read().clone()
    }

    /// Submit one update. Visibility is *eventual*: the update is
    /// applied by the drainer in a subsequent epoch ([`flush`] forces
    /// that and waits). On undirected graphs the update is stored once
    /// in canonical arc order and the drainer replays *both* arcs inside
    /// the same batch, so a snapshot never shows half an undirected
    /// edge.
    ///
    /// [`flush`]: GraphService::flush
    pub fn submit(&self, update: Update) -> Result<(), ServiceError> {
        if self.shared.shutting_down.load(SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let (i, j) = update.key();
        let n = self.shared.nvertices;
        if i >= n || j >= n {
            return Err(ServiceError::Graph(GrbError::oob(i.max(j), n)));
        }
        // Undirected graphs store one canonical arc per edge; the drainer
        // mirrors it at replay time. This makes pair atomicity structural:
        // there is no second queue entry a batch boundary could split off.
        let update = if self.shared.kind == GraphKind::Undirected && i > j {
            match update {
                Update::Insert(i, j, w) => Update::Insert(j, i, w),
                Update::Delete(i, j) => Update::Delete(j, i),
            }
        } else {
            update
        };
        let si = self.shared.shard_index(update.key());
        let shard = &self.shared.shards[si];
        let mut q = shard.queue.lock().expect("shard lock");
        let mut hit_backpressure = false;
        while q.len() >= self.shared.capacity {
            if !hit_backpressure {
                hit_backpressure = true;
                self.shared.metrics.backpressure.inc();
            }
            match self.shared.policy {
                BackpressurePolicy::Reject => {
                    self.shared.rejected.fetch_add(1, SeqCst);
                    self.shared.metrics.rejected.inc();
                    let depth = self.shared.depth();
                    trace::service_instant("service.reject", vec![("depth", ArgValue::U64(depth))]);
                    return Err(ServiceError::Backpressure { depth });
                }
                BackpressurePolicy::Coalesce => {
                    let key = update.key();
                    if let Some(slot) = q.iter_mut().find(|u| u.key() == key) {
                        *slot = update;
                        self.shared.coalesced.fetch_add(1, SeqCst);
                        self.shared.metrics.coalesced.inc();
                        return Ok(());
                    }
                    q = self.block_until_room(shard, q);
                }
                BackpressurePolicy::Block => q = self.block_until_room(shard, q),
            }
            if self.shared.shutting_down.load(SeqCst) {
                return Err(ServiceError::ShutDown);
            }
        }
        q.push_back(update);
        self.shared.metrics.queue_depth[si].set(q.len() as f64);
        drop(q);
        self.shared.submitted.fetch_add(1, SeqCst);
        self.shared.metrics.submitted.inc();
        self.shared.work.notify_one();
        Ok(())
    }

    /// Wait (with a wakeup-loss-proof timeout loop) for the drainer to
    /// free room in the shard's queue. Returns with the lock held; the
    /// caller re-checks capacity and shutdown.
    fn block_until_room<'a>(
        &self,
        shard: &'a Shard,
        mut q: std::sync::MutexGuard<'a, VecDeque<Update>>,
    ) -> std::sync::MutexGuard<'a, VecDeque<Update>> {
        self.shared.work.notify_one();
        while q.len() >= self.shared.capacity && !self.shared.shutting_down.load(SeqCst) {
            let (guard, _) =
                shard.not_full.wait_timeout(q, Duration::from_millis(5)).expect("shard lock");
            q = guard;
        }
        q
    }

    /// Insert (or re-weight) an edge. Undirected graphs mirror it.
    pub fn insert_edge(&self, i: Index, j: Index, weight: f64) -> Result<(), ServiceError> {
        self.submit(Update::Insert(i, j, weight))
    }

    /// Delete an edge (no-op if absent). Undirected graphs mirror it.
    pub fn delete_edge(&self, i: Index, j: Index) -> Result<(), ServiceError> {
        self.submit(Update::Delete(i, j))
    }

    /// Block until every update accepted before this call is visible in
    /// the served snapshot, and return that snapshot.
    pub fn flush(&self) -> Result<Arc<Snapshot>, ServiceError> {
        if self.shared.shutting_down.load(SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let target = self.shared.submitted.load(SeqCst);
        let mut state = self.shared.state.lock().expect("state lock");
        while self.shared.processed.load(SeqCst) < target {
            if state.shutdown {
                return Err(ServiceError::ShutDown);
            }
            self.shared.work.notify_one();
            let (guard, _) = self
                .shared
                .published
                .wait_timeout(state, Duration::from_millis(5))
                .expect("state lock");
            state = guard;
        }
        drop(state);
        Ok(self.snapshot())
    }

    /// Current counters. All values are monotone except `queue_depth`
    /// (`submitted − processed`).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            epoch: self.snapshot().epoch(),
            queue_depth: self.shared.depth(),
            submitted: self.shared.submitted.load(SeqCst),
            processed: self.shared.processed.load(SeqCst),
            coalesced: self.shared.coalesced.load(SeqCst),
            rejected: self.shared.rejected.load(SeqCst),
        }
    }

    /// Stop accepting updates, drain what was already accepted into a
    /// final epoch, and join the drainer. Called automatically on drop;
    /// explicit calls get the final snapshot back.
    pub fn shutdown(&mut self) -> Arc<Snapshot> {
        self.shared.shutting_down.store(true, SeqCst);
        {
            let mut state = self.shared.state.lock().expect("state lock");
            state.shutdown = true;
        }
        self.shared.work.notify_one();
        for s in &self.shared.shards {
            s.not_full.notify_all();
        }
        if let Some(h) = self.drainer.take() {
            let _ = h.join();
        }
        self.shared.published.notify_all();
        self.snapshot()
    }
}

impl Drop for GraphService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for GraphService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("GraphService")
            .field("epoch", &s.epoch)
            .field("queue_depth", &s.queue_depth)
            .field("nvertices", &self.shared.nvertices)
            .finish()
    }
}

/// The drainer: replay batches into the master's deferred-update state,
/// assemble once per batch, publish an epoch snapshot.
fn drain_loop(shared: &Shared, mut master: Matrix<f64>, max_batch: usize) {
    let mut epoch = shared.snapshot.read().epoch;
    loop {
        // Sleep until there is work or a shutdown request. The timeout
        // guards against a notify racing ahead of this wait.
        {
            let state = shared.state.lock().expect("state lock");
            if shared.depth() == 0 {
                if state.shutdown {
                    return;
                }
                let _ =
                    shared.work.wait_timeout(state, Duration::from_millis(5)).expect("state lock");
            }
        }
        if shared.depth() == 0 {
            continue;
        }

        // Cut a batch: swap each shard's queue out (bounded by
        // max_batch), freeing blocked writers immediately.
        let mut batch: Vec<Update> = Vec::new();
        for (si, shard) in shared.shards.iter().enumerate() {
            let mut q = shard.queue.lock().expect("shard lock");
            let room = max_batch.saturating_sub(batch.len());
            if room == 0 {
                break;
            }
            if q.len() <= room {
                batch.extend(std::mem::take(&mut *q));
            } else {
                batch.extend(q.drain(..room));
            }
            shared.metrics.queue_depth[si].set(q.len() as f64);
            drop(q);
            shard.not_full.notify_all();
        }
        if batch.is_empty() {
            continue;
        }

        epoch += 1;
        let mut span = trace::service_span("service.epoch");
        span.arg("epoch", epoch);
        span.arg("batch", batch.len());
        shared.metrics.batch_updates.observe(batch.len() as u64);

        // Replay through the non-blocking update path: inserts become
        // pending tuples (or in-place overwrites), deletes become
        // zombies. Bounds were checked at submit, so errors here would
        // be internal bugs; they are counted, not silently dropped.
        let mirror = shared.kind == GraphKind::Undirected;
        let mut apply_errors = 0usize;
        for u in &batch {
            let r = match *u {
                Update::Insert(i, j, w) => master.set_element(i, j, w).and_then(|()| {
                    if mirror && i != j {
                        master.set_element(j, i, w)
                    } else {
                        Ok(())
                    }
                }),
                Update::Delete(i, j) => master.remove_element(i, j).and_then(|()| {
                    if mirror && i != j {
                        master.remove_element(j, i)
                    } else {
                        Ok(())
                    }
                }),
            };
            if r.is_err() {
                apply_errors += 1;
            }
        }
        let (pending, zombies) = master.deferred();
        span.arg("pending", pending);
        span.arg("zombies", zombies);
        shared.metrics.pending_peak.set_max(pending as f64);
        shared.metrics.zombies_peak.set_max(zombies as f64);
        if apply_errors > 0 {
            span.arg("apply_errors", apply_errors);
            trace::warn_once(
                "service.apply",
                &format!("{apply_errors} service updates failed to apply (skipped)"),
            );
        }

        // One amortized assembly for the whole batch, parallel on the
        // par_chunks pool — the §II.A claim, now load-bearing.
        master.wait();
        shared.metrics.master_bytes.set(master.memory_usage().total() as f64);

        // Publish: deep-clone the assembled master into an immutable
        // Graph with fresh (lazily computed) caches, stamped with this
        // epoch. Readers swap over atomically on their next snapshot().
        match Graph::new(master.clone(), shared.kind) {
            Ok(mut g) => {
                g.set_epoch(epoch);
                let nedges = g.nedges();
                span.arg("nedges", nedges);
                span.arg("queue_depth", shared.depth());
                *shared.snapshot.write() = Arc::new(Snapshot { epoch, nedges, graph: Arc::new(g) });
                let now_ns = now_unix_ns();
                shared.metrics.publish_unix_ns.store(now_ns, Relaxed);
                shared.metrics.last_publish.set(now_ns as f64 / 1e9);
                shared.metrics.epochs.inc();
                shared.metrics.epoch.set(epoch as f64);
            }
            Err(_) => {
                // Master dimensions never change, so this is unreachable;
                // keep serving the previous snapshot if it somehow isn't.
                trace::warn_once("service.publish", "failed to rebuild service snapshot graph");
            }
        }
        drop(span);
        shared.processed.fetch_add(batch.len() as u64, SeqCst);
        shared.metrics.processed.add(batch.len() as u64);
        shared.published.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_with(policy: BackpressurePolicy, capacity: usize, kind: GraphKind) -> GraphService {
        let g = Graph::from_edges(32, &[(0, 1), (1, 2)], kind).expect("graph");
        GraphService::new(
            g,
            ServiceConfig {
                shards: 2,
                queue_capacity: capacity,
                policy,
                max_batch: 1 << 20,
                ..ServiceConfig::default()
            },
        )
        .expect("service")
    }

    #[test]
    fn initial_snapshot_is_epoch_zero() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.nedges(), 2);
        assert_eq!(snap.graph().epoch(), 0);
    }

    #[test]
    fn flush_publishes_updates_in_one_epoch() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        s.insert_edge(5, 6, 2.0).expect("insert");
        s.insert_edge(6, 7, 3.0).expect("insert");
        s.delete_edge(0, 1).expect("delete");
        let snap = s.flush().expect("flush");
        assert!(snap.epoch() >= 1);
        assert_eq!(snap.graph().epoch(), snap.epoch());
        assert_eq!(snap.graph().a().get(5, 6), Some(2.0));
        assert_eq!(snap.graph().a().get(6, 7), Some(3.0));
        assert_eq!(snap.graph().a().get(0, 1), None);
        assert_eq!(snap.nedges(), snap.graph().a().nvals());
    }

    #[test]
    fn old_snapshot_is_isolated_from_later_epochs() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let before = s.snapshot();
        s.insert_edge(9, 9, 1.0).expect("insert");
        let after = s.flush().expect("flush");
        assert_eq!(before.graph().a().get(9, 9), None); // frozen at epoch 0
        assert_eq!(after.graph().a().get(9, 9), Some(1.0));
        assert!(after.epoch() > before.epoch());
    }

    #[test]
    fn undirected_inserts_are_mirrored_atomically() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Undirected);
        s.insert_edge(3, 4, 2.5).expect("insert");
        let snap = s.flush().expect("flush");
        assert_eq!(snap.graph().a().get(3, 4), Some(2.5));
        assert_eq!(snap.graph().a().get(4, 3), Some(2.5));
        snap.graph().check().expect("still symmetric");
    }

    #[test]
    fn out_of_bounds_rejected_at_submit() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let err = s.insert_edge(99, 0, 1.0).expect_err("oob");
        assert!(matches!(err, ServiceError::Graph(GrbError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn reject_policy_sheds_load() {
        // Stop the drainer first so the overflow is deterministic, then
        // re-open the intake: submissions beyond capacity must reject.
        let mut s = service_with(BackpressurePolicy::Reject, 2, GraphKind::Directed);
        let _ = s.shutdown();
        s.shared.shutting_down.store(false, SeqCst);
        s.shared.state.lock().expect("state").shutdown = false;
        s.insert_edge(1, 2, 0.0).expect("fits");
        s.insert_edge(1, 3, 0.0).expect("fits"); // same row hashes freely; capacity is per shard
        let mut rejected = 0;
        for k in 0..8 {
            if let Err(ServiceError::Backpressure { depth }) = s.insert_edge(1, 2, k as f64) {
                assert!(depth >= 2);
                rejected += 1;
            }
        }
        assert!(rejected > 0, "capacity-2 shard absorbed 8 extra updates");
        assert_eq!(s.stats().rejected, rejected);
    }

    #[test]
    fn coalesce_replaces_queued_update_when_full() {
        let mut s = service_with(BackpressurePolicy::Coalesce, 2, GraphKind::Directed);
        let _ = s.shutdown();
        s.shared.shutting_down.store(false, SeqCst);
        s.shared.state.lock().expect("state").shutdown = false;
        s.insert_edge(1, 2, 1.0).expect("fits");
        s.insert_edge(1, 2, 2.0).expect("fits"); // same key → same shard, now full
        s.insert_edge(1, 2, 9.0).expect("coalesces in place");
        let st = s.stats();
        assert_eq!(st.coalesced, 1);
        assert_eq!(st.submitted, 2); // the replacement did not grow the log
    }

    #[test]
    fn coalesced_last_write_wins_end_to_end() {
        let s = service_with(BackpressurePolicy::Coalesce, 4, GraphKind::Directed);
        s.insert_edge(2, 3, 1.0).expect("a");
        s.insert_edge(2, 3, 9.0).expect("b");
        let snap = s.flush().expect("flush");
        assert_eq!(snap.graph().a().get(2, 3), Some(9.0));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let mut s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        let _ = s.shutdown();
        assert_eq!(s.insert_edge(1, 2, 1.0), Err(ServiceError::ShutDown));
    }

    #[test]
    fn stats_are_coherent_after_flush() {
        let s = service_with(BackpressurePolicy::Block, 64, GraphKind::Directed);
        for k in 0..10 {
            s.insert_edge(k, (k + 1) % 32, 1.0).expect("insert");
        }
        let _ = s.flush().expect("flush");
        let st = s.stats();
        assert_eq!(st.submitted, 10);
        assert_eq!(st.processed, 10);
        assert_eq!(st.queue_depth, 0);
        assert!(st.epoch >= 1);
    }
}
