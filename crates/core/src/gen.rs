//! Seeded, deterministic workload generation — the measurement backbone
//! for the benchmark harness.
//!
//! The LAGraph benchmarking methodology (Szárnyas et al., the follow-up
//! to the position paper this crate reproduces) and GraphBLAST both
//! report all results on synthetic scale-free inputs: Graph500-style
//! RMAT/Kronecker graphs at a given *scale* (log₂ vertex count) and
//! *edge factor* (average degree). This module generates those workloads
//! directly as GraphBLAS matrices, with two properties the simpler
//! sequential generators in `lagraph-io` do not have:
//!
//! * **Thread-count independence.** Every edge is a pure function of
//!   `(seed, edge index)` via a counter-based [SplitMix64] stream, so the
//!   tuple list — and therefore the built matrix — is bit-identical
//!   whether it was materialized on 1 thread or 8. Benchmarks seeded the
//!   same way measure the same graph on every machine.
//! * **Parallel materialization.** Edges are generated in chunks on the
//!   `graphblas::parallel` pool and assembled through the parallel
//!   `Matrix::from_tuples` build path, so generating a scale-20 workload
//!   is itself a parallel workload rather than a sequential preamble.
//!
//! Three generator families cover the benchmark configurations:
//! [`rmat`] (skewed, Graph500 parameters), [`erdos_renyi`] (uniform
//! random), and [`uniform_degree`] (fixed out-degree), plus weighted
//! variants for shortest-path workloads and the [`Workload`] enum the
//! `lagraph-bench` harness selects between.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use graphblas::parallel::par_chunks;
use graphblas::prelude::*;

use crate::graph::{Graph, GraphKind};

// ---------------------------------------------------------------------------
// Counter-based randomness
// ---------------------------------------------------------------------------

/// One SplitMix64 scramble step: a bijective avalanche mix of `x`.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny counter-based stream: the state is seeded from `(seed, ctr)`
/// and each [`next_u64`](Stream::next_u64) advances by a fixed odd
/// increment before scrambling, so draws within a stream are independent
/// and streams with different counters never collide in practice.
#[derive(Debug, Clone, Copy)]
struct Stream {
    state: u64,
}

impl Stream {
    /// Open the stream for logical item `ctr` (an edge or vertex index)
    /// under `seed`. Pure: the same `(seed, ctr)` always yields the same
    /// stream, which is what makes chunked generation order-free.
    #[inline]
    fn new(seed: u64, ctr: u64) -> Stream {
        Stream { state: splitmix64(seed ^ splitmix64(ctr.wrapping_add(0xA5A5_A5A5_A5A5_A5A5))) }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[0, n)` (n > 0) by 128-bit multiply, avoiding
    /// the modulo bias a `% n` would introduce.
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// RMAT / Kronecker
// ---------------------------------------------------------------------------

/// Parameters of the recursive-matrix (RMAT) generator, the stochastic
/// Kronecker construction Graph500 standardizes (Chakrabarti, Zhan &
/// Faloutsos, SDM 2004).
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log₂ of the vertex count (Graph500 "scale").
    pub scale: u32,
    /// Edges drawn per vertex (Graph500 uses 16).
    pub edge_factor: usize,
    /// Probability of recursing into the top-left quadrant (0.57 in the
    /// Graph500 parameterization — the source of the degree skew).
    pub a: f64,
    /// Probability of the top-right quadrant (0.19 in Graph500).
    pub b: f64,
    /// Probability of the bottom-left quadrant (0.19 in Graph500; the
    /// remaining mass `1 − a − b − c` goes bottom-right).
    pub c: f64,
    /// Seed for the counter-based edge streams.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig { scale: 10, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, seed: 42 }
    }
}

impl RmatConfig {
    /// Vertex count `2^scale`.
    pub fn nvertices(&self) -> Index {
        1usize << self.scale
    }

    /// Edge draws `edge_factor · 2^scale` (before self-loop removal and
    /// duplicate collapse).
    pub fn nedges(&self) -> usize {
        self.edge_factor << self.scale
    }

    /// The endpoints of edge draw `k`: one descent through `scale`
    /// levels of the recursive quadrant matrix, consuming draws from the
    /// per-edge stream only. Pure in `(self.seed, k)`.
    #[inline]
    fn edge(&self, k: usize) -> (Index, Index) {
        let mut s = Stream::new(self.seed, k as u64);
        let (mut i, mut j) = (0 as Index, 0 as Index);
        for bit in (0..self.scale).rev() {
            let r = s.next_f64();
            let (di, dj) = if r < self.a {
                (0, 0)
            } else if r < self.a + self.b {
                (0, 1)
            } else if r < self.a + self.b + self.c {
                (1, 0)
            } else {
                (1, 1)
            };
            i |= di << bit;
            j |= dj << bit;
        }
        (i, j)
    }

    /// The weight assigned to edge draw `k`: uniform in `1..=max_weight`,
    /// drawn from a stream offset so it is independent of the endpoint
    /// draws. Both orientations of a symmetrized edge share it.
    #[inline]
    fn weight(&self, k: usize, max_weight: u64) -> f64 {
        let mut s = Stream::new(self.seed ^ 0x57ED_5EED, k as u64);
        (1 + s.next_below(max_weight)) as f64
    }
}

/// Materialize edge draws `0..nedges` in parallel chunks, mapping each
/// draw to zero or more tuples. Chunks are concatenated in draw order, so
/// the result is independent of the chunking (and thread count).
fn par_edges<T: Send + Copy>(
    nedges: usize,
    est_work_per_edge: usize,
    edge: impl Fn(usize, &mut Vec<(Index, Index, T)>) + Sync,
) -> Vec<(Index, Index, T)> {
    let chunks = par_chunks(nedges, nedges.saturating_mul(est_work_per_edge.max(1)), |range| {
        let mut out = Vec::with_capacity(2 * range.len());
        for k in range {
            edge(k, &mut out);
        }
        out
    });
    let total = chunks.iter().map(Vec::len).sum();
    let mut tuples = Vec::with_capacity(total);
    for c in chunks {
        tuples.extend_from_slice(&c);
    }
    tuples
}

/// An undirected (symmetrized, loop-free) RMAT adjacency structure.
/// Duplicate edge draws collapse; self-loop draws are dropped, matching
/// the Graph500 kernel-input convention.
pub fn rmat(cfg: &RmatConfig) -> Result<Matrix<bool>> {
    let n = cfg.nvertices();
    let tuples = par_edges(cfg.nedges(), cfg.scale as usize, |k, out| {
        let (i, j) = cfg.edge(k);
        if i != j {
            out.push((i, j, true));
            out.push((j, i, true));
        }
    });
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// A directed RMAT adjacency structure (no symmetrization), for
/// direction-optimization studies.
pub fn rmat_directed(cfg: &RmatConfig) -> Result<Matrix<bool>> {
    let n = cfg.nvertices();
    let tuples = par_edges(cfg.nedges(), cfg.scale as usize, |k, out| {
        let (i, j) = cfg.edge(k);
        if i != j {
            out.push((i, j, true));
        }
    });
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// An undirected RMAT graph with integral edge weights uniform in
/// `1..=max_weight` (both orientations share the draw's weight) — the
/// GAP shortest-path workload shape. `max_weight = 1` yields unit
/// weights. Duplicate draws keep the *last* draw's weight on both
/// orientations, so the matrix stays symmetric.
pub fn rmat_weighted(cfg: &RmatConfig, max_weight: u64) -> Result<Matrix<f64>> {
    let n = cfg.nvertices();
    let max_weight = max_weight.max(1);
    let tuples = par_edges(cfg.nedges(), cfg.scale as usize, |k, out| {
        let (i, j) = cfg.edge(k);
        if i != j {
            let w = cfg.weight(k, max_weight);
            out.push((i, j, w));
            out.push((j, i, w));
        }
    });
    // Keep the lexicographically-last duplicate deterministically: the
    // assemble path feeds duplicates to `dup` in draw order (tuples are
    // ordered by draw above), and symmetric twins see the same sequence
    // of weights, so (i,j) and (j,i) resolve identically.
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// An undirected RMAT [`Graph`] with unit weights.
pub fn rmat_graph(cfg: &RmatConfig) -> Result<Graph> {
    Graph::new(rmat_weighted(cfg, 1)?, GraphKind::Undirected)
}

/// An undirected RMAT [`Graph`] with weights uniform in `1..=max_weight`.
pub fn rmat_weighted_graph(cfg: &RmatConfig, max_weight: u64) -> Result<Graph> {
    Graph::new(rmat_weighted(cfg, max_weight)?, GraphKind::Undirected)
}

// ---------------------------------------------------------------------------
// Erdős–Rényi and uniform-degree
// ---------------------------------------------------------------------------

/// Erdős–Rényi `G(n, m)`: `m` undirected edge draws with uniform
/// endpoints, symmetrized and loop-free (each draw rejects self-loops
/// inside its own stream; duplicate draws collapse, so `nvals ≤ 2m`).
pub fn erdos_renyi(n: Index, m: usize, seed: u64) -> Result<Matrix<bool>> {
    if n < 2 {
        return Matrix::new(n, n);
    }
    let tuples = par_edges(m, 2, |k, out| {
        let mut s = Stream::new(seed, k as u64);
        loop {
            let i = s.next_below(n as u64) as Index;
            let j = s.next_below(n as u64) as Index;
            if i != j {
                out.push((i, j, true));
                out.push((j, i, true));
                return;
            }
        }
    });
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// Weighted Erdős–Rényi: like [`erdos_renyi`] with each undirected edge
/// carrying a weight uniform in `1..=max_weight`.
pub fn erdos_renyi_weighted(n: Index, m: usize, max_weight: u64, seed: u64) -> Result<Matrix<f64>> {
    if n < 2 {
        return Matrix::new(n, n);
    }
    let max_weight = max_weight.max(1);
    let tuples = par_edges(m, 2, |k, out| {
        let mut s = Stream::new(seed, k as u64);
        loop {
            let i = s.next_below(n as u64) as Index;
            let j = s.next_below(n as u64) as Index;
            if i != j {
                let w = (1 + s.next_below(max_weight)) as f64;
                out.push((i, j, w));
                out.push((j, i, w));
                return;
            }
        }
    });
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// A directed graph where every vertex has out-degree exactly `d`: each
/// vertex draws `d` *distinct* non-self targets from its own stream.
/// Errors if `d ≥ n` (not enough distinct targets). The flat degree
/// distribution is the control case against RMAT's skew.
pub fn uniform_degree(n: Index, d: usize, seed: u64) -> Result<Matrix<bool>> {
    if d >= n {
        return Err(Error::invalid(format!("uniform_degree: d = {d} must be < n = {n}")));
    }
    let chunks = par_chunks(n, n.saturating_mul(d.max(1)), |range| {
        let mut out = Vec::with_capacity(range.len() * d);
        for v in range {
            let mut s = Stream::new(seed, v as u64);
            let base = out.len();
            while out.len() - base < d {
                let w = s.next_below(n as u64) as Index;
                if w != v && !out[base..].iter().any(|&(_, x, _)| x == w) {
                    out.push((v, w, true));
                }
            }
        }
        out
    });
    let total = chunks.iter().map(Vec::len).sum();
    let mut tuples = Vec::with_capacity(total);
    for c in chunks {
        tuples.extend_from_slice(&c);
    }
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

/// The symmetrized counterpart of [`uniform_degree`]: every vertex draws
/// `d` distinct targets and each arc is mirrored, so degrees are `≥ d`
/// but no longer exact.
pub fn uniform_degree_undirected(n: Index, d: usize, seed: u64) -> Result<Matrix<bool>> {
    if d >= n {
        return Err(Error::invalid(format!("uniform_degree: d = {d} must be < n = {n}")));
    }
    let chunks = par_chunks(n, n.saturating_mul(d.max(1)), |range| {
        let mut out = Vec::with_capacity(range.len() * d * 2);
        for v in range {
            let mut s = Stream::new(seed, v as u64);
            let mut picked = 0usize;
            let base = out.len();
            while picked < d {
                let w = s.next_below(n as u64) as Index;
                if w != v && !out[base..].iter().any(|&(x, y, _)| x == v && y == w) {
                    out.push((v, w, true));
                    out.push((w, v, true));
                    picked += 1;
                }
            }
        }
        out
    });
    let total = chunks.iter().map(Vec::len).sum();
    let mut tuples = Vec::with_capacity(total);
    for c in chunks {
        tuples.extend_from_slice(&c);
    }
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

// ---------------------------------------------------------------------------
// Seeded sampling
// ---------------------------------------------------------------------------

/// A seeded uniform permutation of `0..n` (Fisher–Yates over the
/// SplitMix64 stream). Deterministic in `seed`; scanning a prefix gives
/// distinct uniform draws with guaranteed full coverage — the benchmark
/// harness walks this to pick source vertices.
pub fn permutation(n: Index, seed: u64) -> Vec<Index> {
    let mut out: Vec<Index> = (0..n).collect();
    let mut s = Stream::new(seed, 0x5EED50_u64);
    for i in (1..n).rev() {
        let j = s.next_below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
    out
}

/// `k` distinct uniform indices from `[0, n)`, deterministic in `seed`.
/// Rejection-samples the SplitMix64 stream while the draw is cheap and
/// falls back to a [`permutation`] prefix once `k` nears `n`, so it
/// terminates in O(n) worst case. `k` is clamped to `n`.
pub fn sample_distinct(n: Index, k: usize, seed: u64) -> Vec<Index> {
    let k = k.min(n);
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k * 4 >= n {
        let mut p = permutation(n, seed);
        p.truncate(k);
        return p;
    }
    let mut s = Stream::new(seed, 0x5EED51_u64);
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let v = s.next_below(n as u64) as Index;
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workload selection (the harness vocabulary)
// ---------------------------------------------------------------------------

/// The workload families the `lagraph-bench` harness generates, all
/// parameterized by `(scale, edge_factor, seed)` with `n = 2^scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Graph500 RMAT: scale-free, heavy-hub degree distribution.
    Rmat,
    /// Erdős–Rényi `G(n, n·edge_factor)`: uniform random.
    ErdosRenyi,
    /// Fixed per-vertex degree (mirrored): the flat control case.
    UniformDegree,
}

impl Workload {
    /// Parse a workload name as the CLI spells it (`rmat`, `er` /
    /// `erdos-renyi`, `uniform`).
    pub fn parse(s: &str) -> Option<Workload> {
        match s.to_ascii_lowercase().as_str() {
            "rmat" | "kron" | "kronecker" => Some(Workload::Rmat),
            "er" | "erdos-renyi" | "erdos_renyi" => Some(Workload::ErdosRenyi),
            "uniform" | "uniform-degree" | "uniform_degree" => Some(Workload::UniformDegree),
            _ => None,
        }
    }

    /// The canonical name used in reports and filenames.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Rmat => "rmat",
            Workload::ErdosRenyi => "erdos-renyi",
            Workload::UniformDegree => "uniform-degree",
        }
    }

    /// Generate the undirected weighted adjacency (weights uniform in
    /// `1..=max_weight`; pass 1 for unit weights) for this workload at
    /// the given scale.
    pub fn weighted(
        self,
        scale: u32,
        edge_factor: usize,
        seed: u64,
        max_weight: u64,
    ) -> Result<Matrix<f64>> {
        let n: Index = 1usize << scale;
        match self {
            Workload::Rmat => rmat_weighted(
                &RmatConfig { scale, edge_factor, seed, ..Default::default() },
                max_weight,
            ),
            Workload::ErdosRenyi => erdos_renyi_weighted(n, n * edge_factor, max_weight, seed),
            Workload::UniformDegree => {
                // Mirror the Boolean structure and stamp unit-or-uniform
                // weights per arc, keeping symmetry.
                let s = uniform_degree_undirected(n, edge_factor.clamp(1, n - 1), seed)?;
                let mut w = Matrix::<f64>::new(n, n)?;
                if max_weight <= 1 {
                    apply_matrix(&mut w, None, NOACC, unaryop::One, &s, &Descriptor::default())?;
                } else {
                    let mw = max_weight;
                    apply_matrix_indexed(
                        &mut w,
                        None,
                        NOACC,
                        move |i: Index, j: Index, _: bool| {
                            // Weight keyed on the unordered pair so both
                            // orientations agree.
                            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                            let mut st =
                                Stream::new(seed ^ 0x57ED_5EED, ((lo as u64) << 32) ^ hi as u64);
                            (1 + st.next_below(mw)) as f64
                        },
                        &s,
                        &Descriptor::default(),
                    )?;
                }
                Ok(w)
            }
        }
    }

    /// Generate this workload as an undirected [`Graph`].
    pub fn graph(
        self,
        scale: u32,
        edge_factor: usize,
        seed: u64,
        max_weight: u64,
    ) -> Result<Graph> {
        Graph::new(self.weighted(scale, edge_factor, seed, max_weight)?, GraphKind::Undirected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_pure() {
        let mut a = Stream::new(7, 3);
        let mut b = Stream::new(7, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Stream::new(7, 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut s = Stream::new(1, 1);
        for _ in 0..1000 {
            assert!(s.next_below(10) < 10);
            let f = s.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rmat_symmetric_loop_free() {
        let a = rmat(&RmatConfig { scale: 6, edge_factor: 4, ..Default::default() }).expect("rmat");
        assert_eq!(a.nrows(), 64);
        for (i, j, _) in a.iter() {
            assert_ne!(i, j);
            assert_eq!(a.get(j, i), Some(true));
        }
    }

    #[test]
    fn rmat_weighted_is_symmetric_in_values() {
        let a = rmat_weighted(&RmatConfig { scale: 6, edge_factor: 4, ..Default::default() }, 64)
            .expect("rmat");
        for (i, j, w) in a.iter() {
            assert!((1.0..=64.0).contains(&w));
            assert_eq!(a.get(j, i), Some(w), "weights must be symmetric at ({i},{j})");
        }
    }

    #[test]
    fn uniform_degree_is_exact() {
        let a = uniform_degree(50, 7, 9).expect("uniform");
        let mut deg = vec![0usize; 50];
        for (i, j, _) in a.iter() {
            assert_ne!(i, j);
            deg[i] += 1;
        }
        assert!(deg.iter().all(|&d| d == 7), "degrees {deg:?}");
    }

    #[test]
    fn uniform_degree_rejects_impossible() {
        assert!(uniform_degree(4, 4, 0).is_err());
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(257, 11);
        let mut seen = vec![false; 257];
        for &v in &p {
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Deterministic in the seed, different across seeds.
        assert_eq!(p, permutation(257, 11));
        assert_ne!(p, permutation(257, 12));
    }

    #[test]
    fn sample_distinct_is_distinct_and_seeded() {
        for (n, k) in [(1000, 8), (16, 12), (5, 5), (5, 9), (7, 0)] {
            let s = sample_distinct(n, k, 3);
            assert_eq!(s.len(), k.min(n), "n={n} k={k}");
            let uniq: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(uniq.len(), s.len(), "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&v| v < n));
            assert_eq!(s, sample_distinct(n, k, 3), "must be pure in the seed");
        }
        assert_ne!(sample_distinct(1000, 8, 3), sample_distinct(1000, 8, 4));
    }

    #[test]
    fn erdos_renyi_collapses_duplicates() {
        let a = erdos_renyi(64, 200, 5).expect("er");
        assert!(a.nvals() <= 400);
        assert!(a.nvals() > 250);
        for (i, j, _) in a.iter() {
            assert_ne!(i, j);
            assert_eq!(a.get(j, i), Some(true));
        }
    }

    #[test]
    fn workload_parse_round_trips() {
        for w in [Workload::Rmat, Workload::ErdosRenyi, Workload::UniformDegree] {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("nope"), None);
    }

    #[test]
    fn workload_graphs_are_undirected_and_weighted() {
        for w in [Workload::Rmat, Workload::ErdosRenyi, Workload::UniformDegree] {
            let g = w.graph(6, 4, 11, 8).expect("graph");
            g.check().expect("structurally valid");
            for (i, j, x) in g.a().iter() {
                assert!((1.0..=8.0).contains(&x), "{}: weight {x} at ({i},{j})", w.name());
                assert_eq!(g.a().get(j, i), Some(x));
            }
        }
    }
}
