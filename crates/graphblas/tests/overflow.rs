//! Regression tests for arithmetic overflow in kernel-selection
//! heuristics on hypersparse operands with dimensions near `Index::MAX`.
//!
//! Dimensions this large are legitimate — hypersparse storage is O(e), so
//! a `usize::MAX / 2`-sized matrix with three entries is cheap — but they
//! broke the old fixed-ratio choosers in debug builds: `mxv`'s
//! `u_nvals * PUSH_PULL_RATIO` and `mxm`'s `mask.nvals() <= 4 * out_rows`
//! both multiplied unchecked. The cost-model estimators saturate instead;
//! these tests pin that down (run with `-C overflow-checks=on` in CI).

use graphblas::prelude::*;
use graphblas::semiring::PLUS_TIMES;

/// A dimension large enough that any `k * n` heuristic (k >= 4) overflows
/// `usize` — while staying buildable: hypersparse storage never allocates
/// proportionally to the dimension.
const HUGE: Index = usize::MAX / 2;

#[test]
fn vxm_auto_direction_on_huge_dimensions() {
    // 0 → 1 → 2 over a HUGE×HUGE hypersparse graph; Auto resolves the
    // direction through saturating flops estimates (the old code computed
    // `u_nvals * 10` and compared against n).
    let a = Matrix::from_tuples(
        HUGE,
        HUGE,
        vec![(0, 1, 2.0f64), (1, 2, 3.0), (HUGE - 1, 0, 5.0)],
        |_, b| b,
    )
    .expect("hypersparse build is O(e)");
    let u = Vector::from_tuples(HUGE, vec![(0, 10.0f64)], |_, b| b).expect("u");
    let mut w = Vector::<f64>::new(HUGE).expect("w");
    vxm(&mut w, None, NOACC, &PLUS_TIMES, &u, &a, &Descriptor::default()).expect("vxm");
    assert_eq!(w.extract_tuples(), vec![(1, 20.0)]);
}

#[test]
fn masked_vxm_on_huge_dimensions_filters_in_kernel() {
    // The masked push (tree-accumulator) path on a huge dimension: the
    // mask excludes column 1, so only the 0→(HUGE-1) edge survives.
    let a = Matrix::from_tuples(HUGE, HUGE, vec![(0, 1, 2.0f64), (0, HUGE - 1, 7.0)], |_, b| b)
        .expect("a");
    let u = Vector::from_tuples(HUGE, vec![(0, 1.0f64)], |_, b| b).expect("u");
    let mask = Vector::from_tuples(HUGE, vec![(HUGE - 1, true)], |_, b| b).expect("mask");
    let mut w = Vector::<f64>::new(HUGE).expect("w");
    vxm(&mut w, Some(&mask), NOACC, &PLUS_TIMES, &u, &a, &Descriptor::default()).expect("vxm");
    assert_eq!(w.extract_tuples(), vec![(HUGE - 1, 7.0)]);
}

#[test]
fn transposed_mxv_directions_on_huge_dimensions() {
    // `mxv(Aᵀ, u)` pushes naturally, so every direction hint resolves to
    // the scatter kernel when no dual storage exists — exercising the
    // saturating push/pull estimates without the pull side's dense input
    // view (which is legitimately O(n) and not built at this dimension).
    let a =
        Matrix::from_tuples(HUGE, HUGE, vec![(0, 1, 2.0f64), (1, 2, 3.0)], |_, b| b).expect("a");
    let u = Vector::from_tuples(HUGE, vec![(0, 4.0f64), (1, 1.0)], |_, b| b).expect("u");
    for dir in [Direction::Auto, Direction::Push, Direction::Pull] {
        let mut w = Vector::<f64>::new(HUGE).expect("w");
        mxv(
            &mut w,
            None,
            NOACC,
            &PLUS_TIMES,
            &a,
            &u,
            &Descriptor::new().transpose_a().direction(dir),
        )
        .expect("mxv");
        assert_eq!(w.extract_tuples(), vec![(1, 8.0), (2, 3.0)], "{dir:?}");
    }
}

#[test]
fn masked_mxm_auto_on_huge_dimensions() {
    // The failing-before case: `choose_method` evaluated
    // `mask.nvals() <= 4 * out_rows` with out_rows = usize::MAX / 2, which
    // overflows (and aborts under `-C overflow-checks=on`) before any
    // kernel runs. The saturating estimates pick the masked dot path.
    let a =
        Matrix::from_tuples(HUGE, HUGE, vec![(0, 1, 2.0f64), (3, 4, 9.0)], |_, b| b).expect("a");
    let b =
        Matrix::from_tuples(HUGE, HUGE, vec![(1, 7, 10.0f64), (4, 0, 1.0)], |_, b| b).expect("b");
    let mask = Matrix::from_tuples(HUGE, HUGE, vec![(0, 7, true)], |_, b| b).expect("mask");
    let mut c = Matrix::<f64>::new(HUGE, HUGE).expect("c");
    mxm(&mut c, Some(&mask), NOACC, &PLUS_TIMES, &a, &b, &Descriptor::default()).expect("mxm");
    assert_eq!(c.extract_tuples(), vec![(0, 7, 20.0)]);
}
