//! Edge-case suite for the GraphBLAS substrate: minimal dimensions,
//! empty operands, full matrices, aliasing-adjacent patterns, extreme
//! types, and descriptor corner cases.

use graphblas::prelude::*;
use graphblas::semiring::{LOR_LAND, MIN_PLUS, PLUS_TIMES};

#[test]
fn one_by_one_everything() {
    let a = Matrix::from_tuples(1, 1, vec![(0, 0, 2.0)], |_, b| b).expect("a");
    let u = Vector::from_tuples(1, vec![(0, 3.0)], |_, b| b).expect("u");
    let mut w = Vector::<f64>::new(1).expect("w");
    mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
    assert_eq!(w.get(0), Some(6.0));
    let mut c = Matrix::<f64>::new(1, 1).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &a, &Descriptor::default()).expect("mxm");
    assert_eq!(c.get(0, 0), Some(4.0));
    let t = transpose_new(&a).expect("t");
    assert_eq!(t.get(0, 0), Some(2.0));
}

#[test]
fn empty_operands_produce_empty_results() {
    let a = Matrix::<f64>::new(5, 5).expect("a");
    let u = Vector::<f64>::new(5).expect("u");
    let mut w = Vector::<f64>::new(5).expect("w");
    mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
    assert_eq!(w.nvals(), 0);
    let mut c = Matrix::<f64>::new(5, 5).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &a, &Descriptor::default()).expect("mxm");
    assert_eq!(c.nvals(), 0);
    assert_eq!(reduce_matrix_scalar(&binaryop::Plus, &a), 0.0);
}

#[test]
fn empty_times_full_is_empty() {
    let empty = Matrix::<i64>::new(4, 4).expect("empty");
    let mut full = Matrix::<i64>::new(4, 4).expect("full");
    assign_matrix_scalar(
        &mut full,
        None,
        NOACC,
        7,
        &IndexSel::All,
        &IndexSel::All,
        &Descriptor::default(),
    )
    .expect("fill");
    assert_eq!(full.nvals(), 16);
    let mut c = Matrix::<i64>::new(4, 4).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &empty, &full, &Descriptor::default()).expect("mxm");
    assert_eq!(c.nvals(), 0);
}

#[test]
fn full_matrix_product_is_dense() {
    let n = 8;
    let mut a = Matrix::<i64>::new(n, n).expect("a");
    assign_matrix_scalar(
        &mut a,
        None,
        NOACC,
        1,
        &IndexSel::All,
        &IndexSel::All,
        &Descriptor::default(),
    )
    .expect("fill");
    let mut c = Matrix::<i64>::new(n, n).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &a, &Descriptor::default()).expect("mxm");
    assert_eq!(c.nvals(), n * n);
    assert_eq!(c.get(3, 4), Some(n as i64));
}

#[test]
fn explicit_zeros_are_entries() {
    // GraphBLAS semantics: a stored zero is an entry, not "nothing".
    let a = Matrix::from_tuples(2, 2, vec![(0, 0, 0.0), (0, 1, 0.0)], |_, b| b).expect("a");
    assert_eq!(a.nvals(), 2);
    let u = Vector::from_tuples(2, vec![(0, 0.0), (1, 5.0)], |_, b| b).expect("u");
    let mut w = Vector::<f64>::new(2).expect("w");
    mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
    // Row 0 intersects u at both positions: 0*0 + 0*5 = 0, an entry.
    assert_eq!(w.get(0), Some(0.0));
    assert_eq!(w.nvals(), 1);
}

#[test]
fn mask_of_explicit_false_blocks_by_value_but_not_structurally() {
    let mut w = Vector::<i32>::new(3).expect("w");
    let mask = Vector::from_tuples(3, vec![(0, false), (1, true)], |_, b| b).expect("m");
    assign_scalar(&mut w, Some(&mask), NOACC, 7, &IndexSel::All, &Descriptor::default())
        .expect("assign");
    assert_eq!(w.extract_tuples(), vec![(1, 7)]);
    let mut w2 = Vector::<i32>::new(3).expect("w2");
    assign_scalar(&mut w2, Some(&mask), NOACC, 7, &IndexSel::All, &Descriptor::new().structural())
        .expect("assign");
    assert_eq!(w2.extract_tuples(), vec![(0, 7), (1, 7)]);
}

#[test]
fn replace_without_mask_clears_everything_outside_result() {
    let mut w = Vector::from_tuples(4, vec![(0, 9), (3, 9)], |_, b| b).expect("w");
    let u = Vector::from_tuples(4, vec![(1, 1)], |_, b| b).expect("u");
    // No mask + replace: the result is exactly the computed T.
    apply(&mut w, None, NOACC, unaryop::Identity, &u, &Descriptor::new().replace()).expect("apply");
    assert_eq!(w.extract_tuples(), vec![(1, 1)]);
}

#[test]
fn accumulator_unions_old_and_new() {
    let mut w = Vector::from_tuples(4, vec![(0, 10), (1, 10)], |_, b| b).expect("w");
    let u = Vector::from_tuples(4, vec![(1, 1), (2, 1)], |_, b| b).expect("u");
    apply(&mut w, None, Some(binaryop::Plus), unaryop::Identity, &u, &Descriptor::default())
        .expect("apply");
    assert_eq!(w.extract_tuples(), vec![(0, 10), (1, 11), (2, 1)]);
}

#[test]
fn extreme_integer_types() {
    // u8 wrap-around through a semiring product.
    let a = Matrix::from_tuples(1, 1, vec![(0, 0, 200u8)], |_, b| b).expect("a");
    let u = Vector::from_tuples(1, vec![(0, 2u8)], |_, b| b).expect("u");
    let mut w = Vector::<u8>::new(1).expect("w");
    mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
    assert_eq!(w.get(0), Some(144)); // 400 mod 256

    // i8 min/max identities survive reduction.
    let v = Vector::from_tuples(3, vec![(0, i8::MIN), (2, i8::MAX)], |_, b| b).expect("v");
    assert_eq!(reduce_vector_scalar(&binaryop::Min, &v), i8::MIN);
    assert_eq!(reduce_vector_scalar(&binaryop::Max, &v), i8::MAX);
}

#[test]
fn nan_handling_in_min_plus() {
    let a = Matrix::from_tuples(2, 2, vec![(0, 0, f64::NAN), (0, 1, 1.0)], |_, b| b).expect("a");
    let u = Vector::from_tuples(2, vec![(0, 1.0), (1, 1.0)], |_, b| b).expect("u");
    let mut w = Vector::<f64>::new(2).expect("w");
    mxv(&mut w, None, NOACC, &MIN_PLUS, &a, &u, &Descriptor::default()).expect("mxv");
    // min(NaN + 1, 1 + 1) = 2: the NaN loses per the omit-NaN MIN policy.
    assert_eq!(w.get(0), Some(2.0));
}

#[test]
fn infinity_distances_behave() {
    let a = Matrix::from_tuples(2, 2, vec![(0, 1, f64::INFINITY)], |_, b| b).expect("a");
    let u = Vector::from_tuples(2, vec![(0, 0.0)], |_, b| b).expect("u");
    let mut w = Vector::<f64>::new(2).expect("w");
    vxm(&mut w, None, NOACC, &MIN_PLUS, &u, &a, &Descriptor::default()).expect("vxm");
    assert_eq!(w.get(1), Some(f64::INFINITY));
}

#[test]
fn self_loops_in_reachability() {
    let a = Matrix::from_tuples(2, 2, vec![(0, 0, true), (0, 1, true)], |_, b| b).expect("a");
    let q = Vector::from_tuples(2, vec![(0, true)], |_, b| b).expect("q");
    let mut next = Vector::<bool>::new(2).expect("next");
    vxm(&mut next, None, NOACC, &LOR_LAND, &q, &a, &Descriptor::default()).expect("vxm");
    assert_eq!(next.extract_tuples(), vec![(0, true), (1, true)]);
}

#[test]
fn deep_pending_chains_assemble_correctly() {
    // Many rounds of interleaved set/remove on the same positions.
    let mut m = Matrix::<i64>::new(16, 16).expect("m");
    for round in 0..50i64 {
        for k in 0..16usize {
            m.set_element(k, (k + round as usize) % 16, round).expect("set");
        }
        if round % 7 == 0 {
            m.wait();
        }
        if round % 3 == 0 {
            m.remove_element(0, round as usize % 16).expect("remove");
        }
    }
    // Invariants: all reads equal a straightforward model.
    let mut model = std::collections::BTreeMap::new();
    for round in 0..50i64 {
        for k in 0..16usize {
            model.insert((k, (k + round as usize) % 16), round);
        }
        if round % 3 == 0 {
            model.remove(&(0, round as usize % 16));
        }
    }
    let want: Vec<(usize, usize, i64)> = model.into_iter().map(|((i, j), v)| (i, j, v)).collect();
    assert_eq!(m.extract_tuples(), want);
}

#[test]
fn resize_grow_and_shrink_interleaved_with_ops() {
    let mut m = Matrix::from_tuples(3, 3, vec![(0, 0, 1.0), (2, 2, 2.0)], |_, b| b).expect("m");
    m.resize(5, 5).expect("grow");
    m.set_element(4, 4, 3.0).expect("set");
    assert_eq!(m.nvals(), 3);
    m.resize(2, 2).expect("shrink");
    assert_eq!(m.extract_tuples(), vec![(0, 0, 1.0)]);
    // Still fully operational after the churn.
    let mut c = Matrix::<f64>::new(2, 2).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &m, &m, &Descriptor::default()).expect("mxm");
    assert_eq!(c.get(0, 0), Some(1.0));
}

#[test]
fn vector_between_representations_under_ops() {
    // Walk a vector across the sparse/dense boundary repeatedly while
    // using it as an operand.
    let n = 64;
    let a = Matrix::from_tuples(n, n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect(), |_, b| b)
        .expect("ring");
    let mut v = Vector::<f64>::new(n).expect("v");
    v.set_element(0, 1.0).expect("seed");
    for step in 0..(2 * n) {
        let mut next = Vector::<f64>::new(n).expect("next");
        vxm(&mut next, None, NOACC, &PLUS_TIMES, &v, &a, &Descriptor::default()).expect("vxm");
        // Accumulate so density grows, then periodically thin out.
        let vsnap = v.clone();
        ewise_add(&mut v, None, NOACC, binaryop::Plus, &vsnap, &next, &Descriptor::default())
            .expect("accumulate");
        if step % 10 == 9 {
            let vs = v.clone();
            let mut thin = Vector::<f64>::new(n).expect("thin");
            select(
                &mut thin,
                None,
                NOACC,
                |i: Index, _: Index, _: f64| i.is_multiple_of(2),
                &vs,
                &Descriptor::default(),
            )
            .expect("select");
            v = thin;
        }
    }
    assert!(v.nvals() > 0);
}

#[test]
fn masked_everything_is_a_noop_on_empty_mask() {
    let a = Matrix::from_tuples(3, 3, vec![(0, 0, 1)], |_, b| b).expect("a");
    let empty_mask = Matrix::<bool>::new(3, 3).expect("mask");
    let mut c = Matrix::from_tuples(3, 3, vec![(1, 1, 9)], |_, b| b).expect("c");
    // Empty mask (no complement): nothing may be written; old C kept.
    apply_matrix(&mut c, Some(&empty_mask), NOACC, unaryop::Identity, &a, &Descriptor::default())
        .expect("apply");
    assert_eq!(c.extract_tuples(), vec![(1, 1, 9)]);
    // With replace: everything outside the (empty) mask is deleted.
    apply_matrix(
        &mut c,
        Some(&empty_mask),
        NOACC,
        unaryop::Identity,
        &a,
        &Descriptor::new().replace(),
    )
    .expect("apply");
    assert_eq!(c.nvals(), 0);
}

#[test]
fn kron_of_empty_is_empty() {
    let a = Matrix::from_tuples(2, 2, vec![(0, 0, 1)], |_, b| b).expect("a");
    let e = Matrix::<i32>::new(3, 3).expect("e");
    let mut c = Matrix::<i32>::new(6, 6).expect("c");
    kronecker(&mut c, None, NOACC, binaryop::Times, &a, &e, &Descriptor::default()).expect("kron");
    assert_eq!(c.nvals(), 0);
}

#[test]
fn concat_split_on_single_tile() {
    let a = Matrix::from_tuples(3, 3, vec![(1, 2, 5)], |_, b| b).expect("a");
    let c = concat(&[vec![&a]]).expect("concat");
    assert_eq!(c.extract_tuples(), a.extract_tuples());
    let tiles = split(&a, &[3], &[3]).expect("split");
    assert_eq!(tiles[0][0].extract_tuples(), a.extract_tuples());
}

#[test]
fn bool_semiring_arithmetic_is_saturating() {
    // PLUS on bool is OR (no wrap / no panic on "overflow").
    let v = Vector::from_tuples(3, vec![(0, true), (1, true), (2, true)], |_, b| b).expect("v");
    assert!(reduce_vector_scalar(&binaryop::Plus, &v));
    let a = Matrix::from_tuples(2, 2, vec![(0, 0, true), (0, 1, true)], |_, b| b).expect("a");
    let mut c = Matrix::<bool>::new(2, 2).expect("c");
    mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &a, &Descriptor::default()).expect("mxm");
    assert_eq!(c.get(0, 0), Some(true));
}

#[test]
fn hypersparse_promotion_boundary_is_strict() {
    // Promotion fires only when nvals < nmajor / HYPER_RATIO (strictly)
    // AND nmajor > HYPER_MIN_DIM (strictly). Both comparisons have been
    // `<`/`>` since the heuristic landed; an accidental `<=`/`>=` would
    // silently shift which graphs pay the hypersparse pointer overhead,
    // so this pins the exact boundary. With HYPER_RATIO = 16 and
    // HYPER_MIN_DIM = 4096: at 8192 rows the threshold is 512 entries.
    let n = 8192usize;
    let threshold = n / 16;

    // Exactly at the threshold: stays CSR.
    let at: Vec<(usize, usize, i32)> = (0..threshold).map(|i| (i, 0, 1)).collect();
    let m = Matrix::from_tuples(n, n, at, |_, b| b).expect("at-threshold");
    assert_eq!(m.format(), Format::Csr, "nvals == nmajor/HYPER_RATIO must NOT promote");

    // One below: promotes.
    let below: Vec<(usize, usize, i32)> = (0..threshold - 1).map(|i| (i, 0, 1)).collect();
    let m = Matrix::from_tuples(n, n, below, |_, b| b).expect("below-threshold");
    assert_eq!(m.format(), Format::HyperCsr, "nvals < nmajor/HYPER_RATIO must promote");

    // Dimension floor is strict too: exactly HYPER_MIN_DIM rows never
    // promotes, one more row does (with the same single entry).
    let m = Matrix::from_tuples(4096, 4096, vec![(0, 0, 1)], |_, b| b).expect("at-floor");
    assert_eq!(m.format(), Format::Csr, "nmajor == HYPER_MIN_DIM must NOT promote");
    let m = Matrix::from_tuples(4097, 4097, vec![(0, 0, 1)], |_, b| b).expect("above-floor");
    assert_eq!(m.format(), Format::HyperCsr, "nmajor > HYPER_MIN_DIM must promote");
}
