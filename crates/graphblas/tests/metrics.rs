//! Integration tests for the live-metrics registry: exact totals under
//! an 8-thread hammer, a line-by-line lint of the Prometheus text
//! exposition, the zero-overhead-when-off contract, memory accounting,
//! and the scrape endpoint.
//!
//! The metrics toggle and registry are process-wide, so every test takes
//! `GLOBALS` and restores the toggle to its prior state before exiting.

use graphblas::metrics::{self, MAX_SERIES};
use graphblas::{Matrix, Vector};
use proptest::prelude::*;
use std::sync::Mutex;

static GLOBALS: Mutex<()> = Mutex::new(());

/// RAII guard: metrics on for the test body, prior state restored after.
struct MetricsOn(bool);

impl MetricsOn {
    fn new() -> Self {
        let prev = metrics::enabled();
        metrics::set_enabled(true);
        MetricsOn(prev)
    }
}

impl Drop for MetricsOn {
    fn drop(&mut self) {
        metrics::set_enabled(self.0);
    }
}

// ---------------------------------------------------------------------------
// Concurrency: totals must be exact, not approximate
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 8 threads hammer one counter and one histogram through cloned
    /// handles. Striping distributes the writes, but the totals must
    /// come out exact: `value()` equals the sum of every `add`, and the
    /// histogram's count/sum equal the number and sum of observations.
    #[test]
    fn eight_thread_hammer_totals_are_exact(
        per_thread in proptest::collection::vec(1usize..400, 8),
        step in 1u64..64,
    ) {
        let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let _on = MetricsOn::new();
        let ctr = metrics::counter("test_hammer_total", "Concurrency-test counter.");
        let hist = metrics::histogram("test_hammer_values", "Concurrency-test histogram.");
        // Series persist across proptest cases; measure deltas.
        let (c0, h0, s0) = (ctr.value(), hist.count(), hist.sum());

        std::thread::scope(|scope| {
            for (tid, &ops) in per_thread.iter().enumerate() {
                let (ctr, hist) = (ctr.clone(), hist.clone());
                scope.spawn(move || {
                    for k in 0..ops {
                        ctr.inc();
                        ctr.add(step);
                        hist.observe((tid as u64 + 1) * step + k as u64);
                    }
                });
            }
        });

        let ops: usize = per_thread.iter().sum();
        let expect_sum: u64 = per_thread
            .iter()
            .enumerate()
            .flat_map(|(tid, &n)| (0..n).map(move |k| (tid as u64 + 1) * step + k as u64))
            .sum();
        prop_assert_eq!(ctr.value() - c0, ops as u64 * (1 + step));
        prop_assert_eq!(hist.count() - h0, ops as u64);
        prop_assert_eq!(hist.sum() - s0, expect_sum);
    }
}

#[test]
fn reregistration_returns_the_same_series() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let _on = MetricsOn::new();
    let a = metrics::counter("test_shared_series", "Shared-handle test counter.");
    let b = metrics::counter("test_shared_series", "Shared-handle test counter.");
    let before = a.value();
    b.add(7);
    assert_eq!(a.value(), before + 7, "both handles must address one series");
}

// ---------------------------------------------------------------------------
// Zero overhead when off
// ---------------------------------------------------------------------------

/// The when-off contract: a disabled registry performs **no writes at
/// all** — not "small" overhead, none. Counters, gauges, and histograms
/// must be bit-identical before and after a disabled hammer, and a full
/// registry snapshot must not move either.
#[test]
fn disabled_metrics_perform_no_writes() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let prev = metrics::enabled();
    let ctr = metrics::counter("test_off_counter", "When-off test counter.");
    let gauge = metrics::gauge("test_off_gauge", "When-off test gauge.");
    let hist = metrics::histogram("test_off_hist", "When-off test histogram.");

    metrics::set_enabled(true);
    ctr.add(3);
    gauge.set(1.5);
    hist.observe(100);

    metrics::set_enabled(false);
    let snap = metrics::snapshot();
    for _ in 0..10_000 {
        ctr.inc();
        ctr.add(99);
        gauge.set(42.0);
        gauge.set_max(1e9);
        hist.observe(12345);
    }
    assert_eq!(ctr.value(), 3, "disabled counter must not move");
    assert_eq!(gauge.value(), 1.5, "disabled gauge must not move");
    assert_eq!((hist.count(), hist.sum()), (1, 100), "disabled histogram must not move");
    assert_eq!(metrics::snapshot(), snap, "no series may move while disabled");

    metrics::set_enabled(prev);
}

// ---------------------------------------------------------------------------
// Exposition lint: the page a scraper sees must be well-formed
// ---------------------------------------------------------------------------

/// Line-by-line lint of a Prometheus text-format (0.0.4) page:
///
/// - `# HELP`/`# TYPE` precede a family's samples, one contiguous block
///   per family, at most one TYPE per name;
/// - every sample's base name is registered by a TYPE line (histogram
///   `_bucket`/`_sum`/`_count` resolve to their family);
/// - no duplicate `name{labels}` series;
/// - names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values are quoted
///   with `"` and `\` escaped, values parse as `f64`/`+Inf`/`-Inf`/`NaN`;
/// - histogram buckets are cumulative and end in `+Inf` == `_count`.
fn lint_exposition(page: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut typed: std::collections::BTreeMap<&str, &str> = Default::default();
    let mut seen_series: std::collections::BTreeSet<String> = Default::default();
    // (family, labels-sans-le) -> (last cumulative count, saw +Inf)
    let mut open_buckets: std::collections::BTreeMap<String, (u64, bool)> = Default::default();
    let mut counts: std::collections::BTreeMap<String, u64> = Default::default();

    for (no, line) in page.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg} | {line}", no + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let (kw, name) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !valid_name(name) {
                return err(format!("bad metric name {name:?} in comment"));
            }
            match kw {
                "HELP" => {}
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return err(format!("unknown type {kind:?}"));
                    }
                    if typed.insert(name, kind).is_some() {
                        return err(format!("duplicate TYPE for {name}"));
                    }
                }
                _ => return err(format!("unknown comment keyword {kw:?}")),
            }
            continue;
        }
        // Sample: name[{labels}] value
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_name(name) {
            return err(format!("bad metric name {name:?}"));
        }
        let rest = &line[name_end..];
        let (labels, value) = if let Some(l) = rest.strip_prefix('{') {
            let close = l.find('}').ok_or_else(|| format!("line {}: unclosed labels", no + 1))?;
            // Labels must be name="value" pairs with escaped quotes.
            for pair in split_labels(&l[..close]) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad label pair {pair:?}", no + 1))?;
                if !valid_name(k) {
                    return err(format!("bad label name {k:?}"));
                }
                let inner = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: unquoted label value {v:?}", no + 1))?;
                let mut chars = inner.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' if !matches!(chars.next(), Some('\\' | '"' | 'n')) => {
                            return err("bad escape in label value".into());
                        }
                        '"' | '\n' => return err("unescaped quote/newline in label value".into()),
                        _ => {}
                    }
                }
            }
            (&l[..close], l[close + 1..].trim())
        } else {
            ("", rest.trim())
        };
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return err(format!("unparseable value {value:?}"));
        }

        // Resolve histogram sample suffixes to the family that typed them.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suf| name.strip_suffix(suf))
            .find(|base| typed.get(base) == Some(&"histogram"))
            .unwrap_or(name);
        if !typed.contains_key(family) {
            return err(format!("sample for unregistered family {family:?}"));
        }
        if !seen_series.insert(format!("{name}{{{labels}}}")) {
            return err("duplicate series".into());
        }

        if typed.get(family) == Some(&"histogram") && family != name {
            let sans_le: Vec<&str> =
                split_labels(labels).into_iter().filter(|p| !p.starts_with("le=")).collect();
            let key = format!("{family}{{{}}}", sans_le.join(","));
            let n: u64 =
                if value == "+Inf" { u64::MAX } else { value.parse::<f64>().unwrap() as u64 };
            if name.ends_with("_bucket") {
                let entry = open_buckets.entry(key).or_insert((0, false));
                if n < entry.0 {
                    return err("histogram buckets must be cumulative".into());
                }
                *entry = (n, entry.1 || split_labels(labels).contains(&"le=\"+Inf\""));
            } else if name.ends_with("_count") {
                counts.insert(key, n);
            }
        }
    }
    for (key, (last, saw_inf)) in &open_buckets {
        if !saw_inf {
            return Err(format!("{key}: histogram lacks a +Inf bucket"));
        }
        if counts.get(key) != Some(last) {
            return Err(format!("{key}: +Inf bucket != _count"));
        }
    }
    Ok(())
}

/// Split a label block on commas outside quoted values.
fn split_labels(block: &str) -> Vec<&str> {
    let (mut out, mut depth, mut start, mut esc) = (Vec::new(), false, 0, false);
    for (i, c) in block.char_indices() {
        match c {
            _ if esc => esc = false,
            '\\' => esc = true,
            '"' => depth = !depth,
            ',' if !depth => {
                out.push(&block[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < block.len() {
        out.push(&block[start..]);
    }
    out
}

#[test]
fn rendered_page_passes_the_exposition_lint() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let _on = MetricsOn::new();
    // A spread of shapes: bare counter, labeled counters, gauge with an
    // awkward value, scaled histogram with observations, empty histogram.
    metrics::counter("test_lint_total", "Lint: bare counter.").add(3);
    metrics::counter_with("test_lint_by_kind_total", "Lint: labeled.", &[("kind", "a")]).inc();
    metrics::counter_with("test_lint_by_kind_total", "Lint: labeled.", &[("kind", "b \"q\"")])
        .inc();
    metrics::gauge("test_lint_gauge", "Lint: gauge.").set(-0.125);
    let h = metrics::histogram_scaled("test_lint_seconds", "Lint: scaled histogram.", &[], 1e-9);
    for v in [1u64, 900, 30_000, 2_000_000, u64::MAX] {
        h.observe(v);
    }
    metrics::histogram("test_lint_empty", "Lint: empty histogram.");

    let page = metrics::render();
    lint_exposition(&page).expect("render() must produce a lintable page");

    // And the lint must actually have teeth.
    assert!(lint_exposition("bad name{x=\"1\"} 1\n").is_err(), "unregistered family accepted");
    assert!(lint_exposition("# TYPE a counter\na 1\na 2\n").is_err(), "duplicate series accepted");
    assert!(
        lint_exposition("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n")
            .is_err(),
        "non-cumulative buckets accepted"
    );
}

#[test]
fn cardinality_cap_detaches_instead_of_growing() {
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let _on = MetricsOn::new();
    let labels: Vec<String> = (0..MAX_SERIES + 8).map(|i| i.to_string()).collect();
    for l in &labels {
        metrics::counter_with("test_lint_cap_total", "Lint: cardinality cap.", &[("id", l)]).inc();
    }
    let n =
        metrics::snapshot().iter().filter(|(k, _)| k.starts_with("test_lint_cap_total")).count();
    assert!(n <= MAX_SERIES, "family exceeded MAX_SERIES: {n}");
    lint_exposition(&metrics::render()).expect("page must stay lintable at the cap");
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

#[test]
fn matrix_and_vector_memory_usage_track_storage() {
    let n = 256;
    let mut m = Matrix::<f64>::new(n, n).expect("matrix");
    for i in 0..n {
        m.set_element(i, (i * 7 + 1) % n, i as f64).expect("set");
    }
    m.wait();
    let mu = m.memory_usage();
    assert!(mu.val_bytes >= n * std::mem::size_of::<f64>(), "values under-counted: {mu:?}");
    assert!(mu.ptr_bytes > 0 && mu.idx_bytes > 0, "CSR pointers/indices missing: {mu:?}");
    assert_eq!(mu.pending_bytes, 0, "assembled matrix reports pending bytes");
    assert_eq!(mu.total(), mu.ptr_bytes + mu.idx_bytes + mu.val_bytes);

    // Pending tuples are accounted before assembly.
    m.set_element(0, 0, 1.0).expect("set");
    assert!(m.memory_usage().pending_bytes > 0, "pending tuple not accounted");
    m.wait();

    // A dense vector must dwarf a 2-element sparse one at the same size.
    let mut sparse = Vector::<f64>::new(1 << 14).expect("vector");
    sparse.set_element(3, 1.0).expect("set");
    sparse.set_element(9, 2.0).expect("set");
    sparse.wait();
    let mut dense = Vector::<f64>::new(1 << 14).expect("vector");
    for i in 0..1 << 14 {
        dense.set_element(i, i as f64).expect("set");
    }
    dense.wait();
    assert!(
        dense.memory_usage().total() > 8 * sparse.memory_usage().total(),
        "dense {} vs sparse {}",
        dense.memory_usage().total(),
        sparse.memory_usage().total()
    );
}

// ---------------------------------------------------------------------------
// Scrape endpoint
// ---------------------------------------------------------------------------

#[test]
fn endpoint_serves_metrics_health_and_404() {
    use std::io::{Read as _, Write as _};
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let _on = MetricsOn::new();
    metrics::counter("test_endpoint_total", "Endpoint test counter.").inc();
    let addr = metrics::serve("127.0.0.1:0").expect("bind");

    let get = |path: &str| -> (String, String) {
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
        let mut resp = String::new();
        conn.read_to_string(&mut resp).expect("read");
        let (head, body) = resp.split_once("\r\n\r\n").expect("split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("version=0.0.4"), "missing exposition version: {head}");
    assert!(body.contains("test_endpoint_total 1"), "scrape missing counter");
    lint_exposition(&body).expect("served page must lint");

    let (head, body) = get("/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, _) = get("/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
}
