//! Multi-threaded stress tests for the deferred-update entry points:
//! `set_element_sync` / `remove_element_sync` interleaved with concurrent
//! assemblies must leave the matrix in exactly the state a sequential
//! replay produces, bit for bit.

use graphblas::{Index, Matrix};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;

/// One thread's scripted mutation stream. Coordinates are confined to the
/// thread's own row stripe (`row % THREADS == tid`), so streams commute:
/// any interleaving must converge to the sequential replay's state.
#[derive(Clone, Copy)]
enum Op {
    Set(Index, Index, f64),
    Remove(Index, Index),
}

/// Deterministic per-thread script: a churn of inserts, overwrites and
/// deletes inside the thread's stripe. `xorshift`-style mixing keeps it
/// cheap and reproducible without any RNG dependency.
fn script(tid: usize, n: Index, ops: usize) -> Vec<Op> {
    let mut state = (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut out = Vec::with_capacity(ops);
    for k in 0..ops {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let stripe_rows = n / THREADS;
        let i = tid + THREADS * (state as usize % stripe_rows);
        let j = (state >> 32) as usize % n;
        // Mostly inserts with periodic deletions, including deletions of
        // never-inserted coordinates (must be no-ops both ways).
        if k % 5 == 4 {
            out.push(Op::Remove(i, j));
        } else {
            out.push(Op::Set(i, j, (tid * ops + k) as f64));
        }
    }
    out
}

fn apply_sequential(m: &mut Matrix<f64>, scripts: &[Vec<Op>]) {
    for s in scripts {
        for &op in s {
            match op {
                Op::Set(i, j, x) => m.set_element(i, j, x).expect("seq set"),
                Op::Remove(i, j) => m.remove_element(i, j).expect("seq remove"),
            }
        }
    }
}

#[test]
fn eight_thread_interleaved_updates_match_sequential_oracle() {
    let n: Index = 64;
    let ops = 2_000;
    let scripts: Vec<Vec<Op>> = (0..THREADS).map(|t| script(t, n, ops)).collect();

    // Sequential oracle.
    let mut oracle = Matrix::<f64>::new(n, n).expect("oracle");
    apply_sequential(&mut oracle, &scripts);
    oracle.wait();

    // Concurrent run: 8 writers race through the same scripts via the
    // `_sync` entry points while assemblies fire underneath them.
    let m = Arc::new(Matrix::<f64>::new(n, n).expect("matrix"));
    let start = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for s in &scripts {
            let m = Arc::clone(&m);
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for (k, &op) in s.iter().enumerate() {
                    match op {
                        Op::Set(i, j, x) => m.set_element_sync(i, j, x).expect("set"),
                        Op::Remove(i, j) => m.remove_element_sync(i, j).expect("remove"),
                    }
                    // Periodically force a full assembly *while the other
                    // seven threads are still writing*: updates deferred
                    // after the assembly cut must survive it.
                    if k % 503 == 502 {
                        m.wait();
                    }
                }
            });
        }
    });
    m.wait();

    assert_eq!(m.nvals(), oracle.nvals(), "entry counts diverged");
    let got = m.extract_tuples();
    let want = oracle.extract_tuples();
    assert_eq!(got, want, "concurrent result is not bit-for-bit the sequential state");
}

#[test]
fn readers_see_consistent_states_during_churn() {
    // Writers churn one stripe each while readers hammer `nvals`/`get`,
    // forcing assemblies to race with deferred updates. Readers must only
    // ever observe values some prefix of the writer's stream produced —
    // for this script, the per-cell value sequence is monotone increasing,
    // so any decrease would expose a torn assembly.
    let n: Index = 32;
    let m = Arc::new(Matrix::<f64>::new(n, n).expect("matrix"));
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4;

    std::thread::scope(|scope| {
        for t in 0..writers {
            let m = Arc::clone(&m);
            scope.spawn(move || {
                for round in 0..400u64 {
                    for j in 0..n {
                        m.set_element_sync(t, j, round as f64).expect("set");
                    }
                }
            });
        }
        for _ in 0..(THREADS - writers) {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last = vec![-1.0f64; writers];
                while !stop.load(SeqCst) {
                    let _ = m.nvals(); // forces an assembly
                    for (t, slot) in last.iter_mut().enumerate() {
                        if let Some(v) = m.get(t, 7) {
                            assert!(v >= *slot, "cell ({t},7) went backwards: {v} after {slot}");
                            *slot = v;
                        }
                    }
                }
            });
        }
        // Writer handles finish when their loops end; readers poll until
        // told to stop. Scope join order: spawn a small watchdog that
        // flips `stop` once writers are done.
        let m2 = Arc::clone(&m);
        let stop2 = Arc::clone(&stop);
        scope.spawn(move || {
            // Wait until every writer's final value is visible.
            loop {
                m2.wait();
                let done = (0..writers).all(|t| m2.get(t, n - 1) == Some(399.0));
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            stop2.store(true, SeqCst);
        });
    });

    m.wait();
    assert_eq!(m.nvals(), writers * n);
    for t in 0..writers {
        for j in 0..n {
            assert_eq!(m.get(t, j), Some(399.0));
        }
    }
}
