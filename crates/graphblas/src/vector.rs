//! The opaque `GrB_Vector` object.
//!
//! Following the GraphBLAST design the paper highlights (Fig. 3), a vector
//! is stored **sparse** (sorted indices + values — the form "push"
//! kernels iterate), **dense** (a value array plus presence bytes — the
//! form "pull" kernels index in O(1)), or **bitmap** (a value array plus
//! packed presence words — the mid-density compromise: O(1) probes like
//! dense at an 8× smaller presence footprint, population counts by
//! `popcnt`). The representation switches automatically as the number of
//! entries crosses density thresholds (with hysteresis between the
//! neighboring forms), which is the enabling mechanism for push/pull
//! direction optimization.
//!
//! Like [`crate::Matrix`], sparse vectors support deferred updates (pending
//! tuples and zombies) resolved by a lazy assembly step.

use parking_lot::{RwLock, RwLockReadGuard};

use crate::error::{Error, Result};
use crate::matrix::{unflip, ZOMBIE};
use crate::types::{Index, Scalar};

/// Become dense when more than 1/DENSIFY_RATIO of positions are filled.
const DENSIFY_RATIO: usize = 4;
/// A sparse vector becomes a bitmap when more than 1/BITMAPIFY_RATIO of
/// positions are filled (but fewer than the dense threshold).
const BITMAPIFY_RATIO: usize = 16;
/// Become sparse when fewer than 1/SPARSIFY_RATIO are filled. The gap
/// between this and BITMAPIFY_RATIO is the hysteresis band that stops a
/// frontier oscillating between forms across iterations.
const SPARSIFY_RATIO: usize = 32;
/// Never allocate a dense or bitmap form longer than this.
const DENSE_LIMIT: usize = 1 << 26;

/// The representation currently held by a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorFormat {
    /// Sorted index/value lists.
    Sparse,
    /// Full-length value array with packed presence words — the
    /// mid-density frontier form between [`VectorFormat::Sparse`] and
    /// [`VectorFormat::Dense`].
    Bitmap,
    /// Full-length value array with a presence bitmap.
    Dense,
}

/// Number of `u64` presence words covering `n` positions.
#[inline]
fn bitmap_words(n: usize) -> usize {
    n.div_ceil(64)
}

/// Test bit `i` of a packed presence array.
#[inline]
pub(crate) fn bitmap_get(bits: &[u64], i: Index) -> bool {
    (bits[i >> 6] >> (i & 63)) & 1 == 1
}

#[derive(Debug, Clone)]
pub(crate) enum VStore<T> {
    Sparse {
        /// Sorted indices; zombie entries carry the flag bit.
        idx: Vec<Index>,
        val: Vec<T>,
    },
    Bitmap {
        val: Vec<T>,
        /// Packed presence words, little-endian within each `u64`.
        bits: Vec<u64>,
        nvals: usize,
    },
    Dense {
        val: Vec<T>,
        present: Vec<bool>,
        nvals: usize,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct VInner<T> {
    pub n: Index,
    pub store: VStore<T>,
    pub pending: Vec<(Index, T)>,
    pub nzombies: usize,
}

/// A borrowed, assembled view of a vector's contents, consumed by kernels.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VView<'a, T> {
    Sparse(&'a [Index], &'a [T]),
    Bitmap(&'a [T], &'a [u64]),
    Dense(&'a [T], &'a [bool]),
}

impl<'a, T: Scalar> VView<'a, T> {
    #[allow(dead_code)]
    pub fn nvals(&self) -> usize {
        match self {
            VView::Sparse(idx, _) => idx.len(),
            VView::Bitmap(_, bits) => bits.iter().map(|w| w.count_ones() as usize).sum(),
            VView::Dense(_, present) => present.iter().filter(|&&p| p).count(),
        }
    }

    /// O(1) for dense and bitmap, O(log nvals) for sparse.
    pub fn get(&self, i: Index) -> Option<T> {
        match self {
            VView::Sparse(idx, val) => idx.binary_search(&i).ok().map(|p| val[p]),
            VView::Bitmap(val, bits) => bitmap_get(bits, i).then(|| val[i]),
            VView::Dense(val, present) => present[i].then(|| val[i]),
        }
    }

    /// Visit entries in increasing index order.
    pub fn for_each(&self, mut f: impl FnMut(Index, T)) {
        match self {
            VView::Sparse(idx, val) => {
                for (&i, &v) in idx.iter().zip(val.iter()) {
                    f(i, v);
                }
            }
            VView::Bitmap(val, bits) => {
                // Word-at-a-time scan: empty words cost one test, set bits
                // are walked by trailing_zeros / clear-lowest.
                for (w, &word) in bits.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let i = (w << 6) | word.trailing_zeros() as usize;
                        f(i, val[i]);
                        word &= word - 1;
                    }
                }
            }
            VView::Dense(val, present) => {
                for (i, (&v, &p)) in val.iter().zip(present.iter()).enumerate() {
                    if p {
                        f(i, v);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dense scatter accumulator
// ---------------------------------------------------------------------------

/// State of one accumulator slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Never touched this generation.
    Empty,
    /// Holds an accumulated value.
    Active,
    /// Known mask-excluded: probed once, skip all later contributions.
    Blocked,
}

thread_local! {
    /// Reusable stamp arrays (paired with the last generation they used),
    /// so repeated scatter calls on one worker thread skip the O(n) zero
    /// fill. Values arrays are *not* pooled — they are type-erased per call.
    static STAMP_POOL: std::cell::RefCell<Vec<(Vec<u32>, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}
const STAMP_POOL_LIMIT: usize = 4;

/// A stamped dense accumulator for scatter (saxpy) kernels.
///
/// Instead of clearing `n` slots per use, each slot carries a generation
/// stamp: `stamp[j] == gen` means active, `gen + 1` means blocked by the
/// mask, anything else means empty. Generations step by 2 so the blocked
/// marker of one round can never alias the active marker of the next, and
/// [`DenseAcc::begin`] makes per-row reuse (Gustavson) O(touched) instead
/// of O(n). On drop the stamp array returns to a thread-local pool.
pub(crate) struct DenseAcc<T> {
    val: Vec<T>,
    stamp: Vec<u32>,
    gen: u32,
    touched: Vec<Index>,
}

impl<T: Scalar> DenseAcc<T> {
    pub fn new(n: usize) -> Self {
        let (mut stamp, last_gen) =
            STAMP_POOL.with(|p| p.borrow_mut().pop()).unwrap_or((Vec::new(), 0));
        // Leave room for the blocked marker (gen + 1) and one begin() step
        // before wrapping; on wrap, re-zero so stale stamps cannot collide.
        let gen = if last_gen > u32::MAX - 4 {
            stamp.clear();
            2
        } else {
            last_gen + 2
        };
        stamp.resize(n, 0);
        DenseAcc { val: vec![T::zero(); n], stamp, gen, touched: Vec::new() }
    }

    /// Start a fresh round over the same allocation (per-row reuse).
    pub fn begin(&mut self) {
        if self.gen > u32::MAX - 4 {
            self.stamp.fill(0);
            self.gen = 2;
        } else {
            self.gen += 2;
        }
        self.touched.clear();
    }

    #[inline]
    pub fn slot(&self, j: Index) -> Slot {
        let s = self.stamp[j];
        if s == self.gen {
            Slot::Active
        } else if s == self.gen + 1 {
            Slot::Blocked
        } else {
            Slot::Empty
        }
    }

    /// First write to an empty slot.
    #[inline]
    pub fn insert(&mut self, j: Index, v: T) {
        self.stamp[j] = self.gen;
        self.val[j] = v;
        self.touched.push(j);
    }

    /// Mark a slot mask-excluded for the rest of this round.
    #[inline]
    pub fn block(&mut self, j: Index) {
        self.stamp[j] = self.gen + 1;
    }

    /// Value of an `Active` slot.
    #[inline]
    pub fn value(&self, j: Index) -> T {
        self.val[j]
    }

    /// Overwrite an `Active` slot.
    #[inline]
    pub fn set(&mut self, j: Index, v: T) {
        self.val[j] = v;
    }

    /// Indices inserted this round, in first-touch order.
    pub fn touched(&self) -> &[Index] {
        &self.touched
    }

    pub fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }

    /// Consume this round: sorted indices plus their values.
    pub fn drain_sorted(&mut self) -> (Vec<Index>, Vec<T>) {
        self.touched.sort_unstable();
        let idx = std::mem::take(&mut self.touched);
        let val = idx.iter().map(|&j| self.val[j]).collect();
        (idx, val)
    }
}

impl<T> Drop for DenseAcc<T> {
    fn drop(&mut self) {
        let stamp = std::mem::take(&mut self.stamp);
        let gen = self.gen;
        STAMP_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < STAMP_POOL_LIMIT {
                pool.push((stamp, gen));
            }
        });
    }
}

impl<T: Scalar> VInner<T> {
    fn needs_assembly(&self) -> bool {
        !self.pending.is_empty() || self.nzombies > 0
    }

    /// Resident bytes of the current state, without forcing assembly.
    /// `idx_bytes` covers whatever presence structure the form carries:
    /// sorted indices (sparse), packed presence words (bitmap), or the
    /// presence flags (dense).
    fn memory_usage(&self) -> crate::MemoryUsage {
        fn vb<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        let (idx_bytes, val_bytes) = match &self.store {
            VStore::Sparse { idx, val } => (vb(idx), vb(val)),
            VStore::Bitmap { val, bits, .. } => (vb(bits), vb(val)),
            VStore::Dense { val, present, .. } => (vb(present), vb(val)),
        };
        crate::MemoryUsage {
            ptr_bytes: 0,
            idx_bytes,
            val_bytes,
            pending_bytes: vb(&self.pending),
            dual_bytes: 0,
        }
    }

    pub(crate) fn assemble(&mut self) {
        if !self.needs_assembly() {
            return;
        }
        let mut span = crate::trace::assemble_span(
            crate::trace::Op::AssembleVector,
            self.pending.len(),
            self.nzombies,
        );
        self.pending.sort_by_key(|&(i, _)| i);
        let mut pend = std::mem::take(&mut self.pending);
        pend.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        self.nzombies = 0;
        if let VStore::Sparse { idx, val } = &self.store {
            // Merge chunks over the index domain: each worker locates its
            // slice of the stored entries and the pending list by binary
            // search (both sorted), so chunk-order stitching reproduces
            // the sequential merge exactly.
            let n = self.n;
            let chunks = crate::parallel::par_chunks(n, idx.len() + pend.len(), |r| {
                let (sa, sb) = (
                    idx.partition_point(|&j| unflip(j) < r.start),
                    idx.partition_point(|&j| unflip(j) < r.end),
                );
                let (pa, pb) = (
                    pend.partition_point(|p| p.0 < r.start),
                    pend.partition_point(|p| p.0 < r.end),
                );
                let (idx, val) = (&idx[sa..sb], &val[sa..sb]);
                let mut out_i = Vec::with_capacity(idx.len() + (pb - pa));
                let mut out_v = Vec::with_capacity(idx.len() + (pb - pa));
                let mut pi = pend[pa..pb].iter().peekable();
                for (&j, &x) in idx.iter().zip(val.iter()) {
                    while let Some(&&(pj, px)) = pi.peek() {
                        if pj < unflip(j) {
                            out_i.push(pj);
                            out_v.push(px);
                            pi.next();
                        } else {
                            break;
                        }
                    }
                    let is_zombie = j & ZOMBIE != 0;
                    if let Some(&&(pj, px)) = pi.peek() {
                        if pj == unflip(j) {
                            out_i.push(pj);
                            out_v.push(px);
                            pi.next();
                            continue;
                        }
                    }
                    if !is_zombie {
                        out_i.push(j);
                        out_v.push(x);
                    }
                }
                for &(pj, px) in pi {
                    out_i.push(pj);
                    out_v.push(px);
                }
                (out_i, out_v)
            });
            let mut out_i = Vec::with_capacity(idx.len() + pend.len());
            let mut out_v = Vec::with_capacity(idx.len() + pend.len());
            for (ci, cv) in chunks {
                out_i.extend(ci);
                out_v.extend(cv);
            }
            self.store = VStore::Sparse { idx: out_i, val: out_v };
        }
        self.optimize_form();
        if span.on() {
            span.arg("resident_bytes", self.memory_usage().total() as u64);
        }
    }

    /// Pick the representation the current density calls for. The
    /// promotion thresholds (sparse → bitmap at 1/16, anything → dense at
    /// 1/4) sit above the demotion threshold (→ sparse below 1/32), so a
    /// frontier whose size hovers near a boundary does not thrash.
    pub(crate) fn optimize_form(&mut self) {
        debug_assert!(!self.needs_assembly());
        let n = self.n;
        match &self.store {
            VStore::Sparse { idx, .. } => {
                if n <= DENSE_LIMIT && idx.len() * DENSIFY_RATIO >= n && n > 0 {
                    self.densify();
                } else if n <= DENSE_LIMIT && idx.len() * BITMAPIFY_RATIO >= n && n > 0 {
                    self.bitmapify();
                }
            }
            VStore::Bitmap { nvals, .. } => {
                if *nvals * DENSIFY_RATIO >= n {
                    self.densify();
                } else if nvals * SPARSIFY_RATIO < n {
                    self.sparsify();
                }
            }
            VStore::Dense { nvals, .. } => {
                if nvals * SPARSIFY_RATIO < n {
                    self.sparsify();
                }
            }
        }
    }

    fn densify(&mut self) {
        match &mut self.store {
            VStore::Sparse { idx, val } => {
                let mut dval = vec![T::zero(); self.n];
                let mut present = vec![false; self.n];
                for (&i, &v) in idx.iter().zip(val.iter()) {
                    dval[i] = v;
                    present[i] = true;
                }
                let nvals = idx.len();
                self.store = VStore::Dense { val: dval, present, nvals };
            }
            VStore::Bitmap { val, bits, nvals } => {
                // Values are already full-length: move them, unpack bits.
                let mut present = vec![false; self.n];
                for (i, p) in present.iter_mut().enumerate() {
                    *p = bitmap_get(bits, i);
                }
                let val = std::mem::take(val);
                let nvals = *nvals;
                self.store = VStore::Dense { val, present, nvals };
            }
            VStore::Dense { .. } => {}
        }
    }

    fn bitmapify(&mut self) {
        if let VStore::Sparse { idx, val } = &self.store {
            let mut bval = vec![T::zero(); self.n];
            let mut bits = vec![0u64; bitmap_words(self.n)];
            for (&i, &v) in idx.iter().zip(val.iter()) {
                bval[i] = v;
                bits[i >> 6] |= 1 << (i & 63);
            }
            let nvals = idx.len();
            self.store = VStore::Bitmap { val: bval, bits, nvals };
        }
    }

    fn sparsify(&mut self) {
        let mut idx = Vec::new();
        let mut sval = Vec::new();
        self.view().for_each(|i, v| {
            idx.push(i);
            sval.push(v);
        });
        self.store = VStore::Sparse { idx, val: sval };
    }

    pub(crate) fn view(&self) -> VView<'_, T> {
        debug_assert!(!self.needs_assembly());
        match &self.store {
            VStore::Sparse { idx, val } => VView::Sparse(idx, val),
            VStore::Bitmap { val, bits, .. } => VView::Bitmap(val, bits),
            VStore::Dense { val, present, .. } => VView::Dense(val, present),
        }
    }

    pub(crate) fn nvals_assembled(&self) -> usize {
        debug_assert!(!self.needs_assembly());
        match &self.store {
            VStore::Sparse { idx, .. } => idx.len(),
            VStore::Bitmap { nvals, .. } => *nvals,
            VStore::Dense { nvals, .. } => *nvals,
        }
    }
}

/// An opaque GraphBLAS vector over the scalar domain `T`.
#[derive(Debug)]
pub struct Vector<T: Scalar> {
    pub(crate) inner: RwLock<VInner<T>>,
}

impl<T: Scalar> Clone for Vector<T> {
    fn clone(&self) -> Self {
        Vector { inner: RwLock::new(self.inner.read().clone()) }
    }
}

impl<T: Scalar> Vector<T> {
    /// Create an empty vector of length `n` (`GrB_Vector_new`).
    pub fn new(n: Index) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid("vector size must be >= 1"));
        }
        Ok(Vector {
            inner: RwLock::new(VInner {
                n,
                store: VStore::Sparse { idx: Vec::new(), val: Vec::new() },
                pending: Vec::new(),
                nzombies: 0,
            }),
        })
    }

    /// Create and build from `(index, value)` tuples; duplicates combined
    /// with `dup(existing, incoming)`.
    pub fn from_tuples(
        n: Index,
        mut tuples: Vec<(Index, T)>,
        mut dup: impl FnMut(T, T) -> T,
    ) -> Result<Self> {
        let v = Vector::new(n)?;
        for &(i, _) in &tuples {
            if i >= n {
                return Err(Error::oob(i, n));
            }
        }
        tuples.sort_by_key(|&(i, _)| i);
        let mut idx: Vec<Index> = Vec::with_capacity(tuples.len());
        let mut val: Vec<T> = Vec::with_capacity(tuples.len());
        for (i, x) in tuples {
            if idx.last() == Some(&i) {
                let last = val.last_mut().expect("parallel arrays");
                *last = dup(*last, x);
            } else {
                idx.push(i);
                val.push(x);
            }
        }
        {
            let mut g = v.inner.write();
            g.store = VStore::Sparse { idx, val };
            g.optimize_form();
        }
        Ok(v)
    }

    /// Create a fully dense vector holding `value` at every position — the
    /// usual starting point for PageRank-style iterations.
    pub fn dense(n: Index, value: T) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid("vector size must be >= 1"));
        }
        if n > DENSE_LIMIT {
            return Err(Error::invalid("dense vector too large"));
        }
        Ok(Vector {
            inner: RwLock::new(VInner {
                n,
                store: VStore::Dense { val: vec![value; n], present: vec![true; n], nvals: n },
                pending: Vec::new(),
                nzombies: 0,
            }),
        })
    }

    /// Length of the vector (`GrB_Vector_size`).
    pub fn size(&self) -> Index {
        self.inner.read().n
    }

    /// Number of stored entries; forces completion of deferred updates.
    pub fn nvals(&self) -> usize {
        self.read().nvals_assembled()
    }

    /// The current representation.
    pub fn vector_format(&self) -> VectorFormat {
        match &self.inner.read().store {
            VStore::Sparse { .. } => VectorFormat::Sparse,
            VStore::Bitmap { .. } => VectorFormat::Bitmap,
            VStore::Dense { .. } => VectorFormat::Dense,
        }
    }

    /// Force completion of deferred updates (`GrB_Vector_wait`).
    pub fn wait(&self) {
        self.inner.write().assemble();
    }

    /// Resident heap footprint of the vector, by component — the vector
    /// analogue of [`crate::Matrix::memory_usage`]. `idx_bytes` reports
    /// the form's presence structure (sparse indices, bitmap words, or
    /// dense presence flags). Does not force assembly.
    pub fn memory_usage(&self) -> crate::MemoryUsage {
        self.inner.read().memory_usage()
    }

    /// Set one entry (`GrB_Vector_setElement`).
    pub fn set_element(&mut self, i: Index, x: T) -> Result<()> {
        let inner = self.inner.get_mut();
        if i >= inner.n {
            return Err(Error::oob(i, inner.n));
        }
        match &mut inner.store {
            VStore::Dense { val, present, nvals } => {
                if !present[i] {
                    *nvals += 1;
                }
                val[i] = x;
                present[i] = true;
            }
            VStore::Bitmap { val, bits, nvals } => {
                if !bitmap_get(bits, i) {
                    *nvals += 1;
                    bits[i >> 6] |= 1 << (i & 63);
                }
                val[i] = x;
            }
            VStore::Sparse { idx, val } => match idx.binary_search_by_key(&i, |&x| unflip(x)) {
                Ok(p) => {
                    if idx[p] & ZOMBIE != 0 {
                        idx[p] = i;
                        inner.nzombies -= 1;
                    }
                    val[p] = x;
                }
                Err(_) => inner.pending.push((i, x)),
            },
        }
        Ok(())
    }

    /// Remove one entry (`GrB_Vector_removeElement`); no-op if absent.
    pub fn remove_element(&mut self, i: Index) -> Result<()> {
        let inner = self.inner.get_mut();
        if i >= inner.n {
            return Err(Error::oob(i, inner.n));
        }
        if !inner.pending.is_empty() {
            inner.pending.retain(|&(pi, _)| pi != i);
        }
        match &mut inner.store {
            VStore::Dense { present, nvals, .. } => {
                if present[i] {
                    present[i] = false;
                    *nvals -= 1;
                }
            }
            VStore::Bitmap { bits, nvals, .. } => {
                if bitmap_get(bits, i) {
                    bits[i >> 6] &= !(1 << (i & 63));
                    *nvals -= 1;
                }
            }
            VStore::Sparse { idx, .. } => {
                if let Ok(p) = idx.binary_search_by_key(&i, |&x| unflip(x)) {
                    if idx[p] & ZOMBIE == 0 {
                        idx[p] |= ZOMBIE;
                        inner.nzombies += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Read one entry; [`Error::NoValue`] if absent.
    pub fn extract_element(&self, i: Index) -> Result<T> {
        let inner = self.inner.read();
        if i >= inner.n {
            return Err(Error::oob(i, inner.n));
        }
        for &(pi, px) in inner.pending.iter().rev() {
            if pi == i {
                return Ok(px);
            }
        }
        match &inner.store {
            VStore::Dense { val, present, .. } => {
                if present[i] {
                    Ok(val[i])
                } else {
                    Err(Error::NoValue)
                }
            }
            VStore::Bitmap { val, bits, .. } => {
                if bitmap_get(bits, i) {
                    Ok(val[i])
                } else {
                    Err(Error::NoValue)
                }
            }
            VStore::Sparse { idx, val } => match idx.binary_search_by_key(&i, |&x| unflip(x)) {
                Ok(p) if idx[p] & ZOMBIE == 0 => Ok(val[p]),
                _ => Err(Error::NoValue),
            },
        }
    }

    /// Convenience: `extract_element` returning `Option`.
    pub fn get(&self, i: Index) -> Option<T> {
        self.extract_element(i).ok()
    }

    /// Remove all entries, keeping the length.
    pub fn clear(&mut self) {
        let inner = self.inner.get_mut();
        inner.store = VStore::Sparse { idx: Vec::new(), val: Vec::new() };
        inner.pending.clear();
        inner.nzombies = 0;
    }

    /// Copy all entries out as `(index, value)` tuples in index order.
    pub fn extract_tuples(&self) -> Vec<(Index, T)> {
        let g = self.read();
        let mut out = Vec::with_capacity(g.nvals_assembled());
        g.view().for_each(|i, v| out.push((i, v)));
        out
    }

    /// Iterate over `(index, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Index, T)> {
        self.extract_tuples().into_iter()
    }

    /// Resize, dropping entries past the new length.
    pub fn resize(&mut self, n: Index) -> Result<()> {
        if n == 0 {
            return Err(Error::invalid("vector size must be >= 1"));
        }
        let inner = self.inner.get_mut();
        inner.assemble();
        let tuples: Vec<(Index, T)> = {
            let mut t = Vec::new();
            inner.view().for_each(|i, v| {
                if i < n {
                    t.push((i, v));
                }
            });
            t
        };
        inner.n = n;
        let (idx, val) = tuples.into_iter().unzip();
        inner.store = VStore::Sparse { idx, val };
        inner.optimize_form();
        Ok(())
    }

    /// The pattern as a Boolean vector (`true` at every stored entry).
    pub fn pattern(&self) -> Vector<bool> {
        let g = self.read();
        let mut idx = Vec::with_capacity(g.nvals_assembled());
        g.view().for_each(|i, _| idx.push(i));
        let val = vec![true; idx.len()];
        Vector::from_parts(g.n, idx, val)
    }

    /// Lock for reading with deferred updates resolved.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, VInner<T>> {
        loop {
            {
                let g = self.inner.read();
                if !g.needs_assembly() {
                    return g;
                }
            }
            self.inner.write().assemble();
        }
    }

    /// Construct directly from sorted, deduplicated parallel arrays.
    pub(crate) fn from_parts(n: Index, idx: Vec<Index>, val: Vec<T>) -> Self {
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(idx.last().is_none_or(|&l| l < n));
        let mut inner =
            VInner { n, store: VStore::Sparse { idx, val }, pending: Vec::new(), nzombies: 0 };
        inner.optimize_form();
        Vector { inner: RwLock::new(inner) }
    }

    /// Replace contents with sorted, deduplicated parallel arrays.
    pub(crate) fn install(&mut self, idx: Vec<Index>, val: Vec<T>) {
        let inner = self.inner.get_mut();
        debug_assert!(idx.last().is_none_or(|&l| l < inner.n));
        inner.store = VStore::Sparse { idx, val };
        inner.pending.clear();
        inner.nzombies = 0;
        inner.optimize_form();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_size() {
        assert!(Vector::<i32>::new(0).is_err());
    }

    #[test]
    fn build_and_lookup() {
        let v = Vector::from_tuples(5, vec![(3, 30), (1, 10)], |_, b| b).expect("build");
        assert_eq!(v.nvals(), 2);
        assert_eq!(v.get(1), Some(10));
        assert_eq!(v.get(3), Some(30));
        assert_eq!(v.get(0), None);
        assert_eq!(v.extract_tuples(), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn duplicates_fold_in_order() {
        let v = Vector::from_tuples(2, vec![(0, 8), (0, 2)], |a, b| a / b).expect("build");
        assert_eq!(v.get(0), Some(4));
    }

    #[test]
    fn set_remove_assemble() {
        let mut v = Vector::<i32>::new(10).expect("new");
        v.set_element(4, 40).expect("set");
        v.set_element(2, 20).expect("set");
        assert_eq!(v.get(4), Some(40));
        assert_eq!(v.nvals(), 2);
        v.remove_element(4).expect("remove");
        assert_eq!(v.get(4), None);
        assert_eq!(v.nvals(), 1);
        v.set_element(4, 44).expect("set again");
        assert_eq!(v.extract_tuples(), vec![(2, 20), (4, 44)]);
    }

    #[test]
    fn densify_on_fill() {
        let mut v = Vector::<f64>::new(8).expect("new");
        assert_eq!(v.vector_format(), VectorFormat::Sparse);
        for i in 0..8 {
            v.set_element(i, i as f64).expect("set");
        }
        v.wait();
        assert_eq!(v.vector_format(), VectorFormat::Dense);
        assert_eq!(v.nvals(), 8);
        assert_eq!(v.get(7), Some(7.0));
    }

    #[test]
    fn sparsify_on_drain() {
        let mut v = Vector::dense(64, 1i32).expect("dense");
        assert_eq!(v.vector_format(), VectorFormat::Dense);
        for i in 0..63 {
            v.remove_element(i).expect("remove");
        }
        v.wait();
        // 1/64 occupancy is below the sparsify threshold.
        let g = v.read();
        drop(g);
        v.inner.write().optimize_form();
        assert_eq!(v.vector_format(), VectorFormat::Sparse);
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.get(63), Some(1));
    }

    #[test]
    fn dense_constructor() {
        let v = Vector::dense(4, 2.5).expect("dense");
        assert_eq!(v.nvals(), 4);
        assert_eq!(v.get(3), Some(2.5));
    }

    #[test]
    fn dense_set_and_remove_in_place() {
        let mut v = Vector::dense(4, 0i32).expect("dense");
        v.set_element(2, 9).expect("set");
        assert_eq!(v.get(2), Some(9));
        v.remove_element(1).expect("remove");
        assert_eq!(v.get(1), None);
        assert_eq!(v.nvals(), 3);
    }

    #[test]
    fn pattern_and_resize() {
        let mut v = Vector::from_tuples(6, vec![(0, 5), (5, 6)], |_, b| b).expect("build");
        let p = v.pattern();
        assert_eq!(p.extract_tuples(), vec![(0, true), (5, true)]);
        v.resize(3).expect("resize");
        assert_eq!(v.extract_tuples(), vec![(0, 5)]);
        assert_eq!(v.size(), 3);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut v = Vector::<i32>::new(3).expect("new");
        assert!(v.set_element(3, 1).is_err());
        assert!(v.remove_element(9).is_err());
        assert!(v.extract_element(3).is_err());
        assert!(Vector::from_tuples(3, vec![(3, 1)], |_, b| b).is_err());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Vector::from_tuples(3, vec![(0, 1)], |_, b| b).expect("build");
        let b = a.clone();
        a.set_element(0, 9).expect("set");
        assert_eq!(b.get(0), Some(1));
    }

    #[test]
    fn bitmapify_at_mid_density() {
        // 8/64 occupancy is in the bitmap band: >= 1/16 but < 1/4.
        let v = Vector::from_tuples(64, (0..8).map(|i| (i * 8, i as i32)).collect(), |_, b| b)
            .expect("build");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        assert_eq!(v.nvals(), 8);
        assert_eq!(v.get(16), Some(2));
        assert_eq!(v.get(17), None);
        assert_eq!(v.extract_tuples(), (0..8).map(|i| (i * 8, i as i32)).collect::<Vec<_>>());
    }

    #[test]
    fn bitmap_set_remove_in_place() {
        let mut v = Vector::from_tuples(64, (0..8).map(|i| (i * 8, 1i32)).collect(), |_, b| b)
            .expect("build");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        v.set_element(3, 9).expect("set new");
        v.set_element(8, 7).expect("overwrite");
        v.remove_element(16).expect("remove");
        v.remove_element(17).expect("remove absent is a no-op");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap, "edits keep the form");
        assert_eq!(v.nvals(), 8);
        assert_eq!(v.get(3), Some(9));
        assert_eq!(v.get(8), Some(7));
        assert_eq!(v.get(16), None);
        assert!(v.extract_element(16).is_err());
    }

    #[test]
    fn bitmap_densifies_on_fill() {
        let mut v = Vector::from_tuples(64, (0..8).map(|i| (i * 8, 1i32)).collect(), |_, b| b)
            .expect("build");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        for i in 0..8 {
            v.set_element(i * 8 + 1, 2).expect("set");
        }
        // 16/64 = 1/4 occupancy crosses the densify threshold.
        v.inner.write().optimize_form();
        assert_eq!(v.vector_format(), VectorFormat::Dense);
        assert_eq!(v.nvals(), 16);
        assert_eq!(v.get(33), Some(2));
        assert_eq!(v.get(31), None);
    }

    #[test]
    fn bitmap_sparsifies_on_drain() {
        let mut v = Vector::from_tuples(64, (0..8).map(|i| (i * 8, i as i32)).collect(), |_, b| b)
            .expect("build");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        for i in 1..8 {
            v.remove_element(i * 8).expect("remove");
        }
        // 1/64 occupancy is below the sparsify threshold.
        v.inner.write().optimize_form();
        assert_eq!(v.vector_format(), VectorFormat::Sparse);
        assert_eq!(v.extract_tuples(), vec![(0, 0)]);
    }

    #[test]
    fn bitmap_holds_inside_hysteresis_band() {
        // 8/64 promotes sparse → bitmap; dropping to 3/64 (>= 1/32) must
        // NOT demote — that gap is the anti-thrash hysteresis.
        let mut v = Vector::from_tuples(64, (0..8).map(|i| (i * 8, 1i32)).collect(), |_, b| b)
            .expect("build");
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        for i in 3..8 {
            v.remove_element(i * 8).expect("remove");
        }
        v.inner.write().optimize_form();
        assert_eq!(v.vector_format(), VectorFormat::Bitmap);
        assert_eq!(v.nvals(), 3);
    }

    #[test]
    fn view_lookup_consistency() {
        let v = Vector::from_tuples(100, (0..30).map(|i| (i * 3, i as i64)).collect(), |_, b| b)
            .expect("build");
        let g = v.read();
        let view = g.view();
        assert_eq!(view.nvals(), 30);
        assert_eq!(view.get(27), Some(9));
        assert_eq!(view.get(28), None);
        let mut count = 0;
        view.for_each(|i, x| {
            assert_eq!(i % 3, 0);
            assert_eq!(x, (i / 3) as i64);
            count += 1;
        });
        assert_eq!(count, 30);
    }
}
