//! Read-optimized compressed sparse rows in the WebGraph style.
//!
//! A [`CompressedMat`] stores each row's column indices as delta gaps
//! encoded with γ or δ instantaneous codes (whichever is smaller for the
//! whole matrix), two Elias-Fano monotone sequences give O(1) random
//! access to any row (cumulative entry counts and bit offsets into the
//! gap stream), and values live in a separate *plane* that collapses to
//! zero bits when every stored value is equal (pattern matrices) or to a
//! fixed narrow width when values are small non-negative integers.
//!
//! The same layout round-trips through a versioned on-disk container
//! (`.lagc`, written by `crates/io`) whose sections are 8-byte-aligned
//! `u64` arrays, so a reload can memory-map the file and point the
//! [`Words`] sections straight into the mapping — startup cost is O(1)
//! in the number of edges, not a parse-and-assemble.
//!
//! Kernels never see borrowed row slices from this form (`SparseView::vec`
//! panics); they iterate rows through the decode-cursor methods
//! `row`/`row_copy` added to `SparseView`, decoding into caller scratch.

use std::io::{self, Read as _, Write};
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use crate::parallel::par_chunks;
use crate::sparse::{Cs, RowScratch, SparseView};
use crate::types::{Index, Scalar};

/// Sample the position of every `SAMPLE`-th set bit in an Elias-Fano
/// upper bitmap so `select1` scans at most `SAMPLE` ones.
const SAMPLE: usize = 64;

// ---------------------------------------------------------------------------
// Bit I/O: LSB-first over u64 words.
// ---------------------------------------------------------------------------

/// Append-only bit stream, least-significant bit of word 0 first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    words: Vec<u64>,
    bitlen: usize,
}

impl BitWriter {
    /// An empty stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bitlen(&self) -> usize {
        self.bitlen
    }

    /// Append the low `n` bits of `bits` (`n ≤ 64`).
    pub fn push_bits(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let bits = if n == 64 { bits } else { bits & ((1u64 << n) - 1) };
        let word = self.bitlen >> 6;
        let off = (self.bitlen & 63) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= bits << off;
        if off + n > 64 {
            self.words.push(bits >> (64 - off));
        }
        self.bitlen += n as usize;
    }

    /// `q` zero bits followed by a one bit.
    pub fn write_unary(&mut self, mut q: u64) {
        while q >= 64 {
            self.push_bits(0, 64);
            q -= 64;
        }
        self.push_bits(1u64 << q, q as u32 + 1);
    }

    /// Elias γ code of `x ≥ 1`: unary `⌊log₂x⌋` then the low bits.
    pub fn write_gamma(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let b = 63 - x.leading_zeros();
        self.write_unary(b as u64);
        self.push_bits(x, b);
    }

    /// Elias δ code of `x ≥ 1`: γ(⌊log₂x⌋ + 1) then the low bits.
    pub fn write_delta(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let b = 63 - x.leading_zeros();
        self.write_gamma(b as u64 + 1);
        self.push_bits(x, b);
    }

    /// Append another writer's bits, shifting to this writer's phase —
    /// how per-chunk parallel encoders are stitched into one stream.
    pub fn append(&mut self, other: &BitWriter) {
        if self.bitlen & 63 == 0 {
            self.words.truncate(self.bitlen >> 6);
            self.words.extend_from_slice(&other.words[..other.bitlen.div_ceil(64)]);
            self.bitlen += other.bitlen;
            return;
        }
        let mut rem = other.bitlen;
        for &w in &other.words {
            if rem == 0 {
                break;
            }
            let n = rem.min(64) as u32;
            self.push_bits(w, n);
            rem -= n as usize;
        }
    }

    /// The backing words, exactly `⌈bitlen/64⌉` of them.
    pub fn into_words(mut self) -> Vec<u64> {
        self.words.truncate(self.bitlen.div_ceil(64));
        self.words
    }
}

/// Number of bits `write_gamma(x)` produces.
pub fn gamma_len(x: u64) -> usize {
    let b = (63 - x.leading_zeros()) as usize;
    2 * b + 1
}

/// Number of bits `write_delta(x)` produces.
pub fn delta_len(x: u64) -> usize {
    let b = (63 - x.leading_zeros()) as usize;
    b + gamma_len(b as u64 + 1)
}

/// Cursor over an LSB-first bit stream. Reads must stay within the bits
/// actually written; well-formed streams guarantee that.
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A cursor positioned at absolute bit `bitpos`.
    pub fn at(words: &'a [u64], bitpos: usize) -> Self {
        BitReader { words, pos: bitpos }
    }

    /// The next `n` bits as an integer (`n ≤ 64`).
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 0 {
            return 0;
        }
        let word = self.pos >> 6;
        let off = (self.pos & 63) as u32;
        let mut v = self.words[word] >> off;
        if off + n > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        self.pos += n as usize;
        if n == 64 {
            v
        } else {
            v & ((1u64 << n) - 1)
        }
    }

    /// Count of zero bits before the next one bit (which is consumed).
    pub fn read_unary(&mut self) -> u64 {
        let mut q = 0u64;
        loop {
            let word = self.pos >> 6;
            let off = self.pos & 63;
            let v = self.words[word] >> off;
            if v == 0 {
                q += (64 - off) as u64;
                self.pos += 64 - off;
            } else {
                let t = v.trailing_zeros() as u64;
                self.pos += t as usize + 1;
                return q + t;
            }
        }
    }

    /// Decode one Elias γ codeword.
    pub fn read_gamma(&mut self) -> u64 {
        let b = self.read_unary() as u32;
        (1u64 << b) | self.read_bits(b)
    }

    /// Decode one Elias δ codeword.
    pub fn read_delta(&mut self) -> u64 {
        let b = (self.read_gamma() - 1) as u32;
        (1u64 << b) | self.read_bits(b)
    }
}

// ---------------------------------------------------------------------------
// Word storage: owned vectors or slices of a shared memory mapping.
// ---------------------------------------------------------------------------

/// A `u64` array that is either heap-owned or a zero-copy window into a
/// memory-mapped `.lagc` file (offset is 8-byte-aligned, and the mapping
/// itself is page-aligned, so the cast below is always aligned).
pub enum Words {
    /// Heap-allocated words.
    Owned(Vec<u64>),
    /// `len` words at byte offset `off` (8-aligned) of a shared mapping.
    Mapped {
        /// The shared file mapping the words point into.
        map: Arc<MmapFile>,
        /// Byte offset of the first word; always a multiple of 8.
        off: usize,
        /// Number of `u64` words in the window.
        len: usize,
    },
}

impl Deref for Words {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            Words::Mapped { map, off, len } => unsafe {
                std::slice::from_raw_parts(map.bytes().as_ptr().add(*off) as *const u64, *len)
            },
        }
    }
}

impl Clone for Words {
    fn clone(&self) -> Self {
        match self {
            Words::Owned(v) => Words::Owned(v.clone()),
            Words::Mapped { map, off, len } => {
                Words::Mapped { map: Arc::clone(map), off: *off, len: *len }
            }
        }
    }
}

impl std::fmt::Debug for Words {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Words::Owned(v) => write!(f, "Words::Owned({} words)", v.len()),
            Words::Mapped { len, .. } => write!(f, "Words::Mapped({len} words)"),
        }
    }
}

impl From<Vec<u64>> for Words {
    fn from(v: Vec<u64>) -> Self {
        Words::Owned(v)
    }
}

impl Words {
    fn is_mapped(&self) -> bool {
        matches!(self, Words::Mapped { .. })
    }
}

/// Read-only memory mapping of a whole file, created with a direct
/// `mmap(2)` call (no external crate). Dropped with `munmap`.
pub struct MmapFile {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    _never: (),
}

#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

#[cfg(unix)]
impl MmapFile {
    /// Map the first `len` bytes of `f` read-only; `None` on failure.
    pub fn open(f: &std::fs::File, len: usize) -> Option<Arc<MmapFile>> {
        use std::os::unix::io::AsRawFd;
        extern "C" {
            fn mmap(
                addr: *mut u8,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut u8;
        }
        const PROT_READ: i32 = 1;
        const MAP_PRIVATE: i32 = 2;
        if len == 0 {
            return None;
        }
        let p =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, f.as_raw_fd(), 0) };
        if p.is_null() || p as isize == -1 {
            None
        } else {
            Some(Arc::new(MmapFile { ptr: p, len }))
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapFile {
    fn drop(&mut self) {
        extern "C" {
            fn munmap(addr: *mut u8, len: usize) -> i32;
        }
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(not(unix))]
impl MmapFile {
    /// Mapping is unsupported on this platform.
    pub fn open(_f: &std::fs::File, _len: usize) -> Option<Arc<MmapFile>> {
        None
    }
    /// The mapped bytes (always empty here).
    pub fn bytes(&self) -> &[u8] {
        &[]
    }
}

// ---------------------------------------------------------------------------
// Elias-Fano monotone sequence.
// ---------------------------------------------------------------------------

/// Quasi-succinct encoding of a non-decreasing sequence of `n` values in
/// `[0, u)`: the low `l = ⌊log₂(u/n)⌋` bits are packed verbatim, the
/// upper bits become a unary-gap bitmap with select samples, giving
/// `get(i)` in O(1) with ~2 + log₂(u/n) bits per value.
#[derive(Debug, Clone)]
pub struct EliasFano {
    n: u64,
    u: u64,
    l: u32,
    low: Words,
    high: Words,
    samples: Words,
}

impl EliasFano {
    /// Encode a non-decreasing sequence.
    pub fn encode(vals: &[u64]) -> EliasFano {
        let n = vals.len() as u64;
        let u = vals.last().copied().unwrap_or(0) + 1;
        let l = match u.checked_div(n) {
            None | Some(0 | 1) => 0,
            Some(r) => 63 - r.leading_zeros(),
        };
        let mut low = BitWriter::new();
        let mut high = BitWriter::new();
        let mut samples = Vec::new();
        let mut prev_high = 0u64;
        let mut highpos = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            debug_assert!(v < u);
            if l > 0 {
                low.push_bits(v, l);
            }
            let h = v >> l;
            debug_assert!(h >= prev_high, "sequence must be non-decreasing");
            let gap = h - prev_high;
            high.write_unary(gap);
            highpos += gap + 1;
            if i % SAMPLE == 0 {
                samples.push(highpos - 1);
            }
            prev_high = h;
        }
        EliasFano {
            n,
            u,
            l,
            low: low.into_words().into(),
            high: high.into_words().into(),
            samples: samples.into(),
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when no values are encoded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Universe bound (one past the largest storable value).
    pub fn universe(&self) -> u64 {
        self.u
    }

    /// Bit position of the `i`-th set bit of the upper bitmap.
    fn select1(&self, i: usize) -> usize {
        let k = i / SAMPLE;
        let sample_pos = self.samples[k] as usize;
        let mut need = i - k * SAMPLE;
        let mut wi = sample_pos >> 6;
        let mut w = self.high[wi] & (!0u64 << (sample_pos & 63));
        loop {
            let c = w.count_ones() as usize;
            if need < c {
                let mut x = w;
                for _ in 0..need {
                    x &= x - 1;
                }
                return wi * 64 + x.trailing_zeros() as usize;
            }
            need -= c;
            wi += 1;
            w = self.high[wi];
        }
    }

    /// Random access to element `i`.
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.n as usize);
        let high = (self.select1(i) - i) as u64;
        let low = if self.l == 0 {
            0
        } else {
            BitReader::at(&self.low, i * self.l as usize).read_bits(self.l)
        };
        (high << self.l) | low
    }

    /// Sequential decode of the whole sequence, cheaper than `n` selects.
    pub fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        if self.n == 0 {
            return;
        }
        let mut lr = BitReader::at(&self.low, 0);
        let mut hr = BitReader::at(&self.high, 0);
        let mut h = 0u64;
        for i in 0..self.n as usize {
            h += hr.read_unary();
            let lo = if self.l == 0 { 0 } else { lr.read_bits(self.l) };
            f(i, (h << self.l) | lo);
        }
    }

    /// Heap (or mapped) bytes of the three sections plus metadata.
    pub fn bytes(&self) -> usize {
        (self.low.len() + self.high.len() + self.samples.len()) * 8 + 24
    }
}

// ---------------------------------------------------------------------------
// Value plane.
// ---------------------------------------------------------------------------

/// How stored values are represented alongside the gap-encoded structure.
#[derive(Debug, Clone)]
pub enum ValuePlane<T> {
    /// Every stored entry has this value (pattern matrices): zero bits.
    Uniform(T),
    /// Small non-negative integers packed at a fixed bit width.
    Packed {
        /// Bits per entry (1..=32).
        width: u32,
        /// The packed bit stream, LSB-first within each word.
        words: Words,
    },
    /// IEEE-754 bit patterns of `to_f64()`, one word per entry.
    Raw(Words),
}

impl<T: Scalar> ValuePlane<T> {
    /// Value of the `i`-th stored entry (global entry order).
    pub fn value(&self, i: usize) -> T {
        match self {
            ValuePlane::Uniform(c) => *c,
            ValuePlane::Packed { width, words } => {
                let v = BitReader::at(words, i * *width as usize).read_bits(*width);
                T::from_f64(v as f64)
            }
            ValuePlane::Raw(words) => T::from_f64(f64::from_bits(words[i])),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            ValuePlane::Uniform(_) => std::mem::size_of::<T>(),
            ValuePlane::Packed { words, .. } | ValuePlane::Raw(words) => words.len() * 8,
        }
    }

    fn kind(&self) -> u64 {
        match self {
            ValuePlane::Uniform(_) => 0,
            ValuePlane::Packed { .. } => 1,
            ValuePlane::Raw(_) => 2,
        }
    }
}

/// A value survives compression only if it round-trips through `f64`
/// exactly (bit-for-bit for floats, `==` for everything else).
fn lossless<T: Scalar>(v: T) -> bool {
    let f = v.to_f64();
    let rt = T::from_f64(f);
    rt == v || (f.is_nan() && rt.to_f64().is_nan())
}

/// Packable as a fixed-width non-negative integer below 2³²?
fn packable<T: Scalar>(v: T) -> Option<u64> {
    let f = v.to_f64();
    if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f < 4294967296.0 && lossless(v) {
        Some(f as u64)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// The compressed matrix.
// ---------------------------------------------------------------------------

/// Which instantaneous code the gap stream uses; chosen per matrix by
/// measuring both totals during the encode cost pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapCode {
    /// Elias γ: best when gaps are small (dense rows).
    Gamma,
    /// Elias δ: best when gaps are large (sparse power-law rows).
    Delta,
}

/// Read-optimized compressed row storage. See the module docs for the
/// layout; construct with `CompressedMat::encode` (returns `None` when
/// values don't survive the `f64` round-trip) or load from a `.lagc`
/// file with [`CompressedMat::from_path`].
#[derive(Debug, Clone)]
pub struct CompressedMat<T> {
    nrows: Index,
    ncols: Index,
    nvals: usize,
    code: GapCode,
    /// Cumulative entry counts, `nrows + 1` values ending at `nvals`.
    ptr: EliasFano,
    /// Bit offset of each row's gap stream, `nrows + 1` values.
    offs: EliasFano,
    /// γ/δ-coded column-index gaps, all rows concatenated.
    data: Words,
    plane: ValuePlane<T>,
    nvecs: OnceLock<usize>,
}

impl<T: Scalar> CompressedMat<T> {
    /// Compress a standard CSR structure (crate-internal: reached via
    /// `Matrix` storage policy). Runs the cost, encode, and value-plane
    /// passes on the `par_chunks` pool. Returns `None` if any value
    /// cannot be represented exactly (the matrix then stays CSR).
    pub(crate) fn encode(cs: &Cs<T>) -> Option<CompressedMat<T>> {
        let n = cs.nmajor;
        let nvals = cs.idx.len();

        // Pass 1: total bits under each code, and value-plane class.
        struct Scan<T> {
            gamma: usize,
            delta: usize,
            first: Option<T>,
            uniform: bool,
            packed_max: Option<u64>,
            lossless: bool,
        }
        let scans: Vec<Scan<T>> = par_chunks(n, nvals.max(1), |r| {
            let mut s = Scan::<T> {
                gamma: 0,
                delta: 0,
                first: None,
                uniform: true,
                packed_max: Some(0),
                lossless: true,
            };
            for i in r {
                let (a, b) = (cs.ptr[i], cs.ptr[i + 1]);
                let mut prev: Option<usize> = None;
                for &j in &cs.idx[a..b] {
                    let gap = match prev {
                        None => j as u64 + 1,
                        Some(p) => (j - p) as u64,
                    };
                    s.gamma += gamma_len(gap);
                    s.delta += delta_len(gap);
                    prev = Some(j);
                }
                for &v in &cs.val[a..b] {
                    match s.first {
                        None => s.first = Some(v),
                        Some(f) => {
                            if !(v == f) {
                                s.uniform = false;
                            }
                        }
                    }
                    s.packed_max = match (s.packed_max, packable(v)) {
                        (Some(m), Some(u)) => Some(m.max(u)),
                        _ => None,
                    };
                    s.lossless &= lossless(v);
                }
            }
            s
        });
        let mut gamma = 0usize;
        let mut delta = 0usize;
        let mut first: Option<T> = None;
        let mut uniform = true;
        let mut packed_max = Some(0u64);
        let mut all_lossless = true;
        for s in &scans {
            gamma += s.gamma;
            delta += s.delta;
            match (first, s.first) {
                (None, f) => first = f,
                (Some(a), Some(b)) if !(a == b) => uniform = false,
                _ => {}
            }
            uniform &= s.uniform;
            packed_max = match (packed_max, s.packed_max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
            all_lossless &= s.lossless;
        }
        if !all_lossless {
            return None;
        }
        let code = if delta < gamma { GapCode::Delta } else { GapCode::Gamma };

        // Pass 2: encode gaps per chunk, stitch, and build the offsets.
        let enc: Vec<(BitWriter, Vec<u64>)> = par_chunks(n, nvals.max(1), |r| {
            let mut w = BitWriter::new();
            let mut rowbits = Vec::with_capacity(r.len());
            for i in r {
                let before = w.bitlen();
                let mut prev: Option<usize> = None;
                for &j in &cs.idx[cs.ptr[i]..cs.ptr[i + 1]] {
                    let gap = match prev {
                        None => j as u64 + 1,
                        Some(p) => (j - p) as u64,
                    };
                    match code {
                        GapCode::Gamma => w.write_gamma(gap),
                        GapCode::Delta => w.write_delta(gap),
                    }
                    prev = Some(j);
                }
                rowbits.push((w.bitlen() - before) as u64);
            }
            (w, rowbits)
        });
        let mut data = BitWriter::new();
        let mut offs = Vec::with_capacity(n + 1);
        offs.push(0u64);
        for (w, rowbits) in &enc {
            for &rb in rowbits {
                offs.push(offs.last().expect("nonempty") + rb);
            }
            data.append(w);
        }
        debug_assert_eq!(data.bitlen() as u64, *offs.last().expect("nonempty"));

        // Pass 3: the value plane.
        let plane = if nvals == 0 {
            ValuePlane::Uniform(T::zero())
        } else if uniform {
            ValuePlane::Uniform(first.expect("nvals > 0"))
        } else if let Some(maxu) = packed_max {
            let width = (64 - maxu.leading_zeros()).max(1);
            let packs: Vec<BitWriter> = par_chunks(nvals, nvals, |r| {
                let mut w = BitWriter::new();
                for &v in &cs.val[r] {
                    w.push_bits(v.to_f64() as u64, width);
                }
                w
            });
            let mut w = BitWriter::new();
            for p in &packs {
                w.append(p);
            }
            ValuePlane::Packed { width, words: w.into_words().into() }
        } else {
            let raws: Vec<Vec<u64>> = par_chunks(nvals, nvals, |r| {
                cs.val[r].iter().map(|v| v.to_f64().to_bits()).collect()
            });
            let mut words = Vec::with_capacity(nvals);
            for r in raws {
                words.extend_from_slice(&r);
            }
            ValuePlane::Raw(words.into())
        };

        let ptr_u64: Vec<u64> = cs.ptr.iter().map(|&p| p as u64).collect();
        Some(CompressedMat {
            nrows: n,
            ncols: cs.nminor,
            nvals,
            code,
            ptr: EliasFano::encode(&ptr_u64),
            offs: EliasFano::encode(&offs),
            data: data.into_words().into(),
            plane,
            nvecs: OnceLock::new(),
        })
    }

    /// Decompress to standard CSR (parallel over row chunks).
    pub(crate) fn decode(&self) -> Cs<T> {
        let ptr = self.ptr_vec();
        let chunks: Vec<(Vec<Index>, Vec<T>)> = par_chunks(self.nrows, self.nvals.max(1), |r| {
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for i in r {
                self.decode_row_into(i, ptr[i], ptr[i + 1] - ptr[i], &mut idx, &mut val);
            }
            (idx, val)
        });
        let mut idx = Vec::with_capacity(self.nvals);
        let mut val = Vec::with_capacity(self.nvals);
        for (ci, cv) in chunks {
            idx.extend_from_slice(&ci);
            val.extend_from_slice(&cv);
        }
        Cs { nmajor: self.nrows, nminor: self.ncols, ptr, idx, val }
    }

    /// Materialize the cumulative-count pointer array.
    pub(crate) fn ptr_vec(&self) -> Vec<usize> {
        let mut ptr = Vec::with_capacity(self.nrows + 1);
        self.ptr.for_each(|_, v| ptr.push(v as usize));
        ptr
    }

    fn decode_row_into(
        &self,
        i: Index,
        start: usize,
        count: usize,
        idx: &mut Vec<Index>,
        val: &mut Vec<T>,
    ) {
        if count == 0 {
            return;
        }
        let mut r = BitReader::at(&self.data, self.offs.get(i) as usize);
        let mut prev = 0usize;
        for p in 0..count {
            let gap = match self.code {
                GapCode::Gamma => r.read_gamma(),
                GapCode::Delta => r.read_delta(),
            } as usize;
            let j = if p == 0 { gap - 1 } else { prev + gap };
            prev = j;
            idx.push(j);
            val.push(self.plane.value(start + p));
        }
    }

    /// Resident bytes of every section (mapped sections count the bytes
    /// of file they expose, which is what a capacity planner wants).
    pub fn bytes(&self) -> usize {
        self.ptr.bytes() + self.offs.bytes() + self.data.len() * 8 + self.plane.bytes() + 64
    }

    /// Resident bytes split (ptr, idx, val)-style for
    /// [`crate::MemoryUsage`]: the two Elias-Fano indexes, the gap
    /// stream, and the value plane.
    pub fn section_bytes(&self) -> (usize, usize, usize) {
        (self.ptr.bytes() + self.offs.bytes(), self.data.len() * 8, self.plane.bytes())
    }

    /// True when the heavy sections point into a memory-mapped file.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Which instantaneous code the gap stream uses.
    pub fn gap_code(&self) -> GapCode {
        self.code
    }

    /// Compressed bytes divided by stored entries.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.nvals == 0 {
            0.0
        } else {
            self.bytes() as f64 / self.nvals as f64
        }
    }
}

impl<T: Scalar> SparseView<T> for CompressedMat<T> {
    fn nmajor(&self) -> Index {
        self.nrows
    }
    fn nminor(&self) -> Index {
        self.ncols
    }
    fn nvals(&self) -> usize {
        self.nvals
    }
    fn nvecs(&self) -> usize {
        *self.nvecs.get_or_init(|| {
            let mut count = 0;
            let mut prev = 0u64;
            self.ptr.for_each(|i, v| {
                if i > 0 && v > prev {
                    count += 1;
                }
                prev = v;
            });
            count
        })
    }
    fn vec(&self, _major: Index) -> (&[Index], &[T]) {
        panic!(
            "CompressedMat::vec: compressed storage has no borrowed row slices; \
             kernels must use SparseView::row/row_copy (this is a kernel bug)"
        );
    }
    fn is_compressed(&self) -> bool {
        true
    }
    fn row<'s>(&'s self, major: Index, scratch: &'s mut RowScratch<T>) -> (&'s [Index], &'s [T]) {
        scratch.idx.clear();
        scratch.val.clear();
        let (a, b) = (self.ptr.get(major) as usize, self.ptr.get(major + 1) as usize);
        self.decode_row_into(major, a, b - a, &mut scratch.idx, &mut scratch.val);
        (&scratch.idx, &scratch.val)
    }
    fn row_copy(&self, major: Index, idx: &mut Vec<Index>, val: &mut Vec<T>) {
        idx.clear();
        val.clear();
        let (a, b) = (self.ptr.get(major) as usize, self.ptr.get(major + 1) as usize);
        self.decode_row_into(major, a, b - a, idx, val);
    }
    fn get(&self, major: Index, minor: Index) -> Option<T> {
        let (a, b) = (self.ptr.get(major) as usize, self.ptr.get(major + 1) as usize);
        if a == b {
            return None;
        }
        let mut r = BitReader::at(&self.data, self.offs.get(major) as usize);
        let mut j = 0usize;
        for p in 0..(b - a) {
            let gap = match self.code {
                GapCode::Gamma => r.read_gamma(),
                GapCode::Delta => r.read_delta(),
            } as usize;
            j = if p == 0 { gap - 1 } else { j + gap };
            if j == minor {
                return Some(self.plane.value(a + p));
            }
            if j > minor {
                return None;
            }
        }
        None
    }
    fn for_each_vec(&self, f: &mut dyn FnMut(Index, &[Index], &[T])) {
        let ptr = self.ptr_vec();
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for i in 0..self.nrows {
            if ptr[i + 1] == ptr[i] {
                continue;
            }
            idx.clear();
            val.clear();
            self.decode_row_into(i, ptr[i], ptr[i + 1] - ptr[i], &mut idx, &mut val);
            f(i, &idx, &val);
        }
    }
    fn nonempty_majors(&self) -> Vec<Index> {
        let ptr = self.ptr_vec();
        (0..self.nrows).filter(|&i| ptr[i + 1] > ptr[i]).collect()
    }
}

// ---------------------------------------------------------------------------
// The on-disk `.lagc` container.
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 8] = b"LAGC0001";
const HEADER_BYTES: usize = 184;

fn fnv1a(sections: &[&[u64]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for ws in sections {
        for &w in *ws {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
    }
    h
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("lagc: {}", msg.into()))
}

struct EfMeta {
    n: u64,
    u: u64,
    l: u64,
    low: u64,
    high: u64,
    samples: u64,
}

impl EfMeta {
    fn of(ef: &EliasFano) -> EfMeta {
        EfMeta {
            n: ef.n,
            u: ef.u,
            l: ef.l as u64,
            low: ef.low.len() as u64,
            high: ef.high.len() as u64,
            samples: ef.samples.len() as u64,
        }
    }
    fn write(&self, buf: &mut [u8], off: usize) {
        for (k, v) in [self.n, self.u, self.l, self.low, self.high, self.samples].iter().enumerate()
        {
            put_u64(buf, off + 8 * k, *v);
        }
    }
    fn read(buf: &[u8], off: usize) -> EfMeta {
        EfMeta {
            n: get_u64(buf, off),
            u: get_u64(buf, off + 8),
            l: get_u64(buf, off + 16),
            low: get_u64(buf, off + 24),
            high: get_u64(buf, off + 32),
            samples: get_u64(buf, off + 40),
        }
    }
    fn words(&self) -> u64 {
        self.low + self.high + self.samples
    }
}

impl<T: Scalar> CompressedMat<T> {
    /// Serialize to the versioned `.lagc` container.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (plane_meta, plane_words): (u64, &[u64]) = match &self.plane {
            ValuePlane::Uniform(c) => (c.to_f64().to_bits(), &[]),
            ValuePlane::Packed { width, words } => (*width as u64, words),
            ValuePlane::Raw(words) => (0, words),
        };
        let sections: [&[u64]; 8] = [
            &self.ptr.low,
            &self.ptr.high,
            &self.ptr.samples,
            &self.offs.low,
            &self.offs.high,
            &self.offs.samples,
            &self.data,
            plane_words,
        ];
        let mut hdr = [0u8; HEADER_BYTES];
        hdr[..8].copy_from_slice(MAGIC);
        let name = T::NAME.as_bytes();
        hdr[8..8 + name.len().min(16)].copy_from_slice(&name[..name.len().min(16)]);
        put_u64(&mut hdr, 24, self.nrows as u64);
        put_u64(&mut hdr, 32, self.ncols as u64);
        put_u64(&mut hdr, 40, self.nvals as u64);
        let flags = match self.code {
            GapCode::Gamma => 0u64,
            GapCode::Delta => 1u64,
        } | (self.plane.kind() << 8);
        put_u64(&mut hdr, 48, flags);
        put_u64(&mut hdr, 56, plane_meta);
        EfMeta::of(&self.ptr).write(&mut hdr, 64);
        EfMeta::of(&self.offs).write(&mut hdr, 112);
        put_u64(&mut hdr, 160, self.data.len() as u64);
        put_u64(&mut hdr, 168, plane_words.len() as u64);
        put_u64(&mut hdr, 176, fnv1a(&sections));
        w.write_all(&hdr)?;
        for s in sections {
            for &word in s {
                w.write_all(&word.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Write to a file path (via a buffered writer).
    pub fn write_path(&self, path: &Path) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(f);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Load a `.lagc` file, memory-mapping the sections zero-copy when
    /// the platform allows (falling back to an owned read). The header
    /// and total size are always validated (rejecting truncation in
    /// O(1)); `verify` additionally recomputes the section checksum,
    /// rejecting bit corruption at O(file) cost.
    pub fn from_path(path: &Path, verify: bool) -> io::Result<CompressedMat<T>> {
        let mut f = std::fs::File::open(path)?;
        let mut hdr = [0u8; HEADER_BYTES];
        f.read_exact(&mut hdr).map_err(|_| bad("truncated header"))?;
        if &hdr[..8] != MAGIC {
            return Err(bad("bad magic (not a .lagc file or unsupported version)"));
        }
        let mut name = [0u8; 16];
        let tn = T::NAME.as_bytes();
        name[..tn.len().min(16)].copy_from_slice(&tn[..tn.len().min(16)]);
        if hdr[8..24] != name {
            return Err(bad(format!(
                "element type mismatch: file has {:?}, expected {}",
                String::from_utf8_lossy(&hdr[8..24]).trim_end_matches('\0'),
                T::NAME
            )));
        }
        let nrows = get_u64(&hdr, 24) as usize;
        let ncols = get_u64(&hdr, 32) as usize;
        let nvals = get_u64(&hdr, 40) as usize;
        let flags = get_u64(&hdr, 48);
        let plane_meta = get_u64(&hdr, 56);
        let ptr_meta = EfMeta::read(&hdr, 64);
        let offs_meta = EfMeta::read(&hdr, 112);
        let data_words = get_u64(&hdr, 160);
        let plane_words = get_u64(&hdr, 168);
        let checksum = get_u64(&hdr, 176);

        let code = match flags & 0xff {
            0 => GapCode::Gamma,
            1 => GapCode::Delta,
            c => return Err(bad(format!("unknown gap code {c}"))),
        };
        let plane_kind = (flags >> 8) & 0xff;
        if ptr_meta.l > 63 || offs_meta.l > 63 {
            return Err(bad("corrupt Elias-Fano parameters"));
        }
        if ptr_meta.n != nrows as u64 + 1 || offs_meta.n != nrows as u64 + 1 {
            return Err(bad("Elias-Fano length disagrees with nrows"));
        }
        let total_words = ptr_meta.words() + offs_meta.words() + data_words + plane_words;
        let expect = HEADER_BYTES as u64 + 8 * total_words;
        let actual = f.metadata()?.len();
        if actual != expect {
            return Err(bad(format!(
                "file is {actual} bytes, layout requires {expect} (truncated or corrupt)"
            )));
        }
        if plane_kind == 1 {
            let width = plane_meta;
            if width == 0 || width > 32 || plane_words * 64 < nvals as u64 * width {
                return Err(bad("packed value plane shorter than nvals"));
            }
        }
        if plane_kind == 2 && plane_words != nvals as u64 {
            return Err(bad("raw value plane shorter than nvals"));
        }

        // Map the file; carve each section out of the mapping at its
        // 8-aligned offset. If mmap is unavailable, read it all.
        let mapped = MmapFile::open(&f, expect as usize);
        let mut owned: Option<Arc<Vec<u64>>> = None;
        if mapped.is_none() {
            let mut rest = Vec::with_capacity(total_words as usize * 8);
            f.read_to_end(&mut rest)?;
            let words: Vec<u64> = rest
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            owned = Some(Arc::new(words));
        }
        let mut word_off = 0usize;
        let mut take = |len: u64| -> Words {
            let len = len as usize;
            let w = match (&mapped, &owned) {
                (Some(map), _) => {
                    Words::Mapped { map: Arc::clone(map), off: HEADER_BYTES + word_off * 8, len }
                }
                (None, Some(all)) => Words::Owned(all[word_off..word_off + len].to_vec()),
                _ => unreachable!("one of mapped/owned is set"),
            };
            word_off += len;
            w
        };
        let ptr = EliasFano {
            n: ptr_meta.n,
            u: ptr_meta.u,
            l: ptr_meta.l as u32,
            low: take(ptr_meta.low),
            high: take(ptr_meta.high),
            samples: take(ptr_meta.samples),
        };
        let offs = EliasFano {
            n: offs_meta.n,
            u: offs_meta.u,
            l: offs_meta.l as u32,
            low: take(offs_meta.low),
            high: take(offs_meta.high),
            samples: take(offs_meta.samples),
        };
        let data = take(data_words);
        let plane = match plane_kind {
            0 => {
                let _ = take(plane_words);
                ValuePlane::Uniform(T::from_f64(f64::from_bits(plane_meta)))
            }
            1 => ValuePlane::Packed { width: plane_meta as u32, words: take(plane_words) },
            2 => ValuePlane::Raw(take(plane_words)),
            k => return Err(bad(format!("unknown value plane kind {k}"))),
        };
        if verify {
            let sections: [&[u64]; 8] = [
                &ptr.low,
                &ptr.high,
                &ptr.samples,
                &offs.low,
                &offs.high,
                &offs.samples,
                &data,
                match &plane {
                    ValuePlane::Uniform(_) => &[],
                    ValuePlane::Packed { words, .. } | ValuePlane::Raw(words) => words,
                },
            ];
            let got = fnv1a(&sections);
            if got != checksum {
                return Err(bad(format!(
                    "checksum mismatch: stored {checksum:#x}, computed {got:#x} (corrupt sections)"
                )));
            }
        }
        // Cheap structural sanity so a bad (but size-consistent) file
        // can't send decoders out of bounds via the offsets index.
        if ptr.universe() != nvals as u64 + 1 {
            return Err(bad("pointer universe disagrees with nvals"));
        }
        if offs.universe() > data_words * 64 + 1 {
            return Err(bad("bit offsets exceed the gap stream"));
        }
        Ok(CompressedMat {
            nrows,
            ncols,
            nvals,
            code,
            ptr,
            offs,
            data,
            plane,
            nvecs: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_gamma_delta() {
        let mut w = BitWriter::new();
        let xs: Vec<u64> = (1..200).chain([1 << 20, (1 << 40) + 7, u64::MAX >> 1]).collect();
        for &x in &xs {
            w.write_gamma(x);
            w.write_delta(x);
        }
        let words = w.into_words();
        let mut r = BitReader::at(&words, 0);
        for &x in &xs {
            assert_eq!(r.read_gamma(), x);
            assert_eq!(r.read_delta(), x);
        }
    }

    #[test]
    fn bit_lengths_match_writers() {
        for x in [1u64, 2, 3, 5, 100, 4096, 1 << 33] {
            let mut w = BitWriter::new();
            w.write_gamma(x);
            assert_eq!(w.bitlen(), gamma_len(x));
            let mut w = BitWriter::new();
            w.write_delta(x);
            assert_eq!(w.bitlen(), delta_len(x));
        }
    }

    #[test]
    fn writer_append_stitches_any_phase() {
        for head_bits in [0u32, 1, 7, 63, 64, 65] {
            let mut a = BitWriter::new();
            for k in 0..head_bits {
                a.push_bits((k % 2) as u64, 1);
            }
            let mut b = BitWriter::new();
            for x in 1..100u64 {
                b.write_delta(x);
            }
            let blen = b.bitlen();
            a.append(&b);
            assert_eq!(a.bitlen(), head_bits as usize + blen);
            let words = a.into_words();
            let mut r = BitReader::at(&words, head_bits as usize);
            for x in 1..100u64 {
                assert_eq!(r.read_delta(), x);
            }
        }
    }

    #[test]
    fn elias_fano_random_and_sequential_access() {
        let mut vals = Vec::new();
        let mut v = 0u64;
        for i in 0..1000u64 {
            v += (i * 2654435761) % 97;
            vals.push(v);
        }
        let ef = EliasFano::encode(&vals);
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(ef.get(i), x, "get({i})");
        }
        let mut seen = Vec::new();
        ef.for_each(|_, x| seen.push(x));
        assert_eq!(seen, vals);
        // Succinct: far below 8 bytes per value for a dense-ish sequence.
        assert!(ef.bytes() < vals.len() * 8 / 2);
    }

    #[test]
    fn elias_fano_empty_and_flat() {
        let ef = EliasFano::encode(&[]);
        assert!(ef.is_empty());
        let flat = EliasFano::encode(&[5, 5, 5, 5]);
        for i in 0..4 {
            assert_eq!(flat.get(i), 5);
        }
    }

    fn ladder(nrows: usize, ncols: usize, seed: u64) -> Cs<f64> {
        // Deterministic scale-free-ish structure with integer values.
        let mut tuples = Vec::new();
        let mut state = seed | 1;
        for i in 0..nrows {
            let deg = (state % 7) as usize;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut j = (state % ncols as u64) as usize;
            for d in 0..deg {
                j = (j + 1 + (state >> (d % 32)) as usize % 17) % ncols;
                tuples.push((i, j, ((i + j) % 9) as f64));
                state = state.wrapping_mul(6364136223846793005).wrapping_add(12345);
            }
        }
        Cs::from_tuples(nrows, ncols, tuples, |_, b| b)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cs = ladder(300, 500, 42);
        let cm = CompressedMat::encode(&cs).expect("integral values compress");
        assert_eq!(cm.nvals(), cs.nvals());
        let back = cm.decode();
        assert_eq!(back, cs);
    }

    #[test]
    fn view_matches_cs_row_by_row() {
        let cs = ladder(128, 257, 7);
        let cm = CompressedMat::encode(&cs).expect("compress");
        assert!(cm.is_compressed());
        let mut scratch = RowScratch::default();
        for i in 0..cs.nmajor {
            let (ci, cv) = cs.vec(i);
            let (ki, kv) = cm.row(i, &mut scratch);
            assert_eq!(ki, ci);
            assert_eq!(kv, cv);
        }
        assert_eq!(cm.nonempty_majors(), cs.nonempty_majors());
        assert_eq!(cm.nvecs(), cs.nvecs());
        assert_eq!(SparseView::tuples(&cm), SparseView::tuples(&cs));
        for i in 0..cs.nmajor {
            for j in [0, 1, 100, 256] {
                assert_eq!(SparseView::get(&cm, i, j), cs.get(i, j), "get({i},{j})");
            }
        }
    }

    #[test]
    fn uniform_plane_is_tiny() {
        let tuples: Vec<(usize, usize, bool)> =
            (0..10_000).map(|k| (k % 400, (k * 37) % 1000, true)).collect();
        let cs = Cs::from_tuples(400, 1000, tuples, |_, b| b);
        let cm = CompressedMat::encode(&cs).expect("compress");
        assert!(matches!(cm.plane, ValuePlane::Uniform(true)));
        // Pattern matrices: far under a byte per edge of value storage,
        // and well below half of CSR's 16 B/edge.
        let csr_bytes = (cs.nmajor + 1) * 8 + cs.nvals() * (8 + 1);
        assert!(cm.bytes() * 2 < csr_bytes, "{} vs {}", cm.bytes(), csr_bytes);
    }

    #[test]
    fn raw_plane_survives_fractional_values() {
        let cs =
            Cs::from_tuples(4, 4, vec![(0, 1, 0.5f64), (1, 2, -3.25), (3, 0, 1e-300)], |_, b| b);
        let cm = CompressedMat::encode(&cs).expect("f64 always lossless");
        assert!(matches!(cm.plane, ValuePlane::Raw(_)));
        assert_eq!(cm.decode(), cs);
    }

    #[test]
    fn lagc_roundtrip_mapped() {
        let cs = ladder(200, 300, 99);
        let cm = CompressedMat::encode(&cs).expect("compress");
        let dir = std::env::temp_dir().join(format!("lagc_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("roundtrip.lagc");
        cm.write_path(&path).expect("write");
        let loaded = CompressedMat::<f64>::from_path(&path, true).expect("load");
        assert_eq!(loaded.decode(), cs);
        #[cfg(unix)]
        assert!(loaded.is_mapped(), "unix load should be zero-copy");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lagc_rejects_truncation_and_corruption() {
        let cs = ladder(64, 64, 3);
        let cm = CompressedMat::encode(&cs).expect("compress");
        let dir = std::env::temp_dir().join(format!("lagc_test_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("bad.lagc");
        cm.write_path(&path).expect("write");
        let bytes = std::fs::read(&path).expect("read back");

        // Truncated: drop the tail.
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("truncate");
        assert!(CompressedMat::<f64>::from_path(&path, false).is_err());

        // Corrupted: flip a bit in a section; size still matches, so only
        // the checksum pass catches it.
        let mut corrupt = bytes.clone();
        let k = HEADER_BYTES + (corrupt.len() - HEADER_BYTES) / 2;
        corrupt[k] ^= 0x40;
        std::fs::write(&path, &corrupt).expect("corrupt");
        assert!(CompressedMat::<f64>::from_path(&path, true).is_err());

        // Wrong magic.
        let mut nomagic = bytes.clone();
        nomagic[0] = b'X';
        std::fs::write(&path, &nomagic).expect("magic");
        assert!(CompressedMat::<f64>::from_path(&path, false).is_err());

        // Wrong element type.
        std::fs::write(&path, &bytes).expect("restore");
        assert!(CompressedMat::<i64>::from_path(&path, false).is_err());
        std::fs::remove_file(&path).ok();
    }
}
