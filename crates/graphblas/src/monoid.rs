//! Monoids (`GrB_Monoid`): associative binary operators with an identity,
//! and optionally a *terminal* (annihilator) value.
//!
//! The terminal value is the SuiteSparse "early exit" extension described in
//! §II.A of the LAGraph paper: a dot product using the LOR monoid can stop
//! as soon as it produces `true`, which is what makes the "pull" phase of
//! direction-optimizing BFS competitive. Our dot-product kernels honor
//! [`Monoid::terminal`].

use crate::binaryop::{BinaryOp, Land, Lor, Lxor, Max, Min, Plus, Times};
use crate::types::{Num, Scalar};

/// An associative, commutative binary operator with an identity element.
///
/// `Monoid<T>` extends `BinaryOp<T, T, T>`; the combine operation *is* the
/// binary operator's `apply`.
pub trait Monoid<T: Scalar>: BinaryOp<T, T, T> {
    /// The identity element: `combine(identity, x) == x`.
    fn identity(&self) -> T;

    /// The terminal (annihilator) value, if one exists:
    /// `combine(terminal, x) == terminal`. Reduction kernels may stop early
    /// once the running value reaches the terminal.
    fn terminal(&self) -> Option<T> {
        None
    }

    /// True for the ANY monoid, whose result may be *any* of its inputs:
    /// every value is terminal, so kernels may take the first value seen.
    fn is_any(&self) -> bool {
        false
    }
}

impl<T: Num> Monoid<T> for Plus {
    fn identity(&self) -> T {
        T::zero()
    }
}

impl<T: Num> Monoid<T> for Times {
    fn identity(&self) -> T {
        T::one()
    }
    // 0 annihilates products over the reals; this does not hold for
    // wrapping integer arithmetic in general but 0 * x == 0 still does.
    fn terminal(&self) -> Option<T> {
        Some(T::zero())
    }
}

impl<T: Num> Monoid<T> for Min {
    fn identity(&self) -> T {
        T::max_value()
    }
    fn terminal(&self) -> Option<T> {
        Some(T::min_value())
    }
}

impl<T: Num> Monoid<T> for Max {
    fn identity(&self) -> T {
        T::min_value()
    }
    fn terminal(&self) -> Option<T> {
        Some(T::max_value())
    }
}

impl Monoid<bool> for Lor {
    fn identity(&self) -> bool {
        false
    }
    fn terminal(&self) -> Option<bool> {
        Some(true)
    }
}

impl Monoid<bool> for Land {
    fn identity(&self) -> bool {
        true
    }
    fn terminal(&self) -> Option<bool> {
        Some(false)
    }
}

impl Monoid<bool> for Lxor {
    fn identity(&self) -> bool {
        false
    }
}

/// The ANY monoid (`GxB_ANY`): returns one of its operands, unspecified
/// which. Every value is terminal, so reductions may stop at the first
/// entry — this is what makes the parent-BFS semiring `ANY_SECONDI` fast.
///
/// This implementation deterministically keeps the first operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Any;

impl<T: Scalar> BinaryOp<T, T, T> for Any {
    fn apply(&self, a: T, _: T) -> T {
        a
    }
    fn op_id(&self) -> Option<crate::binaryop::OpId> {
        Some(crate::binaryop::OpId::Any)
    }
}

impl<T: Scalar> Monoid<T> for Any {
    fn identity(&self) -> T {
        T::zero()
    }
    fn is_any(&self) -> bool {
        true
    }
}

/// Fold an iterator with a monoid, honoring early exit on terminal values.
///
/// Returns `None` for an empty iterator (GraphBLAS reductions of an empty
/// object yield no entry rather than the identity, except reduce-to-scalar
/// which applies the identity — callers choose).
pub fn fold<T: Scalar, M: Monoid<T>>(monoid: &M, iter: impl IntoIterator<Item = T>) -> Option<T> {
    let mut it = iter.into_iter();
    let mut acc = it.next()?;
    if monoid.is_any() {
        return Some(acc);
    }
    let terminal = monoid.terminal();
    if Some(acc) == terminal {
        return Some(acc);
    }
    for v in it {
        acc = monoid.apply(acc, v);
        if Some(acc) == terminal {
            break;
        }
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(Monoid::<i32>::identity(&Plus), 0);
        assert_eq!(Monoid::<i32>::identity(&Times), 1);
        assert_eq!(Monoid::<i32>::identity(&Min), i32::MAX);
        assert_eq!(Monoid::<f64>::identity(&Min), f64::INFINITY);
        assert_eq!(Monoid::<i32>::identity(&Max), i32::MIN);
        assert!(!Monoid::<bool>::identity(&Lor));
        assert!(Monoid::<bool>::identity(&Land));
    }

    #[test]
    fn identity_law_holds() {
        for x in [-3i32, 0, 7] {
            assert_eq!(Plus.apply(Monoid::<i32>::identity(&Plus), x), x);
            assert_eq!(Min.apply(Monoid::<i32>::identity(&Min), x), x);
            assert_eq!(Max.apply(Monoid::<i32>::identity(&Max), x), x);
            assert_eq!(Times.apply(Monoid::<i32>::identity(&Times), x), x);
        }
    }

    #[test]
    fn terminal_values() {
        assert_eq!(Monoid::<bool>::terminal(&Lor), Some(true));
        assert_eq!(Monoid::<bool>::terminal(&Land), Some(false));
        assert_eq!(Monoid::<i32>::terminal(&Min), Some(i32::MIN));
        assert_eq!(Monoid::<f64>::terminal(&Max), Some(f64::INFINITY));
        assert_eq!(Monoid::<i32>::terminal(&Plus), None);
        assert_eq!(Monoid::<bool>::terminal(&Lxor), None);
    }

    #[test]
    fn fold_basic() {
        assert_eq!(fold(&Plus, [1, 2, 3, 4]), Some(10));
        assert_eq!(fold(&Min, [3, 1, 4, 1]), Some(1));
        assert_eq!(fold(&Plus, std::iter::empty::<i32>()), None);
    }

    #[test]
    fn fold_early_exit_on_terminal() {
        // An iterator that panics past the terminal proves early exit.
        let vals = [1i32, i32::MIN, /* never combined: */ 0];
        let mut seen = 0;
        let it = vals.iter().map(|&v| {
            seen += 1;
            v
        });
        assert_eq!(fold(&Min, it), Some(i32::MIN));
        assert_eq!(seen, 2);
    }

    #[test]
    fn any_takes_first() {
        assert_eq!(fold(&Any, [7, 8, 9]), Some(7));
        assert!(Monoid::<i32>::is_any(&Any));
    }
}
