//! The dense reference mimic.
//!
//! SuiteSparse:GraphBLAS tests every operation against a short MATLAB
//! script over dense matrices that follows the specification line by line
//! (§II.A: "they exactly mimic the GraphBLAS API Specification ... so they
//! can be visually inspected for conformance"). This module is our
//! equivalent: every operation re-implemented in the most obvious way over
//! `Vec<Option<T>>`, with a brute-force triply-nested-loop matrix
//! multiply. The property-test suites run each fast kernel and its mimic
//! on the same inputs and require results identical in both pattern and
//! value.
//!
//! Nothing here is fast, and that is the point.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::matrix::Matrix;
use crate::monoid::Monoid;
use crate::semiring::Semiring;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

/// A dense matrix of optional entries: the reference representation.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat<T> {
    /// Number of rows.
    pub nrows: Index,
    /// Number of columns.
    pub ncols: Index,
    /// Row-major `nrows × ncols` entries; `None` = no stored entry.
    pub val: Vec<Option<T>>,
}

/// A dense vector of optional entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DVec<T> {
    /// Vector length.
    pub n: Index,
    /// Dense entries; `None` = no stored entry.
    pub val: Vec<Option<T>>,
}

impl<T: Scalar> DMat<T> {
    /// An empty (all-`None`) dense matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        DMat { nrows, ncols, val: vec![None; nrows * ncols] }
    }

    /// Densify a sparse [`Matrix`] (forces assembly via `extract_tuples`).
    pub fn from_matrix(m: &Matrix<T>) -> Self {
        let mut d = DMat::new(m.nrows(), m.ncols());
        for (i, j, x) in m.extract_tuples() {
            d.val[i * d.ncols + j] = Some(x);
        }
        d
    }

    /// Sparsify back into a [`Matrix`], keeping explicit entries only.
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut tuples = Vec::new();
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if let Some(x) = self.val[i * self.ncols + j] {
                    tuples.push((i, j, x));
                }
            }
        }
        Matrix::from_tuples(self.nrows, self.ncols, tuples, |_, b| b).expect("valid dims")
    }

    /// The entry at `(i, j)`, or `None` when absent.
    pub fn get(&self, i: Index, j: Index) -> Option<T> {
        self.val[i * self.ncols + j]
    }

    /// Store (or erase, with `None`) the entry at `(i, j)`.
    pub fn set(&mut self, i: Index, j: Index, x: Option<T>) {
        self.val[i * self.ncols + j] = x;
    }

    /// The dense transpose.
    pub fn transpose(&self) -> DMat<T> {
        let mut t = DMat::new(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.val[j * self.nrows + i] = self.get(i, j);
            }
        }
        t
    }
}

impl<T: Scalar> DVec<T> {
    /// An empty (all-`None`) dense vector.
    pub fn new(n: Index) -> Self {
        DVec { n, val: vec![None; n] }
    }

    /// Densify a sparse [`Vector`] (forces assembly via `extract_tuples`).
    pub fn from_vector(v: &Vector<T>) -> Self {
        let mut d = DVec::new(v.size());
        for (i, x) in v.extract_tuples() {
            d.val[i] = Some(x);
        }
        d
    }

    /// Sparsify back into a [`Vector`], keeping explicit entries only.
    pub fn to_vector(&self) -> Vector<T> {
        let tuples: Vec<(Index, T)> =
            self.val.iter().enumerate().filter_map(|(i, v)| v.map(|x| (i, x))).collect();
        Vector::from_tuples(self.n, tuples, |_, b| b).expect("valid dims")
    }
}

/// The mask pattern of the spec, evaluated densely.
fn mask_allows(m: Option<Option<bool>>, desc: &Descriptor) -> bool {
    // `m` is None for "no mask", Some(entry) otherwise.
    let base = match m {
        None => true,
        Some(None) => false,
        Some(Some(b)) => desc.mask_structural || b,
    };
    base != desc.mask_complement
}

/// The write rule, dense: `C⟨M,replace⟩ ⊙= T`, element by element.
pub fn write_rule_vec<T: Scalar, Acc: BinaryOp<T, T, T>>(
    c: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    t: &DVec<T>,
    desc: &Descriptor,
) -> DVec<T> {
    let mut out = DVec::new(c.n);
    for i in 0..c.n {
        let z = match accum {
            Some(acc) => match (c.val[i], t.val[i]) {
                (Some(cv), Some(tv)) => Some(acc.apply(cv, tv)),
                (Some(cv), None) => Some(cv),
                (None, tv) => tv,
            },
            None => t.val[i],
        };
        out.val[i] = if mask_allows(mask.map(|m| m.val[i]), desc) {
            z
        } else if desc.replace {
            None
        } else {
            c.val[i]
        };
    }
    out
}

/// The write rule for matrices.
pub fn write_rule_mat<T: Scalar, Acc: BinaryOp<T, T, T>>(
    c: &DMat<T>,
    mask: Option<&DMat<bool>>,
    accum: &Option<Acc>,
    t: &DMat<T>,
    desc: &Descriptor,
) -> DMat<T> {
    let mut out = DMat::new(c.nrows, c.ncols);
    for i in 0..c.nrows {
        for j in 0..c.ncols {
            let z = match accum {
                Some(acc) => match (c.get(i, j), t.get(i, j)) {
                    (Some(cv), Some(tv)) => Some(acc.apply(cv, tv)),
                    (Some(cv), None) => Some(cv),
                    (None, tv) => tv,
                },
                None => t.get(i, j),
            };
            let allowed = mask_allows(mask.map(|m| m.get(i, j)), desc);
            out.set(
                i,
                j,
                if allowed {
                    z
                } else if desc.replace {
                    None
                } else {
                    c.get(i, j)
                },
            );
        }
    }
    out
}

fn eff_a<T: Scalar>(a: &DMat<T>, desc: &Descriptor) -> DMat<T> {
    if desc.transpose_a {
        a.transpose()
    } else {
        a.clone()
    }
}

fn eff_b<T: Scalar>(b: &DMat<T>, desc: &Descriptor) -> DMat<T> {
    if desc.transpose_b {
        b.transpose()
    } else {
        b.clone()
    }
}

/// Brute-force `C⟨M⟩ ⊙= A ⊕.⊗ B`: the triply-nested loop of the paper.
pub fn mxm<A, B, T, SA, SM, Acc>(
    c: &DMat<T>,
    mask: Option<&DMat<bool>>,
    accum: &Option<Acc>,
    s: &Semiring<SA, SM>,
    a: &DMat<A>,
    b: &DMat<B>,
    desc: &Descriptor,
) -> DMat<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let eb = eff_b(b, desc);
    let mut t = DMat::new(ea.nrows, eb.ncols);
    for i in 0..ea.nrows {
        for j in 0..eb.ncols {
            let mut acc: Option<T> = None;
            for k in 0..ea.ncols {
                if let (Some(x), Some(y)) = (ea.get(i, k), eb.get(k, j)) {
                    let prod = s.mul.apply(x, y);
                    acc = Some(match acc {
                        None => prod,
                        Some(cur) => s.add.apply(cur, prod),
                    });
                }
            }
            t.set(i, j, acc);
        }
    }
    write_rule_mat(c, mask, accum, &t, desc)
}

/// Brute-force `w⟨m⟩ ⊙= A ⊕.⊗ u`.
pub fn mxv<A, U, T, SA, SM, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    s: &Semiring<SA, SM>,
    a: &DMat<A>,
    u: &DVec<U>,
    desc: &Descriptor,
) -> DVec<T>
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, U, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let mut t = DVec::new(ea.nrows);
    for i in 0..ea.nrows {
        let mut acc: Option<T> = None;
        for j in 0..ea.ncols {
            if let (Some(x), Some(y)) = (ea.get(i, j), u.val[j]) {
                let prod = s.mul.apply(x, y);
                acc = Some(match acc {
                    None => prod,
                    Some(cur) => s.add.apply(cur, prod),
                });
            }
        }
        t.val[i] = acc;
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Brute-force `wᵀ⟨mᵀ⟩ ⊙= uᵀ ⊕.⊗ A`.
pub fn vxm<U, A, T, SA, SM, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    s: &Semiring<SA, SM>,
    u: &DVec<U>,
    a: &DMat<A>,
    desc: &Descriptor,
) -> DVec<T>
where
    U: Scalar,
    A: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<U, A, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_b(a, desc);
    let mut t = DVec::new(ea.ncols);
    for j in 0..ea.ncols {
        let mut acc: Option<T> = None;
        for i in 0..ea.nrows {
            if let (Some(y), Some(x)) = (u.val[i], ea.get(i, j)) {
                let prod = s.mul.apply(y, x);
                acc = Some(match acc {
                    None => prod,
                    Some(cur) => s.add.apply(cur, prod),
                });
            }
        }
        t.val[j] = acc;
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Dense element-wise union on vectors.
pub fn ewise_add_vec<T, Op, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    op: &Op,
    u: &DVec<T>,
    v: &DVec<T>,
    desc: &Descriptor,
) -> DVec<T>
where
    T: Scalar,
    Op: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut t = DVec::new(u.n);
    for i in 0..u.n {
        t.val[i] = match (u.val[i], v.val[i]) {
            (Some(x), Some(y)) => Some(op.apply(x, y)),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        };
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Dense element-wise intersection on vectors.
pub fn ewise_mult_vec<A, B, T, Op, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    op: &Op,
    u: &DVec<A>,
    v: &DVec<B>,
    desc: &Descriptor,
) -> DVec<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    Op: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut t = DVec::new(u.n);
    for i in 0..u.n {
        t.val[i] = match (u.val[i], v.val[i]) {
            (Some(x), Some(y)) => Some(op.apply(x, y)),
            _ => None,
        };
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Dense element-wise union on matrices.
pub fn ewise_add_mat<T, Op, Acc>(
    c: &DMat<T>,
    mask: Option<&DMat<bool>>,
    accum: &Option<Acc>,
    op: &Op,
    a: &DMat<T>,
    b: &DMat<T>,
    desc: &Descriptor,
) -> DMat<T>
where
    T: Scalar,
    Op: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let eb = eff_b(b, desc);
    let mut t = DMat::new(ea.nrows, ea.ncols);
    for p in 0..t.val.len() {
        t.val[p] = match (ea.val[p], eb.val[p]) {
            (Some(x), Some(y)) => Some(op.apply(x, y)),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        };
    }
    write_rule_mat(c, mask, accum, &t, desc)
}

/// Dense element-wise intersection on matrices.
pub fn ewise_mult_mat<A, B, T, Op, Acc>(
    c: &DMat<T>,
    mask: Option<&DMat<bool>>,
    accum: &Option<Acc>,
    op: &Op,
    a: &DMat<A>,
    b: &DMat<B>,
    desc: &Descriptor,
) -> DMat<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    Op: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let eb = eff_b(b, desc);
    let mut t = DMat::new(ea.nrows, ea.ncols);
    for p in 0..t.val.len() {
        t.val[p] = match (ea.val[p], eb.val[p]) {
            (Some(x), Some(y)) => Some(op.apply(x, y)),
            _ => None,
        };
    }
    write_rule_mat(c, mask, accum, &t, desc)
}

/// Dense apply on vectors.
pub fn apply_vec<A, T, Op, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    op: &Op,
    u: &DVec<A>,
    desc: &Descriptor,
) -> DVec<T>
where
    A: Scalar,
    T: Scalar,
    Op: crate::unaryop::UnaryOp<A, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut t = DVec::new(u.n);
    for i in 0..u.n {
        t.val[i] = u.val[i].map(|x| op.apply(x));
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Dense reduce of a matrix's rows (columns with the transpose flag).
pub fn reduce_mat_to_vec<T, M, Acc>(
    w: &DVec<T>,
    mask: Option<&DVec<bool>>,
    accum: &Option<Acc>,
    monoid: &M,
    a: &DMat<T>,
    desc: &Descriptor,
) -> DVec<T>
where
    T: Scalar,
    M: Monoid<T>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let mut t = DVec::new(ea.nrows);
    for i in 0..ea.nrows {
        let mut acc: Option<T> = None;
        for j in 0..ea.ncols {
            if let Some(x) = ea.get(i, j) {
                acc = Some(match acc {
                    None => x,
                    Some(cur) => monoid.apply(cur, x),
                });
            }
        }
        t.val[i] = acc;
    }
    write_rule_vec(w, mask, accum, &t, desc)
}

/// Dense scalar reduce.
pub fn reduce_mat_to_scalar<T: Scalar, M: Monoid<T>>(monoid: &M, a: &DMat<T>) -> T {
    let mut acc = monoid.identity();
    for v in a.val.iter().flatten() {
        acc = monoid.apply(acc, *v);
    }
    acc
}

/// Dense select on matrices.
pub fn select_mat<T, Op, Acc>(
    c: &DMat<T>,
    mask: Option<&DMat<bool>>,
    accum: &Option<Acc>,
    pred: &Op,
    a: &DMat<T>,
    desc: &Descriptor,
) -> DMat<T>
where
    T: Scalar,
    Op: crate::unaryop::IndexUnaryOp<T, bool>,
    Acc: BinaryOp<T, T, T>,
{
    let ea = eff_a(a, desc);
    let mut t = DMat::new(ea.nrows, ea.ncols);
    for i in 0..ea.nrows {
        for j in 0..ea.ncols {
            t.set(i, j, ea.get(i, j).filter(|&x| pred.apply(i, j, x)));
        }
    }
    write_rule_mat(c, mask, accum, &t, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PLUS_TIMES;

    #[test]
    fn round_trip_matrix() {
        let m = Matrix::from_tuples(3, 2, vec![(0, 1, 5), (2, 0, 7)], |_, b| b).expect("m");
        let d = DMat::from_matrix(&m);
        assert_eq!(d.get(0, 1), Some(5));
        assert_eq!(d.get(0, 0), None);
        assert_eq!(d.to_matrix().extract_tuples(), m.extract_tuples());
    }

    #[test]
    fn round_trip_vector() {
        let v = Vector::from_tuples(4, vec![(1, 2.5)], |_, b| b).expect("v");
        let d = DVec::from_vector(&v);
        assert_eq!(d.to_vector().extract_tuples(), v.extract_tuples());
    }

    #[test]
    fn mimic_mxm_known_product() {
        let a = DMat::from_matrix(
            &Matrix::from_tuples(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)], |_, b| b)
                .expect("a"),
        );
        let c0 = DMat::<i64>::new(2, 2);
        let c = mxm(&c0, None, &crate::ops::NOACC, &PLUS_TIMES, &a, &a, &Descriptor::default());
        // A² = [7 10; 15 22]
        assert_eq!(c.get(0, 0), Some(7));
        assert_eq!(c.get(0, 1), Some(10));
        assert_eq!(c.get(1, 0), Some(15));
        assert_eq!(c.get(1, 1), Some(22));
    }

    #[test]
    fn mimic_write_rule_replace_semantics() {
        let c = DVec { n: 2, val: vec![Some(1), Some(2)] };
        let t = DVec { n: 2, val: vec![Some(10), None] };
        let mask = DVec { n: 2, val: vec![Some(true), None] };
        let d = Descriptor::new().replace();
        let out = write_rule_vec(&c, Some(&mask), &crate::ops::NOACC, &t, &d);
        // Position 0 masked-in: takes t; position 1 masked-out + replace:
        // deleted.
        assert_eq!(out.val, vec![Some(10), None]);
    }
}
