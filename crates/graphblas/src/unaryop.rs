//! Unary operators (`GrB_UnaryOp`) and index-unary operators
//! (`GrB_IndexUnaryOp`, used by `select` and positional `apply`).
//!
//! As with binary operators, the built-ins are zero-sized structs and any
//! suitable closure is accepted as a user-defined operator.

use crate::types::{Index, Num, Scalar};

/// A unary operator `z = f(x)`.
pub trait UnaryOp<A: Scalar, C: Scalar>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, a: A) -> C;
}

impl<A: Scalar, C: Scalar, F> UnaryOp<A, C> for F
where
    F: Fn(A) -> C + Copy + Send + Sync,
{
    fn apply(&self, a: A) -> C {
        self(a)
    }
}

/// `z = x` (`GrB_IDENTITY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl<T: Scalar> UnaryOp<T, T> for Identity {
    fn apply(&self, a: T) -> T {
        a
    }
}

/// `z = -x` (`GrB_AINV`, the additive inverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ainv;

impl<T: Num> UnaryOp<T, T> for Ainv {
    fn apply(&self, a: T) -> T {
        T::zero().nsub(a)
    }
}

/// `z = 1/x` (`GrB_MINV`, the multiplicative inverse; integer division
/// truncates and `1/0` saturates to the type's maximum — see
/// [`crate::types::Num::ndiv`] for the saturating division policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Minv;

impl<T: Num> UnaryOp<T, T> for Minv {
    fn apply(&self, a: T) -> T {
        T::one().ndiv(a)
    }
}

/// `z = !x` on truth values (`GrB_LNOT`), returned in the input domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lnot;

impl<T: Num> UnaryOp<T, T> for Lnot {
    fn apply(&self, a: T) -> T {
        if a == T::zero() {
            T::one()
        } else {
            T::zero()
        }
    }
}

/// `z = 1` (`GxB_ONE`), useful for extracting the pattern of a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct One;

impl<A: Scalar, C: Num> UnaryOp<A, C> for One {
    fn apply(&self, _: A) -> C {
        C::one()
    }
}

/// `z = |x|` (`GrB_ABS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Abs;

impl<T: Num> UnaryOp<T, T> for Abs {
    fn apply(&self, a: T) -> T {
        if a < T::zero() {
            T::zero().nsub(a)
        } else {
            a
        }
    }
}

/// An index-unary operator `z = f(i, j, x)`: sees the entry's position as
/// well as its value. For vectors, `j` is always 0. This powers `select`
/// (with a `bool` result) and positional `apply`.
pub trait IndexUnaryOp<A: Scalar, C: Scalar>: Copy + Send + Sync {
    /// Apply the operator to the entry `x` stored at position `(i, j)`.
    fn apply(&self, i: Index, j: Index, a: A) -> C;
}

impl<A: Scalar, C: Scalar, F> IndexUnaryOp<A, C> for F
where
    F: Fn(Index, Index, A) -> C + Copy + Send + Sync,
{
    fn apply(&self, i: Index, j: Index, a: A) -> C {
        self(i, j, a)
    }
}

/// Keep entries in the strictly lower triangle `i > j` (`GrB_TRIL` with
/// offset -1 combined into one named op, as used by triangle counting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrictLower;

impl<T: Scalar> IndexUnaryOp<T, bool> for StrictLower {
    fn apply(&self, i: Index, j: Index, _: T) -> bool {
        i > j
    }
}

/// Keep entries in the strictly upper triangle `i < j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrictUpper;

impl<T: Scalar> IndexUnaryOp<T, bool> for StrictUpper {
    fn apply(&self, i: Index, j: Index, _: T) -> bool {
        i < j
    }
}

/// Keep diagonal entries `i == j` (`GrB_DIAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Diag;

impl<T: Scalar> IndexUnaryOp<T, bool> for Diag {
    fn apply(&self, i: Index, j: Index, _: T) -> bool {
        i == j
    }
}

/// Keep off-diagonal entries `i != j` (`GrB_OFFDIAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Offdiag;

impl<T: Scalar> IndexUnaryOp<T, bool> for Offdiag {
    fn apply(&self, i: Index, j: Index, _: T) -> bool {
        i != j
    }
}

/// Keep entries whose value is at least the threshold (`GrB_VALUEGE`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueGe<T>(pub T);

impl<T: Scalar + PartialOrd> IndexUnaryOp<T, bool> for ValueGe<T> {
    fn apply(&self, _: Index, _: Index, a: T) -> bool {
        a >= self.0
    }
}

/// Keep entries whose value is not equal to the given value (`GrB_VALUENE`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueNe<T>(pub T);

impl<T: Scalar> IndexUnaryOp<T, bool> for ValueNe<T> {
    fn apply(&self, _: Index, _: Index, a: T) -> bool {
        a != self.0
    }
}

/// `z = i` — the row index of the entry (`GrB_ROWINDEX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowIndex;

impl<T: Scalar> IndexUnaryOp<T, u64> for RowIndex {
    fn apply(&self, i: Index, _: Index, _: T) -> u64 {
        i as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_unary_ops() {
        assert_eq!(UnaryOp::<i32, i32>::apply(&Identity, -4), -4);
        assert_eq!(UnaryOp::<i32, i32>::apply(&Ainv, -4), 4);
        assert_eq!(UnaryOp::<f64, f64>::apply(&Minv, 4.0), 0.25);
        assert_eq!(UnaryOp::<i32, i32>::apply(&Minv, 0), i32::MAX, "1/0 saturates");
        assert_eq!(UnaryOp::<i32, i32>::apply(&Lnot, 0), 1);
        assert_eq!(UnaryOp::<i32, i32>::apply(&Lnot, 7), 0);
        assert_eq!(UnaryOp::<f64, u8>::apply(&One, 3.5), 1);
        assert_eq!(UnaryOp::<i32, i32>::apply(&Abs, -4), 4);
        assert_eq!(UnaryOp::<u32, u32>::apply(&Abs, 4), 4);
    }

    #[test]
    fn positional_select_ops() {
        assert!(IndexUnaryOp::<i32, bool>::apply(&StrictLower, 2, 1, 0));
        assert!(!IndexUnaryOp::<i32, bool>::apply(&StrictLower, 1, 1, 0));
        assert!(IndexUnaryOp::<i32, bool>::apply(&StrictUpper, 1, 2, 0));
        assert!(IndexUnaryOp::<i32, bool>::apply(&Diag, 3, 3, 0));
        assert!(IndexUnaryOp::<i32, bool>::apply(&Offdiag, 3, 4, 0));
    }

    #[test]
    fn value_select_ops() {
        assert!(IndexUnaryOp::<i32, bool>::apply(&ValueGe(3), 0, 0, 5));
        assert!(!IndexUnaryOp::<i32, bool>::apply(&ValueGe(3), 0, 0, 2));
        assert!(IndexUnaryOp::<i32, bool>::apply(&ValueNe(0), 0, 0, 2));
    }

    #[test]
    fn closure_index_unary() {
        let band = |i: Index, j: Index, _: f64| i.abs_diff(j) <= 1;
        assert!(IndexUnaryOp::<f64, bool>::apply(&band, 4, 5, 0.0));
        assert!(!IndexUnaryOp::<f64, bool>::apply(&band, 4, 6, 0.0));
    }
}
