//! O(1) import/export of raw sparse arrays (§IV of the paper).
//!
//! The export removes the `Ap`/`Ai`/`Ax` arrays from the opaque object and
//! hands ownership to the caller — the "move constructor" strategy the
//! paper describes — in `O(1)` when the matrix is already stored in the
//! requested format. The import is symmetric: the arrays are incorporated
//! as-is, so an export followed by an import reconstructs the matrix
//! perfectly with no copying. Rust's ownership model expresses the
//! contract the paper has to legislate in prose: the arrays are *moved*,
//! so exactly one side owns them at any time, and the malloc/free pairing
//! problem of the C API disappears.
//!
//! Contrast with [`crate::Matrix::extract_tuples`], which is `Ω(e)`.

use crate::error::{Error, Result};
use crate::matrix::{Matrix, Store};
use crate::sparse::{Cs, Hyper};
use crate::types::{Index, Scalar};

/// The raw arrays of a standard compressed matrix: `(nmajor, nminor, ptr,
/// idx, val)` with `ptr` of length `nmajor + 1`.
pub type RawCs<T> = (Index, Index, Vec<usize>, Vec<Index>, Vec<T>);

/// The raw arrays of a hypersparse matrix: `(nmajor, nminor, heads, ptr,
/// idx, val)`.
pub type RawHyper<T> = (Index, Index, Vec<Index>, Vec<usize>, Vec<usize>, Vec<T>);

fn validate_cs<T: Scalar>(
    nmajor: Index,
    nminor: Index,
    ptr: &[usize],
    idx: &[Index],
    val: &[T],
) -> Result<()> {
    if ptr.len() != nmajor + 1 {
        return Err(Error::invalid("import: ptr length must be nmajor + 1"));
    }
    if ptr[0] != 0 || *ptr.last().expect("nonempty") != idx.len() || idx.len() != val.len() {
        return Err(Error::invalid("import: array lengths inconsistent"));
    }
    // Full structural validation is O(e); keep the O(1) contract in
    // release builds and verify thoroughly under debug assertions.
    #[cfg(debug_assertions)]
    {
        for i in 0..nmajor {
            if ptr[i] > ptr[i + 1] {
                return Err(Error::invalid("import: ptr not monotone"));
            }
            let seg = &idx[ptr[i]..ptr[i + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::invalid("import: indices not strictly sorted"));
                }
            }
            if let Some(&last) = seg.last() {
                if last >= nminor {
                    return Err(Error::oob(last, nminor));
                }
            }
        }
    }
    let _ = nminor;
    Ok(())
}

impl<T: Scalar> Matrix<T> {
    /// Import CSR arrays, taking ownership (`GxB_Matrix_import_CSR`).
    /// `O(1)` apart from cheap length checks (full validation runs under
    /// debug assertions).
    pub fn import_csr(
        nrows: Index,
        ncols: Index,
        ptr: Vec<usize>,
        idx: Vec<Index>,
        val: Vec<T>,
    ) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(Error::invalid("matrix dimensions must be >= 1"));
        }
        validate_cs(nrows, ncols, &ptr, &idx, &val)?;
        Ok(Matrix::from_store(
            nrows,
            ncols,
            Store::Csr(Cs { nmajor: nrows, nminor: ncols, ptr, idx, val }),
        ))
    }

    /// Import CSC arrays, taking ownership (`GxB_Matrix_import_CSC`).
    pub fn import_csc(
        nrows: Index,
        ncols: Index,
        ptr: Vec<usize>,
        idx: Vec<Index>,
        val: Vec<T>,
    ) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(Error::invalid("matrix dimensions must be >= 1"));
        }
        validate_cs(ncols, nrows, &ptr, &idx, &val)?;
        Ok(Matrix::from_store(
            nrows,
            ncols,
            Store::Csc(Cs { nmajor: ncols, nminor: nrows, ptr, idx, val }),
        ))
    }

    /// Import hypersparse-CSR arrays (`GxB_Matrix_import_HyperCSR`).
    pub fn import_hyper_csr(
        nrows: Index,
        ncols: Index,
        heads: Vec<Index>,
        ptr: Vec<usize>,
        idx: Vec<Index>,
        val: Vec<T>,
    ) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(Error::invalid("matrix dimensions must be >= 1"));
        }
        if ptr.len() != heads.len() + 1 || idx.len() != val.len() {
            return Err(Error::invalid("import: array lengths inconsistent"));
        }
        let h = Hyper { nmajor: nrows, nminor: ncols, heads, ptr, idx, val };
        #[cfg(debug_assertions)]
        h.check().map_err(Error::invalid)?;
        Ok(Matrix::from_store(nrows, ncols, Store::HyperCsr(h)))
    }

    /// Export as CSR arrays, consuming the matrix
    /// (`GxB_Matrix_export_CSR`). `O(1)` when already stored as CSR;
    /// otherwise one format conversion is performed first.
    pub fn export_csr(self) -> RawCs<T> {
        let mut inner = self.inner.into_inner();
        inner.assemble();
        inner.ensure_row_major();
        let cs = match inner.store {
            Store::Csr(cs) => cs,
            Store::HyperCsr(h) => h.to_cs(),
            // The read-optimized form has no raw arrays to move out;
            // exporting it pays one decode.
            Store::CompressedCsr(cm) => cm.decode(),
            _ => unreachable!("ensure_row_major"),
        };
        (inner.nrows, inner.ncols, cs.ptr, cs.idx, cs.val)
    }

    /// Export as CSC arrays, consuming the matrix. `O(1)` when already
    /// stored column-major.
    pub fn export_csc(mut self) -> RawCs<T> {
        self.set_col_major();
        let inner = self.inner.into_inner();
        let cs = match inner.store {
            Store::Csc(cs) => cs,
            Store::HyperCsc(h) => h.to_cs(),
            _ => unreachable!("set_col_major"),
        };
        (inner.nrows, inner.ncols, cs.ptr, cs.idx, cs.val)
    }

    /// Export as hypersparse-CSR arrays, consuming the matrix. `O(1)` when
    /// already hypersparse row-major.
    pub fn export_hyper_csr(self) -> RawHyper<T> {
        let mut inner = self.inner.into_inner();
        inner.assemble();
        inner.ensure_row_major();
        let h = match inner.store {
            Store::HyperCsr(h) => h,
            Store::Csr(cs) => cs.to_hyper(),
            Store::CompressedCsr(cm) => cm.decode().to_hyper(),
            _ => unreachable!("ensure_row_major"),
        };
        (inner.nrows, inner.ncols, h.heads, h.ptr, h.idx, h.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trip_is_lossless() {
        let m = Matrix::from_tuples(3, 3, vec![(0, 1, 1.5), (2, 0, 2.5)], |_, b| b).expect("build");
        let before = m.extract_tuples();
        let (nr, nc, ptr, idx, val) = m.export_csr();
        assert_eq!((nr, nc), (3, 3));
        assert_eq!(ptr, vec![0, 1, 1, 2]);
        let again = Matrix::import_csr(nr, nc, ptr, idx, val).expect("import");
        assert_eq!(again.extract_tuples(), before);
    }

    #[test]
    fn csc_round_trip() {
        let m = Matrix::from_tuples(2, 3, vec![(0, 2, 1), (1, 0, 2)], |_, b| b).expect("m");
        let before = m.extract_tuples();
        let (nr, nc, ptr, idx, val) = m.export_csc();
        // Column pointers: col0 has 1 entry, col1 none, col2 one.
        assert_eq!(ptr, vec![0, 1, 1, 2]);
        let again = Matrix::import_csc(nr, nc, ptr, idx, val).expect("import");
        assert_eq!(again.extract_tuples(), before);
    }

    #[test]
    fn hyper_round_trip_huge_dims() {
        let n = 1usize << 35;
        let mut m = Matrix::<i32>::new(n, n).expect("m");
        m.set_element(42, 7, 1).expect("set");
        m.set_element(1 << 34, 9, 2).expect("set");
        let (nr, nc, heads, ptr, idx, val) = m.export_hyper_csr();
        assert_eq!(heads, vec![42, 1 << 34]);
        let again = Matrix::import_hyper_csr(nr, nc, heads, ptr, idx, val).expect("import");
        assert_eq!(again.get(1 << 34, 9), Some(2));
    }

    #[test]
    fn import_validates_lengths() {
        assert!(Matrix::<i32>::import_csr(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
        assert!(Matrix::<i32>::import_csr(2, 2, vec![0, 1, 2], vec![0], vec![1]).is_err());
        assert!(Matrix::<i32>::import_csr(0, 2, vec![0], vec![], vec![]).is_err());
    }

    #[test]
    fn import_is_usable_in_operations() {
        // Import, then immediately multiply: the opaque object is fully
        // functional, which is the point of §IV.
        let a =
            Matrix::import_csr(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).expect("import");
        let u = crate::Vector::from_tuples(2, vec![(0, 3.0), (1, 4.0)], |_, b| b).expect("u");
        let mut w = crate::Vector::<f64>::new(2).expect("w");
        crate::ops::mxv(
            &mut w,
            None,
            crate::ops::NOACC,
            &crate::semiring::PLUS_TIMES,
            &a,
            &u,
            &crate::Descriptor::default(),
        )
        .expect("mxv");
        assert_eq!(w.extract_tuples(), vec![(0, 4.0), (1, 3.0)]);
    }
}
