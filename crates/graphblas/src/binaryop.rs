//! Binary operators (`GrB_BinaryOp`).
//!
//! A binary operator maps `(A, B) -> C` over scalar domains. The built-in
//! operator set mirrors the GraphBLAS C API (FIRST, SECOND, MIN, MAX, PLUS,
//! MINUS, TIMES, DIV, the six comparisons, and the Boolean ops) plus the
//! SuiteSparse extensions (ISEQ..ISLE, LOR/LAND/LXOR on all types, PAIR,
//! RMINUS, RDIV) that the paper's "960 built-in semirings" figure counts.
//!
//! Operators are zero-sized unit structs; a generic `impl` per domain plays
//! the role of SuiteSparse's code generator — the compiler monomorphizes a
//! fused kernel for every (operator, type) pair actually used. User-defined
//! operators are ordinary closures: any `Fn(A, B) -> C` qualifies.

use crate::types::{Num, Scalar};

/// Identity of a built-in operator, used by the kernel-specialization table
/// (`ops::spec`) to recognize the handful of semirings that get
/// monomorphized inner loops. Only operators that participate in a
/// specialized semiring report an id; everything else — including every
/// user-defined closure — stays `None` and takes the generic path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpId {
    /// `GrB_PLUS` (wrapping integer add).
    Plus,
    /// Saturating add — the tropical-semiring additive operator.
    SaturatingPlus,
    /// `GrB_TIMES`.
    Times,
    /// `GrB_MIN`.
    Min,
    /// `GxB_PAIR` / `GrB_ONEB`.
    Pair,
    /// `GrB_FIRST`.
    First,
    /// `GrB_SECOND`.
    Second,
    /// `GrB_LOR`.
    Lor,
    /// `GrB_LAND`.
    Land,
    /// The `GxB_ANY` pseudo-monoid operator.
    Any,
}

/// A binary operator `z = f(x, y)` over GraphBLAS domains.
pub trait BinaryOp<A: Scalar, B: Scalar, C: Scalar>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, a: A, b: B) -> C;

    /// Identity of this operator for kernel specialization, or `None` for
    /// operators with no specialized kernels (the default — closures and
    /// most built-ins inherit it).
    fn op_id(&self) -> Option<OpId> {
        None
    }
}

/// Any copyable closure is a user-defined binary operator.
impl<A: Scalar, B: Scalar, C: Scalar, F> BinaryOp<A, B, C> for F
where
    F: Fn(A, B) -> C + Copy + Send + Sync,
{
    fn apply(&self, a: A, b: B) -> C {
        self(a, b)
    }
}

macro_rules! unit_op {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name;
    };
}

unit_op!(
    /// `z = x` (`GrB_FIRST`).
    First
);
unit_op!(
    /// `z = y` (`GrB_SECOND`).
    Second
);
unit_op!(
    /// `z = 1` regardless of inputs (`GxB_PAIR` / `GrB_ONEB`).
    Pair
);
unit_op!(
    /// `z = min(x, y)` (`GrB_MIN`).
    Min
);
unit_op!(
    /// `z = max(x, y)` (`GrB_MAX`).
    Max
);
unit_op!(
    /// `z = x + y` (`GrB_PLUS`).
    Plus
);
unit_op!(
    /// `z = x + y` with saturating integer semantics — the additive
    /// operator of the tropical semirings, where the `MAX`/`MIN` sentinels
    /// play ±∞ and must absorb rather than wrap (see [`Num::sadd`]).
    SaturatingPlus
);
unit_op!(
    /// `z = x - y` (`GrB_MINUS`).
    Minus
);
unit_op!(
    /// `z = y - x` (`GxB_RMINUS`).
    Rminus
);
unit_op!(
    /// `z = x * y` (`GrB_TIMES`).
    Times
);
unit_op!(
    /// `z = x / y` (`GrB_DIV`).
    Div
);
unit_op!(
    /// `z = y / x` (`GxB_RDIV`).
    Rdiv
);
unit_op!(
    /// `z = (x == y)` in the input domain (`GxB_ISEQ`).
    Iseq
);
unit_op!(
    /// `z = (x != y)` in the input domain (`GxB_ISNE`).
    Isne
);
unit_op!(
    /// `z = (x > y)` in the input domain (`GxB_ISGT`).
    Isgt
);
unit_op!(
    /// `z = (x < y)` in the input domain (`GxB_ISLT`).
    Islt
);
unit_op!(
    /// `z = (x >= y)` in the input domain (`GxB_ISGE`).
    Isge
);
unit_op!(
    /// `z = (x <= y)` in the input domain (`GxB_ISLE`).
    Isle
);
unit_op!(
    /// Logical OR of the truth values of x and y (`GrB_LOR`).
    Lor
);
unit_op!(
    /// Logical AND of the truth values of x and y (`GrB_LAND`).
    Land
);
unit_op!(
    /// Logical XOR of the truth values of x and y (`GrB_LXOR`).
    Lxor
);
unit_op!(
    /// `z = (x == y)` as BOOL (`GrB_EQ`).
    Eq
);
unit_op!(
    /// `z = (x != y)` as BOOL (`GrB_NE`).
    Ne
);
unit_op!(
    /// `z = (x > y)` as BOOL (`GrB_GT`).
    Gt
);
unit_op!(
    /// `z = (x < y)` as BOOL (`GrB_LT`).
    Lt
);
unit_op!(
    /// `z = (x >= y)` as BOOL (`GrB_GE`).
    Ge
);
unit_op!(
    /// `z = (x <= y)` as BOOL (`GrB_LE`).
    Le
);

impl<A: Scalar, B: Scalar> BinaryOp<A, B, A> for First {
    fn apply(&self, a: A, _: B) -> A {
        a
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::First)
    }
}

impl<A: Scalar, B: Scalar> BinaryOp<A, B, B> for Second {
    fn apply(&self, _: A, b: B) -> B {
        b
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Second)
    }
}

impl<A: Scalar, B: Scalar, C: Num> BinaryOp<A, B, C> for Pair {
    fn apply(&self, _: A, _: B) -> C {
        C::one()
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Pair)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Min {
    fn apply(&self, a: T, b: T) -> T {
        a.nmin(b)
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Min)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Max {
    fn apply(&self, a: T, b: T) -> T {
        a.nmax(b)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Plus {
    fn apply(&self, a: T, b: T) -> T {
        a.nadd(b)
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Plus)
    }
}

impl<T: Num> BinaryOp<T, T, T> for SaturatingPlus {
    fn apply(&self, a: T, b: T) -> T {
        a.sadd(b)
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::SaturatingPlus)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Minus {
    fn apply(&self, a: T, b: T) -> T {
        a.nsub(b)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Rminus {
    fn apply(&self, a: T, b: T) -> T {
        b.nsub(a)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Times {
    fn apply(&self, a: T, b: T) -> T {
        a.nmul(b)
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Times)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Div {
    fn apply(&self, a: T, b: T) -> T {
        a.ndiv(b)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Rdiv {
    fn apply(&self, a: T, b: T) -> T {
        b.ndiv(a)
    }
}

macro_rules! is_op {
    ($name:ident, $cmp:tt) => {
        impl<T: Num> BinaryOp<T, T, T> for $name {
            fn apply(&self, a: T, b: T) -> T {
                if a $cmp b { T::one() } else { T::zero() }
            }
        }
    };
}

is_op!(Iseq, ==);
is_op!(Isne, !=);
is_op!(Isgt, >);
is_op!(Islt, <);
is_op!(Isge, >=);
is_op!(Isle, <=);

macro_rules! cmp_op {
    ($name:ident, $cmp:tt) => {
        impl<T: Scalar + PartialOrd> BinaryOp<T, T, bool> for $name {
            fn apply(&self, a: T, b: T) -> bool {
                a $cmp b
            }
        }
    };
}

cmp_op!(Eq, ==);
cmp_op!(Ne, !=);
cmp_op!(Gt, >);
cmp_op!(Lt, <);
cmp_op!(Ge, >=);
cmp_op!(Le, <=);

/// Truth value of a scalar: nonzero means true, as in the C API typecast
/// from any domain to BOOL.
#[inline]
pub fn truthy<T: Scalar>(v: T) -> bool {
    v != T::zero()
}

impl<T: Scalar> BinaryOp<T, T, T> for Lor {
    fn apply(&self, a: T, b: T) -> T {
        if truthy(a) {
            a
        } else if truthy(b) {
            b
        } else {
            T::zero()
        }
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Lor)
    }
}

impl<T: Scalar> BinaryOp<T, T, T> for Land {
    fn apply(&self, a: T, b: T) -> T {
        if truthy(a) && truthy(b) {
            if truthy(a) {
                a
            } else {
                b
            }
        } else {
            T::zero()
        }
    }
    fn op_id(&self) -> Option<OpId> {
        Some(OpId::Land)
    }
}

impl<T: Num> BinaryOp<T, T, T> for Lxor {
    fn apply(&self, a: T, b: T) -> T {
        if truthy(a) != truthy(b) {
            T::one()
        } else {
            T::zero()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Plus, 2, 3), 5);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Minus, 2, 3), -1);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Rminus, 2, 3), 1);
        assert_eq!(BinaryOp::<f64, f64, f64>::apply(&Times, 2.0, 3.5), 7.0);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Div, 7, 2), 3);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Rdiv, 2, 7), 3);
    }

    #[test]
    fn selection_ops() {
        assert_eq!(BinaryOp::<i32, f64, i32>::apply(&First, 7, 2.5), 7);
        assert_eq!(BinaryOp::<i32, f64, f64>::apply(&Second, 7, 2.5), 2.5);
        assert_eq!(BinaryOp::<i32, i32, u8>::apply(&Pair, 7, 9), 1u8);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Min, 7, 2), 2);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Max, 7, 2), 7);
    }

    #[test]
    fn is_ops_return_input_domain() {
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Iseq, 3, 3), 1);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Isgt, 3, 3), 0);
        assert_eq!(BinaryOp::<f64, f64, f64>::apply(&Isle, 2.0, 3.0), 1.0);
    }

    #[test]
    fn comparison_ops_return_bool() {
        assert!(BinaryOp::<i32, i32, bool>::apply(&Eq, 3, 3));
        assert!(BinaryOp::<i32, i32, bool>::apply(&Lt, 2, 3));
        assert!(!BinaryOp::<f64, f64, bool>::apply(&Ge, 2.0, 3.0));
    }

    #[test]
    fn logical_ops_on_any_domain() {
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Lor, 0, 5), 5);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Land, 2, 0), 0);
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&Lxor, 2, 0), 1);
        assert!(BinaryOp::<bool, bool, bool>::apply(&Lor, false, true));
    }

    #[test]
    fn closures_are_binary_ops() {
        let hypot = |a: f64, b: f64| (a * a + b * b).sqrt();
        assert_eq!(BinaryOp::<f64, f64, f64>::apply(&hypot, 3.0, 4.0), 5.0);
    }

    #[test]
    fn saturating_plus_clamps_integers() {
        assert_eq!(BinaryOp::<i32, i32, i32>::apply(&SaturatingPlus, 2, 3), 5);
        assert_eq!(BinaryOp::<i64, i64, i64>::apply(&SaturatingPlus, i64::MAX, 7), i64::MAX);
        assert_eq!(BinaryOp::<f64, f64, f64>::apply(&SaturatingPlus, 1.5, 2.5), 4.0);
    }

    #[test]
    fn op_ids_cover_the_specialized_set_only() {
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Plus), Some(OpId::Plus));
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&SaturatingPlus), Some(OpId::SaturatingPlus));
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Times), Some(OpId::Times));
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Min), Some(OpId::Min));
        assert_eq!(BinaryOp::<u64, u64, u64>::op_id(&Pair), Some(OpId::Pair));
        assert_eq!(BinaryOp::<bool, bool, bool>::op_id(&Lor), Some(OpId::Lor));
        assert_eq!(BinaryOp::<bool, bool, bool>::op_id(&Land), Some(OpId::Land));
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&First), Some(OpId::First));
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Second), Some(OpId::Second));
        // Unspecialized built-ins and closures stay on the generic path.
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Max), None);
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&Minus), None);
        let f = |a: i64, b: i64| a ^ b;
        assert_eq!(BinaryOp::<i64, i64, i64>::op_id(&f), None);
    }
}
