//! Error handling modeled on the GraphBLAS C API return codes.
//!
//! The C specification distinguishes *API errors* (invalid usage — bad
//! dimensions, out-of-bounds indices, invalid objects) from *execution
//! errors* (out of memory, panics inside kernels). We map both onto a single
//! [`Error`] enum carried by [`Result`], the idiomatic Rust equivalent of the
//! `GrB_Info` return code.

use std::fmt;

/// The GraphBLAS result type. Every fallible operation returns this.
pub type Result<T> = std::result::Result<T, Error>;

/// Error codes mirroring `GrB_Info` failure values from the C API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Operand dimensions are incompatible (`GrB_DIMENSION_MISMATCH`).
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        detail: String,
    },
    /// A row or column index exceeds the object's dimensions
    /// (`GrB_INDEX_OUT_OF_BOUNDS`).
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The dimension it was checked against.
        bound: u64,
    },
    /// A scalar argument has an invalid value (`GrB_INVALID_VALUE`), e.g. a
    /// zero-length dimension where one is required, or an unsorted index
    /// list passed to a routine that requires sorted input.
    InvalidValue {
        /// Description of the violated constraint.
        detail: String,
    },
    /// An object is used before it has entries required by the operation,
    /// e.g. extracting an element at a position with no stored entry
    /// (`GrB_NO_VALUE`). This is informational in the C API; we surface it
    /// as an error variant so callers can match on it.
    NoValue,
    /// The output object cannot alias an input for this operation and the
    /// implementation could not resolve the alias internally.
    Alias,
    /// An unrecoverable internal invariant was violated (`GrB_PANIC`).
    Internal {
        /// Description of the broken invariant.
        detail: String,
    },
}

impl Error {
    /// Convenience constructor for dimension mismatches.
    pub fn dim(detail: impl Into<String>) -> Self {
        Error::DimensionMismatch { detail: detail.into() }
    }

    /// Convenience constructor for invalid scalar values.
    pub fn invalid(detail: impl Into<String>) -> Self {
        Error::InvalidValue { detail: detail.into() }
    }

    /// Convenience constructor for out-of-bounds indices.
    pub fn oob(index: usize, bound: usize) -> Self {
        Error::IndexOutOfBounds { index: index as u64, bound: bound as u64 }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            Error::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (dimension {bound})")
            }
            Error::InvalidValue { detail } => write!(f, "invalid value: {detail}"),
            Error::NoValue => write!(f, "no entry at the requested position"),
            Error::Alias => write!(f, "unresolvable alias between output and input"),
            Error::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = Error::dim("A is 3x4, B is 5x6");
        assert_eq!(e.to_string(), "dimension mismatch: A is 3x4, B is 5x6");
    }

    #[test]
    fn display_out_of_bounds() {
        let e = Error::oob(10, 4);
        assert_eq!(e.to_string(), "index 10 out of bounds (dimension 4)");
    }

    #[test]
    fn display_no_value() {
        assert_eq!(Error::NoValue.to_string(), "no entry at the requested position");
    }

    #[test]
    fn errors_compare_equal_by_content() {
        assert_eq!(Error::oob(1, 2), Error::oob(1, 2));
        assert_ne!(Error::oob(1, 2), Error::oob(2, 2));
    }
}
