//! Scalar domains.
//!
//! The GraphBLAS C API defines 11 built-in types (`GrB_BOOL`, signed and
//! unsigned integers of 8/16/32/64 bits, and 32/64-bit floats). In Rust,
//! monomorphized generics play the role of the C polymorphic interface: any
//! type implementing [`Scalar`] can be stored in a matrix or vector, and the
//! arithmetic subset implements [`Num`], which supplies the operations the
//! built-in operator library is generated from.

/// Index type for matrix and vector dimensions and positions.
///
/// The C API uses `GrB_Index` (`uint64_t`); on the 64-bit targets this
/// library supports, `usize` is equivalent and indexes Rust slices directly.
pub type Index = usize;

/// Marker passed to extract/assign to select *all* indices (`GrB_ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct All;

/// A type that can be stored in a GraphBLAS matrix or vector.
///
/// This is the Rust analogue of a `GrB_Type`: values are plain data (`Copy`),
/// thread-safe, comparable for the exact-equality conformance tests, and
/// carry a name used by the type/operator registry for the semiring census.
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + Default + 'static {
    /// The GraphBLAS name of the type, e.g. `"FP64"`.
    const NAME: &'static str;

    /// The conventional implicit-zero of the domain. GraphBLAS semantics
    /// never materialize this value implicitly; it is used only by
    /// import/export of dense data and by the dense reference mimic.
    fn zero() -> Self {
        Self::default()
    }

    /// Cast from `f64`, saturating where required. Used by generators and
    /// the reference mimic; mirrors the C API's implicit typecast rules.
    fn from_f64(v: f64) -> Self;

    /// Cast to `f64` (for checks, norms, and printing).
    fn to_f64(self) -> f64;
}

macro_rules! impl_scalar_int {
    ($($t:ty => $name:literal),* $(,)?) => {$(
        impl Scalar for $t {
            const NAME: &'static str = $name;
            fn from_f64(v: f64) -> Self { v as $t }
            fn to_f64(self) -> f64 { self as f64 }
        }
    )*};
}

impl_scalar_int!(
    i8 => "INT8", i16 => "INT16", i32 => "INT32", i64 => "INT64",
    u8 => "UINT8", u16 => "UINT16", u32 => "UINT32", u64 => "UINT64",
    f32 => "FP32", f64 => "FP64",
);

impl Scalar for bool {
    const NAME: &'static str = "BOOL";
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
}

/// Arithmetic scalar types: the domain over which the built-in operator
/// library (PLUS, TIMES, MIN, MAX, ...) is defined.
///
/// Integer addition/multiplication wrap rather than panic, matching the C
/// semantics of the GraphBLAS built-in operators (C integer arithmetic is
/// modular for unsigned and in-practice wrapping for signed).
pub trait Num: Scalar + PartialOrd {
    /// Addition (wrapping for integers).
    fn nadd(self, o: Self) -> Self;
    /// Subtraction (wrapping for integers).
    fn nsub(self, o: Self) -> Self;
    /// Multiplication (wrapping for integers).
    fn nmul(self, o: Self) -> Self;
    /// Division, as a total function with *saturating* semantics for the
    /// integer domains (the policy SuiteSparse:GraphBLAS documents for its
    /// built-in `GrB_DIV`):
    ///
    /// * `0 / 0 = 0`;
    /// * `x / 0` saturates toward the sign of `x` — `MAX` for positive `x`,
    ///   `MIN` for negative `x` (unsigned: `MAX` for any nonzero `x`);
    /// * `MIN / -1`, the one overflowing signed quotient, saturates to `MAX`
    ///   instead of wrapping back to `MIN`.
    ///
    /// Floats divide natively (`x / 0.0` is `±inf`/NaN per IEEE 754).
    fn ndiv(self, o: Self) -> Self;
    /// Saturating addition: integers clamp at the domain bounds instead of
    /// wrapping, floats add natively (they saturate at ±inf already), bool
    /// is OR. This is the additive operator for the tropical (MIN_PLUS /
    /// MAX_PLUS) semirings, where `MAX`/`MIN` act as the +∞/−∞ sentinels
    /// and must stay absorbing rather than wrap around.
    fn sadd(self, o: Self) -> Self;
    /// Minimum. For floats, NaN loses (min(NaN, x) = x), matching the "omit
    /// NaN" behaviour of `GrB_MIN` in SuiteSparse.
    fn nmin(self, o: Self) -> Self;
    /// Maximum, with the same NaN policy as [`Num::nmin`].
    fn nmax(self, o: Self) -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// The identity of the MIN monoid (+inf / integer max).
    fn max_value() -> Self;
    /// The identity of the MAX monoid (-inf / integer min).
    fn min_value() -> Self;
}

macro_rules! impl_num_int_signed {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn nadd(self, o: Self) -> Self { self.wrapping_add(o) }
            fn nsub(self, o: Self) -> Self { self.wrapping_sub(o) }
            fn nmul(self, o: Self) -> Self { self.wrapping_mul(o) }
            fn ndiv(self, o: Self) -> Self {
                if o == 0 {
                    if self == 0 { 0 } else if self > 0 { <$t>::MAX } else { <$t>::MIN }
                } else {
                    // checked_div is None only for MIN / -1; saturate it.
                    self.checked_div(o).unwrap_or(<$t>::MAX)
                }
            }
            fn sadd(self, o: Self) -> Self { self.saturating_add(o) }
            fn nmin(self, o: Self) -> Self { std::cmp::min(self, o) }
            fn nmax(self, o: Self) -> Self { std::cmp::max(self, o) }
            fn one() -> Self { 1 }
            fn max_value() -> Self { <$t>::MAX }
            fn min_value() -> Self { <$t>::MIN }
        }
    )*};
}

macro_rules! impl_num_int_unsigned {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn nadd(self, o: Self) -> Self { self.wrapping_add(o) }
            fn nsub(self, o: Self) -> Self { self.wrapping_sub(o) }
            fn nmul(self, o: Self) -> Self { self.wrapping_mul(o) }
            fn ndiv(self, o: Self) -> Self {
                if o == 0 {
                    if self == 0 { 0 } else { <$t>::MAX }
                } else {
                    self / o
                }
            }
            fn sadd(self, o: Self) -> Self { self.saturating_add(o) }
            fn nmin(self, o: Self) -> Self { std::cmp::min(self, o) }
            fn nmax(self, o: Self) -> Self { std::cmp::max(self, o) }
            fn one() -> Self { 1 }
            fn max_value() -> Self { <$t>::MAX }
            fn min_value() -> Self { <$t>::MIN }
        }
    )*};
}

impl_num_int_signed!(i8, i16, i32, i64);
impl_num_int_unsigned!(u8, u16, u32, u64);

macro_rules! impl_num_float {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn nadd(self, o: Self) -> Self { self + o }
            fn nsub(self, o: Self) -> Self { self - o }
            fn nmul(self, o: Self) -> Self { self * o }
            fn ndiv(self, o: Self) -> Self { self / o }
            fn sadd(self, o: Self) -> Self { self + o }
            fn nmin(self, o: Self) -> Self {
                if self.is_nan() { o } else if o.is_nan() { self }
                else if self < o { self } else { o }
            }
            fn nmax(self, o: Self) -> Self {
                if self.is_nan() { o } else if o.is_nan() { self }
                else if self > o { self } else { o }
            }
            fn one() -> Self { 1.0 }
            fn max_value() -> Self { <$t>::INFINITY }
            fn min_value() -> Self { <$t>::NEG_INFINITY }
        }
    )*};
}

impl_num_float!(f32, f64);

/// Boolean arithmetic follows the C API's typecast rules, as SuiteSparse
/// defines its `*_BOOL` operators: PLUS = OR, TIMES = AND, MINUS = XOR,
/// MIN = AND, MAX = OR, DIV(x,y) = x.
impl Num for bool {
    fn nadd(self, o: Self) -> Self {
        self || o
    }
    fn nsub(self, o: Self) -> Self {
        self != o
    }
    fn nmul(self, o: Self) -> Self {
        self && o
    }
    fn ndiv(self, _: Self) -> Self {
        self
    }
    fn sadd(self, o: Self) -> Self {
        self || o
    }
    fn nmin(self, o: Self) -> Self {
        self && o
    }
    fn nmax(self, o: Self) -> Self {
        self || o
    }
    fn one() -> Self {
        true
    }
    fn max_value() -> Self {
        true
    }
    fn min_value() -> Self {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_names_match_c_api() {
        assert_eq!(<bool as Scalar>::NAME, "BOOL");
        assert_eq!(<i8 as Scalar>::NAME, "INT8");
        assert_eq!(<u64 as Scalar>::NAME, "UINT64");
        assert_eq!(<f64 as Scalar>::NAME, "FP64");
    }

    #[test]
    fn integer_arithmetic_wraps() {
        assert_eq!(255u8.nadd(1), 0);
        assert_eq!(i8::MAX.nadd(1), i8::MIN);
        assert_eq!(200u8.nmul(2), 144); // 400 mod 256
    }

    #[test]
    fn integer_division_by_zero_saturates() {
        assert_eq!(0i32.ndiv(0), 0);
        assert_eq!(7i32.ndiv(0), i32::MAX);
        assert_eq!((-7i32).ndiv(0), i32::MIN);
        assert_eq!(0u8.ndiv(0), 0);
        assert_eq!(7u8.ndiv(0), u8::MAX);
    }

    #[test]
    fn signed_min_over_minus_one_saturates() {
        assert_eq!(i8::MIN.ndiv(-1), i8::MAX);
        assert_eq!(i32::MIN.ndiv(-1), i32::MAX);
        assert_eq!(i64::MIN.ndiv(-1), i64::MAX);
        // Ordinary quotients are untouched.
        assert_eq!((-6i32).ndiv(2), -3);
        assert_eq!(7u32.ndiv(2), 3);
    }

    #[test]
    fn saturating_add_clamps_at_bounds() {
        assert_eq!(i32::MAX.sadd(1), i32::MAX);
        assert_eq!(i32::MIN.sadd(-1), i32::MIN);
        assert_eq!(u8::MAX.sadd(200), u8::MAX);
        assert_eq!(3i64.sadd(4), 7);
        assert_eq!(f64::INFINITY.sadd(1.0), f64::INFINITY);
        assert!(true.sadd(false));
    }

    #[test]
    fn float_min_max_omit_nan() {
        assert_eq!(f64::NAN.nmin(3.0), 3.0);
        assert_eq!(3.0f64.nmin(f64::NAN), 3.0);
        assert_eq!(f64::NAN.nmax(3.0), 3.0);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(<i32 as Num>::max_value(), i32::MAX);
        assert_eq!(<f64 as Num>::max_value(), f64::INFINITY);
        assert_eq!(<f32 as Num>::min_value(), f32::NEG_INFINITY);
    }

    #[test]
    fn f64_casts_round_trip_for_small_ints() {
        assert_eq!(i32::from_f64(42.0), 42);
        assert_eq!(42i32.to_f64(), 42.0);
        assert!(bool::from_f64(1.0));
        assert!(!bool::from_f64(0.0));
    }
}
