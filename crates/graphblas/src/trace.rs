//! Runtime tracing & profiling — the library's observability layer.
//!
//! SuiteSparse:GraphBLAS ships a "burble" diagnostic mode that narrates
//! which kernel each operation chose and what it cost; the LAGraph
//! follow-up paper stresses that studying *algorithm behaviour*, not just
//! end-to-end time, is the repository's purpose. This module is the Rust
//! analogue, always compiled and toggled at runtime:
//!
//! * every operation in [`crate::ops`] emits a **span** ([`Span`])
//!   recording operand dimensions and nnz, the kernel/direction chosen,
//!   a flops-order work estimate, the number of parallel chunks
//!   dispatched, and wall time;
//! * [`crate::parallel`] records dispatch and per-chunk events, and the
//!   matrix/vector assembly paths record pending-tuple/zombie resolution;
//! * algorithms in the `lagraph` crate add iteration-level spans
//!   (frontier size, residual, …) through the same API.
//!
//! Events land in a fixed-capacity **lock-light ring buffer** (one
//! relaxed `fetch_add` to claim a slot plus one uncontended per-slot
//! mutex), drained with [`drain`] and consumed by:
//!
//! * [`Profile`] — per-op aggregation: counts, latency and work
//!   histograms (log₂ buckets), totals;
//! * [`chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`format_burble`] / burble mode — human-readable log lines,
//!   printed live to stderr when `GRAPHBLAS_TRACE=burble`.
//!
//! # Toggling
//!
//! Set the environment variable `GRAPHBLAS_TRACE` to `on` (record into
//! the ring), `burble` (record *and* narrate each event to stderr), or
//! `off` (default), or call [`set_mode`]/[`enable`]/[`disable`] at
//! runtime. The ring capacity defaults to 65 536 events and can be set
//! with `GRAPHBLAS_TRACE_CAPACITY` or [`set_capacity`] before the first
//! event is recorded.
//!
//! # Overhead budget
//!
//! With tracing disabled the per-operation cost is **one relaxed atomic
//! load** in the span constructor (plus one per parallel dispatch) — no
//! clock reads, no allocation, no branches on the data path. The
//! compile-time [`crate::stats`] counters are one *consumer* of these
//! hooks: every recording function here forwards to the corresponding
//! counter (an empty inline stub unless the `stats` feature is on), so
//! kernels call a single API and the two mechanisms cannot drift apart.

use crate::stats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mode
// ---------------------------------------------------------------------------

/// What the tracing subsystem does with events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Record nothing. Hot-path cost: one relaxed atomic load per op.
    Off = 0,
    /// Record events into the ring buffer.
    Record = 1,
    /// Record events *and* print a human-readable line per event to
    /// stderr as it completes — the SuiteSparse "burble" analogue.
    Burble = 2,
}

const MODE_UNINIT: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[inline]
fn mode_u8() -> u8 {
    let m = MODE.load(Relaxed);
    if m == MODE_UNINIT {
        init_mode_from_env()
    } else {
        m
    }
}

/// First-use initialization from `GRAPHBLAS_TRACE`. Runs at most a few
/// times (racing threads), settles via compare-exchange.
#[cold]
fn init_mode_from_env() -> u8 {
    let raw = std::env::var("GRAPHBLAS_TRACE").ok();
    let (m, bad) = match raw.as_deref().map(|v| v.trim().to_ascii_lowercase()) {
        None => (Mode::Off as u8, None),
        Some(v) => match v.as_str() {
            "" | "0" | "off" | "false" => (Mode::Off as u8, None),
            "1" | "on" | "true" | "record" | "ring" => (Mode::Record as u8, None),
            "2" | "burble" => (Mode::Burble as u8, None),
            _ => (Mode::Off as u8, Some(v)),
        },
    };
    // set_mode or a racing thread may have won; keep the winner. Warn
    // only after the mode is settled so warn_once cannot recurse here.
    let settled = match MODE.compare_exchange(MODE_UNINIT, m, Relaxed, Relaxed) {
        Ok(_) => m,
        Err(cur) => cur,
    };
    if let Some(v) = bad {
        warn_once(
            "GRAPHBLAS_TRACE",
            &format!("ignoring unrecognized GRAPHBLAS_TRACE={v:?} (expected off, on, or burble)"),
        );
    }
    settled
}

/// Set the trace mode, overriding the `GRAPHBLAS_TRACE` environment.
pub fn set_mode(m: Mode) {
    MODE.store(m as u8, Relaxed);
}

/// The current trace mode.
pub fn mode() -> Mode {
    match mode_u8() {
        1 => Mode::Record,
        2 => Mode::Burble,
        _ => Mode::Off,
    }
}

/// True when events are being recorded (`Record` or `Burble`).
#[inline]
pub fn enabled() -> bool {
    mode_u8() != Mode::Off as u8
}

/// Shorthand for `set_mode(Mode::Record)`.
pub fn enable() {
    set_mode(Mode::Record);
}

/// Shorthand for `set_mode(Mode::Off)`.
pub fn disable() {
    set_mode(Mode::Off);
}

// ---------------------------------------------------------------------------
// Clock and thread identity
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense thread id, assigned in order of first traced event.
    static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
    /// Chunks dispatched by this thread since process start; spans diff
    /// this around their lifetime to attribute chunk counts per op.
    static CHUNKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A typed argument value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (counts, sizes, nnz, epoch numbers).
    U64(u64),
    /// A floating-point quantity (residuals, calibrated costs).
    F64(f64),
    /// A static string (kernel names, configuration keys).
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Event category, mapped to the `cat` field of the Chrome trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cat {
    /// A GraphBLAS operation (`mxm`, `mxv`, …).
    Op,
    /// An algorithm-level span (whole run or one iteration).
    Algo,
    /// Runtime machinery: dispatch, chunks, assembly, warnings.
    Runtime,
    /// Serving-layer machinery (epoch publication, queue backpressure) —
    /// emitted by systems built on top of the library, e.g.
    /// `lagraph::service`, through [`service_span`] / [`service_instant`].
    Service,
}

impl Cat {
    /// The category label used in burble lines and the Chrome trace `cat`
    /// field.
    pub fn name(self) -> &'static str {
        match self {
            Cat::Op => "op",
            Cat::Algo => "algo",
            Cat::Runtime => "runtime",
            Cat::Service => "service",
        }
    }
}

/// One recorded event: a span (`dur_ns > 0`) or an instant (`dur_ns == 0`).
#[derive(Debug, Clone)]
pub struct Event {
    /// Operation or span name (`"mxv"`, `"bfs.iter"`, `"dispatch"`, …).
    pub name: &'static str,
    /// Which layer emitted the event (op, algorithm, runtime, service).
    pub cat: Cat,
    /// Kernel / direction chosen, when the op selects among several
    /// (`"gustavson"`, `"dot"`, `"heap"`, `"push"`, `"pull"`, …).
    pub kernel: Option<&'static str>,
    /// Start time, nanoseconds since the trace epoch (first use).
    pub t0_ns: u64,
    /// Wall time in nanoseconds; `0` marks an instant event.
    pub dur_ns: u64,
    /// Dense per-thread id (0 = first thread that traced).
    pub tid: u64,
    /// Structured details: operand nnz, dims, flops, chunk count, ….
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Look up a numeric argument by key.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if *k == key => Some(*n),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Op / kernel vocabulary (stats routing)
// ---------------------------------------------------------------------------

/// The instrumented operations. Every entry point in [`crate::ops`] opens
/// a span tagged with one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Matrix-matrix multiply.
    Mxm,
    /// Fused masked multiply-then-reduce/select (never materializes the
    /// product matrix).
    MxmFused,
    /// Matrix-vector multiply.
    Mxv,
    /// Vector-matrix multiply.
    Vxm,
    /// Element-wise "add" (pattern union).
    EwiseAdd,
    /// Element-wise "multiply" (pattern intersection).
    EwiseMult,
    /// Unary/binary operator application.
    Apply,
    /// Entry selection by predicate.
    Select,
    /// Reduction to vector or scalar.
    Reduce,
    /// Explicit transpose.
    Transpose,
    /// Submatrix/subvector assignment.
    Assign,
    /// Submatrix/subvector extraction.
    Extract,
    /// Kronecker product.
    Kron,
    /// Tiling matrices together.
    Concat,
    /// Splitting a matrix into tiles.
    Split,
    /// Diagonal matrix construction/extraction.
    Diag,
    /// Whole-object write (`GrB_assign` with `GrB_ALL` on both axes).
    Write,
    /// Lazy resolution of a matrix's pending tuples and zombies.
    AssembleMatrix,
    /// Lazy resolution of a vector's pending tuples and zombies.
    AssembleVector,
}

impl Op {
    /// The span name this op records (`"mxm"`, `"assemble.matrix"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Op::Mxm => "mxm",
            Op::MxmFused => "mxm.fused",
            Op::Mxv => "mxv",
            Op::Vxm => "vxm",
            Op::EwiseAdd => "ewise_add",
            Op::EwiseMult => "ewise_mult",
            Op::Apply => "apply",
            Op::Select => "select",
            Op::Reduce => "reduce",
            Op::Transpose => "transpose",
            Op::Assign => "assign",
            Op::Extract => "extract",
            Op::Kron => "kron",
            Op::Concat => "concat",
            Op::Split => "split",
            Op::Diag => "diag",
            Op::Write => "write",
            Op::AssembleMatrix => "assemble.matrix",
            Op::AssembleVector => "assemble.vector",
        }
    }

    /// The per-op stats counter this op feeds, if any (mxm/mxv/vxm are
    /// counted by their kernel/direction counters instead).
    fn counter(self) -> Option<stats::OpTag> {
        match self {
            Op::EwiseAdd | Op::EwiseMult => Some(stats::OpTag::Ewise),
            Op::Apply => Some(stats::OpTag::Apply),
            Op::Select => Some(stats::OpTag::Select),
            Op::Reduce => Some(stats::OpTag::Reduce),
            Op::Transpose => Some(stats::OpTag::Transpose),
            Op::Assign => Some(stats::OpTag::Assign),
            Op::Extract => Some(stats::OpTag::Extract),
            Op::Kron => Some(stats::OpTag::Kron),
            _ => None,
        }
    }
}

/// Which kernel / direction an op chose. Routed to the corresponding
/// stats counters and recorded on the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    Gustavson,
    Dot,
    Heap,
    Push,
    /// Push with a non-transparent mask: the scatter kernel filtered
    /// masked-out positions itself instead of deferring to the write rule.
    PushMasked,
    Pull,
    /// Ran push because the cost model's pull choice lacked dual storage.
    PushFallback,
    /// Ran pull because the cost model's push choice lacked dual storage.
    PullFallback,
    /// Gustavson with a specialized (hot-semiring) inner loop.
    GustavsonSpec,
    /// Dot-product method with a specialized inner loop.
    DotSpec,
    /// Dot-product method where an operand is decoded on the fly from the
    /// compressed (gap-encoded) storage form.
    CompressedDot,
    /// Push with a specialized scatter loop.
    PushSpec,
    /// Masked push with a specialized scatter loop.
    PushMaskedSpec,
    /// Pull with a specialized row-dot loop.
    PullSpec,
    /// Fused masked dot product folding straight into a reduction.
    FusedReduce,
    /// Fused masked dot product filtered by a select predicate.
    FusedSelect,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Gustavson => "gustavson",
            Kernel::Dot => "dot",
            Kernel::Heap => "heap",
            Kernel::Push => "push",
            Kernel::PushMasked => "push(masked)",
            Kernel::Pull => "pull",
            Kernel::PushFallback => "push(fallback)",
            Kernel::PullFallback => "pull(fallback)",
            Kernel::GustavsonSpec => "gustavson(specialized)",
            Kernel::DotSpec => "dot(specialized)",
            Kernel::CompressedDot => "dot(compressed)",
            Kernel::PushSpec => "push(specialized)",
            Kernel::PushMaskedSpec => "push(masked,specialized)",
            Kernel::PullSpec => "pull(specialized)",
            Kernel::FusedReduce => "fused(dot+reduce)",
            Kernel::FusedSelect => "fused(dot+select)",
        }
    }

    fn route_stats(self) {
        use stats::{MxmKernel, MxvPath};
        match self {
            Kernel::Gustavson | Kernel::GustavsonSpec => {
                stats::record_mxm_kernel(MxmKernel::Gustavson)
            }
            // The fused kernels are masked dot products at heart.
            Kernel::Dot
            | Kernel::DotSpec
            | Kernel::CompressedDot
            | Kernel::FusedReduce
            | Kernel::FusedSelect => stats::record_mxm_kernel(MxmKernel::Dot),
            Kernel::Heap => stats::record_mxm_kernel(MxmKernel::Heap),
            Kernel::Push | Kernel::PushMasked | Kernel::PushSpec | Kernel::PushMaskedSpec => {
                stats::record_mxv_path(MxvPath::Push)
            }
            Kernel::Pull | Kernel::PullSpec => stats::record_mxv_path(MxvPath::Pull),
            Kernel::PushFallback => {
                stats::record_mxv_dual_fallback();
                stats::record_mxv_path(MxvPath::Push);
            }
            Kernel::PullFallback => {
                stats::record_mxv_dual_fallback();
                stats::record_mxv_path(MxvPath::Pull);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A RAII span: created at op entry, pushed to the ring on drop with the
/// measured wall time (and fed to the [`crate::metrics`] sink when that
/// layer is on). When both tracing and metrics are off the constructor
/// costs two relaxed atomic loads and every method is a no-op.
#[derive(Debug)]
#[must_use = "a span records its wall time when dropped"]
pub struct Span {
    rec: Option<SpanRec>,
}

#[derive(Debug)]
struct SpanRec {
    name: &'static str,
    cat: Cat,
    kernel: Option<&'static str>,
    args: Vec<(&'static str, ArgValue)>,
    t0_ns: u64,
    t0: Instant,
    chunks0: u64,
    /// Tracing was on at creation: push the event to the ring on drop.
    /// (A span can be live for the metrics sink alone, leaving the ring
    /// untouched.)
    ring: bool,
}

impl Span {
    fn new(name: &'static str, cat: Cat) -> Span {
        let ring = enabled();
        // The metrics layer consumes span closes too, so a span is live
        // when either consumer is on; both off keeps the two-load cost.
        if !ring && !crate::metrics::enabled() {
            return Span { rec: None };
        }
        let t0 = Instant::now();
        Span {
            rec: Some(SpanRec {
                name,
                cat,
                kernel: None,
                args: Vec::new(),
                t0_ns: t0.saturating_duration_since(epoch()).as_nanos() as u64,
                t0,
                chunks0: CHUNKS.with(|c| c.get()),
                ring,
            }),
        }
    }

    /// True when this span is live (tracing was on at creation). Lets
    /// callers skip computing expensive details for dead spans.
    #[inline]
    pub fn on(&self) -> bool {
        self.rec.is_some()
    }

    /// Attach a structured argument (operand nnz, dims, residual, …).
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(r) = &mut self.rec {
            r.args.push((key, value.into()));
        }
    }

    /// Record the kernel/direction chosen, and count it in the stats
    /// counters (the single call sites for those counters).
    pub(crate) fn kernel(&mut self, k: Kernel) {
        k.route_stats();
        if let Some(r) = &mut self.rec {
            r.kernel = Some(k.name());
        }
    }

    /// Record the op's work estimate (order of flops), also accumulated
    /// into the stats flops counter.
    pub(crate) fn flops(&mut self, n: usize) {
        stats::add_flops(n);
        if let Some(r) = &mut self.rec {
            r.args.push(("flops", ArgValue::U64(n as u64)));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let dur_ns = (rec.t0.elapsed().as_nanos() as u64).max(1);
        let flops = rec.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if *k == "flops" => Some(*n),
            _ => None,
        });
        crate::metrics::observe_span(rec.cat.name(), rec.name, dur_ns, flops);
        if !rec.ring {
            return;
        }
        let chunks = CHUNKS.with(|c| c.get()).wrapping_sub(rec.chunks0);
        let mut args = rec.args;
        if chunks > 0 {
            args.push(("chunks", ArgValue::U64(chunks)));
        }
        push_event(Event {
            name: rec.name,
            cat: rec.cat,
            kernel: rec.kernel,
            t0_ns: rec.t0_ns,
            dur_ns,
            tid: tid(),
            args,
        });
    }
}

/// Open a span for a GraphBLAS operation; counts the op in the stats
/// layer regardless of trace mode.
pub(crate) fn op_span(op: Op) -> Span {
    if let Some(tag) = op.counter() {
        stats::record_op(tag);
    }
    Span::new(op.name(), Cat::Op)
}

/// Open an algorithm-level span (whole algorithm run).
pub fn algo_span(name: &'static str) -> Span {
    Span::new(name, Cat::Algo)
}

/// Open a span for one algorithm iteration, pre-tagged with its number.
pub fn iter_span(name: &'static str, iter: u64) -> Span {
    let mut s = Span::new(name, Cat::Algo);
    s.arg("iter", iter);
    s
}

/// Open a runtime-machinery span (pool chunks, assembly).
pub(crate) fn runtime_span(name: &'static str) -> Span {
    Span::new(name, Cat::Runtime)
}

// ---------------------------------------------------------------------------
// Runtime hooks (parallel dispatch, assembly, diagnostics)
// ---------------------------------------------------------------------------

/// Record one `par_chunks` dispatch: `chunks == 1` means the work stayed
/// on the calling thread. Counted in stats always; when tracing is on the
/// chunk count is accumulated for the enclosing span and parallel
/// dispatches emit an instant event.
pub(crate) fn dispatch(chunks: usize, est_work: usize) {
    stats::record_dispatch(chunks);
    crate::metrics::record_dispatch(chunks);
    if !enabled() {
        return;
    }
    CHUNKS.with(|c| c.set(c.get() + chunks as u64));
    if chunks > 1 {
        push_event(Event {
            name: "dispatch",
            cat: Cat::Runtime,
            kernel: None,
            t0_ns: epoch().elapsed().as_nanos() as u64,
            dur_ns: 0,
            tid: tid(),
            args: vec![
                ("chunks", ArgValue::U64(chunks as u64)),
                ("est_work", ArgValue::U64(est_work as u64)),
            ],
        });
    }
}

/// Record a reduction that short-circuited on a terminal value.
pub(crate) fn early_exit() {
    stats::record_early_exit();
    if !enabled() {
        return;
    }
    push_event(Event {
        name: "reduce.early_exit",
        cat: Cat::Runtime,
        kernel: None,
        t0_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid: tid(),
        args: Vec::new(),
    });
}

/// Record a direction misprediction: after the kernel ran, the measured
/// flop count priced higher than the cost model's estimate for the
/// direction it rejected. Counted in stats; when tracing is on an instant
/// event (tagged with the chosen kernel and both estimates) makes the
/// mispredicted products visible in the Chrome trace.
pub(crate) fn mxv_mispredict(
    chosen: &'static str,
    est_chosen: usize,
    est_other: usize,
    actual: usize,
) {
    stats::record_mxv_mispredict();
    if !enabled() {
        return;
    }
    push_event(Event {
        name: "mxv.mispredict",
        cat: Cat::Runtime,
        kernel: Some(chosen),
        t0_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid: tid(),
        args: vec![
            ("est_chosen", ArgValue::U64(est_chosen as u64)),
            ("est_other", ArgValue::U64(est_other as u64)),
            ("actual", ArgValue::U64(actual as u64)),
        ],
    });
}

/// Record the cost model's calibrated per-flop constants (once per
/// process) so traces show which numbers every direction choice used.
pub(crate) fn cost_calibrated(push_ns: f64, pull_ns: f64) {
    if !enabled() {
        return;
    }
    push_event(Event {
        name: "cost.calibrate",
        cat: Cat::Runtime,
        kernel: None,
        t0_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid: tid(),
        args: vec![("push_ns", ArgValue::F64(push_ns)), ("pull_ns", ArgValue::F64(pull_ns))],
    });
}

/// Open a span around a lazy assembly, tagged with the deferred-update
/// backlog it resolves. Counts the assembly in the stats layer.
pub(crate) fn assemble_span(op: Op, pending: usize, zombies: usize) -> Span {
    stats::record_assemble();
    let mut s = Span::new(op.name(), Cat::Runtime);
    s.arg("pending", pending);
    s.arg("zombies", zombies);
    s
}

/// Open a serving-layer span ([`Cat::Service`]): epoch publication,
/// update-log drains, and similar machinery in systems built on top of
/// the library. Like every span, it is free when tracing is off and
/// records wall time plus any attached [`Span::arg`]s on drop.
pub fn service_span(name: &'static str) -> Span {
    Span::new(name, Cat::Service)
}

/// Record a serving-layer instant event (duration 0) with structured
/// arguments — queue-depth samples, backpressure rejections, coalesced
/// writes. No-op when tracing is off.
pub fn service_instant(name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !enabled() {
        return;
    }
    push_event(Event {
        name,
        cat: Cat::Service,
        kernel: None,
        t0_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid: tid(),
        args,
    });
}

/// One-shot diagnostic: print `msg` to stderr the first time `key` is
/// seen in this process (diagnostics must not be silent, so this prints
/// regardless of trace mode) and record an instant event when tracing is
/// on. Used for misconfiguration that would otherwise be ignored, e.g.
/// an unparsable `GRAPHBLAS_THREADS`.
pub fn warn_once(key: &'static str, msg: &str) {
    static SEEN: OnceLock<Mutex<std::collections::BTreeSet<&'static str>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()));
    if !seen.lock().insert(key) {
        return;
    }
    eprintln!("[graphblas] warning: {msg}");
    if enabled() {
        push_event(Event {
            name: "warn",
            cat: Cat::Runtime,
            kernel: None,
            t0_ns: epoch().elapsed().as_nanos() as u64,
            dur_ns: 0,
            tid: tid(),
            args: vec![("key", ArgValue::Str(key))],
        });
    }
}

// ---------------------------------------------------------------------------
// The ring buffer
// ---------------------------------------------------------------------------

const DEFAULT_CAPACITY: usize = 1 << 16;

static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

struct Ring {
    slots: Box<[Mutex<Option<Event>>]>,
    head: AtomicUsize,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| {
        let cap = match CAPACITY.load(Relaxed) {
            0 => std::env::var("GRAPHBLAS_TRACE_CAPACITY")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CAPACITY),
            n => n,
        };
        Ring {
            slots: (0..cap).map(|_| Mutex::new(None)).collect::<Vec<_>>().into_boxed_slice(),
            head: AtomicUsize::new(0),
        }
    })
}

/// Set the ring capacity (events retained before the oldest are
/// overwritten). Effective only before the first event is recorded; the
/// `GRAPHBLAS_TRACE_CAPACITY` environment variable is the env-level
/// equivalent.
pub fn set_capacity(n: usize) {
    CAPACITY.store(n.max(1), Relaxed);
}

/// Events overwritten before being drained (ring overflow). The counter
/// accumulates across [`drain`] calls and is reset only by [`clear`],
/// which starts a fresh measurement window.
pub fn dropped() -> u64 {
    DROPPED.load(Relaxed)
}

fn push_event(e: Event) {
    if mode_u8() == Mode::Burble as u8 {
        eprintln!("[graphblas] {}", burble_line(&e));
    }
    let r = ring();
    let seq = r.head.fetch_add(1, Relaxed);
    let slot = &r.slots[seq % r.slots.len()];
    if slot.lock().replace(e).is_some() {
        DROPPED.fetch_add(1, Relaxed);
    }
}

/// Take every buffered event, oldest first, leaving the ring empty.
/// Events are returned in completion order (a span is stamped when it
/// closes); sort by [`Event::t0_ns`] for start order.
pub fn drain() -> Vec<Event> {
    let r = ring();
    let cap = r.slots.len();
    let head = r.head.load(Relaxed);
    let start = head.saturating_sub(cap);
    let mut out = Vec::new();
    for seq in start..head {
        if let Some(e) = r.slots[seq % cap].lock().take() {
            out.push(e);
        }
    }
    out
}

/// Discard all buffered events **and reset the [`dropped`] counter** —
/// `clear()` starts a fresh measurement window, so the overflow count
/// always refers to the ring contents drained *after* the last clear.
/// ([`drain`] by itself intentionally leaves `dropped()` alone: the
/// events it returns are exactly the ones that survived that overflow.)
pub fn clear() {
    drop(drain());
    DROPPED.store(0, Relaxed);
}

// ---------------------------------------------------------------------------
// Burble exporter
// ---------------------------------------------------------------------------

/// Format a duration in adaptive units.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// One human-readable line for an event — the burble format.
pub fn burble_line(e: &Event) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{:>11.3}ms t{} {}", e.t0_ns as f64 / 1e6, e.tid, e.name);
    if let Some(k) = e.kernel {
        let _ = write!(s, " [{k}]");
    }
    for (k, v) in &e.args {
        match v {
            // String args can carry hostile content (labels derived from
            // input); quote and escape anything that would corrupt the
            // one-line format, mirroring the Chrome exporter's escaping.
            ArgValue::Str(val)
                if val.chars().any(|c| c.is_control() || c == '"' || c == '\\' || c == ' ') =>
            {
                let _ = write!(s, " {k}=\"");
                for c in val.chars() {
                    match c {
                        '"' => s.push_str("\\\""),
                        '\\' => s.push_str("\\\\"),
                        c if c.is_control() => {
                            for esc in c.escape_default() {
                                s.push(esc);
                            }
                        }
                        c => s.push(c),
                    }
                }
                s.push('"');
            }
            v => {
                let _ = write!(s, " {k}={v}");
            }
        }
    }
    if e.dur_ns > 0 {
        let _ = write!(s, " ({})", fmt_ns(e.dur_ns));
    }
    s
}

/// The burble log for a batch of events, in start order.
pub fn format_burble(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.t0_ns);
    let mut out = String::new();
    for e in sorted {
        out.push_str(&burble_line(e));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Str(s) => {
            out.push('"');
            json_escape_into(out, s);
            out.push('"');
        }
    }
}

/// Serialize events as Chrome trace-event JSON (the "Trace Event Format"
/// consumed by `chrome://tracing` and Perfetto). Spans become complete
/// (`"ph":"X"`) events with microsecond timestamps; instants become
/// thread-scoped instant (`"ph":"i"`) events. The chosen kernel and all
/// structured arguments land in `args`.
pub fn chrome_trace(events: &[Event]) -> String {
    let us = |ns: u64| ns as f64 / 1e3;
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.t0_ns);
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (k, e) in sorted.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape_into(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat.name());
        out.push('"');
        if e.dur_ns > 0 {
            let _ =
                write!(out, ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3}", us(e.t0_ns), us(e.dur_ns));
        } else {
            let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3}", us(e.t0_ns));
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{},\"args\":{{", e.tid);
        let mut first = true;
        if let Some(kernel) = e.kernel {
            out.push_str("\"kernel\":\"");
            json_escape_into(&mut out, kernel);
            out.push('"');
            first = false;
        }
        for (key, v) in &e.args {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            json_escape_into(&mut out, key);
            out.push_str("\":");
            json_arg_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace`] output to a file.
pub fn write_chrome_trace<P: AsRef<std::path::Path>>(
    path: P,
    events: &[Event],
) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(events))
}

// ---------------------------------------------------------------------------
// Profile aggregation
// ---------------------------------------------------------------------------

/// Number of log₂ histogram buckets: bucket `b` holds values in
/// `[2^(b-1), 2^b)`, so 44 buckets cover latencies beyond two hours.
pub const HIST_BUCKETS: usize = 44;

/// Log₂ bucket index for a value — shared with [`crate::metrics`] so
/// live histograms and post-hoc profiles bucket identically.
pub(crate) fn bucket(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Number of spans aggregated.
    pub count: u64,
    /// Summed wall time across those spans, in nanoseconds.
    pub total_ns: u64,
    min_ns: u64,
    /// Slowest recorded span, in nanoseconds.
    pub max_ns: u64,
    /// Flops-work accumulated over spans carrying a `flops` argument.
    pub total_flops: u64,
    /// Latency histogram over log₂-nanosecond buckets.
    pub latency_hist: [u64; HIST_BUCKETS],
    /// Work (flops) histogram over log₂ buckets.
    pub work_hist: [u64; HIST_BUCKETS],
}

impl OpProfile {
    fn new() -> Self {
        OpProfile {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            total_flops: 0,
            latency_hist: [0; HIST_BUCKETS],
            work_hist: [0; HIST_BUCKETS],
        }
    }

    /// Fastest recorded span (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the histogram bucket containing the `q`-quantile
    /// sample (`0.0 < q <= 1.0`) — within 2× of the true quantile.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.latency_hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << b;
            }
        }
        self.max_ns
    }
}

/// Per-op aggregation of a batch of span events: counts, latency and
/// work histograms. This replaces diffing raw [`stats::Snapshot`]s as
/// the way benches and tools summarize *what ran and what it cost*.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Aggregates keyed by span name, sorted for stable reports.
    pub ops: BTreeMap<&'static str, OpProfile>,
}

impl Profile {
    /// Aggregate a batch of events (instants are skipped).
    pub fn from_events(events: &[Event]) -> Self {
        let mut p = Profile::default();
        for e in events {
            p.record(e);
        }
        p
    }

    /// Drain the ring buffer and aggregate everything in it.
    pub fn collect() -> Self {
        Self::from_events(&drain())
    }

    /// Fold one event into the aggregate.
    pub fn record(&mut self, e: &Event) {
        if e.dur_ns == 0 {
            return;
        }
        let op = self.ops.entry(e.name).or_insert_with(OpProfile::new);
        op.count += 1;
        op.total_ns += e.dur_ns;
        op.min_ns = op.min_ns.min(e.dur_ns);
        op.max_ns = op.max_ns.max(e.dur_ns);
        op.latency_hist[bucket(e.dur_ns)] += 1;
        if let Some(f) = e.arg_u64("flops") {
            op.total_flops += f;
            op.work_hist[bucket(f)] += 1;
        }
    }

    /// A fixed-width table: per op, the count, total/mean/median/max
    /// latency, and accumulated flops estimate.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>14}",
            "span", "count", "total", "mean", "~p50", "max", "flops"
        );
        for (name, p) in &self.ops {
            let _ = writeln!(
                s,
                "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>14}",
                name,
                p.count,
                fmt_ns(p.total_ns),
                fmt_ns(p.mean_ns()),
                fmt_ns(p.quantile_ns(0.5)),
                fmt_ns(p.max_ns),
                p.total_flops,
            );
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Per-run aggregate (machine-readable benchmark export)
// ---------------------------------------------------------------------------

/// Whole-run roll-up of a batch of trace events into the handful of
/// scalar facts a benchmark run wants to persist: accumulated work
/// estimate, direction-choice counts, mispredictions, and the peak
/// deferred-update backlog any single assembly resolved. Unlike
/// [`Profile`] (per-span histograms for humans) this is flat and
/// schema-friendly — `lagraph-bench` writes one `RunAggregate` per
/// algorithm into its `BENCH_*.json` reports.
///
/// Build incrementally with [`record`](RunAggregate::record) across
/// several [`drain`] calls (e.g. once per trial), or in one shot with
/// [`from_events`](RunAggregate::from_events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunAggregate {
    /// Spans aggregated (instant events are counted separately below).
    pub spans: u64,
    /// Summed wall time of GraphBLAS-op spans ([`Cat::Op`]), in
    /// nanoseconds. Algorithm and runtime spans are excluded so nested
    /// spans are not double-counted.
    pub op_wall_ns: u64,
    /// Accumulated flops-order work estimate over spans carrying a
    /// `flops` argument.
    pub total_flops: u64,
    /// Products that ran the push (scatter) kernel, masked or not,
    /// including dual-storage fallbacks into push.
    pub push: u64,
    /// Products that ran the pull (dot) kernel, including fallbacks.
    pub pull: u64,
    /// Push/pull products where the cost model's preferred direction
    /// lacked dual storage, so the natural orientation ran instead.
    pub direction_fallbacks: u64,
    /// `mxv.mispredict` instants: products whose measured work priced
    /// higher than the model's estimate for the rejected direction.
    pub mispredicts: u64,
    /// `mxm` invocations per kernel: Gustavson (row-merge).
    pub mxm_gustavson: u64,
    /// `mxm` invocations that ran the masked/unmasked dot kernel.
    pub mxm_dot: u64,
    /// `mxm` invocations that ran the heap (k-way merge) kernel.
    pub mxm_heap: u64,
    /// Lazy assemblies (pending-tuple/zombie resolutions) observed.
    pub assemblies: u64,
    /// Largest pending-tuple backlog any single assembly resolved.
    pub peak_pending: u64,
    /// Largest zombie count any single assembly resolved.
    pub peak_zombies: u64,
    /// Total parallel chunks accumulated on spans.
    pub chunks: u64,
    /// Reductions that short-circuited on a terminal value.
    pub early_exits: u64,
    /// Products (mxm/mxv/vxm/fused) that ran a specialized inner loop.
    pub specialized: u64,
    /// Fused multiply-reduce/select invocations (product never
    /// materialized).
    pub mxm_fused: u64,
    /// Largest `resident_bytes` figure any span reported (assemblies
    /// attach the post-rebuild [`crate::MemoryUsage`] total) — the
    /// peak resident matrix footprint observed during the run.
    pub peak_resident_bytes: u64,
}

impl RunAggregate {
    /// Aggregate a batch of drained events.
    pub fn from_events(events: &[Event]) -> Self {
        let mut agg = RunAggregate::default();
        for e in events {
            agg.record(e);
        }
        agg
    }

    /// Fold one event into the aggregate.
    pub fn record(&mut self, e: &Event) {
        if e.dur_ns == 0 {
            match e.name {
                "mxv.mispredict" => self.mispredicts += 1,
                "reduce.early_exit" => self.early_exits += 1,
                _ => {}
            }
            return;
        }
        self.spans += 1;
        if e.cat == Cat::Op {
            self.op_wall_ns += e.dur_ns;
        }
        if let Some(f) = e.arg_u64("flops") {
            self.total_flops += f;
        }
        if let Some(c) = e.arg_u64("chunks") {
            self.chunks += c;
        }
        if let Some(b) = e.arg_u64("resident_bytes") {
            self.peak_resident_bytes = self.peak_resident_bytes.max(b);
        }
        match e.kernel {
            Some("push") | Some("push(masked)") => self.push += 1,
            Some("pull") => self.pull += 1,
            Some("push(fallback)") => {
                self.push += 1;
                self.direction_fallbacks += 1;
            }
            Some("pull(fallback)") => {
                self.pull += 1;
                self.direction_fallbacks += 1;
            }
            Some("gustavson") => self.mxm_gustavson += 1,
            Some("dot") => self.mxm_dot += 1,
            Some("heap") => self.mxm_heap += 1,
            Some("push(specialized)") | Some("push(masked,specialized)") => {
                self.push += 1;
                self.specialized += 1;
            }
            Some("pull(specialized)") => {
                self.pull += 1;
                self.specialized += 1;
            }
            Some("gustavson(specialized)") => {
                self.mxm_gustavson += 1;
                self.specialized += 1;
            }
            Some("dot(specialized)") => {
                self.mxm_dot += 1;
                self.specialized += 1;
            }
            Some("fused(dot+reduce)") | Some("fused(dot+select)") => {
                self.mxm_fused += 1;
                self.specialized += 1;
            }
            _ => {}
        }
        if matches!(e.name, "assemble.matrix" | "assemble.vector") {
            self.assemblies += 1;
            if let Some(p) = e.arg_u64("pending") {
                self.peak_pending = self.peak_pending.max(p);
            }
            if let Some(z) = e.arg_u64("zombies") {
                self.peak_zombies = self.peak_zombies.max(z);
            }
        }
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;

    fn span(name: &'static str, cat: Cat, kernel: Option<&'static str>, dur: u64) -> Event {
        Event { name, cat, kernel, t0_ns: 0, dur_ns: dur, tid: 0, args: Vec::new() }
    }

    #[test]
    fn run_aggregate_rolls_up_directions_flops_and_assembly_peaks() {
        let mut push = span("mxv", Cat::Op, Some("push"), 10);
        push.args.push(("flops", ArgValue::U64(100)));
        let mut pull = span("mxv", Cat::Op, Some("pull(fallback)"), 20);
        pull.args.push(("flops", ArgValue::U64(50)));
        let mut asm_small = span("assemble.matrix", Cat::Runtime, None, 5);
        asm_small.args.push(("pending", ArgValue::U64(3)));
        asm_small.args.push(("zombies", ArgValue::U64(1)));
        let mut asm_big = span("assemble.vector", Cat::Runtime, None, 5);
        asm_big.args.push(("pending", ArgValue::U64(77)));
        asm_big.args.push(("zombies", ArgValue::U64(0)));
        let mis = span("mxv.mispredict", Cat::Runtime, Some("push"), 0);
        let ee = span("reduce.early_exit", Cat::Runtime, None, 0);
        let algo = span("bfs", Cat::Algo, None, 1000);

        let agg = RunAggregate::from_events(&[push, pull, asm_small, asm_big, mis, ee, algo]);
        assert_eq!(agg.spans, 5);
        assert_eq!(agg.op_wall_ns, 30, "only Cat::Op spans count toward op wall");
        assert_eq!(agg.total_flops, 150);
        assert_eq!((agg.push, agg.pull), (1, 1));
        assert_eq!(agg.direction_fallbacks, 1);
        assert_eq!(agg.mispredicts, 1);
        assert_eq!(agg.early_exits, 1);
        assert_eq!(agg.assemblies, 2);
        assert_eq!((agg.peak_pending, agg.peak_zombies), (77, 1));
    }

    #[test]
    fn run_aggregate_counts_mxm_kernels() {
        let events: Vec<Event> = [("gustavson", 3), ("dot", 2), ("heap", 1)]
            .iter()
            .flat_map(|&(k, c)| (0..c).map(move |_| span("mxm", Cat::Op, Some(k), 7)))
            .collect();
        let agg = RunAggregate::from_events(&events);
        assert_eq!((agg.mxm_gustavson, agg.mxm_dot, agg.mxm_heap), (3, 2, 1));
        assert_eq!(agg.spans, 6);
    }

    #[test]
    fn run_aggregate_counts_specialized_and_fused_kernels() {
        let events = vec![
            span("mxm", Cat::Op, Some("dot(specialized)"), 7),
            span("mxm", Cat::Op, Some("gustavson(specialized)"), 7),
            span("mxv", Cat::Op, Some("pull(specialized)"), 7),
            span("mxv", Cat::Op, Some("push(specialized)"), 7),
            span("vxm", Cat::Op, Some("push(masked,specialized)"), 7),
            span("mxm.fused", Cat::Op, Some("fused(dot+reduce)"), 7),
            span("mxm.fused", Cat::Op, Some("fused(dot+select)"), 7),
            span("mxm", Cat::Op, Some("dot"), 7),
        ];
        let agg = RunAggregate::from_events(&events);
        assert_eq!(agg.specialized, 7);
        assert_eq!(agg.mxm_fused, 2);
        // Specialized variants still count toward their base kernel tally.
        assert_eq!(agg.mxm_dot, 2);
        assert_eq!(agg.mxm_gustavson, 1);
        assert_eq!((agg.push, agg.pull), (2, 1));
    }
}

// ---------------------------------------------------------------------------
// Tests (run under `--features trace`: they toggle process-global trace
// state, so the dedicated CI feature job runs them while default test
// runs — which share the process with unrelated concurrent tests — skip
// them; tests/trace.rs covers the integration surface unconditionally).
// ---------------------------------------------------------------------------

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    /// Serializes tests that flip the global mode or drain the ring.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        disable();
        clear();
        {
            let mut s = algo_span("test.off");
            s.arg("x", 1u64);
            assert!(!s.on());
        }
        assert!(drain().iter().all(|e| e.name != "test.off"));
    }

    #[test]
    fn spans_record_args_kernel_and_duration() {
        let _g = lock();
        enable();
        clear();
        {
            let mut s = op_span(Op::Mxv);
            s.kernel(Kernel::Pull);
            s.arg("u_nnz", 7u64);
            s.flops(42);
            assert!(s.on());
        }
        let evs = drain();
        disable();
        let e = evs.iter().find(|e| e.name == "mxv").expect("mxv span recorded");
        assert_eq!(e.kernel, Some("pull"));
        assert_eq!(e.arg_u64("u_nnz"), Some(7));
        assert_eq!(e.arg_u64("flops"), Some(42));
        assert!(e.dur_ns > 0);
    }

    #[test]
    fn mode_round_trips() {
        let _g = lock();
        set_mode(Mode::Burble);
        assert_eq!(mode(), Mode::Burble);
        assert!(enabled());
        set_mode(Mode::Off);
        assert_eq!(mode(), Mode::Off);
        assert!(!enabled());
    }

    #[test]
    fn warn_once_is_one_shot() {
        let _g = lock();
        enable();
        clear();
        warn_once("trace-test-warn", "first");
        warn_once("trace-test-warn", "second");
        let warns = drain()
            .into_iter()
            .filter(|e| {
                e.name == "warn" && e.args.contains(&("key", ArgValue::Str("trace-test-warn")))
            })
            .count();
        disable();
        assert_eq!(warns, 1);
    }

    #[test]
    fn chrome_trace_serializes_spans_and_instants() {
        let events = vec![
            Event {
                name: "mxv",
                cat: Cat::Op,
                kernel: Some("push"),
                t0_ns: 1_000,
                dur_ns: 2_500,
                tid: 0,
                args: vec![("u_nnz", ArgValue::U64(3)), ("res", ArgValue::F64(0.5))],
            },
            Event {
                name: "dispatch",
                cat: Cat::Runtime,
                kernel: None,
                t0_ns: 1_200,
                dur_ns: 0,
                tid: 1,
                args: vec![("chunks", ArgValue::U64(4))],
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"kernel\":\"push\""));
        assert!(json.contains("\"u_nnz\":3"));
        assert!(json.contains("\"res\":0.5"));
    }

    #[test]
    fn chrome_trace_escapes_and_nan_is_null() {
        let events = vec![Event {
            name: "x",
            cat: Cat::Op,
            kernel: None,
            t0_ns: 0,
            dur_ns: 5,
            tid: 0,
            args: vec![("bad", ArgValue::F64(f64::NAN)), ("s", ArgValue::Str("a\"b"))],
        }];
        let json = chrome_trace(&events);
        assert!(json.contains("\"bad\":null"));
        assert!(json.contains("a\\\"b"));
    }

    #[test]
    fn profile_aggregates_latency_and_work() {
        let mk = |dur: u64, flops: u64| Event {
            name: "mxm",
            cat: Cat::Op,
            kernel: None,
            t0_ns: 0,
            dur_ns: dur,
            tid: 0,
            args: vec![("flops", ArgValue::U64(flops))],
        };
        let p = Profile::from_events(&[mk(100, 10), mk(300, 30), mk(200, 20)]);
        let op = &p.ops["mxm"];
        assert_eq!(op.count, 3);
        assert_eq!(op.total_ns, 600);
        assert_eq!(op.min_ns(), 100);
        assert_eq!(op.max_ns, 300);
        assert_eq!(op.total_flops, 60);
        assert_eq!(op.mean_ns(), 200);
        assert!(op.quantile_ns(0.5) >= 128 && op.quantile_ns(0.5) <= 512);
        assert!(p.report().contains("mxm"));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn burble_lines_are_readable() {
        let e = Event {
            name: "mxv",
            cat: Cat::Op,
            kernel: Some("pull"),
            t0_ns: 2_000_000,
            dur_ns: 1_500,
            tid: 2,
            args: vec![("u_nnz", ArgValue::U64(9))],
        };
        let line = burble_line(&e);
        assert!(line.contains("mxv"));
        assert!(line.contains("[pull]"));
        assert!(line.contains("u_nnz=9"));
        let log = format_burble(std::slice::from_ref(&e));
        assert!(log.ends_with('\n'));
    }
}
