//! Per-operation performance counters, behind the `stats` feature.
//!
//! Kernels record which code path they took (mxm kernel, mxv push/pull
//! direction, parallel vs sequential dispatch) and a flops-order work
//! estimate. The bench crate reads a [`Snapshot`] around a measured region
//! to report *why* a configuration was fast, not just how fast it was —
//! the observability hook the ablation benches build on.
//!
//! With the feature disabled every recording function is an empty inline
//! stub and the counters read as zero, so library code calls them
//! unconditionally.
//!
//! These counters are one *consumer* of the [`crate::trace`] hooks:
//! kernels report path choices, dispatches, and work estimates through
//! `trace` spans, and the trace layer forwards each to the matching
//! counter here. Nothing outside `trace` calls the recording functions
//! directly, so the two mechanisms cannot drift apart.

/// A point-in-time copy of all counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// `mxm` invocations that ran the Gustavson (row-merge) kernel.
    pub mxm_gustavson: u64,
    /// `mxm` invocations that ran the masked/unmasked dot kernel.
    pub mxm_dot: u64,
    /// `mxm` invocations that ran the heap (k-way merge) kernel.
    pub mxm_heap: u64,
    /// `mxv`/`vxm` products that took the push (scatter) direction.
    pub mxv_push: u64,
    /// `mxv`/`vxm` products that took the pull (dot) direction.
    pub mxv_pull: u64,
    /// Products where the heuristic wanted the opposite orientation but
    /// dual storage was absent, so the natural kernel ran instead.
    pub mxv_dual_fallback: u64,
    /// `Auto` products whose measured work priced higher than the cost
    /// model's estimate for the direction it rejected.
    pub mxv_mispredict: u64,
    /// Accumulated work estimate (order of flops) across kernels.
    pub flops_est: u64,
    /// `par_chunks`/`par_reduce` dispatches that went to the pool.
    pub par_calls: u64,
    /// Dispatches that stayed on the calling thread (below threshold,
    /// single-threaded, or nested inside a pool worker).
    pub seq_calls: u64,
    /// Total chunks executed by parallel dispatches.
    pub chunks_spawned: u64,
    /// Reductions that stopped early on a terminal (annihilator) value.
    pub reduce_early_exits: u64,
    /// Lazy assemblies (pending tuples/zombies folded into the store).
    pub assembles: u64,
    /// Element-wise add/multiply invocations (vector and matrix forms).
    pub ewise: u64,
    /// `apply`/`apply_indexed` invocations (vector and matrix forms).
    pub apply: u64,
    /// `select`/`tril`/`triu` invocations.
    pub select: u64,
    /// `reduce` invocations (matrix→vector and to-scalar forms).
    pub reduce: u64,
    /// `transpose` invocations.
    pub transpose: u64,
    /// `assign` invocations (vector and matrix, scalar and full forms).
    pub assign: u64,
    /// `extract` invocations (vector, matrix, and column forms).
    pub extract: u64,
    /// `kronecker` invocations.
    pub kron: u64,
}

#[cfg(feature = "stats")]
mod imp {
    use super::Snapshot;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub(super) static MXM_GUSTAVSON: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXM_DOT: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXM_HEAP: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXV_PUSH: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXV_PULL: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXV_DUAL_FALLBACK: AtomicU64 = AtomicU64::new(0);
    pub(super) static MXV_MISPREDICT: AtomicU64 = AtomicU64::new(0);
    pub(super) static FLOPS_EST: AtomicU64 = AtomicU64::new(0);
    pub(super) static PAR_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(super) static SEQ_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(super) static CHUNKS_SPAWNED: AtomicU64 = AtomicU64::new(0);
    pub(super) static REDUCE_EARLY_EXITS: AtomicU64 = AtomicU64::new(0);
    pub(super) static ASSEMBLES: AtomicU64 = AtomicU64::new(0);
    pub(super) static EWISE: AtomicU64 = AtomicU64::new(0);
    pub(super) static APPLY: AtomicU64 = AtomicU64::new(0);
    pub(super) static SELECT: AtomicU64 = AtomicU64::new(0);
    pub(super) static REDUCE: AtomicU64 = AtomicU64::new(0);
    pub(super) static TRANSPOSE: AtomicU64 = AtomicU64::new(0);
    pub(super) static ASSIGN: AtomicU64 = AtomicU64::new(0);
    pub(super) static EXTRACT: AtomicU64 = AtomicU64::new(0);
    pub(super) static KRON: AtomicU64 = AtomicU64::new(0);

    pub(super) static ALL: [&AtomicU64; 21] = [
        &MXM_GUSTAVSON,
        &MXM_DOT,
        &MXM_HEAP,
        &MXV_PUSH,
        &MXV_PULL,
        &MXV_DUAL_FALLBACK,
        &MXV_MISPREDICT,
        &FLOPS_EST,
        &PAR_CALLS,
        &SEQ_CALLS,
        &CHUNKS_SPAWNED,
        &REDUCE_EARLY_EXITS,
        &ASSEMBLES,
        &EWISE,
        &APPLY,
        &SELECT,
        &REDUCE,
        &TRANSPOSE,
        &ASSIGN,
        &EXTRACT,
        &KRON,
    ];

    pub(super) fn read() -> Snapshot {
        Snapshot {
            mxm_gustavson: MXM_GUSTAVSON.load(Relaxed),
            mxm_dot: MXM_DOT.load(Relaxed),
            mxm_heap: MXM_HEAP.load(Relaxed),
            mxv_push: MXV_PUSH.load(Relaxed),
            mxv_pull: MXV_PULL.load(Relaxed),
            mxv_dual_fallback: MXV_DUAL_FALLBACK.load(Relaxed),
            mxv_mispredict: MXV_MISPREDICT.load(Relaxed),
            flops_est: FLOPS_EST.load(Relaxed),
            par_calls: PAR_CALLS.load(Relaxed),
            seq_calls: SEQ_CALLS.load(Relaxed),
            chunks_spawned: CHUNKS_SPAWNED.load(Relaxed),
            reduce_early_exits: REDUCE_EARLY_EXITS.load(Relaxed),
            assembles: ASSEMBLES.load(Relaxed),
            ewise: EWISE.load(Relaxed),
            apply: APPLY.load(Relaxed),
            select: SELECT.load(Relaxed),
            reduce: REDUCE.load(Relaxed),
            transpose: TRANSPOSE.load(Relaxed),
            assign: ASSIGN.load(Relaxed),
            extract: EXTRACT.load(Relaxed),
            kron: KRON.load(Relaxed),
        }
    }
}

/// Read the current counter values. All-zero unless the `stats` feature is
/// enabled.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "stats")]
    {
        imp::read()
    }
    #[cfg(not(feature = "stats"))]
    {
        Snapshot::default()
    }
}

/// Reset every counter to zero.
pub fn reset() {
    #[cfg(feature = "stats")]
    for c in imp::ALL {
        c.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Which `mxm` kernel ran.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MxmKernel {
    Gustavson,
    Dot,
    Heap,
}

/// Which `mxv` direction ran.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MxvPath {
    Push,
    Pull,
}

/// Per-op invocation counters for the operations that have no
/// kernel-choice counter of their own (the kernels parallelized in the
/// pool-migration PR). Fed by [`crate::trace::op_span`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpTag {
    Ewise,
    Apply,
    Select,
    Reduce,
    Transpose,
    Assign,
    Extract,
    Kron,
}

macro_rules! record_fns {
    ($($(#[$doc:meta])* fn $name:ident($($arg:ident : $ty:ty),*) $body:block)*) => {
        $(
            $(#[$doc])*
            #[cfg(feature = "stats")]
            pub(crate) fn $name($($arg: $ty),*) $body

            $(#[$doc])*
            #[cfg(not(feature = "stats"))]
            #[inline(always)]
            pub(crate) fn $name($(_: $ty),*) {}
        )*
    };
}

record_fns! {
    /// Count an `mxm` invocation by kernel.
    fn record_mxm_kernel(k: MxmKernel) {
        use std::sync::atomic::Ordering::Relaxed;
        match k {
            MxmKernel::Gustavson => imp::MXM_GUSTAVSON.fetch_add(1, Relaxed),
            MxmKernel::Dot => imp::MXM_DOT.fetch_add(1, Relaxed),
            MxmKernel::Heap => imp::MXM_HEAP.fetch_add(1, Relaxed),
        };
    }

    /// Count an `mxv`/`vxm` product by chosen direction.
    fn record_mxv_path(p: MxvPath) {
        use std::sync::atomic::Ordering::Relaxed;
        match p {
            MxvPath::Push => imp::MXV_PUSH.fetch_add(1, Relaxed),
            MxvPath::Pull => imp::MXV_PULL.fetch_add(1, Relaxed),
        };
    }

    /// Count a product that fell back to the natural kernel because dual
    /// storage was missing.
    fn record_mxv_dual_fallback() {
        imp::MXV_DUAL_FALLBACK.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Count an `Auto` product whose measured work priced higher than the
    /// rejected direction's estimate.
    fn record_mxv_mispredict() {
        imp::MXV_MISPREDICT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Accumulate a kernel's work estimate (order of flops).
    fn add_flops(n: usize) {
        imp::FLOPS_EST.fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// Count one `par_chunks` dispatch and how many chunks it executed
    /// (`chunks == 1` means it stayed sequential).
    fn record_dispatch(chunks: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        if chunks > 1 {
            imp::PAR_CALLS.fetch_add(1, Relaxed);
            imp::CHUNKS_SPAWNED.fetch_add(chunks as u64, Relaxed);
        } else {
            imp::SEQ_CALLS.fetch_add(1, Relaxed);
        }
    }

    /// Count a reduction that short-circuited on a terminal value.
    fn record_early_exit() {
        imp::REDUCE_EARLY_EXITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Count a lazy assembly.
    fn record_assemble() {
        imp::ASSEMBLES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Count an op invocation by tag.
    fn record_op(tag: OpTag) {
        use std::sync::atomic::Ordering::Relaxed;
        match tag {
            OpTag::Ewise => imp::EWISE.fetch_add(1, Relaxed),
            OpTag::Apply => imp::APPLY.fetch_add(1, Relaxed),
            OpTag::Select => imp::SELECT.fetch_add(1, Relaxed),
            OpTag::Reduce => imp::REDUCE.fetch_add(1, Relaxed),
            OpTag::Transpose => imp::TRANSPOSE.fetch_add(1, Relaxed),
            OpTag::Assign => imp::ASSIGN.fetch_add(1, Relaxed),
            OpTag::Extract => imp::EXTRACT.fetch_add(1, Relaxed),
            OpTag::Kron => imp::KRON.fetch_add(1, Relaxed),
        };
    }
}

#[cfg(all(test, feature = "stats"))]
mod tests {
    use super::*;

    // Counters are process-global and the test harness runs tests
    // concurrently, so assert on deltas with `>=`, not exact values.
    #[test]
    fn counters_accumulate() {
        let before = snapshot();
        record_mxm_kernel(MxmKernel::Dot);
        record_mxv_path(MxvPath::Pull);
        add_flops(128);
        record_dispatch(4);
        record_dispatch(1);
        record_op(OpTag::Ewise);
        record_op(OpTag::Kron);
        let s = snapshot();
        assert!(s.mxm_dot > before.mxm_dot);
        assert!(s.mxv_pull > before.mxv_pull);
        assert!(s.flops_est >= before.flops_est + 128);
        assert!(s.par_calls > before.par_calls);
        assert!(s.chunks_spawned >= before.chunks_spawned + 4);
        assert!(s.seq_calls > before.seq_calls);
        assert!(s.ewise > before.ewise);
        assert!(s.kron > before.kron);
    }
}
