//! Measured cost model for kernel selection.
//!
//! The push/pull direction choice in `mxv`/`vxm` and the Gustavson/dot
//! method choice in `mxm` both reduce to the same question: is it cheaper
//! to expand the sparse input (saxpy-style scatter work) or to compute
//! only the requested outputs (dot-style gather work)? Instead of a fixed
//! ratio (the old `PUSH_PULL_RATIO = 10` and `mask.nvals() <= 4 * out_rows`
//! rules), each candidate kernel gets a flops estimate and the estimates
//! are weighted by **measured** per-flop constants:
//!
//! * push / Gustavson work ≈ input nnz × average row degree, costed at the
//!   calibrated scatter rate;
//! * pull / masked-dot work ≈ dense-view build + considered rows × per-row
//!   cost, costed at the calibrated dot rate.
//!
//! Calibration runs once per process (the first product that consults the
//! model): two synthetic micro-kernels — one scatter-shaped, one
//! dot-shaped — are timed and aggregated through the
//! [`crate::trace::Profile`] machinery, giving nanoseconds-per-flop
//! constants on the *actual* host. The result is recorded as a
//! `cost.calibrate` instant event so Chrome traces show which constants
//! every subsequent direction choice used. The `GRAPHBLAS_COST_MODEL`
//! environment variable (`"<push_ns>,<pull_ns>"`) overrides calibration
//! for reproducible runs.
//!
//! Every estimator below saturates: operand dimensions may legitimately
//! sit near `Index::MAX` (hypersparse matrices), and a debug-build
//! overflow in a *heuristic* must never abort a correct product.

use std::sync::OnceLock;
use std::time::Instant;

use crate::trace::{self, ArgValue, Cat, Event, Profile};

/// Measured per-flop costs, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one scatter-side (saxpy) flop: read a matrix entry, combine
    /// into a random position of an accumulator.
    pub push_ns: f64,
    /// Cost of one dot-side flop: read a matrix entry, gather from a dense
    /// vector, fold into a register accumulator.
    pub pull_ns: f64,
}

impl CostModel {
    /// Estimated nanoseconds for `flops` of scatter-side work.
    pub fn push_cost(&self, flops: usize) -> f64 {
        self.push_ns * flops as f64
    }

    /// Estimated nanoseconds for `flops` of dot-side work.
    pub fn pull_cost(&self, flops: usize) -> f64 {
        self.pull_ns * flops as f64
    }

    /// True when the scatter-side estimate is strictly cheaper.
    pub fn push_wins(&self, push_flops: usize, pull_flops: usize) -> bool {
        self.push_cost(push_flops) < self.pull_cost(pull_flops)
    }
}

/// The process-wide cost model, calibrated on first use (or taken from
/// `GRAPHBLAS_COST_MODEL`). Constant for the life of the process, so a
/// given operand shape always resolves to the same direction — the
/// determinism the thread-equivalence suite relies on.
pub fn model() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        if let Some(m) = parse_env(std::env::var("GRAPHBLAS_COST_MODEL").ok().as_deref()) {
            return m;
        }
        calibrate()
    })
}

/// Parse a `GRAPHBLAS_COST_MODEL="<push_ns>,<pull_ns>"` override. Unset is
/// silently "calibrate"; a set-but-invalid value warns once and falls back
/// to calibration instead of being silently ignored.
fn parse_env(raw: Option<&str>) -> Option<CostModel> {
    let raw = raw?;
    let parsed = raw.split_once(',').and_then(|(p, q)| {
        let push_ns: f64 = p.trim().parse().ok()?;
        let pull_ns: f64 = q.trim().parse().ok()?;
        (push_ns.is_finite() && push_ns > 0.0 && pull_ns.is_finite() && pull_ns > 0.0)
            .then_some(CostModel { push_ns, pull_ns })
    });
    if parsed.is_none() {
        trace::warn_once(
            "GRAPHBLAS_COST_MODEL",
            &format!(
                "ignoring invalid GRAPHBLAS_COST_MODEL={raw:?} (expected \
                 '<push_ns>,<pull_ns>' with positive numbers); calibrating instead"
            ),
        );
    }
    parsed
}

/// Bounds on a believable per-flop cost; timings outside them (clock
/// glitches, preemption) are clamped rather than trusted.
const MIN_NS_PER_FLOP: f64 = 0.05;
const MAX_NS_PER_FLOP: f64 = 1000.0;

/// Time the two kernel shapes on synthetic data and derive ns-per-flop
/// constants through a [`Profile`] over the timing events. A few hundred
/// microseconds, paid once per process.
fn calibrate() -> CostModel {
    const N: usize = 1 << 10;
    const DEG: usize = 8;
    const REPS: u32 = 5;
    let flops = (N * DEG) as u64;
    // Synthetic CSR-shaped data: N rows of DEG entries with a scrambled
    // (cache-unfriendly, like real scatter targets) column pattern.
    let cols: Vec<usize> = (0..N * DEG).map(|t| (t.wrapping_mul(7919) + 13) % N).collect();
    let vals: Vec<f64> = (0..N * DEG).map(|t| (t % 13) as f64 + 1.0).collect();

    let mut events: Vec<Event> = Vec::new();
    let mut sample = |name: &'static str, dur_ns: u64| {
        events.push(Event {
            name,
            cat: Cat::Runtime,
            kernel: None,
            t0_ns: 0,
            dur_ns: dur_ns.max(1),
            tid: 0,
            args: vec![("flops", ArgValue::U64(flops))],
        });
    };

    // Scatter shape: combine every entry into a stamped dense accumulator.
    let mut acc = vec![0.0f64; N];
    let mut stamp = vec![0u32; N];
    for rep in 1..=REPS {
        let t0 = Instant::now();
        for r in 0..N {
            for t in r * DEG..(r + 1) * DEG {
                let j = cols[t];
                let prod = vals[t] * 2.0;
                if stamp[j] == rep {
                    acc[j] += prod;
                } else {
                    stamp[j] = rep;
                    acc[j] = prod;
                }
            }
        }
        std::hint::black_box(&acc);
        sample("cost.push", t0.elapsed().as_nanos() as u64);
    }

    // Dot shape: per row, gather from a dense vector and fold.
    let dense: Vec<f64> = (0..N).map(|i| (i % 7) as f64 + 0.5).collect();
    let mut sink = 0.0f64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for r in 0..N {
            let mut s = 0.0f64;
            for t in r * DEG..(r + 1) * DEG {
                s += vals[t] * dense[cols[t]];
            }
            sink += s;
        }
        std::hint::black_box(sink);
        sample("cost.pull", t0.elapsed().as_nanos() as u64);
    }

    let p = Profile::from_events(&events);
    let per_flop = |name: &str| -> f64 {
        p.ops
            .get(name)
            .filter(|o| o.total_flops > 0)
            .map(|o| {
                (o.total_ns as f64 / o.total_flops as f64).clamp(MIN_NS_PER_FLOP, MAX_NS_PER_FLOP)
            })
            .unwrap_or(1.0)
    };
    let m = CostModel { push_ns: per_flop("cost.push"), pull_ns: per_flop("cost.pull") };
    trace::cost_calibrated(m.push_ns, m.pull_ns);
    m
}

// ---------------------------------------------------------------------------
// Flops estimators (all saturating; see module docs)
// ---------------------------------------------------------------------------

/// Push (scatter) side of `mxv`/`vxm`: every input entry expands an
/// average-degree row of the matrix.
pub fn mxv_push_flops(u_nvals: usize, a_nnz: usize, src_majors: usize) -> usize {
    let deg = (a_nnz / src_majors.max(1)).max(1);
    u_nvals.saturating_mul(deg)
}

/// Pull (rowdot) side of `mxv`/`vxm`: building the dense input view
/// (`dense_build = n` for a sparse-stored vector, 0 when already dense)
/// plus the considered rows. A terminal or ANY monoid stops each dot at
/// its first hit, so those rows cost ~1 flop; otherwise a full
/// average-degree row is scanned.
pub fn mxv_pull_flops(
    dense_build: usize,
    rows_considered: usize,
    a_nnz: usize,
    out_majors: usize,
    early_exit: bool,
) -> usize {
    let per_row = if early_exit { 1 } else { (a_nnz / out_majors.max(1)).max(1) };
    dense_build.saturating_add(rows_considered.saturating_mul(per_row))
}

/// Masked-dot `mxm`: one dot of combined average row length per stored
/// mask entry.
pub fn mxm_dot_flops(
    mask_nnz: usize,
    a_nnz: usize,
    a_majors: usize,
    b_nnz: usize,
    bt_majors: usize,
) -> usize {
    let per_dot =
        (a_nnz / a_majors.max(1)).saturating_add(b_nnz / bt_majors.max(1)).saturating_add(1);
    mask_nnz.saturating_mul(per_dot)
}

/// Gustavson `mxm`: every `A` entry expands an average-degree row of `B`.
pub fn mxm_gustavson_flops(a_nnz: usize, b_nnz: usize, b_majors: usize) -> usize {
    a_nnz.saturating_mul((b_nnz.max(1) / b_majors.max(1)).saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_stable_and_sane() {
        let a = model();
        let b = model();
        assert_eq!(a, b, "model must be calibrated exactly once");
        assert!(a.push_ns >= MIN_NS_PER_FLOP && a.push_ns <= MAX_NS_PER_FLOP);
        assert!(a.pull_ns >= MIN_NS_PER_FLOP && a.pull_ns <= MAX_NS_PER_FLOP);
    }

    #[test]
    fn env_override_parsing() {
        assert_eq!(parse_env(None), None);
        let m = parse_env(Some("0.5, 2.0")).expect("valid override");
        assert_eq!(m, CostModel { push_ns: 0.5, pull_ns: 2.0 });
        assert_eq!(parse_env(Some("1.0")), None);
        assert_eq!(parse_env(Some("0,1")), None);
        assert_eq!(parse_env(Some("-1,1")), None);
        assert_eq!(parse_env(Some("nan,1")), None);
        assert_eq!(parse_env(Some("fast,slow")), None);
    }

    #[test]
    fn estimators_saturate_near_index_max() {
        // Hypersparse operands put dimensions near Index::MAX; every
        // estimate must stay finite instead of overflowing in debug.
        let n = usize::MAX / 2;
        assert_eq!(mxv_push_flops(usize::MAX, usize::MAX, 1), usize::MAX);
        let _ = mxv_pull_flops(n, n, 4, n, false);
        let _ = mxv_pull_flops(n, n, usize::MAX, 1, false);
        let _ = mxm_dot_flops(n, usize::MAX, 1, usize::MAX, 1);
        assert_eq!(mxm_gustavson_flops(usize::MAX, usize::MAX, 1), usize::MAX);
    }

    #[test]
    fn crossover_tracks_frontier_density() {
        // With any sane constants, a tiny frontier must choose push and a
        // dense one must choose pull in the BFS (early-exit) regime.
        let m = model();
        let (n, deg) = (1 << 20, 16);
        let sparse_push = mxv_push_flops(4, n * deg, n);
        let dense_push = mxv_push_flops(n / 2, n * deg, n);
        let pull = mxv_pull_flops(n, n, n * deg, n, true);
        assert!(m.push_wins(sparse_push, pull), "tiny frontier must push");
        // Half-dense frontier: push work is 4× the pull work, so pull wins
        // unless this host's measured dot rate is over 4× the scatter rate.
        assert!(!m.push_wins(dense_push, pull) || m.pull_ns > 4.0 * m.push_ns);
    }
}
