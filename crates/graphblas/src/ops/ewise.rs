//! `GrB_eWiseAdd` (set union) and `GrB_eWiseMult` (set intersection).
//!
//! "Add" and "multiply" refer to the *pattern* semantics, not the operator:
//! any binary operator can be used with either. For `eWiseAdd`, positions
//! present in only one input pass their value through unchanged, so both
//! inputs and the output share one domain; `eWiseMult` only produces values
//! where both inputs have entries and may be heterogeneous.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::sparse::{transpose_dyn, MatData, SparseView};
use crate::trace;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

use super::common::{check_dims, check_mmask, check_vmask};
use super::write::{write_matrix, write_vector};

/// `w⟨mask⟩ ⊙= u ⊕ v` — union merge of two vectors.
pub fn ewise_add<T, Op, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    op: Op,
    u: &Vector<T>,
    v: &Vector<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Op: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    check_dims(u.size() == v.size(), "eWiseAdd: input lengths differ")?;
    check_dims(w.size() == u.size(), "eWiseAdd: output length differs")?;
    check_vmask(mask, w.size())?;
    let mut span = trace::op_span(trace::Op::EwiseAdd);
    let (t_idx, t_val) = {
        let gu = u.read();
        let gv = v.read();
        if span.on() {
            span.arg("n", u.size());
            span.arg("u_nnz", gu.nvals_assembled());
            span.arg("v_nnz", gv.nvals_assembled());
        }
        union_merge(gu.view(), gv.view(), u.size(), &op)
    };
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// `w⟨mask⟩ ⊙= u ⊗ v` — intersection merge of two vectors.
pub fn ewise_mult<A, B, T, Op, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    op: Op,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    Op: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    check_dims(u.size() == v.size(), "eWiseMult: input lengths differ")?;
    check_dims(w.size() == u.size(), "eWiseMult: output length differs")?;
    check_vmask(mask, w.size())?;
    let mut span = trace::op_span(trace::Op::EwiseMult);
    let (t_idx, t_val) = {
        let gu = u.read();
        let gv = v.read();
        if span.on() {
            span.arg("n", u.size());
            span.arg("u_nnz", gu.nvals_assembled());
            span.arg("v_nnz", gv.nvals_assembled());
        }
        let (ui, uv) = sparse_parts(gu.view());
        let vview = gv.view();
        // The intersection is driven by u's entries, which chunk cleanly:
        // each worker probes v independently and output order follows
        // chunk order.
        let chunks = par_chunks(ui.len(), ui.len(), |r| {
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for (i, x) in ui[r.clone()].iter().copied().zip(uv[r].iter().copied()) {
                if let Some(y) = vview.get(i) {
                    idx.push(i);
                    val.push(op.apply(x, y));
                }
            }
            (idx, val)
        });
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (ci, cv) in chunks {
            idx.extend(ci);
            val.extend(cv);
        }
        (idx, val)
    };
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

fn sparse_parts<T: Scalar>(view: crate::vector::VView<'_, T>) -> (Vec<Index>, Vec<T>) {
    let mut idx = Vec::new();
    let mut val = Vec::new();
    view.for_each(|i, x| {
        idx.push(i);
        val.push(x);
    });
    (idx, val)
}

fn union_merge<T: Scalar, Op: BinaryOp<T, T, T>>(
    u: crate::vector::VView<'_, T>,
    v: crate::vector::VView<'_, T>,
    n: usize,
    op: &Op,
) -> (Vec<Index>, Vec<T>) {
    let (ui, uv) = sparse_parts(u);
    let (vi, vv) = sparse_parts(v);
    // Chunk over the shared index domain [0, n): each worker locates its
    // slice of both inputs with a binary search, then runs the two-pointer
    // merge on disjoint index ranges. Stitching in chunk order reproduces
    // the sequential output exactly.
    let chunks = par_chunks(n, ui.len() + vi.len(), |r| {
        let (ua, ub) = (ui.partition_point(|&i| i < r.start), ui.partition_point(|&i| i < r.end));
        let (va, vb) = (vi.partition_point(|&i| i < r.start), vi.partition_point(|&i| i < r.end));
        let (ui, uv) = (&ui[ua..ub], &uv[ua..ub]);
        let (vi, vv) = (&vi[va..vb], &vv[va..vb]);
        let mut idx = Vec::with_capacity(ui.len() + vi.len());
        let mut val = Vec::with_capacity(ui.len() + vi.len());
        let (mut a, mut b) = (0, 0);
        while a < ui.len() || b < vi.len() {
            if a < ui.len() && (b >= vi.len() || ui[a] < vi[b]) {
                idx.push(ui[a]);
                val.push(uv[a]);
                a += 1;
            } else if b < vi.len() && (a >= ui.len() || vi[b] < ui[a]) {
                idx.push(vi[b]);
                val.push(vv[b]);
                b += 1;
            } else {
                idx.push(ui[a]);
                val.push(op.apply(uv[a], vv[b]));
                a += 1;
                b += 1;
            }
        }
        (idx, val)
    });
    let mut idx = Vec::with_capacity(ui.len() + vi.len());
    let mut val = Vec::with_capacity(ui.len() + vi.len());
    for (ci, cv) in chunks {
        idx.extend(ci);
        val.extend(cv);
    }
    (idx, val)
}

/// Resolve a (possibly transposed) matrix operand to a dynamic row view.
pub(crate) struct EffView<'a, T: Scalar> {
    owned: Option<MatData<T>>,
    base: &'a dyn SparseView<T>,
}

impl<'a, T: Scalar> EffView<'a, T> {
    pub fn new(base: &'a dyn SparseView<T>, transpose: bool) -> Self {
        if transpose {
            EffView { owned: Some(transpose_dyn(base)), base }
        } else {
            EffView { owned: None, base }
        }
    }

    pub fn view(&self) -> &dyn SparseView<T> {
        match &self.owned {
            Some(d) => d.view(),
            None => self.base,
        }
    }
}

/// `C⟨Mask⟩ ⊙= A ⊕ B` — union merge of two matrices (with optional
/// transposes).
pub fn ewise_add_matrix<T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    op: Op,
    a: &Matrix<T>,
    b: &Matrix<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Op: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ga = a.read_rows();
    let gb = b.read_rows();
    let ea = EffView::new(rows_of(&ga), desc.transpose_a);
    let eb = EffView::new(rows_of(&gb), desc.transpose_b);
    let (av, bv) = (ea.view(), eb.view());
    check_dims(
        av.nmajor() == bv.nmajor() && av.nminor() == bv.nminor(),
        "eWiseAdd: input shapes differ",
    )?;
    let (nr, nc) = (av.nmajor(), av.nminor());
    let mut span = trace::op_span(trace::Op::EwiseAdd);
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
        span.arg("a_nnz", av.nvals());
        span.arg("b_nnz", bv.nvals());
    }
    let vecs = merge_matrix_union(av, bv, &op);
    drop(ea);
    drop(eb);
    drop(ga);
    drop(gb);
    check_dims(c.nrows() == nr && c.ncols() == nc, "eWiseAdd: output shape differs")?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, vecs)
}

/// `C⟨Mask⟩ ⊙= A ⊗ B` — intersection merge of two matrices.
pub fn ewise_mult_matrix<A, B, T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    op: Op,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    Op: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let ga = a.read_rows();
    let gb = b.read_rows();
    let ea = EffView::new(rows_of(&ga), desc.transpose_a);
    let eb = EffView::new(rows_of(&gb), desc.transpose_b);
    let (av, bv) = (ea.view(), eb.view());
    check_dims(
        av.nmajor() == bv.nmajor() && av.nminor() == bv.nminor(),
        "eWiseMult: input shapes differ",
    )?;
    let (nr, nc) = (av.nmajor(), av.nminor());
    let mut span = trace::op_span(trace::Op::EwiseMult);
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
        span.arg("a_nnz", av.nvals());
        span.arg("b_nnz", bv.nvals());
    }
    // Rows intersect independently: chunk over A's nonempty majors and let
    // each worker run the two-pointer intersection for its rows.
    let amaj = av.nonempty_majors();
    let chunks = par_chunks(amaj.len(), av.nvals() + bv.nvals(), |range| {
        let mut part = Vec::new();
        let mut sa = crate::sparse::RowScratch::default();
        let mut sb = crate::sparse::RowScratch::default();
        for &i in &amaj[range] {
            let (aidx, aval) = av.row(i, &mut sa);
            let (bidx, bval) = bv.row(i, &mut sb);
            if bidx.is_empty() {
                continue;
            }
            let mut ridx = Vec::new();
            let mut rval = Vec::new();
            let (mut p, mut q) = (0, 0);
            while p < aidx.len() && q < bidx.len() {
                if aidx[p] < bidx[q] {
                    p += 1;
                } else if bidx[q] < aidx[p] {
                    q += 1;
                } else {
                    ridx.push(aidx[p]);
                    rval.push(op.apply(aval[p], bval[q]));
                    p += 1;
                    q += 1;
                }
            }
            if !ridx.is_empty() {
                part.push((i, ridx, rval));
            }
        }
        part
    });
    let vecs: Vec<_> = chunks.into_iter().flatten().collect();
    drop(ea);
    drop(eb);
    drop(ga);
    drop(gb);
    check_dims(c.nrows() == nr && c.ncols() == nc, "eWiseMult: output shape differs")?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, vecs)
}

fn merge_matrix_union<T: Scalar, Op: BinaryOp<T, T, T>>(
    av: &dyn SparseView<T>,
    bv: &dyn SparseView<T>,
    op: &Op,
) -> Vec<(Index, Vec<Index>, Vec<T>)> {
    let amaj = av.nonempty_majors();
    let bmaj = bv.nonempty_majors();
    // Merge the two sorted major lists up front (cheap, O(rows)), then the
    // per-row union merges chunk over the combined list — rows are
    // independent and chunk-order stitching keeps the output sorted.
    let mut rows = Vec::with_capacity(amaj.len() + bmaj.len());
    let (mut x, mut y) = (0, 0);
    while x < amaj.len() || y < bmaj.len() {
        let row = match (amaj.get(x), bmaj.get(y)) {
            (Some(&ra), Some(&rb)) => ra.min(rb),
            (Some(&ra), None) => ra,
            (None, Some(&rb)) => rb,
            (None, None) => unreachable!(),
        };
        if amaj.get(x) == Some(&row) {
            x += 1;
        }
        if bmaj.get(y) == Some(&row) {
            y += 1;
        }
        rows.push(row);
    }
    let chunks = par_chunks(rows.len(), av.nvals() + bv.nvals(), |range| {
        let mut part = Vec::with_capacity(range.len());
        let mut sa = crate::sparse::RowScratch::default();
        let mut sb = crate::sparse::RowScratch::default();
        for &row in &rows[range] {
            let (aidx, aval) = av.row(row, &mut sa);
            let (bidx, bval) = bv.row(row, &mut sb);
            let mut ridx = Vec::with_capacity(aidx.len() + bidx.len());
            let mut rval = Vec::with_capacity(aidx.len() + bidx.len());
            let (mut p, mut q) = (0, 0);
            while p < aidx.len() || q < bidx.len() {
                if p < aidx.len() && (q >= bidx.len() || aidx[p] < bidx[q]) {
                    ridx.push(aidx[p]);
                    rval.push(aval[p]);
                    p += 1;
                } else if q < bidx.len() && (p >= aidx.len() || bidx[q] < aidx[p]) {
                    ridx.push(bidx[q]);
                    rval.push(bval[q]);
                    q += 1;
                } else {
                    ridx.push(aidx[p]);
                    rval.push(op.apply(aval[p], bval[q]));
                    p += 1;
                    q += 1;
                }
            }
            part.push((row, ridx, rval));
        }
        part
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::{Plus, Times};
    use crate::ops::common::NOACC;

    #[test]
    fn vector_union() {
        let u = Vector::from_tuples(5, vec![(0, 1), (2, 2)], |_, b| b).expect("u");
        let v = Vector::from_tuples(5, vec![(2, 10), (4, 20)], |_, b| b).expect("v");
        let mut w = Vector::<i32>::new(5).expect("w");
        ewise_add(&mut w, None, NOACC, Plus, &u, &v, &Descriptor::default()).expect("add");
        assert_eq!(w.extract_tuples(), vec![(0, 1), (2, 12), (4, 20)]);
    }

    #[test]
    fn vector_intersection() {
        let u = Vector::from_tuples(5, vec![(0, 1), (2, 2)], |_, b| b).expect("u");
        let v = Vector::from_tuples(5, vec![(2, 10), (4, 20)], |_, b| b).expect("v");
        let mut w = Vector::<i32>::new(5).expect("w");
        ewise_mult(&mut w, None, NOACC, Times, &u, &v, &Descriptor::default()).expect("mult");
        assert_eq!(w.extract_tuples(), vec![(2, 20)]);
    }

    #[test]
    fn heterogeneous_mult_domains() {
        let u = Vector::from_tuples(3, vec![(1, 2.5f64)], |_, b| b).expect("u");
        let v = Vector::from_tuples(3, vec![(1, 4u8)], |_, b| b).expect("v");
        let mut w = Vector::<i64>::new(3).expect("w");
        let op = |a: f64, b: u8| (a * b as f64) as i64;
        ewise_mult(&mut w, None, NOACC, op, &u, &v, &Descriptor::default()).expect("mult");
        assert_eq!(w.extract_tuples(), vec![(1, 10)]);
    }

    #[test]
    fn matrix_union_and_intersection() {
        let a = Matrix::from_tuples(2, 2, vec![(0, 0, 1), (1, 1, 2)], |_, b| b).expect("a");
        let b = Matrix::from_tuples(2, 2, vec![(0, 0, 10), (0, 1, 20)], |_, b| b).expect("b");
        let mut add = Matrix::<i32>::new(2, 2).expect("add");
        ewise_add_matrix(&mut add, None, NOACC, Plus, &a, &b, &Descriptor::default()).expect("add");
        assert_eq!(add.extract_tuples(), vec![(0, 0, 11), (0, 1, 20), (1, 1, 2)]);
        let mut mult = Matrix::<i32>::new(2, 2).expect("mult");
        ewise_mult_matrix(&mut mult, None, NOACC, Times, &a, &b, &Descriptor::default())
            .expect("mult");
        assert_eq!(mult.extract_tuples(), vec![(0, 0, 10)]);
    }

    #[test]
    fn matrix_ewise_with_transpose() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 2, 5)], |_, b| b).expect("a");
        let b = Matrix::from_tuples(3, 2, vec![(2, 0, 7)], |_, b| b).expect("b");
        // A ⊕ Bᵀ : B(2,0) lands at (0,2).
        let mut c = Matrix::<i32>::new(2, 3).expect("c");
        ewise_add_matrix(&mut c, None, NOACC, Plus, &a, &b, &Descriptor::new().transpose_b())
            .expect("add");
        assert_eq!(c.extract_tuples(), vec![(0, 2, 12)]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::<i32>::new(2, 3).expect("a");
        let b = Matrix::<i32>::new(3, 2).expect("b");
        let mut c = Matrix::<i32>::new(2, 3).expect("c");
        assert!(
            ewise_add_matrix(&mut c, None, NOACC, Plus, &a, &b, &Descriptor::default()).is_err()
        );
    }
}
