//! `GrB_assign`: write into a sub-region of a vector or matrix —
//! `w(I)⟨mask⟩ ⊙= u`, `C(I,J)⟨Mask⟩ ⊙= A`, and the scalar-expansion
//! variants (`w(I)⟨mask⟩ ⊙= x`). The scalar form with `GrB_ALL` indices is
//! the `levels[frontier] = depth` line of the Fig. 2 BFS.
//!
//! Positions outside the selected region are never modified; inside the
//! region, the standard write rule (mask / accumulator / replace) applies,
//! with the mask indexed by the output's coordinates.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix, Store};
use crate::parallel::par_chunks;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

use super::common::{check_dims, check_mmask, check_vmask, IndexSel, InverseSel, MMask, VMask};

/// `w(I)⟨mask⟩ ⊙= u`.
pub fn assign<T, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    u: &Vector<T>,
    i_sel: &IndexSel,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Acc: BinaryOp<T, T, T>,
{
    let n = w.size();
    i_sel.check(n)?;
    check_dims(u.size() == i_sel.len(n), "assign: |I| must equal length of u")?;
    check_vmask(mask, n)?;
    let mut span = crate::trace::op_span(crate::trace::Op::Assign);
    // Expand u into w-space: t[I[k]] = u[k].
    let mut t: Vec<(Index, T)> = {
        let g = u.read();
        if span.on() {
            span.arg("n", n);
            span.arg("u_nnz", g.nvals_assembled());
        }
        let mut t = Vec::with_capacity(g.nvals_assembled());
        g.view().for_each(|k, x| t.push((i_sel.nth(k), x)));
        t
    };
    t.sort_by_key(|&(i, _)| i);
    let inv = i_sel.inverse(n);
    merge_vector_region(w, mask, accum, desc, t, &inv)
}

/// `w(I)⟨mask⟩ ⊙= x` — scalar expansion over the selected region.
pub fn assign_scalar<T, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    x: T,
    i_sel: &IndexSel,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Acc: BinaryOp<T, T, T>,
{
    let n = w.size();
    i_sel.check(n)?;
    check_vmask(mask, n)?;
    let mut span = crate::trace::op_span(crate::trace::Op::Assign);
    span.arg("n", n);
    let inv = i_sel.inverse(n);
    // The expanded T is conceptually x at *every* region position. When a
    // non-complemented mask is present, only mask-allowed positions can
    // receive it, so enumerate the (usually much sparser) mask instead.
    let mut t: Vec<(Index, T)> = Vec::new();
    let enumerate_mask = mask.is_some() && !desc.mask_complement;
    if enumerate_mask {
        let g = mask.expect("checked").read();
        let structural = desc.mask_structural;
        g.view().for_each(|i, mv| {
            if (structural || mv) && inv.pos(i).is_some() {
                t.push((i, x));
            }
        });
    } else {
        for k in 0..i_sel.len(n) {
            t.push((i_sel.nth(k), x));
        }
        t.sort_by_key(|&(i, _)| i);
    }
    merge_vector_region(w, mask, accum, desc, t, &inv)
}

/// Region-limited write rule for vectors. `t` must be sorted by index and
/// contain only in-region positions.
fn merge_vector_region<T: Scalar, Acc: BinaryOp<T, T, T>>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    desc: &Descriptor,
    t: Vec<(Index, T)>,
    inv: &InverseSel,
) -> Result<()> {
    debug_assert!(t.windows(2).all(|p| p[0].0 < p[1].0));
    let mguard = mask.map(|m| m.read());
    let meval = VMask::new(mguard.as_ref().map(|g| g.view()), desc);
    let old: Vec<(Index, T)> = {
        let g = w.read();
        let mut o = Vec::with_capacity(g.nvals_assembled());
        g.view().for_each(|i, v| o.push((i, v)));
        o
    };
    // Positions are decided independently, so chunk over the index domain:
    // each worker binary-searches its slice of `old` and `t`, then runs the
    // two-pointer merge + write rule; chunk-order stitching keeps the
    // output sorted.
    let n = w.size();
    let chunks = par_chunks(n, old.len() + t.len(), |r| {
        let (oa, ob) =
            (old.partition_point(|p| p.0 < r.start), old.partition_point(|p| p.0 < r.end));
        let (ta, tb) = (t.partition_point(|p| p.0 < r.start), t.partition_point(|p| p.0 < r.end));
        let (old, t) = (&old[oa..ob], &t[ta..tb]);
        let mut out_idx = Vec::with_capacity(old.len() + t.len());
        let mut out_val = Vec::with_capacity(old.len() + t.len());
        let (mut a, mut b) = (0, 0);
        while a < old.len() || b < t.len() {
            let (i, c, tv) = if a < old.len() && (b >= t.len() || old[a].0 <= t[b].0) {
                if b < t.len() && old[a].0 == t[b].0 {
                    let r = (old[a].0, Some(old[a].1), Some(t[b].1));
                    a += 1;
                    b += 1;
                    r
                } else {
                    let r = (old[a].0, Some(old[a].1), None);
                    a += 1;
                    r
                }
            } else {
                let r = (t[b].0, None, Some(t[b].1));
                b += 1;
                r
            };
            let result = if inv.pos(i).is_none() {
                c // outside the region: untouched
            } else {
                let z = match &accum {
                    Some(acc) => match (c, tv) {
                        (Some(cv), Some(t)) => Some(acc.apply(cv, t)),
                        (Some(cv), None) => Some(cv),
                        (None, t) => t,
                    },
                    None => tv,
                };
                if meval.allowed(i) {
                    z
                } else if desc.replace {
                    None
                } else {
                    c
                }
            };
            if let Some(v) = result {
                out_idx.push(i);
                out_val.push(v);
            }
        }
        (out_idx, out_val)
    });
    let mut out_idx = Vec::with_capacity(old.len() + t.len());
    let mut out_val = Vec::with_capacity(old.len() + t.len());
    for (ci, cv) in chunks {
        out_idx.extend(ci);
        out_val.extend(cv);
    }
    drop(mguard);
    w.install(out_idx, out_val);
    Ok(())
}

/// `C(I,J)⟨Mask⟩ ⊙= A`.
pub fn assign_matrix<T, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    a: &Matrix<T>,
    i_sel: &IndexSel,
    j_sel: &IndexSel,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Acc: BinaryOp<T, T, T>,
{
    let (nr, nc) = (c.nrows(), c.ncols());
    i_sel.check(nr)?;
    j_sel.check(nc)?;
    check_dims(
        a.nrows() == i_sel.len(nr) && a.ncols() == j_sel.len(nc),
        "assign: A must be |I| x |J|",
    )?;
    check_mmask(mask, nr, nc)?;
    let mut span = crate::trace::op_span(crate::trace::Op::Assign);
    // Expand A into C-space.
    let mut t: Vec<(Index, Vec<Index>, Vec<T>)> = {
        let ga = a.read_rows();
        if span.on() {
            span.arg("nrows", nr);
            span.arg("ncols", nc);
            span.arg("a_nnz", ga.nvals_assembled());
        }
        let v = rows_of(&ga);
        let mut t = Vec::with_capacity(v.nvecs());
        v.for_each_vec(&mut |k, idx, val| {
            let mut row: Vec<(Index, T)> =
                idx.iter().zip(val).map(|(&jk, &x)| (j_sel.nth(jk), x)).collect();
            row.sort_by_key(|&(j, _)| j);
            let (ri, rv) = row.into_iter().unzip();
            t.push((i_sel.nth(k), ri, rv));
        });
        t
    };
    t.sort_by_key(|&(i, _, _)| i);
    let i_inv = i_sel.inverse(nr);
    let j_inv = j_sel.inverse(nc);
    merge_matrix_region(c, mask, accum, desc, t, &i_inv, &j_inv)
}

/// `C(I,J)⟨Mask⟩ ⊙= x` — scalar expansion over the region.
pub fn assign_matrix_scalar<T, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    x: T,
    i_sel: &IndexSel,
    j_sel: &IndexSel,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Acc: BinaryOp<T, T, T>,
{
    let (nr, nc) = (c.nrows(), c.ncols());
    i_sel.check(nr)?;
    j_sel.check(nc)?;
    check_mmask(mask, nr, nc)?;
    let mut span = crate::trace::op_span(crate::trace::Op::Assign);
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
    }
    let i_inv = i_sel.inverse(nr);
    let j_inv = j_sel.inverse(nc);
    let mut t: Vec<(Index, Vec<Index>, Vec<T>)> = Vec::new();
    let enumerate_mask = mask.is_some() && !desc.mask_complement;
    if enumerate_mask {
        let g = mask.expect("checked").read_rows();
        let v = rows_of(&g);
        let structural = desc.mask_structural;
        v.for_each_vec(&mut |i, idx, val| {
            if i_inv.pos(i).is_none() {
                return;
            }
            let mut ri = Vec::new();
            for (&j, &mv) in idx.iter().zip(val) {
                if (structural || mv) && j_inv.pos(j).is_some() {
                    ri.push(j);
                }
            }
            if !ri.is_empty() {
                let rv = vec![x; ri.len()];
                t.push((i, ri, rv));
            }
        });
    } else {
        for k in 0..i_sel.len(nr) {
            let cols: Vec<Index> = match j_sel {
                IndexSel::All => (0..nc).collect(),
                IndexSel::Range(r) => r.clone().collect(),
                IndexSel::List(l) => {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l.dedup();
                    l
                }
            };
            let vals = vec![x; cols.len()];
            t.push((i_sel.nth(k), cols, vals));
        }
        t.sort_by_key(|&(i, _, _)| i);
    }
    merge_matrix_region(c, mask, accum, desc, t, &i_inv, &j_inv)
}

fn merge_matrix_region<T: Scalar, Acc: BinaryOp<T, T, T>>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    desc: &Descriptor,
    t_vecs: Vec<(Index, Vec<Index>, Vec<T>)>,
    i_inv: &InverseSel,
    j_inv: &InverseSel,
) -> Result<()> {
    let (nrows, ncols) = (c.nrows(), c.ncols());
    let old_vecs = super::common::matrix_row_vecs(&*c);
    let mguard = mask.map(|m| m.read_rows());
    let mview = mguard.as_ref().map(|g| rows_of(&**g));
    let meval = MMask::new(mview, desc);

    // Pair up old and incoming rows (both sorted by major) so the per-row
    // merges — which are independent — can chunk over the paired list.
    let mut pairs: Vec<(Index, Option<usize>, Option<usize>)> = Vec::new();
    let (mut oa, mut tb) = (0, 0);
    while oa < old_vecs.len() || tb < t_vecs.len() {
        let row = match (old_vecs.get(oa), t_vecs.get(tb)) {
            (Some(o), Some(t)) => o.0.min(t.0),
            (Some(o), None) => o.0,
            (None, Some(t)) => t.0,
            (None, None) => unreachable!(),
        };
        let o = if old_vecs.get(oa).map(|o| o.0) == Some(row) {
            oa += 1;
            Some(oa - 1)
        } else {
            None
        };
        let t = if t_vecs.get(tb).map(|t| t.0) == Some(row) {
            tb += 1;
            Some(tb - 1)
        } else {
            None
        };
        pairs.push((row, o, t));
    }
    let est = old_vecs.iter().map(|v| v.1.len()).sum::<usize>()
        + t_vecs.iter().map(|v| v.1.len()).sum::<usize>();
    let chunks = par_chunks(pairs.len(), est, |range| {
        let mut part = Vec::with_capacity(range.len());
        let mut mscratch = crate::sparse::RowScratch::default();
        for &(row, o, t) in &pairs[range] {
            let row_in_region = i_inv.pos(row).is_some();
            let rmask = meval.row(row, &mut mscratch);
            let empty: (&[Index], &[T]) = (&[], &[]);
            let (o_idx, o_val) =
                o.map(|p| (&old_vecs[p].1[..], &old_vecs[p].2[..])).unwrap_or(empty);
            let (t_idx, t_val) = t.map(|p| (&t_vecs[p].1[..], &t_vecs[p].2[..])).unwrap_or(empty);
            let mut ridx = Vec::with_capacity(o_idx.len() + t_idx.len());
            let mut rval = Vec::with_capacity(o_idx.len() + t_idx.len());
            let (mut a, mut b) = (0, 0);
            while a < o_idx.len() || b < t_idx.len() {
                let (j, cval, tval) =
                    if a < o_idx.len() && (b >= t_idx.len() || o_idx[a] <= t_idx[b]) {
                        if b < t_idx.len() && o_idx[a] == t_idx[b] {
                            let r = (o_idx[a], Some(o_val[a]), Some(t_val[b]));
                            a += 1;
                            b += 1;
                            r
                        } else {
                            let r = (o_idx[a], Some(o_val[a]), None);
                            a += 1;
                            r
                        }
                    } else {
                        let r = (t_idx[b], None, Some(t_val[b]));
                        b += 1;
                        r
                    };
                let result = if !row_in_region || j_inv.pos(j).is_none() {
                    cval
                } else {
                    let z = match &accum {
                        Some(acc) => match (cval, tval) {
                            (Some(cv), Some(tv)) => Some(acc.apply(cv, tv)),
                            (Some(cv), None) => Some(cv),
                            (None, tv) => tv,
                        },
                        None => tval,
                    };
                    if rmask.allowed(j) {
                        z
                    } else if desc.replace {
                        None
                    } else {
                        cval
                    }
                };
                if let Some(v) = result {
                    ridx.push(j);
                    rval.push(v);
                }
            }
            if !ridx.is_empty() {
                part.push((row, ridx, rval));
            }
        }
        part
    });
    let out: Vec<(Index, Vec<Index>, Vec<T>)> = chunks.into_iter().flatten().collect();
    drop(mguard);
    c.install(nrows, ncols, Store::row_major_from_vecs(nrows, ncols, out));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::Plus;
    use crate::ops::common::NOACC;
    use crate::types::All;

    #[test]
    fn vector_assign_subrange() {
        let mut w =
            Vector::from_tuples(6, vec![(0, 100), (2, 100), (5, 100)], |_, b| b).expect("w");
        let u = Vector::from_tuples(3, vec![(0, 1), (2, 3)], |_, b| b).expect("u");
        assign(&mut w, None, NOACC, &u, &IndexSel::Range(2..5), &Descriptor::default())
            .expect("assign");
        // Region 2..5 becomes exactly u (entry at 3 region-pos 1 absent →
        // old entry at w(2) replaced by u(0)=1, w(4)=3; outside untouched.
        assert_eq!(w.extract_tuples(), vec![(0, 100), (2, 1), (4, 3), (5, 100)]);
    }

    #[test]
    fn vector_assign_scalar_masked_is_bfs_idiom() {
        // levels<frontier> = depth over ALL indices.
        let mut levels = Vector::from_tuples(5, vec![(0, 1)], |_, b| b).expect("levels");
        let frontier = Vector::from_tuples(5, vec![(2, true), (4, true)], |_, b| b).expect("front");
        assign_scalar(
            &mut levels,
            Some(&frontier),
            NOACC,
            2,
            &IndexSel::from(All),
            &Descriptor::default(),
        )
        .expect("assign");
        assert_eq!(levels.extract_tuples(), vec![(0, 1), (2, 2), (4, 2)]);
    }

    #[test]
    fn vector_assign_scalar_complement_mask() {
        let mut w = Vector::from_tuples(4, vec![(1, 9)], |_, b| b).expect("w");
        let m = Vector::from_tuples(4, vec![(1, true)], |_, b| b).expect("m");
        assign_scalar(
            &mut w,
            Some(&m),
            NOACC,
            7,
            &IndexSel::from(All),
            &Descriptor::new().complement(),
        )
        .expect("assign");
        // Everything except position 1 receives 7.
        assert_eq!(w.extract_tuples(), vec![(0, 7), (1, 9), (2, 7), (3, 7)]);
    }

    #[test]
    fn vector_assign_with_accumulator() {
        let mut w = Vector::from_tuples(3, vec![(0, 1), (1, 1)], |_, b| b).expect("w");
        assign_scalar(&mut w, None, Some(Plus), 10, &IndexSel::from(All), &Descriptor::default())
            .expect("assign");
        assert_eq!(w.extract_tuples(), vec![(0, 11), (1, 11), (2, 10)]);
    }

    #[test]
    fn matrix_assign_submatrix() {
        let mut c = Matrix::from_tuples(4, 4, vec![(0, 0, 9), (3, 3, 9)], |_, b| b).expect("c");
        let a = Matrix::from_tuples(2, 2, vec![(0, 0, 1), (1, 1, 2)], |_, b| b).expect("a");
        assign_matrix(
            &mut c,
            None,
            NOACC,
            &a,
            &IndexSel::List(vec![1, 2]),
            &IndexSel::List(vec![1, 2]),
            &Descriptor::default(),
        )
        .expect("assign");
        assert_eq!(c.extract_tuples(), vec![(0, 0, 9), (1, 1, 1), (2, 2, 2), (3, 3, 9)]);
    }

    #[test]
    fn matrix_assign_clears_region_entries_not_in_a() {
        let mut c = Matrix::from_tuples(3, 3, vec![(1, 1, 9), (0, 0, 9)], |_, b| b).expect("c");
        let a = Matrix::<i32>::new(2, 2).expect("a"); // empty
        assign_matrix(
            &mut c,
            None,
            NOACC,
            &a,
            &IndexSel::Range(1..3),
            &IndexSel::Range(1..3),
            &Descriptor::default(),
        )
        .expect("assign");
        // (1,1) was in the region and A is empty there → deleted.
        assert_eq!(c.extract_tuples(), vec![(0, 0, 9)]);
    }

    #[test]
    fn matrix_assign_scalar_all() {
        let mut c = Matrix::<i32>::new(2, 2).expect("c");
        assign_matrix_scalar(
            &mut c,
            None,
            NOACC,
            5,
            &IndexSel::from(All),
            &IndexSel::from(All),
            &Descriptor::default(),
        )
        .expect("assign");
        assert_eq!(c.nvals(), 4);
        assert_eq!(c.get(1, 0), Some(5));
    }

    #[test]
    fn matrix_assign_scalar_masked() {
        let mut c = Matrix::<i32>::new(3, 3).expect("c");
        let mask =
            Matrix::from_tuples(3, 3, vec![(0, 1, true), (2, 2, true)], |_, b| b).expect("m");
        assign_matrix_scalar(
            &mut c,
            Some(&mask),
            NOACC,
            7,
            &IndexSel::from(All),
            &IndexSel::from(All),
            &Descriptor::default(),
        )
        .expect("assign");
        assert_eq!(c.extract_tuples(), vec![(0, 1, 7), (2, 2, 7)]);
    }

    #[test]
    fn assign_dims_checked() {
        let mut w = Vector::<i32>::new(5).expect("w");
        let u = Vector::<i32>::new(2).expect("u");
        assert!(assign(&mut w, None, NOACC, &u, &IndexSel::Range(0..3), &Descriptor::default())
            .is_err());
    }
}
