//! The GraphBLAS operation layer — every operation of Table I plus
//! `select` and `kronecker`, each taking the C API argument order
//! `(output, mask, accumulator, operator(s), input(s), descriptor)`.
//!
//! All operations funnel through the single write-rule kernel in
//! [`write`], so mask, accumulator, and replace semantics are implemented
//! (and tested) exactly once.

pub mod apply;
pub mod assign;
pub mod common;
pub mod concat;
pub mod ewise;
pub mod extract;
pub mod fused;
pub mod kron;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod select;
pub(crate) mod spec;
pub mod transpose;
mod write;

pub use apply::{apply, apply_indexed, apply_matrix, apply_matrix_indexed};
pub use assign::{assign, assign_matrix, assign_matrix_scalar, assign_scalar};
pub use common::{IndexSel, NOACC};
pub use concat::{concat, diag_extract, diag_matrix, split};
pub use ewise::{ewise_add, ewise_add_matrix, ewise_mult, ewise_mult_matrix};
pub use extract::{extract, extract_col, extract_matrix};
pub use fused::{
    fused_mxm_reduce_scalar, fused_mxm_row_reduce, fused_mxm_row_reduce_pattern, fused_mxm_select,
};
pub use kron::kronecker;
pub use mxm::mxm;
pub use mxv::{mxv, vxm};
pub use reduce::{reduce_matrix, reduce_matrix_scalar, reduce_vector_scalar};
pub use select::{select, select_matrix, tril, triu};
pub use transpose::{transpose, transpose_new};
