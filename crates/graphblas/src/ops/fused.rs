//! Fused masked-multiply-and-consume kernels.
//!
//! The triangle family (tricount, k-truss, triangle centrality) all
//! compute a masked product `C⟨M⟩ = A ⊕.⊗ B` and then immediately fold
//! `C` away — into a scalar, a per-row vector, or a thresholded subset.
//! Materializing `C` just to reduce it pays for matrix assembly, a second
//! full pass, and peak memory proportional to `nnz(M)`. The entry points
//! here run the masked dot-product kernel (the same specialized inner
//! loops as [`super::mxm()`], see the `spec` module) and consume each
//! output row while it is still in cache — `C` never exists.
//!
//! Scope and contract:
//!
//! * the mask is required, non-complemented, and evaluated exactly as
//!   `mxm` would (structural flag and transposes honored);
//! * results are identical to the materialize-then-reduce composition —
//!   rows are consumed in row-major order, entries in column order, which
//!   is the order the unfused reduction would fold;
//! * fusion engages only when the semiring resolves to a specialized
//!   kernel (`spec::resolve`) and specialization is enabled; otherwise
//!   these functions transparently fall back to the unfused composition,
//!   so `GRAPHBLAS_SPECIALIZE=0` disables the fused path end to end.

use crate::binaryop::BinaryOp;
use crate::cost;
use crate::descriptor::Descriptor;
use crate::error::{Error, Result};
use crate::matrix::{rows_of, Matrix};
use crate::monoid::Monoid;
use crate::parallel::par_chunks;
use crate::semiring::Semiring;
use crate::sparse::SparseView;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

use super::common::{check_dims, check_mmask, MMask, NOACC};
use super::ewise::EffView;
use super::spec::{self, SemiringSpec};
use super::write::write_matrix;

/// Effective operand/output shapes under the descriptor's transposes:
/// `(nr, nc, inner)` for `C(nr×nc) = A(nr×inner) · B(inner×nc)`.
fn effective_dims<A: Scalar, B: Scalar>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<(Index, Index)> {
    let (am, an) = if desc.transpose_a { (a.ncols(), a.nrows()) } else { (a.nrows(), a.ncols()) };
    let (bm, bn) = if desc.transpose_b { (b.ncols(), b.nrows()) } else { (b.nrows(), b.ncols()) };
    check_dims(an == bm, "fused mxm: inner dimensions must agree")?;
    Ok((am, bn))
}

fn check_fusable(desc: &Descriptor) -> Result<()> {
    if desc.mask_complement {
        return Err(Error::invalid("fused mxm requires a plain (non-complemented) mask"));
    }
    Ok(())
}

/// Resolve the specialized kernel for this call, or `None` when the
/// semiring is unrecognized or specialization is disabled (the callers
/// then take the unfused fallback).
fn resolve_spec<A, B, T, SA, SM>(
    semiring: &Semiring<SA, SM>,
    desc: &Descriptor,
) -> Option<SemiringSpec>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    if desc.specialize && spec::enabled() {
        spec::resolve(semiring.add.op_id(), semiring.mul.op_id())
    } else {
        None
    }
}

/// The shared fused loop: run one specialized dot per stored mask entry,
/// grouped by row, and hand each non-empty output row `(i, ridx, rval)`
/// to `consume` against a per-chunk state. Chunk states come back in
/// chunk (= row-major) order.
fn fused_masked_dot<A, B, T, SA, SM, St, Cons>(
    av: &dyn SparseView<A>,
    btv: &dyn SparseView<B>,
    add: &SA,
    mul: &SM,
    sp: Option<SemiringSpec>,
    mask: &MMask<'_>,
    consume: Cons,
) -> Vec<St>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    St: Default + Send,
    Cons: Fn(&mut St, Index, &[Index], &[T]) + Sync,
{
    let mut mrows: Vec<(Index, Vec<Index>)> = Vec::new();
    let mut total = 0usize;
    mask.for_each_stored(&mut |i, j| {
        total += 1;
        match mrows.last_mut() {
            Some((r, js)) if *r == i => js.push(j),
            _ => mrows.push((i, vec![j])),
        }
    });
    let per_dot = av.nvals() / av.nmajor().max(1) + btv.nvals() / btv.nmajor().max(1) + 1;
    par_chunks(mrows.len(), total.saturating_mul(per_dot), |range| {
        let mut st = St::default();
        let mut ridx: Vec<Index> = Vec::new();
        let mut rval: Vec<T> = Vec::new();
        let mut sa = crate::sparse::RowScratch::default();
        let mut sb = crate::sparse::RowScratch::default();
        for (i, js) in &mrows[range] {
            let (aidx, aval) = av.row(*i, &mut sa);
            if aidx.is_empty() {
                continue;
            }
            ridx.clear();
            rval.clear();
            for &j in js {
                let (bidx, bval) = btv.row(j, &mut sb);
                if let Some(v) = spec::dot(sp, add, mul, aidx, aval, bidx, bval) {
                    ridx.push(j);
                    rval.push(v);
                }
            }
            if !ridx.is_empty() {
                consume(&mut st, *i, &ridx, &rval);
            }
        }
        st
    })
}

/// `⊕ᵣ (A ⊕.⊗ B)⟨M⟩` — the masked product reduced all the way to a
/// scalar (`reduce.identity()` when the masked product is empty), without
/// materializing the product. The workhorse of triangle counting:
/// `sum(sum((L ⊕.pair Lᵀ) .* L))`.
pub fn fused_mxm_reduce_scalar<A, B, T, SA, SM, R>(
    reduce: &R,
    mask: &Matrix<bool>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    R: Monoid<T>,
{
    check_fusable(desc)?;
    let (nr, nc) = effective_dims(a, b, desc)?;
    check_mmask(Some(mask), nr, nc)?;
    let Some(sp) = resolve_spec(semiring, desc) else {
        // Unfused fallback: materialize, then reduce.
        let mut c = Matrix::<T>::new(nr, nc)?;
        super::mxm(&mut c, Some(mask), NOACC, semiring, a, b, desc)?;
        return Ok(super::reduce_matrix_scalar(reduce, &c));
    };
    let mut span = crate::trace::op_span(crate::trace::Op::MxmFused);
    span.kernel(crate::trace::Kernel::FusedReduce);
    let ga = a.read_rows();
    let gb = b.read_rows();
    let ea = EffView::new(rows_of(&ga), desc.transpose_a);
    let av = ea.view();
    let ebt = EffView::new(rows_of(&gb), !desc.transpose_b);
    let btv = ebt.view();
    let mguard = mask.read_rows();
    let meval = MMask::new(Some(rows_of(&*mguard)), desc);
    fused_span_args(&mut span, nr, nc, av, btv, &meval, sp);
    let parts: Vec<Option<T>> = fused_masked_dot(
        av,
        btv,
        &semiring.add,
        &semiring.mul,
        Some(sp),
        &meval,
        |st: &mut Option<T>, _i, _ridx, rval| {
            for &v in rval {
                *st = Some(match *st {
                    None => v,
                    Some(cur) => reduce.apply(cur, v),
                });
            }
        },
    );
    let mut acc: Option<T> = None;
    for p in parts.into_iter().flatten() {
        acc = Some(match acc {
            None => p,
            Some(cur) => reduce.apply(cur, p),
        });
    }
    Ok(acc.unwrap_or_else(|| reduce.identity()))
}

/// Row-wise reduction of the masked product: `t(i) = ⊕ⱼ (A ⊕.⊗ B)⟨M⟩(i,
/// j)`, skipping rows with no surviving entries — exactly
/// `reduce_matrix` applied to the materialized product, minus the
/// product.
pub fn fused_mxm_row_reduce<A, B, T, SA, SM, R>(
    reduce: &R,
    mask: &Matrix<bool>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<Vector<T>>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    R: Monoid<T>,
{
    Ok(fused_mxm_row_reduce_pattern(reduce, mask, semiring, a, b, desc)?.0)
}

/// [`fused_mxm_row_reduce`] that additionally returns the masked
/// product's *pattern* (the triangle-edge matrix in triangle
/// centrality) — still without materializing the product's values.
pub fn fused_mxm_row_reduce_pattern<A, B, T, SA, SM, R>(
    reduce: &R,
    mask: &Matrix<bool>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<(Vector<T>, Matrix<bool>)>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    R: Monoid<T>,
{
    check_fusable(desc)?;
    let (nr, nc) = effective_dims(a, b, desc)?;
    check_mmask(Some(mask), nr, nc)?;
    let Some(sp) = resolve_spec(semiring, desc) else {
        let mut c = Matrix::<T>::new(nr, nc)?;
        super::mxm(&mut c, Some(mask), NOACC, semiring, a, b, desc)?;
        let mut t = Vector::<T>::new(nr)?;
        super::reduce_matrix(&mut t, None, NOACC, reduce, &c, &Descriptor::new())?;
        let pat = c.pattern();
        return Ok((t, pat));
    };
    let mut span = crate::trace::op_span(crate::trace::Op::MxmFused);
    span.kernel(crate::trace::Kernel::FusedReduce);
    let (t_entries, pat_vecs) = {
        let ga = a.read_rows();
        let gb = b.read_rows();
        let ea = EffView::new(rows_of(&ga), desc.transpose_a);
        let av = ea.view();
        let ebt = EffView::new(rows_of(&gb), !desc.transpose_b);
        let btv = ebt.view();
        let mguard = mask.read_rows();
        let meval = MMask::new(Some(rows_of(&*mguard)), desc);
        fused_span_args(&mut span, nr, nc, av, btv, &meval, sp);
        type RowState<T> = (Vec<(Index, T)>, Vec<(Index, Vec<Index>, Vec<bool>)>);
        let parts: Vec<RowState<T>> = fused_masked_dot(
            av,
            btv,
            &semiring.add,
            &semiring.mul,
            Some(sp),
            &meval,
            |st: &mut RowState<T>, i, ridx, rval| {
                let mut it = rval.iter().copied();
                let first = it.next().expect("consume sees non-empty rows");
                let sum = it.fold(first, |acc, v| reduce.apply(acc, v));
                st.0.push((i, sum));
                st.1.push((i, ridx.to_vec(), vec![true; ridx.len()]));
            },
        );
        let mut t_entries: Vec<(Index, T)> = Vec::new();
        let mut pat_vecs: Vec<(Index, Vec<Index>, Vec<bool>)> = Vec::new();
        for (te, pv) in parts {
            t_entries.extend(te);
            pat_vecs.extend(pv);
        }
        (t_entries, pat_vecs)
    };
    let (idx, val) = t_entries.into_iter().unzip();
    let t = Vector::from_parts(nr, idx, val);
    let mut pat = Matrix::<bool>::new(nr, nc)?;
    write_matrix(&mut pat, None, NOACC, &Descriptor::new(), pat_vecs)?;
    Ok((t, pat))
}

/// The masked product filtered in flight: keep entries whose value
/// satisfies `keep`, dropping the rest before they are ever stored — the
/// k-truss support-threshold step (`keep = |sup| sup >= k - 2`) without
/// the intermediate support matrix.
pub fn fused_mxm_select<A, B, T, SA, SM, K>(
    keep: K,
    mask: &Matrix<bool>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<Matrix<T>>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    K: Fn(T) -> bool + Sync,
{
    check_fusable(desc)?;
    let (nr, nc) = effective_dims(a, b, desc)?;
    check_mmask(Some(mask), nr, nc)?;
    let Some(sp) = resolve_spec(semiring, desc) else {
        let mut c = Matrix::<T>::new(nr, nc)?;
        super::mxm(&mut c, Some(mask), NOACC, semiring, a, b, desc)?;
        let kept: Vec<(Index, Index, T)> =
            c.extract_tuples().into_iter().filter(|&(_, _, v)| keep(v)).collect();
        return Matrix::from_tuples(nr, nc, kept, |_, incoming| incoming);
    };
    let mut span = crate::trace::op_span(crate::trace::Op::MxmFused);
    span.kernel(crate::trace::Kernel::FusedSelect);
    let vecs = {
        let ga = a.read_rows();
        let gb = b.read_rows();
        let ea = EffView::new(rows_of(&ga), desc.transpose_a);
        let av = ea.view();
        let ebt = EffView::new(rows_of(&gb), !desc.transpose_b);
        let btv = ebt.view();
        let mguard = mask.read_rows();
        let meval = MMask::new(Some(rows_of(&*mguard)), desc);
        fused_span_args(&mut span, nr, nc, av, btv, &meval, sp);
        type KeptRows<T> = Vec<(Index, Vec<Index>, Vec<T>)>;
        let parts: Vec<KeptRows<T>> = fused_masked_dot(
            av,
            btv,
            &semiring.add,
            &semiring.mul,
            Some(sp),
            &meval,
            |st: &mut KeptRows<T>, i, ridx, rval| {
                let mut ki: Vec<Index> = Vec::new();
                let mut kv: Vec<T> = Vec::new();
                for (&j, &v) in ridx.iter().zip(rval) {
                    if keep(v) {
                        ki.push(j);
                        kv.push(v);
                    }
                }
                if !ki.is_empty() {
                    st.push((i, ki, kv));
                }
            },
        );
        parts.into_iter().flatten().collect::<Vec<_>>()
    };
    let mut out = Matrix::<T>::new(nr, nc)?;
    write_matrix(&mut out, None, NOACC, &Descriptor::new(), vecs)?;
    Ok(out)
}

/// Common span arguments for the fused kernels.
fn fused_span_args<A: Scalar, B: Scalar>(
    span: &mut crate::trace::Span,
    nr: Index,
    nc: Index,
    av: &dyn SparseView<A>,
    btv: &dyn SparseView<B>,
    mask: &MMask<'_>,
    sp: SemiringSpec,
) {
    // The same work estimate the mxm span this kernel replaces would have
    // recorded (mxm always books est_gustavson, whatever method ran), so
    // flops trajectories compare cleanly across fused and unfused runs.
    let est = cost::mxm_gustavson_flops(av.nvals(), btv.nvals(), av.nminor());
    span.flops(est);
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
        span.arg("a_nnz", av.nvals());
        span.arg("b_nnz", btv.nvals());
        span.arg("mask_nnz", mask.nvals());
        span.arg("spec", sp.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::MxmMethod;
    use crate::semiring::PLUS_PAIR;

    /// Two triangles sharing vertex 2, as a symmetric bool matrix.
    fn two_triangles() -> Matrix<bool> {
        let e = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        let mut t = Vec::new();
        for &(i, j) in &e {
            t.push((i, j, true));
            t.push((j, i, true));
        }
        Matrix::from_tuples(5, 5, t, |_, b| b).expect("graph")
    }

    fn materialized_sum(a: &Matrix<bool>, desc: &Descriptor) -> u64 {
        let mut c = Matrix::<u64>::new(a.nrows(), a.ncols()).expect("c");
        super::super::mxm(&mut c, Some(a), NOACC, &PLUS_PAIR, a, a, desc).expect("mxm");
        super::super::reduce_matrix_scalar(&crate::binaryop::Plus, &c)
    }

    #[test]
    fn fused_scalar_reduce_matches_materialized() {
        let a = two_triangles();
        let desc = Descriptor::new().structural();
        let fused: u64 =
            fused_mxm_reduce_scalar(&crate::binaryop::Plus, &a, &PLUS_PAIR, &a, &a, &desc)
                .expect("fused");
        assert_eq!(fused, materialized_sum(&a, &desc));
        assert_eq!(fused / 6, 2, "two triangles");
    }

    #[test]
    fn fused_scalar_reduce_generic_fallback_matches() {
        let a = two_triangles();
        let desc = Descriptor::new().structural().generic_only();
        let fused: u64 =
            fused_mxm_reduce_scalar(&crate::binaryop::Plus, &a, &PLUS_PAIR, &a, &a, &desc)
                .expect("fused");
        assert_eq!(fused / 6, 2);
    }

    #[test]
    fn fused_row_reduce_and_pattern_match_materialized() {
        let a = two_triangles();
        let desc = Descriptor::new().structural();
        let (t, pat) =
            fused_mxm_row_reduce_pattern(&crate::binaryop::Plus, &a, &PLUS_PAIR, &a, &a, &desc)
                .expect("fused");
        let mut c = Matrix::<u64>::new(5, 5).expect("c");
        super::super::mxm(&mut c, Some(&a), NOACC, &PLUS_PAIR, &a, &a, &desc).expect("mxm");
        let mut want = Vector::<u64>::new(5).expect("t");
        super::super::reduce_matrix(
            &mut want,
            None,
            NOACC,
            &crate::binaryop::Plus,
            &c,
            &Descriptor::new(),
        )
        .expect("reduce");
        assert_eq!(t.extract_tuples(), want.extract_tuples());
        assert_eq!(pat.extract_tuples(), c.pattern().extract_tuples());
    }

    #[test]
    fn fused_select_keeps_thresholded_entries() {
        let a = two_triangles();
        // Support = common-neighbor count per edge; the Sandia-style call.
        let desc = Descriptor::new().structural().transpose_b().method(MxmMethod::Dot);
        let kept = fused_mxm_select(|v: u64| v >= 1, &a, &PLUS_PAIR, &a, &a, &desc).expect("fused");
        let mut c = Matrix::<u64>::new(5, 5).expect("c");
        super::super::mxm(&mut c, Some(&a), NOACC, &PLUS_PAIR, &a, &a, &desc).expect("mxm");
        let want: Vec<_> = c.extract_tuples().into_iter().filter(|&(_, _, v)| v >= 1).collect();
        assert_eq!(kept.extract_tuples(), want);
    }

    #[test]
    fn complemented_mask_is_rejected() {
        let a = two_triangles();
        let desc = Descriptor::new().structural().complement();
        let r: Result<u64> =
            fused_mxm_reduce_scalar(&crate::binaryop::Plus, &a, &PLUS_PAIR, &a, &a, &desc);
        assert!(r.is_err());
    }

    #[test]
    fn empty_masked_product_reduces_to_identity() {
        // A path graph has no triangles: the masked wedge product is empty.
        let mut t = Vec::new();
        for &(i, j) in &[(0, 1), (1, 2), (2, 3)] {
            t.push((i, j, true));
            t.push((j, i, true));
        }
        let a = Matrix::from_tuples(4, 4, t, |_, b| b).expect("path");
        let desc = Descriptor::new().structural();
        let s: u64 = fused_mxm_reduce_scalar(&crate::binaryop::Plus, &a, &PLUS_PAIR, &a, &a, &desc)
            .expect("fused");
        assert_eq!(s, 0);
    }
}
