//! The write rule: `C⟨M, replace⟩ ⊙= T`.
//!
//! Every GraphBLAS operation ends by merging its computed result `T` into
//! the output under the mask, accumulator, and replace settings. The C API
//! defines this once mathematically; we implement it once here, so mask
//! complement/structural handling and accumulator semantics are tested in
//! one place and inherited by every operation.
//!
//! Semantics (per position `p`):
//!
//! * `Z(p)` = `T(p)` when there is no accumulator; with accumulator `⊙`,
//!   `Z = C_old ⊙ T` with union pattern (`acc(c,t)` where both, the sole
//!   value where only one side has an entry).
//! * `C_new(p)` = `Z(p)` where the mask allows writing; elsewhere `C_old(p)`
//!   is kept, unless `replace` is set, in which case it is deleted.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{Matrix, Store};
use crate::parallel::par_chunks;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

use super::common::{matrix_row_vecs, MMask, VMask};

/// Merge a computed sparse vector result into `w`.
pub(crate) fn write_vector<T: Scalar, Acc: BinaryOp<T, T, T>>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    desc: &Descriptor,
    t_idx: Vec<Index>,
    t_val: Vec<T>,
) -> Result<()> {
    debug_assert!(t_idx.windows(2).all(|p| p[0] < p[1]), "result must be sorted");
    let mut span = crate::trace::op_span(crate::trace::Op::Write);
    span.arg("t_nnz", t_idx.len());
    let mguard = mask.map(|m| m.read());
    let meval = VMask::new(mguard.as_ref().map(|g| g.view()), desc);

    // Fast path: nothing to merge against.
    if meval.is_transparent() && accum.is_none() {
        drop(mguard);
        w.install(t_idx, t_val);
        return Ok(());
    }

    let (old_idx, old_val): (Vec<Index>, Vec<T>) = {
        let g = w.read();
        let mut oi = Vec::with_capacity(g.nvals_assembled());
        let mut ov = Vec::with_capacity(g.nvals_assembled());
        g.view().for_each(|i, v| {
            oi.push(i);
            ov.push(v);
        });
        (oi, ov)
    };

    // Positions are decided independently, so chunk over the index domain:
    // each worker binary-searches its slice of both inputs and runs the
    // two-pointer merge + write rule; chunk-order stitching keeps the
    // output sorted.
    let n = w.size();
    let chunks = par_chunks(n, t_idx.len() + old_idx.len(), |r| {
        let (oa, ob) =
            (old_idx.partition_point(|&i| i < r.start), old_idx.partition_point(|&i| i < r.end));
        let (ta, tb) =
            (t_idx.partition_point(|&i| i < r.start), t_idx.partition_point(|&i| i < r.end));
        let (old_idx, old_val) = (&old_idx[oa..ob], &old_val[oa..ob]);
        let (t_idx, t_val) = (&t_idx[ta..tb], &t_val[ta..tb]);
        let mut out_idx = Vec::with_capacity(t_idx.len() + old_idx.len());
        let mut out_val = Vec::with_capacity(t_idx.len() + old_idx.len());
        let mut a = 0; // cursor into old
        let mut b = 0; // cursor into t
        while a < old_idx.len() || b < t_idx.len() {
            let (i, c, t) = match (old_idx.get(a), t_idx.get(b)) {
                (Some(&oi), Some(&ti)) if oi == ti => {
                    let r = (oi, Some(old_val[a]), Some(t_val[b]));
                    a += 1;
                    b += 1;
                    r
                }
                (Some(&oi), Some(&ti)) if oi < ti => {
                    let r = (oi, Some(old_val[a]), None);
                    a += 1;
                    r
                }
                (Some(_), Some(&ti)) => {
                    let r = (ti, None, Some(t_val[b]));
                    b += 1;
                    r
                }
                (Some(&oi), None) => {
                    let r = (oi, Some(old_val[a]), None);
                    a += 1;
                    r
                }
                (None, Some(&ti)) => {
                    let r = (ti, None, Some(t_val[b]));
                    b += 1;
                    r
                }
                (None, None) => unreachable!(),
            };
            let z = match &accum {
                Some(acc) => match (c, t) {
                    (Some(c), Some(t)) => Some(acc.apply(c, t)),
                    (Some(c), None) => Some(c),
                    (None, t) => t,
                },
                None => t,
            };
            let result = if meval.allowed(i) {
                z
            } else if desc.replace {
                None
            } else {
                c
            };
            if let Some(v) = result {
                out_idx.push(i);
                out_val.push(v);
            }
        }
        (out_idx, out_val)
    });
    let mut out_idx = Vec::with_capacity(t_idx.len() + old_idx.len());
    let mut out_val = Vec::with_capacity(t_idx.len() + old_idx.len());
    for (ci, cv) in chunks {
        out_idx.extend(ci);
        out_val.extend(cv);
    }
    drop(mguard);
    w.install(out_idx, out_val);
    Ok(())
}

/// Merge a computed sparse matrix result (per-row segments, sorted by row)
/// into `c`.
pub(crate) fn write_matrix<T: Scalar, Acc: BinaryOp<T, T, T>>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    desc: &Descriptor,
    t_vecs: Vec<(Index, Vec<Index>, Vec<T>)>,
) -> Result<()> {
    let mut span = crate::trace::op_span(crate::trace::Op::Write);
    if span.on() {
        span.arg("t_nnz", t_vecs.iter().map(|(_, i, _)| i.len()).sum::<usize>());
    }
    let (nrows, ncols) = (c.nrows(), c.ncols());

    // Fast path: the result replaces the output wholesale.
    let transparent = mask.is_none() && !desc.mask_complement;
    if transparent && accum.is_none() {
        c.install(nrows, ncols, Store::row_major_from_vecs(nrows, ncols, t_vecs));
        return Ok(());
    }

    let old_vecs = matrix_row_vecs(&*c);
    let mguard = mask.map(|m| m.read_rows());
    let mview = mguard.as_ref().map(|g| crate::matrix::rows_of(&**g));
    let out = merge_rows(old_vecs, t_vecs, &MMask::new(mview, desc), &accum, desc.replace);
    drop(mguard);
    c.install(nrows, ncols, Store::row_major_from_vecs(nrows, ncols, out));
    Ok(())
}

fn merge_rows<T: Scalar, Acc: BinaryOp<T, T, T>>(
    old_vecs: Vec<(Index, Vec<Index>, Vec<T>)>,
    t_vecs: Vec<(Index, Vec<Index>, Vec<T>)>,
    mask: &MMask<'_>,
    accum: &Option<Acc>,
    replace: bool,
) -> Vec<(Index, Vec<Index>, Vec<T>)> {
    // Pair up old and incoming rows (both sorted by major) so the per-row
    // merges — which are independent — can chunk over the paired list.
    let mut pairs: Vec<(Index, Option<usize>, Option<usize>)> = Vec::new();
    let (mut oa, mut tb) = (0, 0);
    while oa < old_vecs.len() || tb < t_vecs.len() {
        let row = match (old_vecs.get(oa), t_vecs.get(tb)) {
            (Some(o), Some(t)) => o.0.min(t.0),
            (Some(o), None) => o.0,
            (None, Some(t)) => t.0,
            (None, None) => unreachable!(),
        };
        let o = if old_vecs.get(oa).map(|o| o.0) == Some(row) {
            oa += 1;
            Some(oa - 1)
        } else {
            None
        };
        let t = if t_vecs.get(tb).map(|t| t.0) == Some(row) {
            tb += 1;
            Some(tb - 1)
        } else {
            None
        };
        pairs.push((row, o, t));
    }
    let est = old_vecs.iter().map(|v| v.1.len()).sum::<usize>()
        + t_vecs.iter().map(|v| v.1.len()).sum::<usize>();
    let chunks = par_chunks(pairs.len(), est, |range| {
        let mut part = Vec::with_capacity(range.len());
        let mut mscratch = crate::sparse::RowScratch::default();
        for &(row, o, t) in &pairs[range] {
            let rmask = mask.row(row, &mut mscratch);
            let empty: (&[Index], &[T]) = (&[], &[]);
            let (o_idx, o_val) =
                o.map(|p| (&old_vecs[p].1[..], &old_vecs[p].2[..])).unwrap_or(empty);
            let (t_idx, t_val) = t.map(|p| (&t_vecs[p].1[..], &t_vecs[p].2[..])).unwrap_or(empty);
            let mut ridx = Vec::with_capacity(o_idx.len() + t_idx.len());
            let mut rval = Vec::with_capacity(o_idx.len() + t_idx.len());
            let (mut a, mut b) = (0, 0);
            while a < o_idx.len() || b < t_idx.len() {
                let (j, cval, tval) =
                    if a < o_idx.len() && (b >= t_idx.len() || o_idx[a] <= t_idx[b]) {
                        if b < t_idx.len() && o_idx[a] == t_idx[b] {
                            let r = (o_idx[a], Some(o_val[a]), Some(t_val[b]));
                            a += 1;
                            b += 1;
                            r
                        } else {
                            let r = (o_idx[a], Some(o_val[a]), None);
                            a += 1;
                            r
                        }
                    } else {
                        let r = (t_idx[b], None, Some(t_val[b]));
                        b += 1;
                        r
                    };
                let z = match accum {
                    Some(acc) => match (cval, tval) {
                        (Some(cv), Some(tv)) => Some(acc.apply(cv, tv)),
                        (Some(cv), None) => Some(cv),
                        (None, tv) => tv,
                    },
                    None => tval,
                };
                let result = if rmask.allowed(j) {
                    z
                } else if replace {
                    None
                } else {
                    cval
                };
                if let Some(v) = result {
                    ridx.push(j);
                    rval.push(v);
                }
            }
            if !ridx.is_empty() {
                part.push((row, ridx, rval));
            }
        }
        part
    });
    chunks.into_iter().flatten().collect()
}
