//! `GrB_select`: keep the entries satisfying an [`IndexUnaryOp`] predicate.
//! This is the operation behind `tril`/`triu` (triangle counting) and value
//! thresholding (k-truss).

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::sparse::transpose_dyn;
use crate::types::Scalar;
use crate::unaryop::IndexUnaryOp;
use crate::vector::Vector;

use super::common::{check_dims, check_mmask, check_vmask};
use super::write::{write_matrix, write_vector};

/// `w⟨mask⟩ ⊙= select(u, pred)` — keep entries of `u` where
/// `pred(i, 0, u(i))` holds.
pub fn select<T, Op, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    pred: Op,
    u: &Vector<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Op: IndexUnaryOp<T, bool>,
    Acc: BinaryOp<T, T, T>,
{
    check_dims(w.size() == u.size(), "select: output and input lengths differ")?;
    check_vmask(mask, w.size())?;
    let mut span = crate::trace::op_span(crate::trace::Op::Select);
    let (t_idx, t_val) = {
        let g = u.read();
        if span.on() {
            span.arg("n", u.size());
            span.arg("u_nnz", g.nvals_assembled());
        }
        use crate::vector::VView;
        // Entries are filtered independently; chunk over whichever storage
        // form the vector is in and stitch in chunk (= index) order.
        let chunks = match g.view() {
            VView::Sparse(idx, val) => par_chunks(idx.len(), idx.len(), |r| {
                let mut ci = Vec::new();
                let mut cv = Vec::new();
                for (&i, &x) in idx[r.clone()].iter().zip(&val[r]) {
                    if pred.apply(i, 0, x) {
                        ci.push(i);
                        cv.push(x);
                    }
                }
                (ci, cv)
            }),
            VView::Bitmap(val, bits) => par_chunks(val.len(), val.len(), |r| {
                let mut ci = Vec::new();
                let mut cv = Vec::new();
                for p in r {
                    if crate::vector::bitmap_get(bits, p) && pred.apply(p, 0, val[p]) {
                        ci.push(p);
                        cv.push(val[p]);
                    }
                }
                (ci, cv)
            }),
            VView::Dense(val, present) => par_chunks(val.len(), val.len(), |r| {
                let mut ci = Vec::new();
                let mut cv = Vec::new();
                for p in r {
                    if present[p] && pred.apply(p, 0, val[p]) {
                        ci.push(p);
                        cv.push(val[p]);
                    }
                }
                (ci, cv)
            }),
        };
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (ci, cv) in chunks {
            idx.extend(ci);
            val.extend(cv);
        }
        (idx, val)
    };
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// `C⟨Mask⟩ ⊙= select(A, pred)` — keep entries of `A` (or `Aᵀ`) where
/// `pred(i, j, A(i,j))` holds.
pub fn select_matrix<T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    pred: Op,
    a: &Matrix<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Op: IndexUnaryOp<T, bool>,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Select);
    let ga = a.read_rows();
    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", ga.nvals_assembled());
    }
    let (nr, nc) = if desc.transpose_a { (ga.ncols, ga.nrows) } else { (ga.nrows, ga.ncols) };
    let vecs = {
        let base = rows_of(&ga);
        let owned;
        let v: &dyn crate::sparse::SparseView<T> = if desc.transpose_a {
            owned = transpose_dyn(base);
            owned.view()
        } else {
            base
        };
        // Rows filter independently: chunk over the nonempty majors.
        let majors = v.nonempty_majors();
        let chunks = par_chunks(majors.len(), v.nvals(), |range| {
            let mut part = Vec::with_capacity(range.len());
            let mut scratch = crate::sparse::RowScratch::default();
            for &i in &majors[range] {
                let (idx, val) = v.row(i, &mut scratch);
                let mut ridx = Vec::new();
                let mut rval = Vec::new();
                for (&j, &x) in idx.iter().zip(val) {
                    if pred.apply(i, j, x) {
                        ridx.push(j);
                        rval.push(x);
                    }
                }
                if !ridx.is_empty() {
                    part.push((i, ridx, rval));
                }
            }
            part
        });
        chunks.into_iter().flatten().collect::<Vec<_>>()
    };
    drop(ga);
    check_dims(
        c.nrows() == nr && c.ncols() == nc,
        "select: output shape must match (possibly transposed) input",
    )?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, vecs)
}

/// Convenience: the strictly lower triangle of `a` as a new matrix — the
/// `L = tril(A, -1)` idiom of triangle counting.
pub fn tril<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let mut out = Matrix::new(a.nrows(), a.ncols())?;
    select_matrix(
        &mut out,
        None,
        super::common::NOACC,
        crate::unaryop::StrictLower,
        a,
        &Descriptor::default(),
    )?;
    Ok(out)
}

/// Convenience: the strictly upper triangle of `a` as a new matrix.
pub fn triu<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let mut out = Matrix::new(a.nrows(), a.ncols())?;
    select_matrix(
        &mut out,
        None,
        super::common::NOACC,
        crate::unaryop::StrictUpper,
        a,
        &Descriptor::default(),
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::common::NOACC;
    use crate::types::Index;
    use crate::unaryop::{Diag, ValueGe};

    #[test]
    fn vector_select_by_value() {
        let u = Vector::from_tuples(5, vec![(0, 1), (1, 5), (2, 3), (4, 9)], |_, b| b).expect("u");
        let mut w = Vector::<i32>::new(5).expect("w");
        select(&mut w, None, NOACC, ValueGe(4), &u, &Descriptor::default()).expect("select");
        assert_eq!(w.extract_tuples(), vec![(1, 5), (4, 9)]);
    }

    #[test]
    fn matrix_select_diag() {
        let a =
            Matrix::from_tuples(3, 3, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (2, 0, 4)], |_, b| b)
                .expect("a");
        let mut c = Matrix::<i32>::new(3, 3).expect("c");
        select_matrix(&mut c, None, NOACC, Diag, &a, &Descriptor::default()).expect("select");
        assert_eq!(c.extract_tuples(), vec![(0, 0, 1), (1, 1, 3)]);
    }

    #[test]
    fn tril_triu_partition_offdiagonal() {
        let a = Matrix::from_tuples(
            3,
            3,
            vec![(0, 1, 1), (1, 0, 2), (1, 2, 3), (2, 1, 4), (1, 1, 5)],
            |_, b| b,
        )
        .expect("a");
        let l = tril(&a).expect("tril");
        let u = triu(&a).expect("triu");
        assert_eq!(l.extract_tuples(), vec![(1, 0, 2), (2, 1, 4)]);
        assert_eq!(u.extract_tuples(), vec![(0, 1, 1), (1, 2, 3)]);
        assert_eq!(l.nvals() + u.nvals() + 1, a.nvals());
    }

    #[test]
    fn select_with_closure_predicate() {
        let u = Vector::from_tuples(4, vec![(0, 2), (1, 3), (2, 4)], |_, b| b).expect("u");
        let mut w = Vector::<i32>::new(4).expect("w");
        let even = |_: Index, _: Index, x: i32| x % 2 == 0;
        select(&mut w, None, NOACC, even, &u, &Descriptor::default()).expect("select");
        assert_eq!(w.extract_tuples(), vec![(0, 2), (2, 4)]);
    }
}
