//! `GxB_Matrix_concat` / `GxB_Matrix_split` (SuiteSparse extensions the
//! LAGraph utilities rely on for assembling block matrices), plus
//! diagonal extraction (`GxB_Vector_diag`).

use crate::error::{Error, Result};
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::types::{Index, Scalar};
use crate::vector::Vector;

/// Concatenate a dense grid of tiles into one matrix. `tiles` is a
/// row-major `rows × cols` grid; tile shapes must be conformal (every
/// tile in a grid row has the same height, every tile in a grid column
/// the same width).
pub fn concat<T: Scalar>(tiles: &[Vec<&Matrix<T>>]) -> Result<Matrix<T>> {
    if tiles.is_empty() || tiles[0].is_empty() {
        return Err(Error::invalid("concat requires a non-empty tile grid"));
    }
    let grid_cols = tiles[0].len();
    for row in tiles {
        if row.len() != grid_cols {
            return Err(Error::invalid("concat: ragged tile grid"));
        }
    }
    // Conformality + offsets.
    let mut row_off = vec![0usize; tiles.len() + 1];
    for (r, row) in tiles.iter().enumerate() {
        let h = row[0].nrows();
        for t in row {
            if t.nrows() != h {
                return Err(Error::dim("concat: tile heights differ within a grid row"));
            }
        }
        row_off[r + 1] = row_off[r] + h;
    }
    let mut col_off = vec![0usize; grid_cols + 1];
    for c in 0..grid_cols {
        let w = tiles[0][c].ncols();
        for row in tiles {
            if row[c].ncols() != w {
                return Err(Error::dim("concat: tile widths differ within a grid column"));
            }
        }
        col_off[c + 1] = col_off[c] + w;
    }
    let (nr, nc) = (row_off[tiles.len()], col_off[grid_cols]);
    let mut span = crate::trace::op_span(crate::trace::Op::Concat);
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
        span.arg("tiles", tiles.len() * grid_cols);
    }
    // Sequential by design: this is a pure tuple copy whose cost is
    // dominated by the final `from_tuples` build (itself a sorted
    // assembly), and tile iteration takes per-tile read locks that are
    // simplest to hold one at a time.
    let mut tuples = Vec::new();
    for (r, row) in tiles.iter().enumerate() {
        for (c, tile) in row.iter().enumerate() {
            for (i, j, x) in tile.iter() {
                tuples.push((row_off[r] + i, col_off[c] + j, x));
            }
        }
    }
    Matrix::from_tuples(nr, nc, tuples, |_, b| b)
}

/// Split a matrix into a grid of tiles with the given row heights and
/// column widths (which must sum to the matrix dimensions). Inverse of
/// [`concat()`].
pub fn split<T: Scalar>(
    a: &Matrix<T>,
    heights: &[Index],
    widths: &[Index],
) -> Result<Vec<Vec<Matrix<T>>>> {
    let hsum: Index = heights.iter().sum();
    let wsum: Index = widths.iter().sum();
    if hsum != a.nrows() || wsum != a.ncols() {
        return Err(Error::dim("split: tile sizes must sum to the matrix shape"));
    }
    if heights.contains(&0) || widths.contains(&0) {
        return Err(Error::invalid("split: zero-sized tiles are not allowed"));
    }
    let mut span = crate::trace::op_span(crate::trace::Op::Split);
    if span.on() {
        span.arg("a_nnz", a.nvals());
        span.arg("tiles", heights.len() * widths.len());
    }
    let mut row_off = vec![0usize];
    for &h in heights {
        row_off.push(row_off.last().expect("nonempty") + h);
    }
    let mut col_off = vec![0usize];
    for &w in widths {
        col_off.push(col_off.last().expect("nonempty") + w);
    }
    // Sequential by design: bucketing pushes into a shared 2-D grid of
    // output buckets, and the cost is dominated by the per-tile
    // `from_tuples` builds below.
    let mut buckets: Vec<Vec<Vec<(Index, Index, T)>>> =
        vec![vec![Vec::new(); widths.len()]; heights.len()];
    let find = |offsets: &[usize], x: Index| -> usize {
        match offsets.binary_search(&x) {
            Ok(k) => k,
            Err(k) => k - 1,
        }
    };
    for (i, j, x) in a.iter() {
        let r = find(&row_off, i);
        let c = find(&col_off, j);
        buckets[r][c].push((i - row_off[r], j - col_off[c], x));
    }
    let mut out = Vec::with_capacity(heights.len());
    for (r, row_buckets) in buckets.into_iter().enumerate() {
        let mut row = Vec::with_capacity(widths.len());
        for (c, tuples) in row_buckets.into_iter().enumerate() {
            row.push(Matrix::from_tuples(heights[r], widths[c], tuples, |_, b| b)?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Extract the `k`-th diagonal of a matrix as a vector
/// (`GxB_Vector_diag`): `w(i) = A(i, i + k)` for `k ≥ 0`, `w(i) =
/// A(i - k, i)` for `k < 0`. The vector has the diagonal's natural
/// length.
pub fn diag_extract<T: Scalar>(a: &Matrix<T>, k: i64) -> Result<Vector<T>> {
    let (nr, nc) = (a.nrows(), a.ncols());
    let len = if k >= 0 {
        nc.saturating_sub(k as usize).min(nr)
    } else {
        nr.saturating_sub((-k) as usize).min(nc)
    };
    if len == 0 {
        return Err(Error::invalid("diagonal lies outside the matrix"));
    }
    let mut span = crate::trace::op_span(crate::trace::Op::Diag);
    span.arg("len", len);
    let g = a.read_rows();
    let v = rows_of(&g);
    // Diagonal positions are independent point lookups: chunk over the
    // diagonal length.
    let chunks = par_chunks(len, len, |r| {
        let mut part = Vec::new();
        for t in r {
            let (i, j) = if k >= 0 { (t, t + k as usize) } else { (t + (-k) as usize, t) };
            if let Some(x) = v.get(i, j) {
                part.push((t, x));
            }
        }
        part
    });
    let tuples: Vec<(Index, T)> = chunks.into_iter().flatten().collect();
    drop(g);
    Vector::from_tuples(len, tuples, |_, b| b)
}

/// Build a matrix with `v` on its `k`-th diagonal (`GxB_Matrix_diag`
/// generalized): the matrix is square with dimension `v.size() + |k|`.
pub fn diag_matrix<T: Scalar>(v: &Vector<T>, k: i64) -> Result<Matrix<T>> {
    let mut span = crate::trace::op_span(crate::trace::Op::Diag);
    span.arg("len", v.size());
    // Sequential by design: one pass over the vector's entries; the cost
    // is dominated by the `from_tuples` build.
    let n = v.size() + k.unsigned_abs() as usize;
    let tuples: Vec<(Index, Index, T)> = v
        .iter()
        .map(|(t, x)| if k >= 0 { (t, t + k as usize, x) } else { (t + (-k) as usize, t, x) })
        .collect();
    Matrix::from_tuples(n, n, tuples, |_, b| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(nr: Index, nc: Index, t: Vec<(Index, Index, i32)>) -> Matrix<i32> {
        Matrix::from_tuples(nr, nc, t, |_, b| b).expect("build")
    }

    #[test]
    fn concat_2x2_grid() {
        let a = m(2, 2, vec![(0, 0, 1)]);
        let b = m(2, 3, vec![(1, 2, 2)]);
        let c = m(1, 2, vec![(0, 1, 3)]);
        let d = m(1, 3, vec![(0, 0, 4)]);
        let out = concat(&[vec![&a, &b], vec![&c, &d]]).expect("concat");
        assert_eq!((out.nrows(), out.ncols()), (3, 5));
        assert_eq!(out.extract_tuples(), vec![(0, 0, 1), (1, 4, 2), (2, 1, 3), (2, 2, 4)]);
    }

    #[test]
    fn concat_rejects_nonconformal() {
        let a = m(2, 2, vec![]);
        let b = m(3, 3, vec![]);
        assert!(concat(&[vec![&a, &b]]).is_err());
    }

    #[test]
    fn split_round_trips_concat() {
        let big = m(4, 5, vec![(0, 0, 1), (1, 4, 2), (3, 2, 3), (2, 1, 4), (3, 4, 5)]);
        let tiles = split(&big, &[2, 2], &[3, 2]).expect("split");
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].len(), 2);
        assert_eq!(tiles[0][0].get(0, 0), Some(1));
        assert_eq!(tiles[0][1].get(1, 1), Some(2));
        assert_eq!(tiles[1][0].get(1, 2), Some(3));
        let refs: Vec<Vec<&Matrix<i32>>> = tiles.iter().map(|r| r.iter().collect()).collect();
        let back = concat(&refs).expect("concat");
        assert_eq!(back.extract_tuples(), big.extract_tuples());
    }

    #[test]
    fn split_validates_sizes() {
        let big = m(4, 4, vec![]);
        assert!(split(&big, &[2, 3], &[2, 2]).is_err());
        assert!(split(&big, &[4, 0], &[4]).is_err());
    }

    #[test]
    fn diag_extract_main_and_off() {
        let a = m(3, 4, vec![(0, 0, 1), (1, 1, 2), (0, 1, 5), (2, 1, 7)]);
        let main = diag_extract(&a, 0).expect("diag");
        assert_eq!(main.extract_tuples(), vec![(0, 1), (1, 2)]);
        let upper = diag_extract(&a, 1).expect("diag");
        assert_eq!(upper.extract_tuples(), vec![(0, 5)]);
        let lower = diag_extract(&a, -1).expect("diag");
        assert_eq!(lower.extract_tuples(), vec![(1, 7)]);
    }

    #[test]
    fn diag_matrix_round_trip() {
        let v = Vector::from_tuples(3, vec![(0, 1.5), (2, 2.5)], |_, b| b).expect("v");
        for k in [-2i64, 0, 2] {
            let d = diag_matrix(&v, k).expect("diag matrix");
            let back = diag_extract(&d, k).expect("diag extract");
            assert_eq!(back.extract_tuples(), v.extract_tuples(), "k={k}");
        }
    }

    #[test]
    fn diag_out_of_range() {
        let a = m(2, 2, vec![]);
        assert!(diag_extract(&a, 2).is_err());
        assert!(diag_extract(&a, -2).is_err());
    }
}
