//! The kernel-specialization table: monomorphized inner loops for the hot
//! semirings (after SuiteSparse:GraphBLAS's built-in kernels and
//! GraphBLAST's operator fusion).
//!
//! Every operator here is a zero-sized unit struct, so the *generic*
//! kernels are already monomorphized per (operator, type) pair — what they
//! cannot shed is the generality of an arbitrary monoid: an `Option<T>`
//! accumulator, a terminal compare after every product, and value loads
//! even when the multiply ignores its inputs. For the handful of semirings
//! that dominate the LAGraph collection (the paper's Table II workloads),
//! this module keys operator identities ([`OpId`]) to a tighter inner-loop
//! *shape*:
//!
//! | semiring | shape | what the shape sheds |
//! |---|---|---|
//! | `PLUS_TIMES` | no-terminal | `Option` accumulator, terminal compare |
//! | `MIN_PLUS` | terminal | `Option` accumulator, `Option<T>` compare |
//! | `LOR_LAND` | terminal | `Option` accumulator, `Option<T>` compare |
//! | `PLUS_PAIR` | no-load | value loads entirely (`pair` ignores inputs) |
//! | `ANY_FIRST`/`ANY_SECOND` | first-hit | everything past the first product |
//!
//! The remaining ~950 built-in semirings of the census ([`crate::registry`])
//! and every user-defined closure stay on the generic path (`resolve`
//! returns `None` — closures report no [`OpId`]). Each shape is
//! bit-identical to the generic loop by construction: it applies exactly
//! the same operators to exactly the same operands in the same order, only
//! the bookkeeping differs. The equivalence proptests in
//! `tests/kernel_equivalence.rs` verify this per semiring at 1 and 8
//! threads.
//!
//! `GRAPHBLAS_SPECIALIZE=0` disables the table globally (and with it the
//! fused kernels in [`super::fused`]); [`crate::Descriptor::generic_only`]
//! disables it per call.

use std::sync::OnceLock;

use crate::binaryop::{BinaryOp, OpId};
use crate::monoid::Monoid;
use crate::types::{Index, Scalar};

/// Global escape hatch: `GRAPHBLAS_SPECIALIZE=0` (also `false`/`off`/`no`)
/// forces every call onto the generic kernels. Read once per process.
pub(crate) fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("GRAPHBLAS_SPECIALIZE") {
        Err(_) => true,
        Ok(v) => match v.trim() {
            "0" | "false" | "off" | "no" => false,
            "" | "1" | "true" | "on" | "yes" => true,
            other => {
                crate::trace::warn_once(
                    "spec.env",
                    &format!(
                        "GRAPHBLAS_SPECIALIZE: unrecognized value {other:?}; \
                         specialization stays enabled"
                    ),
                );
                true
            }
        },
    })
}

/// Whether the kernel-specialization table is active for this process
/// (the resolved `GRAPHBLAS_SPECIALIZE` state). Public so harnesses can
/// record which side of the A/B they measured — `lagraph-bench` stamps
/// it into every `BENCH_*.json` report.
pub fn specialization_enabled() -> bool {
    enabled()
}

/// A semiring the table recognizes, in *kernel coordinates*: the multiply's
/// first operand is always the matrix-side value. `vxm` flips its multiply
/// before the kernel sees it, so its projection ops must be swapped through
/// [`swap_projection`] before resolution (`ANY_SECOND` under `vxm` takes
/// the matrix value and resolves to `AnyFirst` here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SemiringSpec {
    /// `(+, ×)` — the conventional arithmetic semiring.
    PlusTimes,
    /// `(min, +)` — tropical; covers both the saturating and wrapping add.
    MinPlus,
    /// `(∨, ∧)` — the Boolean reachability semiring.
    LorLand,
    /// `(+, pair)` — structural counting (triangle counting's workhorse).
    PlusPair,
    /// `(any, first)` — take the matrix-side value, first hit wins.
    AnyFirst,
    /// `(any, second)` — take the vector/B-side value, first hit wins.
    AnySecond,
}

impl SemiringSpec {
    /// Registry-style name, recorded in trace span args.
    pub(crate) fn name(self) -> &'static str {
        match self {
            SemiringSpec::PlusTimes => "PLUS_TIMES",
            SemiringSpec::MinPlus => "MIN_PLUS",
            SemiringSpec::LorLand => "LOR_LAND",
            SemiringSpec::PlusPair => "PLUS_PAIR",
            SemiringSpec::AnyFirst => "ANY_FIRST",
            SemiringSpec::AnySecond => "ANY_SECOND",
        }
    }
}

/// Look up the specialization for an (add, mul) operator pair. `None` —
/// for either an unrecognized pairing or an id-less operator (every
/// closure) — means the generic kernels run.
pub(crate) fn resolve(add: Option<OpId>, mul: Option<OpId>) -> Option<SemiringSpec> {
    Some(match (add?, mul?) {
        (OpId::Plus, OpId::Times) => SemiringSpec::PlusTimes,
        (OpId::Min, OpId::SaturatingPlus) | (OpId::Min, OpId::Plus) => SemiringSpec::MinPlus,
        (OpId::Lor, OpId::Land) => SemiringSpec::LorLand,
        (OpId::Plus, OpId::Pair) => SemiringSpec::PlusPair,
        (OpId::Any, OpId::First) => SemiringSpec::AnyFirst,
        (OpId::Any, OpId::Second) => SemiringSpec::AnySecond,
        _ => return None,
    })
}

/// Map a multiply's identity into kernel coordinates for the flipped
/// (`vxm`) operand order: the projections swap, everything else is
/// symmetric or argument-insensitive.
pub(crate) fn swap_projection(id: OpId) -> OpId {
    match id {
        OpId::First => OpId::Second,
        OpId::Second => OpId::First,
        other => other,
    }
}

/// The generic sparse dot product: two-pointer intersection of the index
/// lists, `Option` accumulator, early exit at the monoid's terminal value
/// (or immediately for ANY). This is the reference loop every specialized
/// shape must match bit-for-bit.
#[inline]
pub(crate) fn dot_generic<A, B, T, SA, SM>(
    add: &SA,
    mul: &SM,
    aidx: &[Index],
    aval: &[A],
    bidx: &[Index],
    bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let terminal = add.terminal();
    let is_any = add.is_any();
    let (mut p, mut q) = (0, 0);
    let mut acc: Option<T> = None;
    while p < aidx.len() && q < bidx.len() {
        if aidx[p] < bidx[q] {
            p += 1;
        } else if bidx[q] < aidx[p] {
            q += 1;
        } else {
            let prod = mul.apply(aval[p], bval[q]);
            acc = Some(match acc {
                None => prod,
                Some(cur) => add.apply(cur, prod),
            });
            if is_any || acc == terminal {
                break;
            }
            p += 1;
            q += 1;
        }
    }
    acc
}

/// Dispatch a sparse dot product to the specialized shape for `spec`, or
/// to [`dot_generic`] when there is none.
#[inline]
pub(crate) fn dot<A, B, T, SA, SM>(
    spec: Option<SemiringSpec>,
    add: &SA,
    mul: &SM,
    aidx: &[Index],
    aval: &[A],
    bidx: &[Index],
    bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    match spec {
        None => dot_generic(add, mul, aidx, aval, bidx, bval),
        Some(SemiringSpec::PlusTimes) => dot_no_terminal(add, mul, aidx, aval, bidx, bval),
        Some(SemiringSpec::MinPlus) | Some(SemiringSpec::LorLand) => {
            dot_terminal(add, mul, aidx, aval, bidx, bval)
        }
        Some(SemiringSpec::PlusPair) => dot_no_load(add, mul, aidx, aval, bidx, bval),
        Some(SemiringSpec::AnyFirst) | Some(SemiringSpec::AnySecond) => {
            dot_first_hit(mul, aidx, aval, bidx, bval)
        }
    }
}

/// Shape for monoids with no terminal (PLUS): the accumulator starts at
/// the first product — never the monoid identity, which would not be
/// bit-identical for floats (`-0.0 + x`) — and the inner loop carries no
/// `Option` and no terminal compare.
#[inline]
fn dot_no_terminal<A, B, T, SA, SM>(
    add: &SA,
    mul: &SM,
    aidx: &[Index],
    aval: &[A],
    bidx: &[Index],
    bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let (mut p, mut q) = (0, 0);
    while p < aidx.len() && q < bidx.len() {
        if aidx[p] < bidx[q] {
            p += 1;
        } else if bidx[q] < aidx[p] {
            q += 1;
        } else {
            let mut acc = mul.apply(aval[p], bval[q]);
            p += 1;
            q += 1;
            while p < aidx.len() && q < bidx.len() {
                if aidx[p] < bidx[q] {
                    p += 1;
                } else if bidx[q] < aidx[p] {
                    q += 1;
                } else {
                    acc = add.apply(acc, mul.apply(aval[p], bval[q]));
                    p += 1;
                    q += 1;
                }
            }
            return Some(acc);
        }
    }
    None
}

/// Shape for terminal monoids (MIN, LOR): like [`dot_no_terminal`] but
/// with the terminal hoisted out of the loop and compared as a plain `T`.
#[inline]
fn dot_terminal<A, B, T, SA, SM>(
    add: &SA,
    mul: &SM,
    aidx: &[Index],
    aval: &[A],
    bidx: &[Index],
    bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let term = match add.terminal() {
        Some(t) => t,
        None => return dot_no_terminal(add, mul, aidx, aval, bidx, bval),
    };
    let (mut p, mut q) = (0, 0);
    while p < aidx.len() && q < bidx.len() {
        if aidx[p] < bidx[q] {
            p += 1;
        } else if bidx[q] < aidx[p] {
            q += 1;
        } else {
            let mut acc = mul.apply(aval[p], bval[q]);
            p += 1;
            q += 1;
            while acc != term && p < aidx.len() && q < bidx.len() {
                if aidx[p] < bidx[q] {
                    p += 1;
                } else if bidx[q] < aidx[p] {
                    q += 1;
                } else {
                    acc = add.apply(acc, mul.apply(aval[p], bval[q]));
                    p += 1;
                    q += 1;
                }
            }
            return Some(acc);
        }
    }
    None
}

/// Shape for PAIR multiplies: the product ignores its operands, so the
/// loop intersects the index lists without touching either value array,
/// then folds the hoisted product once per match.
#[inline]
fn dot_no_load<A, B, T, SA, SM>(
    add: &SA,
    mul: &SM,
    aidx: &[Index],
    _aval: &[A],
    bidx: &[Index],
    _bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let one = mul.apply(A::zero(), B::zero());
    let (mut p, mut q) = (0, 0);
    let mut matches = 0usize;
    while p < aidx.len() && q < bidx.len() {
        if aidx[p] < bidx[q] {
            p += 1;
        } else if bidx[q] < aidx[p] {
            q += 1;
        } else {
            matches += 1;
            p += 1;
            q += 1;
        }
    }
    if matches == 0 {
        return None;
    }
    let mut acc = one;
    for _ in 1..matches {
        acc = add.apply(acc, one);
    }
    Some(acc)
}

/// Shape for the ANY monoid: the first product is the answer.
#[inline]
fn dot_first_hit<A, B, T, SM>(
    mul: &SM,
    aidx: &[Index],
    aval: &[A],
    bidx: &[Index],
    bval: &[B],
) -> Option<T>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SM: BinaryOp<A, B, T>,
{
    let (mut p, mut q) = (0, 0);
    while p < aidx.len() && q < bidx.len() {
        if aidx[p] < bidx[q] {
            p += 1;
        } else if bidx[q] < aidx[p] {
            q += 1;
        } else {
            return Some(mul.apply(aval[p], bval[q]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::{Land, Lor, Min, Pair, Plus, SaturatingPlus, Second, Times};
    use crate::monoid::Any;

    #[test]
    fn resolve_recognizes_the_hot_semirings() {
        use crate::binaryop::OpId as I;
        assert_eq!(resolve(Some(I::Plus), Some(I::Times)), Some(SemiringSpec::PlusTimes));
        assert_eq!(resolve(Some(I::Min), Some(I::SaturatingPlus)), Some(SemiringSpec::MinPlus));
        assert_eq!(resolve(Some(I::Min), Some(I::Plus)), Some(SemiringSpec::MinPlus));
        assert_eq!(resolve(Some(I::Lor), Some(I::Land)), Some(SemiringSpec::LorLand));
        assert_eq!(resolve(Some(I::Plus), Some(I::Pair)), Some(SemiringSpec::PlusPair));
        assert_eq!(resolve(Some(I::Any), Some(I::Second)), Some(SemiringSpec::AnySecond));
        assert_eq!(resolve(Some(I::Any), Some(I::First)), Some(SemiringSpec::AnyFirst));
        // Anything else — including id-less operators — is generic.
        assert_eq!(resolve(Some(I::Plus), Some(I::Plus)), None);
        assert_eq!(resolve(None, Some(I::Times)), None);
        assert_eq!(resolve(Some(I::Plus), None), None);
    }

    #[test]
    fn swap_projection_flips_first_and_second_only() {
        use crate::binaryop::OpId as I;
        assert_eq!(swap_projection(I::First), I::Second);
        assert_eq!(swap_projection(I::Second), I::First);
        assert_eq!(swap_projection(I::Pair), I::Pair);
        assert_eq!(swap_projection(I::Times), I::Times);
    }

    type Case = (Vec<Index>, Vec<i64>, Vec<Index>, Vec<i64>);

    fn cases() -> Vec<Case> {
        vec![
            (vec![], vec![], vec![0, 1], vec![5, 6]),
            (vec![0, 2, 5], vec![1, 2, 3], vec![1, 3, 4], vec![7, 8, 9]),
            (vec![0, 2, 5], vec![1, 2, 3], vec![2, 5, 9], vec![7, 8, 9]),
            (vec![0, 1, 2, 3], vec![-4, 0, 3, i64::MAX], vec![0, 1, 2, 3], vec![2, -7, 0, 1]),
        ]
    }

    #[test]
    fn shapes_match_generic_bit_for_bit() {
        for (aidx, aval, bidx, bval) in cases() {
            let generic: Option<i64> = dot_generic(&Plus, &Times, &aidx, &aval, &bidx, &bval);
            let spec: Option<i64> =
                dot(Some(SemiringSpec::PlusTimes), &Plus, &Times, &aidx, &aval, &bidx, &bval);
            assert_eq!(spec, generic, "plus_times {aidx:?} {bidx:?}");

            let generic: Option<i64> =
                dot_generic(&Min, &SaturatingPlus, &aidx, &aval, &bidx, &bval);
            let spec: Option<i64> =
                dot(Some(SemiringSpec::MinPlus), &Min, &SaturatingPlus, &aidx, &aval, &bidx, &bval);
            assert_eq!(spec, generic, "min_plus {aidx:?} {bidx:?}");

            let generic: Option<u64> = dot_generic(&Plus, &Pair, &aidx, &aval, &bidx, &bval);
            let spec: Option<u64> =
                dot(Some(SemiringSpec::PlusPair), &Plus, &Pair, &aidx, &aval, &bidx, &bval);
            assert_eq!(spec, generic, "plus_pair {aidx:?} {bidx:?}");

            let generic: Option<i64> = dot_generic(&Any, &Second, &aidx, &aval, &bidx, &bval);
            let spec: Option<i64> =
                dot(Some(SemiringSpec::AnySecond), &Any, &Second, &aidx, &aval, &bidx, &bval);
            assert_eq!(spec, generic, "any_second {aidx:?} {bidx:?}");
        }
    }

    #[test]
    fn lor_land_shape_matches_generic_including_false_values() {
        // Stored `false` entries: intersections exist but no product is
        // true, so the dot yields Some(false) — both paths must agree.
        let aidx = vec![0, 1, 3];
        let aval = vec![true, false, true];
        let bidx = vec![1, 2, 3];
        let bval = vec![false, true, false];
        let generic: Option<bool> = dot_generic(&Lor, &Land, &aidx, &aval, &bidx, &bval);
        let spec: Option<bool> =
            dot(Some(SemiringSpec::LorLand), &Lor, &Land, &aidx, &aval, &bidx, &bval);
        assert_eq!(spec, generic);
        assert_eq!(spec, Some(false));
        // And a true hit short-circuits identically.
        let bval_true = vec![true, true, true];
        let generic: Option<bool> = dot_generic(&Lor, &Land, &aidx, &aval, &bidx, &bval_true);
        let spec: Option<bool> =
            dot(Some(SemiringSpec::LorLand), &Lor, &Land, &aidx, &aval, &bidx, &bval_true);
        assert_eq!(spec, generic);
        assert_eq!(spec, Some(true));
    }
}
