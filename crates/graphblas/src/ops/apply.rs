//! `GrB_apply`: element-wise application of a unary operator, and the
//! index-aware variant taking a [`IndexUnaryOp`].

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::sparse::transpose_dyn;
use crate::types::{Index, Scalar};
use crate::unaryop::{IndexUnaryOp, UnaryOp};
use crate::vector::Vector;

use super::common::{check_dims, check_mmask, check_vmask};
use super::write::{write_matrix, write_vector};

/// `w⟨mask⟩ ⊙= f(u)` — apply `f` to every stored entry of `u`.
pub fn apply<A, T, Op, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    op: Op,
    u: &Vector<A>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    T: Scalar,
    Op: UnaryOp<A, T>,
    Acc: BinaryOp<T, T, T>,
{
    check_dims(w.size() == u.size(), "apply: output and input lengths differ")?;
    check_vmask(mask, w.size())?;
    let mut span = crate::trace::op_span(crate::trace::Op::Apply);
    let (t_idx, t_val) = {
        let g = u.read();
        if span.on() {
            span.arg("n", u.size());
            span.arg("u_nnz", g.nvals_assembled());
        }
        apply_vec_entries(g.view(), |_, x| op.apply(x))
    };
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// `w⟨mask⟩ ⊙= f(i, u(i))` — index-aware apply on a vector.
pub fn apply_indexed<A, T, Op, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    op: Op,
    u: &Vector<A>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    T: Scalar,
    Op: IndexUnaryOp<A, T>,
    Acc: BinaryOp<T, T, T>,
{
    check_dims(w.size() == u.size(), "apply: output and input lengths differ")?;
    check_vmask(mask, w.size())?;
    let mut span = crate::trace::op_span(crate::trace::Op::Apply);
    let (t_idx, t_val) = {
        let g = u.read();
        if span.on() {
            span.arg("n", u.size());
            span.arg("u_nnz", g.nvals_assembled());
        }
        apply_vec_entries(g.view(), |i, x| op.apply(i, 0, x))
    };
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// Map `f` over every stored entry of a vector view, in index order.
/// Entries are independent, so both storage forms chunk cleanly: sparse
/// over the entry list, dense over the index domain.
fn apply_vec_entries<A: Scalar, T: Scalar>(
    view: crate::vector::VView<'_, A>,
    f: impl Fn(Index, A) -> T + Sync,
) -> (Vec<Index>, Vec<T>) {
    use crate::vector::VView;
    let chunks = match view {
        VView::Sparse(idx, val) => par_chunks(idx.len(), idx.len(), |r| {
            let out: Vec<T> =
                idx[r.clone()].iter().zip(&val[r.clone()]).map(|(&i, &x)| f(i, x)).collect();
            (idx[r].to_vec(), out)
        }),
        VView::Bitmap(val, bits) => par_chunks(val.len(), val.len(), |r| {
            let mut idx = Vec::new();
            let mut out = Vec::new();
            for p in r {
                if crate::vector::bitmap_get(bits, p) {
                    idx.push(p);
                    out.push(f(p, val[p]));
                }
            }
            (idx, out)
        }),
        VView::Dense(val, present) => par_chunks(val.len(), val.len(), |r| {
            let mut idx = Vec::new();
            let mut out = Vec::new();
            for p in r {
                if present[p] {
                    idx.push(p);
                    out.push(f(p, val[p]));
                }
            }
            (idx, out)
        }),
    };
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for (ci, cv) in chunks {
        idx.extend(ci);
        val.extend(cv);
    }
    (idx, val)
}

/// `C⟨Mask⟩ ⊙= f(A)` (or `f(Aᵀ)` with the transpose descriptor).
pub fn apply_matrix<A, T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    op: Op,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    T: Scalar,
    Op: UnaryOp<A, T>,
    Acc: BinaryOp<T, T, T>,
{
    apply_matrix_indexed(c, mask, accum, move |_, _, x| op.apply(x), a, desc)
}

/// `C⟨Mask⟩ ⊙= f(i, j, A(i,j))` — index-aware apply on a matrix.
pub fn apply_matrix_indexed<A, T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    op: Op,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    T: Scalar,
    Op: IndexUnaryOp<A, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Apply);
    let ga = a.read_rows();
    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", ga.nvals_assembled());
    }
    let eff = effective_vecs_indexed(rows_of(&ga), desc.transpose_a, &op);
    let (nr, nc) = if desc.transpose_a { (ga.ncols, ga.nrows) } else { (ga.nrows, ga.ncols) };
    drop(ga);
    check_dims(
        c.nrows() == nr && c.ncols() == nc,
        "apply: output shape must match (possibly transposed) input",
    )?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, eff)
}

/// Apply an index-unary op over (possibly transposed) rows, producing
/// per-row segments in the *output* orientation.
fn effective_vecs_indexed<A: Scalar, T: Scalar, Op: IndexUnaryOp<A, T>>(
    v: &dyn crate::sparse::SparseView<A>,
    transpose: bool,
    op: &Op,
) -> Vec<(Index, Vec<Index>, Vec<T>)> {
    // Per the C API, the operator is applied *after* transposition, so it
    // sees the coordinates of Aᵀ.
    if transpose {
        let td = transpose_dyn(v);
        rows_apply(td.view(), op)
    } else {
        rows_apply(v, op)
    }
}

/// Apply an index-unary op row by row; rows are independent so they chunk
/// over the nonempty majors.
fn rows_apply<A: Scalar, T: Scalar, Op: IndexUnaryOp<A, T>>(
    v: &dyn crate::sparse::SparseView<A>,
    op: &Op,
) -> Vec<(Index, Vec<Index>, Vec<T>)> {
    let majors = v.nonempty_majors();
    let chunks = par_chunks(majors.len(), v.nvals(), |range| {
        let mut part = Vec::with_capacity(range.len());
        let mut scratch = crate::sparse::RowScratch::default();
        for &i in &majors[range] {
            let (idx, val) = v.row(i, &mut scratch);
            let out: Vec<T> = idx.iter().zip(val).map(|(&j, &x)| op.apply(i, j, x)).collect();
            part.push((i, idx.to_vec(), out));
        }
        part
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::common::NOACC;
    use crate::unaryop::{Ainv, One};

    #[test]
    fn vector_apply_negate() {
        let u = Vector::from_tuples(4, vec![(0, 1), (2, -5)], |_, b| b).expect("build");
        let mut w = Vector::<i32>::new(4).expect("new");
        apply(&mut w, None, NOACC, Ainv, &u, &Descriptor::default()).expect("apply");
        assert_eq!(w.extract_tuples(), vec![(0, -1), (2, 5)]);
    }

    #[test]
    fn vector_apply_changes_domain() {
        let u = Vector::from_tuples(3, vec![(1, 2.5f64)], |_, b| b).expect("build");
        let mut w = Vector::<u8>::new(3).expect("new");
        apply(&mut w, None, NOACC, One, &u, &Descriptor::default()).expect("apply");
        assert_eq!(w.extract_tuples(), vec![(1, 1u8)]);
    }

    #[test]
    fn vector_apply_masked() {
        let u = Vector::from_tuples(3, vec![(0, 1), (1, 2), (2, 3)], |_, b| b).expect("u");
        let mask = Vector::from_tuples(3, vec![(1, true)], |_, b| b).expect("mask");
        let mut w = Vector::<i32>::new(3).expect("new");
        apply(&mut w, Some(&mask), NOACC, Ainv, &u, &Descriptor::default()).expect("apply");
        assert_eq!(w.extract_tuples(), vec![(1, -2)]);
    }

    #[test]
    fn vector_apply_indexed_reaches_positions() {
        let u = Vector::from_tuples(5, vec![(1, 10), (4, 40)], |_, b| b).expect("u");
        let mut w = Vector::<u64>::new(5).expect("new");
        apply_indexed(
            &mut w,
            None,
            NOACC,
            |i: Index, _: Index, _: i32| i as u64,
            &u,
            &Descriptor::default(),
        )
        .expect("apply");
        assert_eq!(w.extract_tuples(), vec![(1, 1), (4, 4)]);
    }

    #[test]
    fn matrix_apply_and_transpose() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 2, 4), (1, 0, -3)], |_, b| b).expect("a");
        let mut c = Matrix::<i32>::new(2, 3).expect("c");
        apply_matrix(&mut c, None, NOACC, Ainv, &a, &Descriptor::default()).expect("apply");
        assert_eq!(c.extract_tuples(), vec![(0, 2, -4), (1, 0, 3)]);

        let mut ct = Matrix::<i32>::new(3, 2).expect("ct");
        apply_matrix(&mut ct, None, NOACC, Ainv, &a, &Descriptor::new().transpose_a())
            .expect("apply T");
        assert_eq!(ct.extract_tuples(), vec![(0, 1, 3), (2, 0, -4)]);
    }

    #[test]
    fn matrix_apply_indexed_sees_original_coords() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 2, 1.0)], |_, b| b).expect("a");
        let mut c = Matrix::<u64>::new(3, 2).expect("c");
        // Per the C API the op is applied after transposition, so the
        // original entry (0, 2) is seen at (2, 0).
        apply_matrix_indexed(
            &mut c,
            None,
            NOACC,
            |i: Index, j: Index, _: f64| (10 * i + j) as u64,
            &a,
            &Descriptor::new().transpose_a(),
        )
        .expect("apply");
        assert_eq!(c.extract_tuples(), vec![(2, 0, 20)]);
    }

    #[test]
    fn apply_dimension_mismatch() {
        let u = Vector::<i32>::new(3).expect("u");
        let mut w = Vector::<i32>::new(4).expect("w");
        assert!(apply(&mut w, None, NOACC, Ainv, &u, &Descriptor::default()).is_err());
    }
}
