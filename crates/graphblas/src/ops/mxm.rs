//! `GrB_mxm`: matrix-matrix multiply over a semiring, in the three kernel
//! families §II.A attributes to SuiteSparse:GraphBLAS — Gustavson's
//! row-wise saxpy method, a dot-product method (the masked variant is the
//! triangle-counting workhorse), and a heap-based multi-way merge — each
//! usable with masks, selected automatically or forced via
//! [`MxmMethod`] in the descriptor. `Auto` compares saturating flops
//! estimates for the masked-dot and Gustavson paths under the measured
//! [`crate::cost`] model (replacing the old `mask.nvals() <= 4 * out_rows`
//! rule, which could overflow on hypersparse dimensions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::binaryop::BinaryOp;
use crate::cost;
use crate::descriptor::{Descriptor, MxmMethod};
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::monoid::Monoid;
use crate::parallel::par_chunks;
use crate::semiring::Semiring;
use crate::sparse::SparseView;
use crate::types::{Index, Scalar};
use crate::vector::{DenseAcc, Slot};

use super::common::{check_dims, check_mmask, MMask};
use super::ewise::EffView;
use super::spec::{self, SemiringSpec};
use super::write::write_matrix;

/// Dense per-row accumulator is used up to this minor dimension; beyond
/// it (hypersparse operands) a tree accumulator avoids `O(n)` memory.
const DENSE_ACC_LIMIT: usize = 1 << 26;

/// `C⟨Mask⟩ ⊙= A ⊕.⊗ B`, with optional input transposes.
pub fn mxm<A, B, T, SA, SM, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Mxm);
    let ga = a.read_rows();
    let gb = b.read_rows();
    let ea = EffView::new(rows_of(&ga), desc.transpose_a);
    let av = ea.view();
    // Shapes of the *effective* operands.
    let (bm, bn) = if desc.transpose_b { (gb.ncols, gb.nrows) } else { (gb.nrows, gb.ncols) };
    check_dims(av.nminor() == bm, "mxm: inner dimensions must agree")?;
    let (nr, nc) = (av.nmajor(), bn);
    check_dims(c.nrows() == nr && c.ncols() == nc, "mxm: output shape mismatch")?;
    check_mmask(mask, nr, nc)?;

    let mguard = mask.map(|m| m.read_rows());
    let mview = mguard.as_ref().map(|g| rows_of(&**g));
    let meval = MMask::new(mview, desc);

    // Saturating flops estimates for the two auto candidates: Gustavson
    // expands an average-degree row of B per A entry; the masked dot path
    // computes one combined-degree dot per stored mask entry (only
    // meaningful for a plain, non-complemented mask).
    let a_nnz = av.nvals();
    let b_nnz = gb.nvals_assembled();
    let est_gustavson = cost::mxm_gustavson_flops(a_nnz, b_nnz, bm);
    let est_dot = (meval.has_view() && !meval.is_complement())
        .then(|| cost::mxm_dot_flops(meval.nvals(), a_nnz, nr, b_nnz, bn));

    let method = choose_method(desc, est_dot, est_gustavson);
    // Specialization table lookup: recognized (add, mul) pairs get the
    // tighter monomorphized inner loops (bit-identical results); anything
    // else — or an explicit opt-out — stays generic. The heap kernel is
    // never specialized, and Gustavson only benefits for the no-load and
    // first-hit shapes.
    let sp = if desc.specialize && spec::enabled() {
        spec::resolve(semiring.add.op_id(), semiring.mul.op_id())
    } else {
        None
    };
    let gus_spec = matches!(
        sp,
        Some(SemiringSpec::PlusPair) | Some(SemiringSpec::AnyFirst) | Some(SemiringSpec::AnySecond)
    );
    let compressed_operand = av.is_compressed() || rows_of(&gb).is_compressed();
    span.kernel(match (method, sp) {
        (MxmMethod::Dot, _) if compressed_operand => crate::trace::Kernel::CompressedDot,
        (MxmMethod::Dot, Some(_)) => crate::trace::Kernel::DotSpec,
        (MxmMethod::Dot, None) => crate::trace::Kernel::Dot,
        (MxmMethod::Heap, _) => crate::trace::Kernel::Heap,
        (_, _) if gus_spec => crate::trace::Kernel::GustavsonSpec,
        _ => crate::trace::Kernel::Gustavson,
    });
    if span.on() {
        span.arg("nrows", nr);
        span.arg("ncols", nc);
        span.arg("a_nnz", a_nnz);
        span.arg("b_nnz", b_nnz);
        span.arg("est_gustavson", est_gustavson);
        if let Some(d) = est_dot {
            span.arg("est_dot", d);
        }
        if let Some(s) = sp {
            span.arg("spec", s.name());
        }
    }
    span.flops(est_gustavson);

    let vecs = match method {
        MxmMethod::Dot => {
            // Needs rows of (effective B)ᵀ = Bᵀ if no transpose flag, or B
            // itself when transpose_b is set.
            let ebt = EffView::new(rows_of(&gb), !desc.transpose_b);
            dot_kernel(sp, av, ebt.view(), &semiring.add, &semiring.mul, &meval)
        }
        MxmMethod::Heap => {
            let eb = EffView::new(rows_of(&gb), desc.transpose_b);
            heap_kernel(av, eb.view(), &semiring.add, &semiring.mul, &meval)
        }
        _ => {
            let eb = EffView::new(rows_of(&gb), desc.transpose_b);
            gustavson_kernel(sp, av, eb.view(), &semiring.add, &semiring.mul, &meval)
        }
    };
    drop(mguard);
    drop(ea);
    drop(ga);
    drop(gb);
    write_matrix(c, mask, accum, desc, vecs)
}

/// Pick a kernel: an explicit request wins; otherwise compare the
/// estimated cost of computing only the masked dots (`est_dot`, absent
/// without a plain non-complemented mask) against running Gustavson over
/// everything, each weighted by its measured per-flop rate.
fn choose_method(desc: &Descriptor, est_dot: Option<usize>, est_gustavson: usize) -> MxmMethod {
    match desc.mxm_method {
        MxmMethod::Auto => {
            let m = cost::model();
            match est_dot {
                Some(d) if m.pull_cost(d) < m.push_cost(est_gustavson) => MxmMethod::Dot,
                _ => MxmMethod::Gustavson,
            }
        }
        m => m,
    }
}

/// How the Gustavson inner loop is specialized for the resolved semiring:
/// `NoLoad` (PAIR multiplies) hoists the constant product and never touches
/// either value array; `FirstHit` (ANY monoid) never combines into an
/// occupied slot. Both produce exactly what the generic loop would.
enum GusMode<T> {
    Generic,
    NoLoad(T),
    FirstHit,
}

/// Gustavson's method: for each row `i` of `A`, merge the rows of `B`
/// selected by `A(i,:)` into a sparse accumulator. Parallel over rows.
fn gustavson_kernel<A, B, T, SA, SM>(
    sp: Option<SemiringSpec>,
    av: &dyn SparseView<A>,
    bv: &dyn SparseView<B>,
    add: &SA,
    mul: &SM,
    mask: &MMask<'_>,
) -> Vec<(Index, Vec<Index>, Vec<T>)>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let mode: GusMode<T> = match sp {
        Some(SemiringSpec::PlusPair) => GusMode::NoLoad(mul.apply(A::zero(), B::zero())),
        Some(SemiringSpec::AnyFirst) | Some(SemiringSpec::AnySecond) => GusMode::FirstHit,
        _ => GusMode::Generic,
    };
    let majors = av.nonempty_majors();
    let ncols = bv.nminor();
    let flops_estimate = cost::mxm_gustavson_flops(av.nvals(), bv.nvals(), bv.nmajor());
    let chunks = par_chunks(majors.len(), flops_estimate, |range| {
        let mut out = Vec::new();
        let mut sa = crate::sparse::RowScratch::default();
        let mut sb = crate::sparse::RowScratch::default();
        let mut ms = crate::sparse::RowScratch::default();
        if ncols <= DENSE_ACC_LIMIT {
            // Stamped accumulator shared across this chunk's rows; begin()
            // makes per-row reset O(touched), and the stamp array itself is
            // pooled per worker thread across kernel invocations.
            let mut acc = DenseAcc::<T>::new(ncols);
            for &i in &majors[range] {
                acc.begin();
                let (aidx, aval) = av.row(i, &mut sa);
                match mode {
                    GusMode::Generic => {
                        for (&k, &aik) in aidx.iter().zip(aval) {
                            let (bidx, bval) = bv.row(k, &mut sb);
                            for (&j, &bkj) in bidx.iter().zip(bval) {
                                let prod = mul.apply(aik, bkj);
                                match acc.slot(j) {
                                    Slot::Active => acc.set(j, add.apply(acc.value(j), prod)),
                                    _ => acc.insert(j, prod),
                                }
                            }
                        }
                    }
                    GusMode::NoLoad(one) => {
                        for &k in aidx {
                            let (bidx, _) = bv.row(k, &mut sb);
                            for &j in bidx {
                                match acc.slot(j) {
                                    Slot::Active => acc.set(j, add.apply(acc.value(j), one)),
                                    _ => acc.insert(j, one),
                                }
                            }
                        }
                    }
                    GusMode::FirstHit => {
                        // ANY keeps the first product per slot; occupied
                        // slots absorb later contributions untouched.
                        for (&k, &aik) in aidx.iter().zip(aval) {
                            let (bidx, bval) = bv.row(k, &mut sb);
                            for (&j, &bkj) in bidx.iter().zip(bval) {
                                if !matches!(acc.slot(j), Slot::Active) {
                                    acc.insert(j, mul.apply(aik, bkj));
                                }
                            }
                        }
                    }
                }
                if acc.touched().is_empty() {
                    continue;
                }
                acc.sort_touched();
                let rmask = mask.row(i, &mut ms);
                let mut ridx = Vec::with_capacity(acc.touched().len());
                let mut rval = Vec::with_capacity(acc.touched().len());
                for &j in acc.touched() {
                    if rmask.allowed(j) {
                        ridx.push(j);
                        rval.push(acc.value(j));
                    }
                }
                if !ridx.is_empty() {
                    out.push((i, ridx, rval));
                }
            }
        } else {
            for &i in &majors[range] {
                let mut acc = std::collections::BTreeMap::<Index, T>::new();
                let (aidx, aval) = av.row(i, &mut sa);
                for (&k, &aik) in aidx.iter().zip(aval) {
                    let (bidx, bval) = bv.row(k, &mut sb);
                    for (&j, &bkj) in bidx.iter().zip(bval) {
                        let prod = mul.apply(aik, bkj);
                        acc.entry(j).and_modify(|cur| *cur = add.apply(*cur, prod)).or_insert(prod);
                    }
                }
                let rmask = mask.row(i, &mut ms);
                let mut ridx = Vec::with_capacity(acc.len());
                let mut rval = Vec::with_capacity(acc.len());
                for (j, v) in acc {
                    if rmask.allowed(j) {
                        ridx.push(j);
                        rval.push(v);
                    }
                }
                if !ridx.is_empty() {
                    out.push((i, ridx, rval));
                }
            }
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// Dot-product method over rows of `A` and rows of `Bᵀ`. With a
/// non-complemented mask only the masked positions are computed; dot
/// products stop early at the monoid's terminal value. The inner loop is
/// the specialized shape for `sp` when one resolved ([`spec::dot`]).
fn dot_kernel<A, B, T, SA, SM>(
    sp: Option<SemiringSpec>,
    av: &dyn SparseView<A>,
    btv: &dyn SparseView<B>,
    add: &SA,
    mul: &SM,
    mask: &MMask<'_>,
) -> Vec<(Index, Vec<Index>, Vec<T>)>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    let dot = |aidx: &[Index], aval: &[A], bidx: &[Index], bval: &[B]| -> Option<T> {
        spec::dot(sp, add, mul, aidx, aval, bidx, bval)
    };
    if mask.has_view() && !mask.is_complement() {
        // Compute only the masked positions. Gather the mask's stored
        // entries grouped by row first, then run the rows' dot products
        // in parallel — each output row is independent.
        let mut mrows: Vec<(Index, Vec<Index>)> = Vec::new();
        let mut total = 0usize;
        mask.for_each_stored(&mut |i, j| {
            total += 1;
            match mrows.last_mut() {
                Some((r, js)) if *r == i => js.push(j),
                _ => mrows.push((i, vec![j])),
            }
        });
        let per_dot = av.nvals() / av.nmajor().max(1) + btv.nvals() / btv.nmajor().max(1) + 1;
        let chunks = par_chunks(mrows.len(), total.saturating_mul(per_dot), |range| {
            let mut out: Vec<(Index, Vec<Index>, Vec<T>)> = Vec::new();
            let mut sa = crate::sparse::RowScratch::default();
            let mut sb = crate::sparse::RowScratch::default();
            for (i, js) in &mrows[range] {
                let (aidx, aval) = av.row(*i, &mut sa);
                if aidx.is_empty() {
                    continue;
                }
                let mut ridx: Vec<Index> = Vec::new();
                let mut rval: Vec<T> = Vec::new();
                for &j in js {
                    let (bidx, bval) = btv.row(j, &mut sb);
                    if let Some(v) = dot(aidx, aval, bidx, bval) {
                        ridx.push(j);
                        rval.push(v);
                    }
                }
                if !ridx.is_empty() {
                    out.push((*i, ridx, rval));
                }
            }
            out
        });
        chunks.into_iter().flatten().collect()
    } else {
        // Unmasked (or complemented): all-pairs of non-empty rows. Only
        // sensible for small outputs; the chooser never picks this
        // automatically.
        let amaj = av.nonempty_majors();
        let bmaj = btv.nonempty_majors();
        let chunks =
            par_chunks(amaj.len(), av.nvals().saturating_mul(bmaj.len().max(1)), |range| {
                let mut out = Vec::new();
                let mut sa = crate::sparse::RowScratch::default();
                let mut sb = crate::sparse::RowScratch::default();
                let mut ms = crate::sparse::RowScratch::default();
                for &i in &amaj[range] {
                    let rmask = mask.row(i, &mut ms);
                    let (aidx, aval) = av.row(i, &mut sa);
                    let mut ridx = Vec::new();
                    let mut rval = Vec::new();
                    for &j in &bmaj {
                        if !rmask.allowed(j) {
                            continue;
                        }
                        let (bidx, bval) = btv.row(j, &mut sb);
                        if let Some(v) = dot(aidx, aval, bidx, bval) {
                            ridx.push(j);
                            rval.push(v);
                        }
                    }
                    if !ridx.is_empty() {
                        out.push((i, ridx, rval));
                    }
                }
                out
            });
        chunks.into_iter().flatten().collect()
    }
}

/// Heap method: per row of `A`, a k-way merge of the selected rows of `B`
/// using a binary heap. `O(flops · log k)` time but only `O(k)` working
/// memory, independent of the output dimension — the right choice for
/// hypersparse operands.
fn heap_kernel<A, B, T, SA, SM>(
    av: &dyn SparseView<A>,
    bv: &dyn SparseView<B>,
    add: &SA,
    mul: &SM,
    mask: &MMask<'_>,
) -> Vec<(Index, Vec<Index>, Vec<T>)>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, B, T>,
{
    // The k-way merge within a row is inherently sequential, but rows are
    // independent: chunk over the nonempty majors.
    let majors = av.nonempty_majors();
    let est = av.nvals() + bv.nvals();
    let chunks = par_chunks(majors.len(), est, |range| {
        let mut out = Vec::new();
        let mut sa = crate::sparse::RowScratch::default();
        let mut ms = crate::sparse::RowScratch::default();
        for &i in &majors[range] {
            let (aidx, aval) = av.row(i, &mut sa);
            // The merge keeps every selected B row live at once, which a
            // shared decode scratch can't back — decode them into a
            // per-row arena when B is compressed.
            let arena: Vec<(Vec<Index>, Vec<B>)> = if bv.is_compressed() {
                aidx.iter()
                    .map(|&k| {
                        let (mut bi, mut bx) = (Vec::new(), Vec::new());
                        bv.row_copy(k, &mut bi, &mut bx);
                        (bi, bx)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            // One cursor per (k, A(i,k)) with a non-empty B row.
            let mut cursors: Vec<(&[Index], &[B], usize, A)> = Vec::with_capacity(aidx.len());
            let mut heap: BinaryHeap<Reverse<(Index, usize)>> = BinaryHeap::new();
            for (t, (&k, &aik)) in aidx.iter().zip(aval).enumerate() {
                let (bidx, bval): (&[Index], &[B]) =
                    if bv.is_compressed() { (&arena[t].0, &arena[t].1) } else { bv.vec(k) };
                if !bidx.is_empty() {
                    let c = cursors.len();
                    cursors.push((bidx, bval, 0, aik));
                    heap.push(Reverse((bidx[0], c)));
                }
            }
            let rmask = mask.row(i, &mut ms);
            let mut ridx: Vec<Index> = Vec::new();
            let mut rval: Vec<T> = Vec::new();
            let mut cur_j: Option<Index> = None;
            let mut cur_v: Option<T> = None;
            while let Some(Reverse((j, c))) = heap.pop() {
                let (bidx, bval, pos, aik) = cursors[c];
                let prod = mul.apply(aik, bval[pos]);
                if cur_j == Some(j) {
                    cur_v = cur_v.map(|v| add.apply(v, prod));
                } else {
                    if let (Some(pj), Some(pv)) = (cur_j, cur_v) {
                        if rmask.allowed(pj) {
                            ridx.push(pj);
                            rval.push(pv);
                        }
                    }
                    cur_j = Some(j);
                    cur_v = Some(prod);
                }
                let next = pos + 1;
                if next < bidx.len() {
                    cursors[c].2 = next;
                    heap.push(Reverse((bidx[next], c)));
                }
            }
            if let (Some(pj), Some(pv)) = (cur_j, cur_v) {
                if rmask.allowed(pj) {
                    ridx.push(pj);
                    rval.push(pv);
                }
            }
            if !ridx.is_empty() {
                out.push((i, ridx, rval));
            }
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::common::NOACC;
    use crate::semiring::{PLUS_PAIR, PLUS_TIMES};

    fn dense_a() -> Matrix<i64> {
        // [1 2]
        // [3 4]
        Matrix::from_tuples(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)], |_, b| b)
            .expect("a")
    }

    fn dense_b() -> Matrix<i64> {
        // [5 6]
        // [7 8]
        Matrix::from_tuples(2, 2, vec![(0, 0, 5), (0, 1, 6), (1, 0, 7), (1, 1, 8)], |_, b| b)
            .expect("b")
    }

    fn product_tuples(method: MxmMethod, tb: bool) -> Vec<(Index, Index, i64)> {
        let a = dense_a();
        let bt = if tb {
            crate::ops::transpose::transpose_new(&dense_b()).expect("bt")
        } else {
            dense_b()
        };
        let mut c = Matrix::<i64>::new(2, 2).expect("c");
        let mut d = Descriptor::new().method(method);
        if tb {
            d = d.transpose_b();
        }
        mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &bt, &d).expect("mxm");
        c.extract_tuples()
    }

    #[test]
    fn all_three_methods_agree_on_dense_product() {
        // [1 2][5 6]   [19 22]
        // [3 4][7 8] = [43 50]
        let want = vec![(0, 0, 19), (0, 1, 22), (1, 0, 43), (1, 1, 50)];
        assert_eq!(product_tuples(MxmMethod::Gustavson, false), want);
        assert_eq!(product_tuples(MxmMethod::Dot, false), want);
        assert_eq!(product_tuples(MxmMethod::Heap, false), want);
        // And with the B-transpose descriptor path.
        assert_eq!(product_tuples(MxmMethod::Gustavson, true), want);
        assert_eq!(product_tuples(MxmMethod::Dot, true), want);
        assert_eq!(product_tuples(MxmMethod::Heap, true), want);
    }

    #[test]
    fn masked_product_limits_output() {
        let a = dense_a();
        let b = dense_b();
        let mask =
            Matrix::from_tuples(2, 2, vec![(0, 1, true), (1, 0, true)], |_, b| b).expect("mask");
        for method in [MxmMethod::Gustavson, MxmMethod::Dot, MxmMethod::Heap] {
            let mut c = Matrix::<i64>::new(2, 2).expect("c");
            mxm(&mut c, Some(&mask), NOACC, &PLUS_TIMES, &a, &b, &Descriptor::new().method(method))
                .expect("mxm");
            assert_eq!(c.extract_tuples(), vec![(0, 1, 22), (1, 0, 43)], "{method:?}");
        }
    }

    #[test]
    fn complemented_mask_product() {
        let a = dense_a();
        let b = dense_b();
        let mask =
            Matrix::from_tuples(2, 2, vec![(0, 1, true), (1, 0, true)], |_, b| b).expect("mask");
        let mut c = Matrix::<i64>::new(2, 2).expect("c");
        mxm(&mut c, Some(&mask), NOACC, &PLUS_TIMES, &a, &b, &Descriptor::new().complement())
            .expect("mxm");
        assert_eq!(c.extract_tuples(), vec![(0, 0, 19), (1, 1, 50)]);
    }

    #[test]
    fn transpose_a_product() {
        let a = dense_a();
        let b = dense_b();
        let mut c = Matrix::<i64>::new(2, 2).expect("c");
        mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &b, &Descriptor::new().transpose_a())
            .expect("mxm");
        // Aᵀ B = [1 3; 2 4][5 6; 7 8] = [26 30; 38 44]
        assert_eq!(c.extract_tuples(), vec![(0, 0, 26), (0, 1, 30), (1, 0, 38), (1, 1, 44)]);
    }

    #[test]
    fn plus_pair_counts_wedges() {
        // Path 0-1-2: A² with PLUS_PAIR counts 2-walks structurally.
        let a = Matrix::from_tuples(
            3,
            3,
            vec![(0, 1, true), (1, 0, true), (1, 2, true), (2, 1, true)],
            |_, b| b,
        )
        .expect("a");
        let mut c = Matrix::<u64>::new(3, 3).expect("c");
        mxm(&mut c, None, NOACC, &PLUS_PAIR, &a, &a, &Descriptor::default()).expect("mxm");
        // walks of length 2: 0→1→0, 0→1→2, 1→0→1, 1→2→1, 2→1→0, 2→1→2
        assert_eq!(c.extract_tuples(), vec![(0, 0, 1), (0, 2, 1), (1, 1, 2), (2, 0, 1), (2, 2, 1)]);
    }

    #[test]
    fn rectangular_product_dims() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 0, 1), (1, 2, 2)], |_, b| b).expect("a");
        let b = Matrix::from_tuples(3, 4, vec![(0, 3, 10), (2, 1, 20)], |_, b| b).expect("b");
        let mut c = Matrix::<i64>::new(2, 4).expect("c");
        mxm(&mut c, None, NOACC, &PLUS_TIMES, &a, &b, &Descriptor::default()).expect("mxm");
        assert_eq!(c.extract_tuples(), vec![(0, 3, 10), (1, 1, 40)]);
        let mut bad = Matrix::<i64>::new(4, 4).expect("bad");
        assert!(mxm(&mut bad, None, NOACC, &PLUS_TIMES, &a, &b, &Descriptor::default()).is_err());
    }

    #[test]
    fn auto_chooses_dot_under_sparse_mask() {
        // No usable mask → no dot estimate → Gustavson, always.
        assert_eq!(choose_method(&Descriptor::default(), None, 1_000_000), MxmMethod::Gustavson);
        // The model's per-flop rates are clamped to [0.05, 1000] ns, so a
        // 10-flop masked-dot plan beats a 10⁹-flop Gustavson plan (and vice
        // versa) under *any* calibration.
        assert_eq!(choose_method(&Descriptor::default(), Some(10), 1_000_000_000), MxmMethod::Dot);
        assert_eq!(
            choose_method(&Descriptor::default(), Some(1_000_000_000), 10),
            MxmMethod::Gustavson
        );
        // An explicit method request always wins over the estimates.
        assert_eq!(
            choose_method(&Descriptor::new().method(MxmMethod::Heap), Some(10), 1_000_000_000),
            MxmMethod::Heap
        );
    }
}
