//! `GrB_transpose`: `C⟨Mask⟩ ⊙= Aᵀ`. With the input-transpose descriptor
//! set, the two transposes cancel and this becomes a (masked, accumulated)
//! copy — exactly as the C API specifies.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::types::Scalar;

use super::common::{check_dims, check_mmask};
use super::ewise::EffView;
use super::write::write_matrix;

/// `C⟨Mask⟩ ⊙= Aᵀ`.
pub fn transpose<T, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    a: &Matrix<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Transpose);
    let ga = a.read_rows();
    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", ga.nvals_assembled());
    }
    // transpose(A) with transpose_a set = plain A.
    let eff = EffView::new(rows_of(&ga), !desc.transpose_a);
    let v = eff.view();
    let (nr, nc) = (v.nmajor(), v.nminor());
    // The transpose itself happens in `EffView` (parallel bucket transpose
    // in `sparse::transpose_dyn`); copying out the rows chunks over the
    // nonempty majors.
    let majors = v.nonempty_majors();
    let chunks = par_chunks(majors.len(), v.nvals(), |range| {
        let mut scratch = crate::sparse::RowScratch::default();
        majors[range]
            .iter()
            .map(|&i| {
                let (idx, val) = v.row(i, &mut scratch);
                (i, idx.to_vec(), val.to_vec())
            })
            .collect::<Vec<_>>()
    });
    let vecs: Vec<_> = chunks.into_iter().flatten().collect();
    drop(eff);
    drop(ga);
    check_dims(c.nrows() == nr && c.ncols() == nc, "transpose: output shape mismatch")?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, vecs)
}

/// Convenience: `Aᵀ` as a new matrix.
pub fn transpose_new<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let mut c = Matrix::new(a.ncols(), a.nrows())?;
    transpose(&mut c, None, super::common::NOACC, a, &Descriptor::default())?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::Plus;
    use crate::ops::common::NOACC;

    #[test]
    fn basic_transpose() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 2, 1), (1, 0, 2)], |_, b| b).expect("a");
        let t = transpose_new(&a).expect("transpose");
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.extract_tuples(), vec![(0, 1, 2), (2, 0, 1)]);
    }

    #[test]
    fn double_transpose_is_copy() {
        let a = Matrix::from_tuples(2, 3, vec![(0, 2, 1), (1, 0, 2)], |_, b| b).expect("a");
        let mut c = Matrix::<i32>::new(2, 3).expect("c");
        transpose(&mut c, None, NOACC, &a, &Descriptor::new().transpose_a()).expect("transpose");
        assert_eq!(c.extract_tuples(), a.extract_tuples());
    }

    #[test]
    fn transpose_with_accumulator() {
        let a = Matrix::from_tuples(2, 2, vec![(0, 1, 5)], |_, b| b).expect("a");
        let mut c = Matrix::from_tuples(2, 2, vec![(1, 0, 10)], |_, b| b).expect("c");
        transpose(&mut c, None, Some(Plus), &a, &Descriptor::default()).expect("transpose");
        assert_eq!(c.extract_tuples(), vec![(1, 0, 15)]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_tuples(4, 4, vec![(0, 3, 1.5), (2, 1, 2.5), (3, 3, 3.5)], |_, b| b)
            .expect("a");
        let t = transpose_new(&a).expect("t");
        let tt = transpose_new(&t).expect("tt");
        assert_eq!(tt.extract_tuples(), a.extract_tuples());
    }
}
