//! Shared plumbing for the operation layer: index selections, mask
//! evaluation, and accumulator conventions.

use crate::descriptor::Descriptor;
use crate::error::{Error, Result};
use crate::matrix::{with_rows, Matrix};
use crate::sparse::SparseView;
use crate::types::{All, Index, Scalar};
use crate::vector::{VView, Vector};

/// "No accumulator" placeholder with a concrete operator type, so call
/// sites can write `NOACC` without a turbofish. (The operator inside is
/// never invoked.)
pub const NOACC: Option<crate::binaryop::Second> = None;

/// An index selection for extract/assign: the C API's `GrB_ALL`, an
/// explicit list, or a contiguous range.
#[derive(Debug, Clone)]
pub enum IndexSel {
    /// Every index in the dimension (`GrB_ALL`).
    All,
    /// An explicit list, in the given order (may permute and repeat for
    /// extract; must not repeat for assign).
    List(Vec<Index>),
    /// A contiguous half-open range.
    Range(std::ops::Range<Index>),
}

impl IndexSel {
    /// Number of selected indices given the dimension `n` it applies to.
    pub fn len(&self, n: Index) -> usize {
        match self {
            IndexSel::All => n,
            IndexSel::List(l) => l.len(),
            IndexSel::Range(r) => r.len(),
        }
    }

    /// The `k`-th selected index.
    pub fn nth(&self, k: usize) -> Index {
        match self {
            IndexSel::All => k,
            IndexSel::List(l) => l[k],
            IndexSel::Range(r) => r.start + k,
        }
    }

    /// Validate all selected indices against the dimension `n`.
    pub fn check(&self, n: Index) -> Result<()> {
        match self {
            IndexSel::All => Ok(()),
            IndexSel::List(l) => {
                for &i in l {
                    if i >= n {
                        return Err(Error::oob(i, n));
                    }
                }
                Ok(())
            }
            IndexSel::Range(r) => {
                if r.end > n {
                    return Err(Error::oob(r.end.saturating_sub(1), n));
                }
                Ok(())
            }
        }
    }

    /// Map a source index back to its selection position, if selected.
    /// Used by assign to route existing entries. For `List` this is a
    /// linear scan cached by callers via [`IndexSel::inverse`].
    pub fn inverse(&self, n: Index) -> InverseSel {
        match self {
            IndexSel::All => InverseSel::All,
            IndexSel::Range(r) => InverseSel::Range(r.clone()),
            IndexSel::List(l) => {
                let mut map = std::collections::HashMap::with_capacity(l.len());
                for (k, &i) in l.iter().enumerate() {
                    map.insert(i, k);
                }
                let _ = n;
                InverseSel::Map(map)
            }
        }
    }
}

/// Inverted index selection: position of a dimension index within the
/// selection, if any.
pub enum InverseSel {
    /// The selection is `GrB_ALL`: position = dimension index.
    All,
    /// The selection is a contiguous range: position = index − start.
    Range(std::ops::Range<Index>),
    /// Arbitrary index list: positions resolved through a hash map.
    Map(std::collections::HashMap<Index, usize>),
}

impl InverseSel {
    /// The selection position of dimension index `i`, or `None`.
    pub fn pos(&self, i: Index) -> Option<usize> {
        match self {
            InverseSel::All => Some(i),
            InverseSel::Range(r) => {
                if r.contains(&i) {
                    Some(i - r.start)
                } else {
                    None
                }
            }
            InverseSel::Map(m) => m.get(&i).copied(),
        }
    }
}

impl From<All> for IndexSel {
    fn from(_: All) -> Self {
        IndexSel::All
    }
}

impl From<std::ops::Range<Index>> for IndexSel {
    fn from(r: std::ops::Range<Index>) -> Self {
        IndexSel::Range(r)
    }
}

impl From<Vec<Index>> for IndexSel {
    fn from(l: Vec<Index>) -> Self {
        IndexSel::List(l)
    }
}

impl From<&[Index]> for IndexSel {
    fn from(l: &[Index]) -> Self {
        IndexSel::List(l.to_vec())
    }
}

/// Evaluated vector mask: answers "may position `i` be written?"
/// incorporating the value/structural and complement descriptor settings.
pub(crate) struct VMask<'a> {
    view: Option<VView<'a, bool>>,
    complement: bool,
    structural: bool,
}

impl<'a> VMask<'a> {
    pub fn new(view: Option<VView<'a, bool>>, desc: &Descriptor) -> Self {
        VMask { view, complement: desc.mask_complement, structural: desc.mask_structural }
    }

    #[inline]
    pub fn allowed(&self, i: Index) -> bool {
        let base = match &self.view {
            None => true,
            Some(v) => match v.get(i) {
                None => false,
                Some(b) => self.structural || b,
            },
        };
        base != self.complement
    }

    /// True when no mask narrows the write (no mask, no complement).
    pub fn is_transparent(&self) -> bool {
        self.view.is_none() && !self.complement
    }
}

/// Evaluated matrix mask.
pub(crate) struct MMask<'a> {
    view: Option<&'a dyn SparseView<bool>>,
    complement: bool,
    structural: bool,
}

impl<'a> MMask<'a> {
    pub fn new(view: Option<&'a dyn SparseView<bool>>, desc: &Descriptor) -> Self {
        MMask { view, complement: desc.mask_complement, structural: desc.mask_structural }
    }

    /// Iterate the mask's stored entries that pass the value/structural
    /// test (not meaningful for complemented masks).
    pub fn for_each_stored(&self, f: &mut dyn FnMut(Index, Index)) {
        if let Some(v) = self.view {
            let structural = self.structural;
            v.for_each_vec(&mut |i, idx, val| {
                for (&j, &mv) in idx.iter().zip(val) {
                    if structural || mv {
                        f(i, j);
                    }
                }
            });
        }
    }

    pub fn nvals(&self) -> usize {
        self.view.map_or(0, |v| v.nvals())
    }

    pub fn has_view(&self) -> bool {
        self.view.is_some()
    }

    pub fn is_complement(&self) -> bool {
        self.complement
    }

    #[inline]
    #[allow(dead_code)]
    pub fn allowed(&self, i: Index, j: Index) -> bool {
        let base = match self.view {
            None => true,
            Some(v) => match v.get(i, j) {
                None => false,
                Some(b) => self.structural || b,
            },
        };
        base != self.complement
    }

    /// A per-row evaluator that reuses the row slices. `scratch` backs the
    /// row when the mask matrix sits in compressed storage; callers keep
    /// one per worker and the borrow ties the returned mask to it.
    pub fn row<'s>(
        &'s self,
        i: Index,
        scratch: &'s mut crate::sparse::RowScratch<bool>,
    ) -> RowMask<'s> {
        match self.view {
            None => RowMask {
                idx: &[],
                val: &[],
                none: true,
                complement: self.complement,
                structural: self.structural,
            },
            Some(v) => {
                let (idx, val) = v.row(i, scratch);
                RowMask {
                    idx,
                    val,
                    none: false,
                    complement: self.complement,
                    structural: self.structural,
                }
            }
        }
    }

    #[allow(dead_code)]
    pub fn is_transparent(&self) -> bool {
        self.view.is_none() && !self.complement
    }
}

/// One row of an evaluated matrix mask.
pub(crate) struct RowMask<'a> {
    idx: &'a [Index],
    val: &'a [bool],
    none: bool,
    complement: bool,
    structural: bool,
}

impl<'a> RowMask<'a> {
    #[inline]
    pub fn allowed(&self, j: Index) -> bool {
        let base = if self.none {
            true
        } else {
            match self.idx.binary_search(&j) {
                Err(_) => false,
                Ok(p) => self.structural || self.val[p],
            }
        };
        base != self.complement
    }
}

/// Dimension check helper.
pub(crate) fn check_dims(cond: bool, detail: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(Error::dim(detail.to_string()))
    }
}

/// Check a vector mask against the output length.
pub(crate) fn check_vmask(mask: Option<&Vector<bool>>, n: Index) -> Result<()> {
    if let Some(m) = mask {
        check_dims(m.size() == n, "mask length must match output")?;
    }
    Ok(())
}

/// Check a matrix mask against the output shape.
pub(crate) fn check_mmask(mask: Option<&Matrix<bool>>, nrows: Index, ncols: Index) -> Result<()> {
    if let Some(m) = mask {
        check_dims(m.nrows() == nrows && m.ncols() == ncols, "mask shape must match output")?;
    }
    Ok(())
}

/// A dense copy (or borrow) of a vector's contents for O(1) lookup in pull
/// kernels.
pub(crate) enum DenseVec<'a, T> {
    Borrowed(&'a [T], &'a [bool]),
    /// Borrowed full-length values with an unpacked (owned) presence
    /// array — the expansion of a bitmap-form vector.
    BorrowedVal(&'a [T], Vec<bool>),
    Owned(Vec<T>, Vec<bool>),
}

impl<'a, T: Scalar> DenseVec<'a, T> {
    pub fn from_view(view: VView<'a, T>, n: Index) -> Self {
        match view {
            VView::Dense(val, present) => DenseVec::Borrowed(val, present),
            VView::Sparse(idx, val) => {
                let mut dval = vec![T::zero(); n];
                let mut present = vec![false; n];
                for (&i, &v) in idx.iter().zip(val.iter()) {
                    dval[i] = v;
                    present[i] = true;
                }
                DenseVec::Owned(dval, present)
            }
            // Bitmap values are already full-length; only the presence
            // words need unpacking. Hot paths (rowdot) probe the packed
            // words directly instead of going through here.
            VView::Bitmap(val, bits) => {
                let mut present = vec![false; n];
                for (i, p) in present.iter_mut().enumerate() {
                    *p = (bits[i >> 6] >> (i & 63)) & 1 == 1;
                }
                DenseVec::BorrowedVal(val, present)
            }
        }
    }

    #[inline]
    pub fn parts(&self) -> (&[T], &[bool]) {
        match self {
            DenseVec::Borrowed(v, p) => (v, p),
            DenseVec::BorrowedVal(v, p) => (v, p),
            DenseVec::Owned(v, p) => (v, p),
        }
    }
}

/// Snapshot a matrix's rows as per-row `(row, idx, val)` segments.
pub(crate) fn matrix_row_vecs<T: Scalar>(m: &Matrix<T>) -> Vec<(Index, Vec<Index>, Vec<T>)> {
    let g = m.read_rows();
    with_rows!(&*g, |v| {
        let mut vecs = Vec::with_capacity(v.nvecs());
        v.for_each_vec(&mut |i, idx, val| vecs.push((i, idx.to_vec(), val.to_vec())));
        vecs
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;

    #[test]
    fn index_sel_basics() {
        let all = IndexSel::All;
        assert_eq!(all.len(5), 5);
        assert_eq!(all.nth(3), 3);
        let list = IndexSel::List(vec![4, 0, 2]);
        assert_eq!(list.len(5), 3);
        assert_eq!(list.nth(1), 0);
        let range = IndexSel::Range(2..5);
        assert_eq!(range.len(9), 3);
        assert_eq!(range.nth(2), 4);
    }

    #[test]
    fn index_sel_bounds() {
        assert!(IndexSel::List(vec![5]).check(5).is_err());
        assert!(IndexSel::Range(0..6).check(5).is_err());
        assert!(IndexSel::Range(0..5).check(5).is_ok());
        assert!(IndexSel::All.check(5).is_ok());
    }

    #[test]
    fn inverse_positions() {
        let inv = IndexSel::List(vec![4, 0, 2]).inverse(5);
        assert_eq!(inv.pos(4), Some(0));
        assert_eq!(inv.pos(0), Some(1));
        assert_eq!(inv.pos(3), None);
        let inv = IndexSel::Range(2..5).inverse(9);
        assert_eq!(inv.pos(2), Some(0));
        assert_eq!(inv.pos(5), None);
    }

    #[test]
    fn vmask_value_vs_structural() {
        let idx = vec![1, 3];
        let val = vec![true, false];
        let view = VView::Sparse(&idx, &val);
        let d = Descriptor::default();
        let m = VMask::new(Some(view), &d);
        assert!(m.allowed(1));
        assert!(!m.allowed(3)); // present but false
        assert!(!m.allowed(0));
        let ds = Descriptor::new().structural();
        let m = VMask::new(Some(view), &ds);
        assert!(m.allowed(3)); // structural: presence is enough
    }

    #[test]
    fn vmask_complement() {
        let idx = vec![1];
        let val = vec![true];
        let view = VView::Sparse(&idx, &val);
        let d = Descriptor::new().complement();
        let m = VMask::new(Some(view), &d);
        assert!(!m.allowed(1));
        assert!(m.allowed(0));
        // Complement of the implicit all-true mask blocks everything.
        let m = VMask::new(None, &d);
        assert!(!m.allowed(0));
    }

    #[test]
    fn no_mask_allows_all() {
        let d = Descriptor::default();
        let m = VMask::new(None, &d);
        assert!(m.allowed(0) && m.allowed(99));
        assert!(m.is_transparent());
    }
}
