//! `GrB_kronecker`: the Kronecker product `C = A ⊗ B` over an arbitrary
//! binary operator. Also the generator behind Kronecker/RMAT-style
//! synthetic graphs.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::parallel::par_chunks;
use crate::types::{Index, Scalar};

use super::common::{check_dims, check_mmask};
use super::ewise::EffView;
use super::write::write_matrix;

/// `C⟨Mask⟩ ⊙= kron(A, B)` with `C((i1·rB + i2), (j1·cB + j2)) =
/// op(A(i1,j1), B(i2,j2))`.
pub fn kronecker<A, B, T, Op, Acc>(
    c: &mut Matrix<T>,
    mask: Option<&Matrix<bool>>,
    accum: Option<Acc>,
    op: Op,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    T: Scalar,
    Op: BinaryOp<A, B, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Kron);
    let ga = a.read_rows();
    let gb = b.read_rows();
    if span.on() {
        span.arg("a_nnz", ga.nvals_assembled());
        span.arg("b_nnz", gb.nvals_assembled());
    }
    let ea = EffView::new(rows_of(&ga), desc.transpose_a);
    let eb = EffView::new(rows_of(&gb), desc.transpose_b);
    let (av, bv) = (ea.view(), eb.view());
    let (ra, ca) = (av.nmajor(), av.nminor());
    let (rb, cb) = (bv.nmajor(), bv.nminor());
    let (nr, nc) = (ra * rb, ca * cb);
    let amaj = av.nonempty_majors();
    let bmaj = bv.nonempty_majors();
    // Every output row is one (A-row, B-row) pair, so rows of A chunk the
    // work; each worker emits its block rows in the same (i1, i2) order as
    // the sequential double loop.
    let est = av.nvals().saturating_mul(bv.nvals());
    span.flops(est);
    let chunks = par_chunks(amaj.len(), est, |range| {
        let mut part: Vec<(Index, Vec<Index>, Vec<T>)> =
            Vec::with_capacity(range.len() * bmaj.len());
        let mut sa = crate::sparse::RowScratch::default();
        let mut sb = crate::sparse::RowScratch::default();
        for &i1 in &amaj[range] {
            let (aidx, aval) = av.row(i1, &mut sa);
            for &i2 in &bmaj {
                let (bidx, bval) = bv.row(i2, &mut sb);
                let row = i1 * rb + i2;
                let mut ridx = Vec::with_capacity(aidx.len() * bidx.len());
                let mut rval = Vec::with_capacity(aidx.len() * bidx.len());
                for (&j1, &x) in aidx.iter().zip(aval) {
                    for (&j2, &y) in bidx.iter().zip(bval) {
                        ridx.push(j1 * cb + j2);
                        rval.push(op.apply(x, y));
                    }
                }
                part.push((row, ridx, rval));
            }
        }
        part
    });
    let vecs: Vec<(Index, Vec<Index>, Vec<T>)> = chunks.into_iter().flatten().collect();
    drop(ea);
    drop(eb);
    drop(ga);
    drop(gb);
    check_dims(c.nrows() == nr && c.ncols() == nc, "kronecker: output shape mismatch")?;
    check_mmask(mask, nr, nc)?;
    write_matrix(c, mask, accum, desc, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::Times;
    use crate::ops::common::NOACC;

    #[test]
    fn kron_identity_replicates() {
        let eye = Matrix::from_tuples(2, 2, vec![(0, 0, 1), (1, 1, 1)], |_, b| b).expect("i");
        let a = Matrix::from_tuples(2, 2, vec![(0, 1, 3), (1, 0, 4)], |_, b| b).expect("a");
        let mut c = Matrix::<i32>::new(4, 4).expect("c");
        kronecker(&mut c, None, NOACC, Times, &eye, &a, &Descriptor::default()).expect("kron");
        assert_eq!(c.extract_tuples(), vec![(0, 1, 3), (1, 0, 4), (2, 3, 3), (3, 2, 4)]);
    }

    #[test]
    fn kron_scales_values() {
        let a = Matrix::from_tuples(1, 1, vec![(0, 0, 5)], |_, b| b).expect("a");
        let b = Matrix::from_tuples(2, 2, vec![(0, 0, 1), (1, 1, 2)], |_, b| b).expect("b");
        let mut c = Matrix::<i32>::new(2, 2).expect("c");
        kronecker(&mut c, None, NOACC, Times, &a, &b, &Descriptor::default()).expect("kron");
        assert_eq!(c.extract_tuples(), vec![(0, 0, 5), (1, 1, 10)]);
    }

    #[test]
    fn kron_grows_kronecker_graph() {
        // Repeated Kronecker powers of a seed adjacency pattern: the graph
        // generator the paper lists among LAGraph's support utilities.
        let seed =
            Matrix::from_tuples(2, 2, vec![(0, 0, true), (0, 1, true), (1, 1, true)], |_, b| b)
                .expect("seed");
        let mut g2 = Matrix::<bool>::new(4, 4).expect("g2");
        kronecker(
            &mut g2,
            None,
            NOACC,
            crate::binaryop::Land,
            &seed,
            &seed,
            &Descriptor::default(),
        )
        .expect("kron");
        assert_eq!(g2.nvals(), 9);
    }
}
