//! `GrB_reduce`: fold a matrix into a vector (row-wise) or a matrix/vector
//! into a scalar, using a monoid. Honors terminal (early-exit) values.

use crate::binaryop::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::matrix::{rows_of, Matrix};
use crate::monoid::{fold, Monoid};
use crate::parallel::{par_chunks, par_reduce};
use crate::types::Scalar;
use crate::vector::Vector;

use super::common::{check_dims, check_vmask};
use super::ewise::EffView;
use super::write::write_vector;

/// `w⟨mask⟩ ⊙= ⊕ⱼ A(:, j)` — reduce each row of `A` (each column with the
/// transpose descriptor) to a scalar. Rows with no entries produce no
/// entry.
pub fn reduce_matrix<T, M, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    monoid: &M,
    a: &Matrix<T>,
    desc: &Descriptor,
) -> Result<()>
where
    T: Scalar,
    M: Monoid<T>,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Reduce);
    let ga = a.read_rows();
    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", ga.nvals_assembled());
    }
    let eff = EffView::new(rows_of(&ga), desc.transpose_a);
    let v = eff.view();
    let n_out = v.nmajor();
    // Rows reduce independently: chunk over the nonempty majors; each
    // row's fold keeps its own terminal early exit.
    let majors = v.nonempty_majors();
    let chunks = par_chunks(majors.len(), v.nvals(), |r| {
        let mut idx = Vec::with_capacity(r.len());
        let mut val = Vec::with_capacity(r.len());
        let mut scratch = crate::sparse::RowScratch::default();
        for &i in &majors[r] {
            let (_, vals) = v.row(i, &mut scratch);
            if let Some(x) = fold(monoid, vals.iter().copied()) {
                idx.push(i);
                val.push(x);
            }
        }
        (idx, val)
    });
    let mut t_idx = Vec::with_capacity(majors.len());
    let mut t_val = Vec::with_capacity(majors.len());
    for (idx, val) in chunks {
        t_idx.extend(idx);
        t_val.extend(val);
    }
    drop(eff);
    drop(ga);
    check_dims(w.size() == n_out, "reduce: output length must match rows")?;
    check_vmask(mask, w.size())?;
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// `s = ⊕ᵢⱼ A(i,j)` — reduce all entries of a matrix to one scalar.
/// Returns the monoid identity for an empty matrix, as the C API does.
pub fn reduce_matrix_scalar<T, M>(monoid: &M, a: &Matrix<T>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    let mut span = crate::trace::op_span(crate::trace::Op::Reduce);
    let ga = a.read_rows();
    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", ga.nvals_assembled());
    }
    let v = rows_of(&ga);
    let majors = v.nonempty_majors();
    let terminal = monoid.terminal();
    let r = par_reduce(majors.len(), v.nvals(), monoid, |range, exit| {
        let mut acc: Option<T> = None;
        let mut scratch = crate::sparse::RowScratch::default();
        for &i in &majors[range] {
            if exit.stop() {
                break;
            }
            let (_, vals) = v.row(i, &mut scratch);
            if let Some(x) = fold(monoid, vals.iter().copied()) {
                acc = Some(match acc {
                    Some(a) => monoid.apply(a, x),
                    None => x,
                });
                if acc == terminal || monoid.is_any() {
                    break;
                }
            }
        }
        acc
    });
    r.unwrap_or_else(|| monoid.identity())
}

/// `s = ⊕ᵢ u(i)` — reduce a vector to a scalar (identity when empty).
pub fn reduce_vector_scalar<T, M>(monoid: &M, u: &Vector<T>) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    use crate::vector::VView;
    let mut span = crate::trace::op_span(crate::trace::Op::Reduce);
    let g = u.read();
    if span.on() {
        span.arg("n", u.size());
        span.arg("u_nnz", g.nvals_assembled());
    }
    let view = g.view();
    let r = match view {
        VView::Sparse(_, val) => par_reduce(val.len(), val.len(), monoid, |range, _| {
            // One contiguous value slice per chunk; `fold` early-exits
            // within it, `par_reduce` short-circuits across chunks.
            fold(monoid, val[range].iter().copied())
        }),
        VView::Bitmap(val, bits) => par_reduce(val.len(), val.len(), monoid, |range, _| {
            fold(monoid, range.filter(|&i| crate::vector::bitmap_get(bits, i)).map(|i| val[i]))
        }),
        VView::Dense(val, present) => par_reduce(val.len(), val.len(), monoid, |range, _| {
            fold(monoid, range.filter(|&i| present[i]).map(|i| val[i]))
        }),
    };
    r.unwrap_or_else(|| monoid.identity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaryop::{Max, Min, Plus};
    use crate::ops::common::NOACC;

    fn sample() -> Matrix<i64> {
        Matrix::from_tuples(
            3,
            4,
            vec![(0, 0, 1), (0, 3, 2), (2, 1, 10), (2, 2, 20), (2, 3, 30)],
            |_, b| b,
        )
        .expect("build")
    }

    #[test]
    fn row_reduce() {
        let a = sample();
        let mut w = Vector::<i64>::new(3).expect("w");
        reduce_matrix(&mut w, None, NOACC, &Plus, &a, &Descriptor::default()).expect("reduce");
        // Row 1 is empty: no entry.
        assert_eq!(w.extract_tuples(), vec![(0, 3), (2, 60)]);
    }

    #[test]
    fn column_reduce_via_transpose() {
        let a = sample();
        let mut w = Vector::<i64>::new(4).expect("w");
        reduce_matrix(&mut w, None, NOACC, &Plus, &a, &Descriptor::new().transpose_a())
            .expect("reduce");
        assert_eq!(w.extract_tuples(), vec![(0, 1), (1, 10), (2, 20), (3, 32)]);
    }

    #[test]
    fn scalar_reduce_matrix() {
        let a = sample();
        assert_eq!(reduce_matrix_scalar(&Plus, &a), 63);
        assert_eq!(reduce_matrix_scalar(&Min, &a), 1);
        assert_eq!(reduce_matrix_scalar(&Max, &a), 30);
    }

    #[test]
    fn scalar_reduce_empty_is_identity() {
        let a = Matrix::<i64>::new(3, 3).expect("a");
        assert_eq!(reduce_matrix_scalar(&Plus, &a), 0);
        assert_eq!(reduce_matrix_scalar(&Min, &a), i64::MAX);
        let u = Vector::<i64>::new(3).expect("u");
        assert_eq!(reduce_vector_scalar(&Plus, &u), 0);
    }

    #[test]
    fn scalar_reduce_vector() {
        let u = Vector::from_tuples(5, vec![(0, 3), (4, 4)], |_, b| b).expect("u");
        assert_eq!(reduce_vector_scalar(&Plus, &u), 7);
    }

    #[test]
    fn masked_row_reduce() {
        let a = sample();
        let mask = Vector::from_tuples(3, vec![(2, true)], |_, b| b).expect("mask");
        let mut w = Vector::<i64>::new(3).expect("w");
        reduce_matrix(&mut w, Some(&mask), NOACC, &Plus, &a, &Descriptor::default())
            .expect("reduce");
        assert_eq!(w.extract_tuples(), vec![(2, 60)]);
    }
}
