//! `GrB_mxv` and `GrB_vxm`: matrix-vector products over a semiring, with
//! push/pull direction optimization (§II.E of the paper, after GraphBLAST).
//!
//! Two kernels implement all four (operation × transpose) combinations:
//!
//! * **pull** (`rowdot`): one dot product per output position, walking a
//!   row of the matrix against a dense view of the vector. Honors the
//!   monoid's terminal value — the early-exit trick that makes pull BFS
//!   fast. Parallelized over rows.
//! * **push** (`scatter`): partition the (sparse) vector's entries
//!   across the [`par_chunks`] pool; each chunk scatters its matrix rows
//!   into a private stamped accumulator (`DenseAcc`, or a tree for huge
//!   dimensions), skipping mask-excluded positions and short-circuiting
//!   terminal/ANY slots, and the per-chunk touched lists are k-way merged
//!   in chunk order ([`merge_scatter_chunks`]). Work stays proportional
//!   to the frontier, and both directions now scale with the pool.
//!
//! `mxv(A, u)` pulls naturally (rows of `A` are what CSR stores);
//! `mxv(Aᵀ, u)` and `vxm(u, A)` push naturally. The *other* direction
//! becomes available when the matrix keeps dual (transposed) storage —
//! [`crate::Matrix::set_dual_storage`] — and `Direction::Auto` then picks
//! the side whose flops estimate is cheaper under the measured
//! [`crate::cost`] model (replacing GraphBLAST's fixed density ratio).
//! The chosen direction plus estimated vs. actual flops land in the op
//! span, and a `mxv.mispredict` instant fires when the estimate picked
//! the slower side — mispredictions are visible in the Chrome trace.

use crate::binaryop::BinaryOp;
use crate::cost;
use crate::descriptor::{Descriptor, Direction};
use crate::error::Result;
use crate::matrix::{dual_of, rows_of, Matrix};
use crate::monoid::Monoid;
use crate::parallel::{merge_scatter_chunks, par_chunks};
use crate::semiring::Semiring;
use crate::sparse::SparseView;
use crate::trace;
use crate::types::{Index, Scalar};
use crate::vector::{DenseAcc, Slot, VView, Vector};

use super::common::{check_dims, check_vmask, DenseVec, VMask};
use super::spec::{self, SemiringSpec};
use super::write::write_vector;

/// `w⟨mask⟩ ⊙= A ⊕.⊗ u` (or `Aᵀ ⊕.⊗ u` with the transpose descriptor).
pub fn mxv<A, U, T, SA, SM, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    semiring: &Semiring<SA, SM>,
    a: &Matrix<A>,
    u: &Vector<U>,
    desc: &Descriptor,
) -> Result<()>
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<A, U, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mul = semiring.mul;
    let sp = if desc.specialize && spec::enabled() {
        spec::resolve(semiring.add.op_id(), semiring.mul.op_id())
    } else {
        None
    };
    product(
        w,
        mask,
        accum,
        &semiring.add,
        move |av, uv| mul.apply(av, uv),
        a,
        u,
        desc.transpose_a,
        desc,
        trace::Op::Mxv,
        sp,
    )
}

/// `wᵀ⟨maskᵀ⟩ ⊙= uᵀ ⊕.⊗ A` (or `⊕.⊗ Aᵀ` with the INP1 transpose).
pub fn vxm<U, A, T, SA, SM, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    semiring: &Semiring<SA, SM>,
    u: &Vector<U>,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> Result<()>
where
    U: Scalar,
    A: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    SM: BinaryOp<U, A, T>,
    Acc: BinaryOp<T, T, T>,
{
    let mul = semiring.mul;
    // vxm computes w_j = ⊕_i u(i) ⊗ A(i,j): the same kernels with the
    // operand order flipped and the transpose sense inverted. The flip
    // also swaps which operand the multiply projects, so the semiring is
    // resolved with the mirrored multiply id (First ↔ Second).
    let sp = if desc.specialize && spec::enabled() {
        spec::resolve(semiring.add.op_id(), semiring.mul.op_id().map(spec::swap_projection))
    } else {
        None
    };
    product(
        w,
        mask,
        accum,
        &semiring.add,
        move |av, uv| mul.apply(uv, av),
        a,
        u,
        !desc.transpose_b,
        desc,
        trace::Op::Vxm,
        sp,
    )
}

/// Shared implementation. `transposed` selects the math:
/// `false` → `w_i = ⊕_j f(A(i,j), u(j))` (output over rows),
/// `true`  → `w_j = ⊕_i f(A(i,j), u(i))` (output over columns).
#[allow(clippy::too_many_arguments)]
fn product<A, U, T, SA, F, Acc>(
    w: &mut Vector<T>,
    mask: Option<&Vector<bool>>,
    accum: Option<Acc>,
    add: &SA,
    f: F,
    a: &Matrix<A>,
    u: &Vector<U>,
    transposed: bool,
    desc: &Descriptor,
    op: trace::Op,
    sp: Option<SemiringSpec>,
) -> Result<()>
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    F: Fn(A, U) -> T + Sync,
    Acc: BinaryOp<T, T, T>,
{
    let mut span = trace::op_span(op);
    let ga = a.read_rows();
    let rows = rows_of(&ga);
    let dual = dual_of(&ga);
    let (n_in, n_out) = if transposed { (ga.nrows, ga.ncols) } else { (ga.ncols, ga.nrows) };
    check_dims(u.size() == n_in, "mxv/vxm: vector length must match matrix")?;
    check_dims(w.size() == n_out, "mxv/vxm: output length must match matrix")?;
    check_vmask(mask, n_out)?;

    let gu = u.read();
    let u_nvals = gu.nvals_assembled();
    let uview = gu.view();

    let mguard = mask.map(|m| m.read());
    let meval = VMask::new(mguard.as_ref().map(|g| g.view()), desc);
    let mask_nvals = mguard.as_ref().map(|g| g.nvals_assembled());

    // Flops estimates for both directions (saturating — dimensions may sit
    // near Index::MAX). Push expands an average-degree row per input entry;
    // pull builds a dense input view (free if `u` already stores dense) and
    // scans the considered rows — all of them, or just the stored mask
    // entries for a non-complement mask — stopping each dot at the first
    // hit under a terminal/ANY monoid.
    let a_nnz = rows.nvals();
    let est_push = cost::mxv_push_flops(u_nvals, a_nnz, n_in);
    let rows_considered = match mask_nvals {
        Some(m) if !desc.mask_complement => m.min(n_out),
        _ => n_out,
    };
    let dense_build = if matches!(uview, VView::Sparse(..)) { n_in } else { 0 };
    let early = add.terminal().is_some() || add.is_any();
    let est_pull = cost::mxv_pull_flops(dense_build, rows_considered, a_nnz, n_out, early);
    let push_wins = cost::model().push_wins(est_push, est_pull);

    // Natural kernel: pull for the row-output form, push for the
    // column-output form. The dual storage unlocks the other one. The
    // `Auto` heuristic only requests the non-natural orientation when the
    // dual form actually exists; an explicit Push/Pull request that needs
    // the missing dual falls back to the natural kernel (never panics —
    // the direction is a hint, not a contract).
    let want_push = if transposed {
        match desc.direction {
            Direction::Push => true,
            Direction::Pull => false,
            Direction::Auto => dual.is_none() || push_wins,
        }
    } else {
        match desc.direction {
            Direction::Push => true,
            Direction::Pull => false,
            Direction::Auto => dual.is_some() && push_wins,
        }
    };

    if span.on() {
        span.arg("nrows", ga.nrows);
        span.arg("ncols", ga.ncols);
        span.arg("a_nnz", a_nnz);
        span.arg("u_nnz", u_nvals);
        span.arg("est_push", est_push);
        span.arg("est_pull", est_pull);
        if let Some(s) = sp {
            span.arg("spec", s.name());
        }
    }
    // Specialized loop shapes keep the fallback kernel names so direction
    // mispredictions stay attributable in traces; only the intended
    // push/pull choices advertise the `(specialized)` variant.
    let push_kernel = match (meval.is_transparent(), sp.is_some()) {
        (true, true) => trace::Kernel::PushSpec,
        (true, false) => trace::Kernel::Push,
        (false, true) => trace::Kernel::PushMaskedSpec,
        (false, false) => trace::Kernel::PushMasked,
    };
    let pull_kernel = if sp.is_some() { trace::Kernel::PullSpec } else { trace::Kernel::Pull };
    if span.on() && rows.is_compressed() {
        // The pull (row-dot) loop decodes gap-encoded rows on the fly;
        // make that visible next to the kernel tag.
        span.arg("storage", "compressed");
    }
    let (t_idx, t_val, actual) = if transposed {
        if want_push {
            span.kernel(push_kernel);
            scatter(rows, uview, n_out, add, &f, &meval, sp)
        } else {
            match dual {
                Some(dv) => {
                    span.kernel(pull_kernel);
                    rowdot(dv, uview, n_in, add, &f, &meval, sp)
                }
                None => {
                    span.kernel(trace::Kernel::PushFallback);
                    scatter(rows, uview, n_out, add, &f, &meval, sp)
                }
            }
        }
    } else if want_push {
        match dual {
            Some(dv) => {
                span.kernel(push_kernel);
                scatter(dv, uview, n_out, add, &f, &meval, sp)
            }
            None => {
                span.kernel(trace::Kernel::PullFallback);
                rowdot(rows, uview, n_in, add, &f, &meval, sp)
            }
        }
    } else {
        span.kernel(pull_kernel);
        rowdot(rows, uview, n_in, add, &f, &meval, sp)
    };
    span.flops(actual);

    // A misprediction is an *Auto* choice (with the alternative actually
    // available) whose measured work, under the model, costs more than the
    // estimate of the direction we turned down.
    if desc.direction == Direction::Auto && dual.is_some() {
        let m = cost::model();
        let (chosen, est_chosen, est_other, mis) = if want_push {
            ("push", est_push, est_pull, m.pull_cost(est_pull) < m.push_cost(actual))
        } else {
            ("pull", est_pull, est_push, m.push_cost(est_push) < m.pull_cost(actual))
        };
        if mis {
            trace::mxv_mispredict(chosen, est_chosen, est_other, actual);
        }
    }
    drop(mguard);
    drop(gu);
    drop(ga);
    write_vector(w, mask, accum, desc, t_idx, t_val)
}

/// The specialized per-row reduction shape for a resolved semiring (see
/// [`spec`]): `NoTerminal` sheds the `Option` accumulator and the
/// per-product terminal compare, `Terminal` compares plain `T` against a
/// hoisted terminal, `FirstHit` takes the first intersection (ANY).
#[derive(Clone, Copy)]
enum PullShape<T> {
    Generic,
    NoTerminal,
    Terminal(T),
    FirstHit,
}

/// Pull kernel: `out(i) = ⊕ f(row_i(j), u(j))` over the intersection of
/// row `i`'s pattern with `u`'s. Rows the mask excludes are skipped, and
/// each dot product stops at the monoid's terminal value. Returns the
/// result lists plus the flops actually performed (products computed, plus
/// the dense-view build when `u` arrived sparse) for misprediction checks.
///
/// A bitmap-form `u` is probed through its packed words directly — no
/// dense bool view is built, which is what makes the pull side free to
/// enter for bitmap frontiers (`dense_build = 0` in the cost estimate).
fn rowdot<A, U, T, SA, F>(
    mat: &dyn SparseView<A>,
    u: VView<'_, U>,
    n_in: Index,
    add: &SA,
    f: &F,
    mask: &VMask<'_>,
    sp: Option<SemiringSpec>,
) -> (Vec<Index>, Vec<T>, usize)
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    F: Fn(A, U) -> T + Sync,
{
    match u {
        VView::Bitmap(uval, ubits) => rowdot_probe(mat, add, f, mask, sp, 0, &|j: Index| {
            if (ubits[j >> 6] >> (j & 63)) & 1 == 1 {
                Some(uval[j])
            } else {
                None
            }
        }),
        _ => {
            let build_flops = if matches!(u, VView::Sparse(..)) { n_in } else { 0 };
            let dense = DenseVec::from_view(u, n_in);
            let (uval, upresent) = dense.parts();
            rowdot_probe(mat, add, f, mask, sp, build_flops, &|j: Index| {
                if upresent[j] {
                    Some(uval[j])
                } else {
                    None
                }
            })
        }
    }
}

/// The row-loop core of [`rowdot`], generic over the input-vector probe
/// (dense bool view or packed bitmap) so each probe gets its own
/// monomorphized copy of every loop shape.
fn rowdot_probe<A, U, T, SA, F, P>(
    mat: &dyn SparseView<A>,
    add: &SA,
    f: &F,
    mask: &VMask<'_>,
    sp: Option<SemiringSpec>,
    build_flops: usize,
    probe: &P,
) -> (Vec<Index>, Vec<T>, usize)
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    F: Fn(A, U) -> T + Sync,
    P: Fn(Index) -> Option<U> + Sync,
{
    let shape: PullShape<T> = match sp {
        None => PullShape::Generic,
        Some(SemiringSpec::AnyFirst | SemiringSpec::AnySecond) => PullShape::FirstHit,
        Some(SemiringSpec::MinPlus | SemiringSpec::LorLand) => match add.terminal() {
            Some(t) => PullShape::Terminal(t),
            None => PullShape::NoTerminal,
        },
        Some(SemiringSpec::PlusTimes | SemiringSpec::PlusPair) => PullShape::NoTerminal,
    };
    let majors = mat.nonempty_majors();
    let terminal = add.terminal();
    let is_any = add.is_any();
    let chunks = par_chunks(majors.len(), mat.nvals(), |range| {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        let mut flops = 0usize;
        let mut scratch = crate::sparse::RowScratch::default();
        for &i in &majors[range] {
            if !mask.allowed(i) {
                continue;
            }
            let (ridx, rval) = mat.row(i, &mut scratch);
            let acc: Option<T> = match shape {
                PullShape::Generic => {
                    let mut acc: Option<T> = None;
                    for (&j, &av) in ridx.iter().zip(rval) {
                        let Some(uv) = probe(j) else { continue };
                        let prod = f(av, uv);
                        flops += 1;
                        acc = Some(match acc {
                            None => prod,
                            Some(cur) => add.apply(cur, prod),
                        });
                        if is_any || acc == terminal {
                            break;
                        }
                    }
                    acc
                }
                PullShape::NoTerminal => {
                    let mut it = ridx.iter().zip(rval);
                    let mut first: Option<T> = None;
                    for (&j, &av) in it.by_ref() {
                        if let Some(uv) = probe(j) {
                            flops += 1;
                            first = Some(f(av, uv));
                            break;
                        }
                    }
                    first.map(|f0| {
                        let mut a = f0;
                        for (&j, &av) in it {
                            if let Some(uv) = probe(j) {
                                flops += 1;
                                a = add.apply(a, f(av, uv));
                            }
                        }
                        a
                    })
                }
                PullShape::Terminal(term) => {
                    let mut it = ridx.iter().zip(rval);
                    let mut first: Option<T> = None;
                    for (&j, &av) in it.by_ref() {
                        if let Some(uv) = probe(j) {
                            flops += 1;
                            first = Some(f(av, uv));
                            break;
                        }
                    }
                    first.map(|f0| {
                        let mut a = f0;
                        if a != term {
                            for (&j, &av) in it {
                                if let Some(uv) = probe(j) {
                                    flops += 1;
                                    a = add.apply(a, f(av, uv));
                                    if a == term {
                                        break;
                                    }
                                }
                            }
                        }
                        a
                    })
                }
                PullShape::FirstHit => {
                    let mut acc: Option<T> = None;
                    for (&j, &av) in ridx.iter().zip(rval) {
                        if let Some(uv) = probe(j) {
                            flops += 1;
                            acc = Some(f(av, uv));
                            break;
                        }
                    }
                    acc
                }
            };
            if let Some(v) = acc {
                idx.push(i);
                val.push(v);
            }
        }
        (idx, val, flops)
    });
    let (idx, val, flops) = concat_chunks(chunks);
    (idx, val, flops.saturating_add(build_flops))
}

/// Push kernel: scatter matrix rows selected by `u`'s entries into dense
/// (or tree, for huge dimensions) accumulators, in parallel.
///
/// The frontier is partitioned across the [`par_chunks`] pool; each chunk
/// owns a private [`DenseAcc`] sized to `n_out` (stamp arrays are pooled
/// per worker thread, so only the first call pays the O(n) zero fill) and
/// the per-chunk sorted touched lists are combined by
/// [`merge_scatter_chunks`], which folds duplicate indices in ascending
/// chunk order — the exact order the sequential loop would have used, so
/// results are bitwise identical at every thread count.
///
/// Two skips keep the inner loop tight:
/// * **mask**: a position the mask excludes is probed once, marked
///   [`Slot::Blocked`], and never touched again — filtering happens here
///   instead of deferring everything to `write_vector`;
/// * **terminal/ANY**: a slot that has reached the monoid's terminal value
///   (or any value, for ANY) absorbs later contributions without applying
///   the operator — the scatter-side analogue of pull's early exit.
fn scatter<A, U, T, SA, F>(
    mat: &dyn SparseView<A>,
    u: VView<'_, U>,
    n_out: Index,
    add: &SA,
    f: &F,
    mask: &VMask<'_>,
    sp: Option<SemiringSpec>,
) -> (Vec<Index>, Vec<T>, usize)
where
    A: Scalar,
    U: Scalar,
    T: Scalar,
    SA: Monoid<T>,
    F: Fn(A, U) -> T + Sync,
{
    /// How the dense-accumulator loop treats an `Active` slot for the
    /// resolved semiring: `Fold` always combines (no terminal exists),
    /// `Terminal` compares plain `T` against the hoisted terminal, and
    /// `FirstHit` (ANY) absorbs later contributions untouched. Each
    /// reproduces exactly what the generic Option-comparing arm does.
    #[derive(Clone, Copy)]
    enum ScatterMode<T> {
        Generic,
        Fold,
        Terminal(T),
        FirstHit,
    }
    const DENSE_ACC_LIMIT: usize = 1 << 26;
    let mut entries: Vec<(Index, U)> = Vec::new();
    u.for_each(|k, uk| entries.push((k, uk)));
    let deg = (mat.nvals() / mat.nmajor().max(1)).max(1);
    let est = entries.len().saturating_mul(deg);
    let terminal = add.terminal();
    let is_any = add.is_any();
    let mode: ScatterMode<T> = match sp {
        None => ScatterMode::Generic,
        Some(SemiringSpec::AnyFirst | SemiringSpec::AnySecond) => ScatterMode::FirstHit,
        Some(SemiringSpec::MinPlus | SemiringSpec::LorLand) => match add.terminal() {
            Some(t) => ScatterMode::Terminal(t),
            None => ScatterMode::Fold,
        },
        Some(SemiringSpec::PlusTimes | SemiringSpec::PlusPair) => ScatterMode::Fold,
    };
    let chunks = par_chunks(entries.len(), est, |range| {
        let mut flops = 0usize;
        let mut scratch = crate::sparse::RowScratch::default();
        if n_out <= DENSE_ACC_LIMIT {
            let mut acc = DenseAcc::<T>::new(n_out);
            match mode {
                ScatterMode::Generic => {
                    for &(k, uk) in &entries[range] {
                        let (ridx, rval) = mat.row(k, &mut scratch);
                        for (&j, &av) in ridx.iter().zip(rval) {
                            match acc.slot(j) {
                                Slot::Blocked => {}
                                Slot::Empty => {
                                    if mask.allowed(j) {
                                        flops += 1;
                                        acc.insert(j, f(av, uk));
                                    } else {
                                        acc.block(j);
                                    }
                                }
                                Slot::Active => {
                                    let cur = acc.value(j);
                                    if is_any || Some(cur) == terminal {
                                        continue;
                                    }
                                    flops += 1;
                                    acc.set(j, add.apply(cur, f(av, uk)));
                                }
                            }
                        }
                    }
                }
                ScatterMode::Fold => {
                    for &(k, uk) in &entries[range] {
                        let (ridx, rval) = mat.row(k, &mut scratch);
                        for (&j, &av) in ridx.iter().zip(rval) {
                            match acc.slot(j) {
                                Slot::Blocked => {}
                                Slot::Empty => {
                                    if mask.allowed(j) {
                                        flops += 1;
                                        acc.insert(j, f(av, uk));
                                    } else {
                                        acc.block(j);
                                    }
                                }
                                Slot::Active => {
                                    flops += 1;
                                    acc.set(j, add.apply(acc.value(j), f(av, uk)));
                                }
                            }
                        }
                    }
                }
                ScatterMode::Terminal(term) => {
                    for &(k, uk) in &entries[range] {
                        let (ridx, rval) = mat.row(k, &mut scratch);
                        for (&j, &av) in ridx.iter().zip(rval) {
                            match acc.slot(j) {
                                Slot::Blocked => {}
                                Slot::Empty => {
                                    if mask.allowed(j) {
                                        flops += 1;
                                        acc.insert(j, f(av, uk));
                                    } else {
                                        acc.block(j);
                                    }
                                }
                                Slot::Active => {
                                    let cur = acc.value(j);
                                    if cur == term {
                                        continue;
                                    }
                                    flops += 1;
                                    acc.set(j, add.apply(cur, f(av, uk)));
                                }
                            }
                        }
                    }
                }
                ScatterMode::FirstHit => {
                    for &(k, uk) in &entries[range] {
                        let (ridx, rval) = mat.row(k, &mut scratch);
                        for (&j, &av) in ridx.iter().zip(rval) {
                            match acc.slot(j) {
                                Slot::Blocked | Slot::Active => {}
                                Slot::Empty => {
                                    if mask.allowed(j) {
                                        flops += 1;
                                        acc.insert(j, f(av, uk));
                                    } else {
                                        acc.block(j);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let (idx, val) = acc.drain_sorted();
            (idx, val, flops)
        } else {
            // Tree accumulator for huge dimensions; `None` marks a probed,
            // mask-blocked position.
            use std::collections::btree_map::Entry;
            let mut acc = std::collections::BTreeMap::<Index, Option<T>>::new();
            for &(k, uk) in &entries[range] {
                let (ridx, rval) = mat.row(k, &mut scratch);
                for (&j, &av) in ridx.iter().zip(rval) {
                    match acc.entry(j) {
                        Entry::Vacant(e) => {
                            if mask.allowed(j) {
                                flops += 1;
                                e.insert(Some(f(av, uk)));
                            } else {
                                e.insert(None);
                            }
                        }
                        Entry::Occupied(mut e) => {
                            if let Some(cur) = *e.get() {
                                if is_any || Some(cur) == terminal {
                                    continue;
                                }
                                flops += 1;
                                e.insert(Some(add.apply(cur, f(av, uk))));
                            }
                        }
                    }
                }
            }
            let mut idx = Vec::with_capacity(acc.len());
            let mut val = Vec::with_capacity(acc.len());
            for (j, v) in acc {
                if let Some(v) = v {
                    idx.push(j);
                    val.push(v);
                }
            }
            (idx, val, flops)
        }
    });
    let total_flops = chunks.iter().fold(0usize, |s, (_, _, fl)| s.saturating_add(*fl));
    let parts: Vec<(Vec<Index>, Vec<T>)> = chunks.into_iter().map(|(i, v, _)| (i, v)).collect();
    let (idx, val) = merge_scatter_chunks(parts, |a, b| add.apply(a, b));
    (idx, val, total_flops)
}

fn concat_chunks<T>(chunks: Vec<(Vec<Index>, Vec<T>, usize)>) -> (Vec<Index>, Vec<T>, usize) {
    let total: usize = chunks.iter().map(|(i, _, _)| i.len()).sum();
    let mut idx = Vec::with_capacity(total);
    let mut val = Vec::with_capacity(total);
    let mut flops = 0usize;
    for (ci, cv, fl) in chunks {
        idx.extend(ci);
        val.extend(cv);
        flops = flops.saturating_add(fl);
    }
    (idx, val, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::common::NOACC;
    use crate::semiring::{LOR_LAND, MIN_PLUS, PLUS_TIMES};

    /// 0→1, 0→2, 1→2, 2→0 with weights.
    fn digraph() -> Matrix<f64> {
        Matrix::from_tuples(
            3,
            3,
            vec![(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 0, 8.0)],
            |_, b| b,
        )
        .expect("build")
    }

    #[test]
    fn mxv_plus_times_matches_hand_computation() {
        let a = digraph();
        let u = Vector::from_tuples(3, vec![(0, 1.0), (1, 2.0), (2, 3.0)], |_, b| b).expect("u");
        let mut w = Vector::<f64>::new(3).expect("w");
        mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
        // w0 = 1*2 + 4*3 = 14; w1 = 2*3 = 6... careful: row0 = {1:1, 2:4}.
        assert_eq!(
            w.extract_tuples(),
            vec![(0, 1.0 * 2.0 + 4.0 * 3.0), (1, 2.0 * 3.0), (2, 8.0 * 1.0)]
        );
    }

    #[test]
    fn mxv_transposed_equals_vxm() {
        let a = digraph();
        let u = Vector::from_tuples(3, vec![(0, 1.0), (2, 5.0)], |_, b| b).expect("u");
        let mut w1 = Vector::<f64>::new(3).expect("w1");
        mxv(&mut w1, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::new().transpose_a())
            .expect("mxv T");
        let mut w2 = Vector::<f64>::new(3).expect("w2");
        vxm(&mut w2, None, NOACC, &PLUS_TIMES, &u, &a, &Descriptor::default()).expect("vxm");
        assert_eq!(w1.extract_tuples(), w2.extract_tuples());
        // (Aᵀ u)_1 = A(0,1) u0 = 1; _2 = A(0,2) u0 = 4; _0 = A(2,0) u2 = 40.
        assert_eq!(w1.extract_tuples(), vec![(0, 40.0), (1, 1.0), (2, 4.0)]);
    }

    #[test]
    fn sparse_frontier_reachability() {
        let a = Matrix::from_tuples(4, 4, vec![(0, 1, true), (1, 2, true), (2, 3, true)], |_, b| b)
            .expect("a");
        let q = Vector::from_tuples(4, vec![(0, true)], |_, b| b).expect("q");
        let mut next = Vector::<bool>::new(4).expect("next");
        vxm(&mut next, None, NOACC, &LOR_LAND, &q, &a, &Descriptor::default()).expect("vxm");
        assert_eq!(next.extract_tuples(), vec![(1, true)]);
    }

    #[test]
    fn min_plus_relaxation_step() {
        let a = digraph();
        let dist = Vector::from_tuples(3, vec![(0, 0.0)], |_, b| b).expect("dist");
        let mut relaxed = Vector::<f64>::new(3).expect("r");
        // one Bellman-Ford step from the source: dᵀ min.+ A
        vxm(&mut relaxed, None, NOACC, &MIN_PLUS, &dist, &a, &Descriptor::default()).expect("vxm");
        assert_eq!(relaxed.extract_tuples(), vec![(1, 1.0), (2, 4.0)]);
    }

    #[test]
    fn masked_mxv_skips_rows() {
        let a = digraph();
        let u = Vector::dense(3, 1.0).expect("u");
        let mask = Vector::from_tuples(3, vec![(1, true)], |_, b| b).expect("mask");
        let mut w = Vector::<f64>::new(3).expect("w");
        mxv(&mut w, Some(&mask), NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("mxv");
        assert_eq!(w.extract_tuples(), vec![(1, 2.0)]);
    }

    #[test]
    fn dual_storage_enables_push_with_identical_result() {
        let mut a = digraph();
        let u = Vector::from_tuples(3, vec![(1, 2.0)], |_, b| b).expect("u");
        let mut pull = Vector::<f64>::new(3).expect("pull");
        mxv(&mut pull, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("pull");
        a.set_dual_storage(true);
        let mut push = Vector::<f64>::new(3).expect("push");
        mxv(
            &mut push,
            None,
            NOACC,
            &PLUS_TIMES,
            &a,
            &u,
            &Descriptor::new().direction(Direction::Push),
        )
        .expect("push");
        assert_eq!(pull.extract_tuples(), push.extract_tuples());
    }

    #[test]
    fn dual_storage_invalidation_on_mutation() {
        let mut a = digraph();
        a.set_dual_storage(true);
        let u = Vector::dense(3, 1.0).expect("u");
        let mut w = Vector::<f64>::new(3).expect("w");
        mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("warm");
        a.set_element(0, 1, 100.0).expect("set");
        let mut w2 = Vector::<f64>::new(3).expect("w2");
        mxv(
            &mut w2,
            None,
            NOACC,
            &PLUS_TIMES,
            &a,
            &u,
            &Descriptor::new().direction(Direction::Push),
        )
        .expect("push after mutation");
        assert_eq!(w2.get(0), Some(100.0 + 4.0));
    }

    #[test]
    fn explicit_push_without_dual_falls_back_to_pull() {
        // Push on the row-output form needs the transposed (dual) storage.
        // Without it the direction hint must degrade to the natural pull
        // kernel instead of panicking.
        let a = digraph();
        let u = Vector::from_tuples(3, vec![(0, 1.0), (1, 2.0), (2, 3.0)], |_, b| b).expect("u");
        let mut w = Vector::<f64>::new(3).expect("w");
        mxv(
            &mut w,
            None,
            NOACC,
            &PLUS_TIMES,
            &a,
            &u,
            &Descriptor::new().direction(Direction::Push),
        )
        .expect("push hint without dual storage must not fail");
        assert_eq!(
            w.extract_tuples(),
            vec![(0, 1.0 * 2.0 + 4.0 * 3.0), (1, 2.0 * 3.0), (2, 8.0 * 1.0)]
        );
    }

    #[test]
    fn explicit_pull_without_dual_falls_back_to_push() {
        // Pull on the column-output form (vxm / transposed mxv) needs the
        // dual storage; without it the hint degrades to the natural push.
        let a = digraph();
        let u = Vector::from_tuples(3, vec![(0, 1.0), (2, 5.0)], |_, b| b).expect("u");
        let mut w = Vector::<f64>::new(3).expect("w");
        vxm(
            &mut w,
            None,
            NOACC,
            &PLUS_TIMES,
            &u,
            &a,
            &Descriptor::new().direction(Direction::Pull),
        )
        .expect("pull hint without dual storage must not fail");
        assert_eq!(w.extract_tuples(), vec![(0, 40.0), (1, 1.0), (2, 4.0)]);
    }

    #[test]
    fn every_direction_agrees_with_and_without_dual() {
        // No combination of direction hint × dual-storage state may panic,
        // and all must agree bit-for-bit on the result.
        let u = Vector::from_tuples(3, vec![(1, 2.0), (2, 0.5)], |_, b| b).expect("u");
        let base = {
            let a = digraph();
            let mut w = Vector::<f64>::new(3).expect("w");
            mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).expect("base");
            w.extract_tuples()
        };
        for with_dual in [false, true] {
            for dir in [Direction::Auto, Direction::Push, Direction::Pull] {
                let mut a = digraph();
                a.set_dual_storage(with_dual);
                let mut w = Vector::<f64>::new(3).expect("w");
                mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::new().direction(dir))
                    .expect("mxv");
                assert_eq!(w.extract_tuples(), base, "dual={with_dual} dir={dir:?}");
                let mut t = Vector::<f64>::new(3).expect("t");
                vxm(&mut t, None, NOACC, &PLUS_TIMES, &u, &a, &Descriptor::new().direction(dir))
                    .expect("vxm");
            }
        }
    }

    #[test]
    fn dimension_checks() {
        let a = digraph();
        let u = Vector::<f64>::new(4).expect("u");
        let mut w = Vector::<f64>::new(3).expect("w");
        assert!(mxv(&mut w, None, NOACC, &PLUS_TIMES, &a, &u, &Descriptor::default()).is_err());
    }

    #[test]
    fn fig2_bfs_iteration_semantics() {
        // One iteration of the Fig. 2 BFS line:
        //   frontier<¬levels,replace> = graphᵀ ⊕.⊗ frontier
        let graph = Matrix::from_tuples(
            4,
            4,
            vec![(0, 1, true), (0, 2, true), (1, 3, true), (2, 3, true)],
            |_, b| b,
        )
        .expect("graph");
        let levels = Vector::from_tuples(4, vec![(0, 1i32)], |_, b| b).expect("levels");
        let mut frontier = Vector::from_tuples(4, vec![(0, true)], |_, b| b).expect("q");
        let lv_mask = levels.pattern();
        let f = frontier.clone();
        mxv(
            &mut frontier,
            Some(&lv_mask),
            NOACC,
            &LOR_LAND,
            &graph,
            &f,
            &crate::descriptor::DESC_TRAN_COMP_REPLACE,
        )
        .expect("bfs step");
        assert_eq!(frontier.extract_tuples(), vec![(1, true), (2, true)]);
    }
}
